//! Criterion benches for the parallel-structure layer: decomposition
//! construction, patch-grid binning, and one full DES phase.

use criterion::{criterion_group, criterion_main, Criterion};
use namd_core::prelude::*;
use std::hint::black_box;

fn test_system() -> mdcore::system::System {
    molgen::SystemBuilder::new(molgen::SystemSpec {
        name: "bench-decomp",
        box_lengths: mdcore::vec3::Vec3::new(42.0, 42.0, 42.0),
        target_atoms: 6_000,
        protein_chains: 1,
        protein_chain_len: 80,
        lipid_slab: Some((14.0, 24.0)),
        cutoff: 9.0,
        seed: 1,
    })
    .build()
}

fn bench_decomposition_build(c: &mut Criterion) {
    let sys = test_system();
    let machine = machine::presets::asci_red();
    c.bench_function("decomp/build_counted_6k", |b| {
        let cfg = SimConfig::new(16, machine);
        b.iter(|| black_box(build_decomposition(&sys, &cfg).computes.len()));
    });
    c.bench_function("decomp/build_real_6k", |b| {
        let cfg = SimConfig::builder(16, machine)
            .force_mode(ForceMode::Real)
            .build()
            .unwrap();
        b.iter(|| black_box(build_decomposition(&sys, &cfg).computes.len()));
    });
}

fn bench_patch_grid(c: &mut Criterion) {
    let sys = test_system();
    c.bench_function("patchgrid/assign_6k", |b| {
        let mut grid = PatchGrid::build(&sys.cell, &sys.positions, 9.0, 3.5);
        b.iter(|| {
            grid.assign(&sys.positions);
            black_box(grid.atoms.len())
        });
    });
}

fn bench_des_phase(c: &mut Criterion) {
    let sys = test_system();
    let machine = machine::presets::asci_red();
    let decomp = build_decomposition(&sys, &SimConfig::new(1, machine));
    c.bench_function("des/phase_2steps_64pe", |b| {
        b.iter(|| {
            let cfg = SimConfig::builder(64, machine).steps_per_phase(2).build().unwrap();
            let mut engine =
                Engine::with_decomposition(sys.clone(), decomp.clone(), cfg);
            black_box(engine.run_phase(2).time_per_step)
        });
    });
}

fn bench_multicore_forces(c: &mut Criterion) {
    let sys = test_system();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let mut group = c.benchmark_group("multicore_forces");
    group.sample_size(10);
    for t in [1usize, threads] {
        group.bench_function(format!("{t}_threads"), |b| {
            let mut sim = namd_core::parallel::ParallelSim::new(sys.clone(), t, 1.0).unwrap();
            b.iter(|| black_box(sim.compute_forces().potential()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decomposition_build,
    bench_patch_grid,
    bench_des_phase,
    bench_multicore_forces
);
criterion_main!(benches);
