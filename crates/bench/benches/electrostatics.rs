//! Criterion benches for the full-electrostatics substrate: FFT scaling,
//! PME reciprocal evaluation, and PME vs the exact direct k-sum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdcore::prelude::*;
use pme::ewald::{reciprocal_direct, EwaldParams};
use pme::fft::{fft_in_place, Complex, Grid3};
use pme::mesh::{Pme, PmeParams};
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [256usize, 4096] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("1d", n), &n, |b, &n| {
            let mut data: Vec<Complex> =
                (0..n).map(|i| Complex::new((i as f64).sin(), 0.0)).collect();
            b.iter(|| {
                fft_in_place(&mut data, false);
                fft_in_place(&mut data, true);
                black_box(data[0])
            });
        });
    }
    for m in [16usize, 32] {
        g.bench_with_input(BenchmarkId::new("3d", m * m * m), &m, |b, &m| {
            let mut grid = Grid3::new(m, m, m);
            for (i, cplx) in grid.data.iter_mut().enumerate() {
                *cplx = Complex::new((i as f64 * 0.1).sin(), 0.0);
            }
            b.iter(|| {
                grid.fft(false);
                grid.fft(true);
                grid.normalize_inverse();
                black_box(grid.data[0])
            });
        });
    }
    g.finish();
}

fn charged_system(n: usize, l: f64) -> (Cell, Vec<Vec3>, Vec<f64>) {
    let cell = Cell::cube(l);
    let pos: Vec<Vec3> = (0..n)
        .map(|i| {
            let t = i as f64;
            Vec3::new(
                (t * 7.93).rem_euclid(l),
                (t * 5.21 + 1.0).rem_euclid(l),
                (t * 3.57 + 2.0).rem_euclid(l),
            )
        })
        .collect();
    let q: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.4 } else { -0.4 }).collect();
    (cell, pos, q)
}

fn bench_pme_vs_direct(c: &mut Criterion) {
    let (cell, pos, q) = charged_system(600, 24.0);
    let beta = 0.4;
    let mut g = c.benchmark_group("reciprocal_space");
    g.sample_size(10);
    g.bench_function("pme_600_atoms_32mesh", |b| {
        let mut pme = Pme::new(&cell, PmeParams { beta, order: 4, mesh: [32, 32, 32] });
        let mut f = vec![Vec3::ZERO; pos.len()];
        b.iter(|| {
            f.fill(Vec3::ZERO);
            black_box(pme.reciprocal(&pos, &q, &mut f).reciprocal)
        });
    });
    g.bench_function("direct_ksum_600_atoms_k8", |b| {
        let params = EwaldParams { beta, r_cut: 10.0, kmax: 8 };
        let mut f = vec![Vec3::ZERO; pos.len()];
        b.iter(|| {
            f.fill(Vec3::ZERO);
            black_box(reciprocal_direct(&cell, &pos, &q, &params, &mut f))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fft, bench_pme_vs_direct);
criterion_main!(benches);
