//! Criterion benches for the computational kernels: the non-bonded pair
//! kernels (the 80%+ of MD time), bonded kernels, cell-list construction,
//! and the exclusion check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdcore::prelude::*;
use std::hint::black_box;

fn water_system(n_side: usize) -> System {
    let mut topo = Topology::default();
    let mut pos = Vec::new();
    let spacing = 3.1;
    for ix in 0..n_side {
        for iy in 0..n_side {
            for iz in 0..n_side {
                let base = Vec3::new(
                    ix as f64 * spacing + 0.4,
                    iy as f64 * spacing + 0.4,
                    iz as f64 * spacing + 0.4,
                );
                push_water(&mut topo, 0, 1);
                pos.push(base);
                pos.push(base + Vec3::new(0.9572, 0.0, 0.0));
                pos.push(base + Vec3::new(-0.2399, 0.9266, 0.0));
            }
        }
    }
    let l = n_side as f64 * spacing;
    System::new(topo, ForceField::biomolecular((l / 2.2).min(10.0)), Cell::cube(l), pos)
}

fn bench_nonbonded(c: &mut Criterion) {
    let mut g = c.benchmark_group("nonbonded");
    for n_side in [4usize, 6, 8] {
        let sys = water_system(n_side);
        let n = sys.n_atoms();
        let lj = sys.lj_types();
        let q = sys.charges();
        let ids: Vec<u32> = (0..n as u32).collect();
        let group = AtomGroup::new(&sys.positions, &ids, &lj, &q);
        let pairs = count_self_pairs(group, &sys.cell, sys.forcefield.cutoff);
        g.throughput(Throughput::Elements(pairs));
        g.bench_with_input(BenchmarkId::new("nb_self", n), &sys, |b, sys| {
            let mut forces = vec![Vec3::ZERO; n];
            b.iter(|| {
                forces.fill(Vec3::ZERO);
                black_box(nb_self(
                    &sys.forcefield,
                    &sys.exclusions,
                    group,
                    &sys.cell,
                    &mut forces,
                ))
            });
        });
    }
    g.finish();
}

fn bench_nonbonded_listed(c: &mut Criterion) {
    let margin = 2.0;
    let mut g = c.benchmark_group("nonbonded_listed");
    for n_side in [4usize, 6, 8] {
        let sys = water_system(n_side);
        let n = sys.n_atoms();
        let lj = sys.lj_types();
        let q = sys.charges();
        let ids: Vec<u32> = (0..n as u32).collect();
        let group = AtomGroup::new(&sys.positions, &ids, &lj, &q);
        let mut list = Vec::new();
        self_candidates_into(group, &sys.cell, 0..n, sys.forcefield.cutoff + margin, &mut list);
        let pairs = count_self_pairs(group, &sys.cell, sys.forcefield.cutoff);
        g.throughput(Throughput::Elements(pairs));
        // Cache hit: walk a pre-built candidate list.
        g.bench_with_input(BenchmarkId::new("hit", n), &sys, |b, sys| {
            let mut forces = vec![Vec3::ZERO; n];
            b.iter(|| {
                forces.fill(Vec3::ZERO);
                black_box(nb_self_listed(
                    &sys.forcefield,
                    &sys.exclusions,
                    group,
                    &sys.cell,
                    &list,
                    &mut forces,
                ))
            });
        });
        // Cache miss: rebuild the candidate list, then walk it.
        g.bench_with_input(BenchmarkId::new("rebuild", n), &sys, |b, sys| {
            let mut forces = vec![Vec3::ZERO; n];
            let mut scratch = Vec::new();
            b.iter(|| {
                self_candidates_into(
                    group,
                    &sys.cell,
                    0..n,
                    sys.forcefield.cutoff + margin,
                    &mut scratch,
                );
                forces.fill(Vec3::ZERO);
                black_box(nb_self_listed(
                    &sys.forcefield,
                    &sys.exclusions,
                    group,
                    &sys.cell,
                    &scratch,
                    &mut forces,
                ))
            });
        });
    }
    g.finish();
}

fn bench_celllist(c: &mut Criterion) {
    let mut g = c.benchmark_group("celllist");
    for n_side in [6usize, 10] {
        let sys = water_system(n_side);
        g.bench_with_input(
            BenchmarkId::new("build+pairs", sys.n_atoms()),
            &sys,
            |b, sys| {
                b.iter(|| {
                    let cl = CellList::build(&sys.cell, &sys.positions, sys.forcefield.cutoff);
                    black_box(cl.neighbor_pairs(&sys.positions, sys.forcefield.cutoff).len())
                });
            },
        );
    }
    g.finish();
}

fn bench_bonded(c: &mut Criterion) {
    let sys = water_system(8);
    let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
    c.bench_function("bonded/water8", |b| {
        b.iter(|| {
            forces.fill(Vec3::ZERO);
            black_box(compute_bonded(&sys.topology, &sys.cell, &sys.positions, &mut forces))
        });
    });
}

fn bench_exclusions(c: &mut Criterion) {
    let sys = water_system(8);
    let ex = &sys.exclusions;
    c.bench_function("exclusions/kind_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in (0..sys.n_atoms() as u32).step_by(7) {
                for j in (0..sys.n_atoms() as u32).step_by(13) {
                    if ex.kind(i, j) != ExclusionKind::None {
                        acc += 1;
                    }
                }
            }
            black_box(acc)
        });
    });
}

fn bench_full_step(c: &mut Criterion) {
    let mut sys = water_system(6);
    sys.thermalize(300.0, 1);
    let mut sim = Simulator::new(&sys, 1.0);
    c.bench_function("sequential_step/water6", |b| {
        b.iter(|| black_box(sim.step(&mut sys).total()));
    });
}

criterion_group!(
    benches,
    bench_nonbonded,
    bench_nonbonded_listed,
    bench_celllist,
    bench_bonded,
    bench_exclusions,
    bench_full_step
);
criterion_main!(benches);
