//! Criterion benches for the load-balancing strategies at realistic problem
//! sizes (ApoA-I on 1024 PEs has ~6,000 migratable computes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn synthetic_problem(n_pes: usize, n_patches: usize, computes_per_patch: usize) -> lb::LbProblem {
    let patch_home: Vec<usize> = (0..n_patches).map(|p| p * n_pes / n_patches).collect();
    let mut computes = Vec::new();
    for p in 0..n_patches {
        for k in 0..computes_per_patch {
            let partner = (p + k + 1) % n_patches;
            computes.push(lb::ComputeSpec {
                load: 0.5 + ((p * 7 + k * 13) % 23) as f64 * 0.21,
                patches: if k == 0 { vec![p] } else { vec![p, partner] },
            });
        }
    }
    lb::LbProblem { n_pes, background: vec![0.1; n_pes], patch_home, computes }
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("lb");
    g.sample_size(20);
    for (n_pes, n_patches, cpp) in [(64, 245, 8), (1024, 245, 24)] {
        let problem = synthetic_problem(n_pes, n_patches, cpp);
        let n = problem.computes.len();
        g.bench_with_input(
            BenchmarkId::new("greedy", format!("{n}obj_{n_pes}pe")),
            &problem,
            |b, p| b.iter(|| black_box(lb::greedy(p, lb::GreedyParams::default()))),
        );
        let start = lb::round_robin(&problem);
        g.bench_with_input(
            BenchmarkId::new("refine", format!("{n}obj_{n_pes}pe")),
            &problem,
            |b, p| b.iter(|| black_box(lb::refine(p, &start, lb::RefineParams::default()).1)),
        );
    }
    g.finish();
}

fn bench_rcb(c: &mut Criterion) {
    // Patch centres of a 7x7x5 grid, split over 64 parts.
    let mut points = Vec::new();
    for z in 0..5 {
        for y in 0..7 {
            for x in 0..7 {
                points.push([x as f64, y as f64, z as f64]);
            }
        }
    }
    let weights: Vec<f64> = (0..points.len()).map(|i| 1.0 + (i % 5) as f64).collect();
    c.bench_function("lb/rcb_245_to_64", |b| {
        b.iter(|| black_box(lb::rcb(&points, &weights, 64)))
    });
}

criterion_group!(benches, bench_strategies, bench_rcb);
criterion_main!(benches);
