//! Ablations of the design choices DESIGN.md calls out:
//!
//! * load-balancing strategy (none / random / round-robin / proxy-unaware
//!   greedy / greedy / greedy+refine);
//! * grainsize splitting of face pairs;
//! * multicast optimization;
//! * §4.2.2 migratable bonded computes.
//!
//! All on ApoA-I / ASCI-Red at 256 and 1024 PEs.
use charmrt::MulticastMode;
use namd_core::prelude::*;

fn bench_with(
    cfg: SimConfig,
    sys: &mdcore::system::System,
    decomp: &Decomposition,
) -> (f64, usize) {
    let mut engine = Engine::with_decomposition(sys.clone(), decomp.clone(), cfg);
    let t = engine.run_benchmark().final_time_per_step();
    (t, engine.proxy_count())
}

fn main() {
    let sys = molgen::apoa1_like().build();
    let machine = machine::presets::asci_red();
    let base_decomp = build_decomposition(&sys, &SimConfig::new(1, machine));

    for pes in [256usize, 1024, 2048] {
        println!("=== ApoA-I on ASCI-Red, {pes} PEs ===");
        println!("--- load-balancing strategy (everything else optimized) ---");
        for (name, lb) in [
            ("static (no LB)", LbStrategy::None),
            ("random", LbStrategy::Random),
            ("round-robin", LbStrategy::RoundRobin),
            ("greedy, proxy-unaware", LbStrategy::GreedyNoProxy),
            ("greedy (paper)", LbStrategy::Greedy),
            ("greedy + refine (paper)", LbStrategy::GreedyRefine),
        ] {
            let cfg = SimConfig::builder(pes, machine)
                .lb(lb)
                .steps_per_phase(3)
                .build()
                .unwrap();
            let (t, proxies) = bench_with(cfg, &sys, &base_decomp);
            println!("{name:<26} {:>9.2} ms/step   {proxies:>6} proxies", t * 1e3);
        }

        println!("--- single-feature ablations (greedy+refine LB) ---");
        type Tweak = Box<dyn Fn(&mut SimConfig)>;
        let features: [(&str, Tweak); 4] = [
            ("all optimizations on", Box::new(|_c: &mut SimConfig| {})),
            ("no face-pair splitting", Box::new(|c| c.split_face_pairs = false)),
            ("naive multicast", Box::new(|c| c.multicast = MulticastMode::Naive)),
            ("non-migratable bonded", Box::new(|c| c.migratable_bonded = false)),
        ];
        for (name, tweak) in features {
            // Tweaks mutate the built config directly: the struct-literal
            // path stays supported, and the engine re-validates per phase.
            let mut cfg = SimConfig::builder(pes, machine).steps_per_phase(3).build().unwrap();
            tweak(&mut cfg);
            // Splitting and bonded migratability change the decomposition.
            let decomp = build_decomposition(&sys, &cfg);
            let (t, _) = bench_with(cfg, &sys, &decomp);
            println!("{name:<26} {:>9.2} ms/step", t * 1e3);
        }
        println!();
    }
}
