//! ckpt_overhead — measures the throughput cost of periodic in-phase
//! checkpointing on the apoa1-small system.
//!
//! ```text
//! ckpt_overhead [--steps N] [--warmup N] [--scale F] [--threads N]
//!               [--max-overhead F] [--out PATH] [--check]
//! ```
//!
//! Drives `ParallelSim` (threads backend) for `--steps` velocity-Verlet
//! updates at three checkpoint intervals — off, 100, and 10 (the CLI
//! default) — all with the same migration cadence so the phase structure
//! is identical and the measured difference is checkpoint encode + write
//! cost alone. Writes a machine-readable JSON report (`--out`, default
//! `BENCH_ckpt.json`): steps/sec per interval, snapshot count and size,
//! and the relative overhead of each checkpointed run vs the baseline.
//!
//! `--check` exits non-zero if the default-interval (10) overhead exceeds
//! `--max-overhead` (default 0.05, i.e. 5%) — the CI perf-smoke guard.
//!
//! No serde in the workspace: the JSON is assembled by hand.

use mdcore::prelude::*;
use namd_core::prelude::*;
use std::time::Instant;

/// Migration cadence shared by every run. Checkpoint intervals must be
/// multiples of it (`ParallelSim::set_checkpointing` asserts this), and
/// holding it fixed keeps the trajectories comparable across intervals.
const MIGRATE_EVERY: usize = 10;

/// Checkpoint intervals measured; 0 = checkpointing off (the baseline).
/// 10 is the CLI's default `checkpointInterval`.
const INTERVALS: [usize; 3] = [0, 100, 10];

struct Opts {
    steps: usize,
    warmup: usize,
    scale: f64,
    threads: usize,
    max_overhead: f64,
    out: String,
    check: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        steps: 200,
        warmup: 10,
        scale: 0.04,
        threads: 2,
        max_overhead: 0.05,
        out: "BENCH_ckpt.json".to_string(),
        check: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--steps" => o.steps = val("--steps")?.parse().map_err(|e| format!("--steps: {e}"))?,
            "--warmup" => {
                o.warmup = val("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?
            }
            "--scale" => o.scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--threads" => {
                o.threads = val("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--max-overhead" => {
                o.max_overhead = val("--max-overhead")?
                    .parse()
                    .map_err(|e| format!("--max-overhead: {e}"))?
            }
            "--out" => o.out = val("--out")?,
            "--check" => o.check = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if o.steps == 0 {
        return Err("--steps must be at least 1".into());
    }
    if o.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if !(o.max_overhead >= 0.0 && o.max_overhead.is_finite()) {
        return Err(format!(
            "--max-overhead must be non-negative and finite, got {}",
            o.max_overhead
        ));
    }
    Ok(o)
}

/// Same construction as `hotpath`: apoa1-like, protein restrained,
/// thermalized, pre-stepped so the restraints are strained.
fn apoa1_small(scale: f64) -> System {
    let bench = molgen::apoa1_like().scaled(scale);
    let mut sys = molgen::SystemBuilder::new(bench.spec().clone()).build_restrained();
    sys.thermalize(300.0, 11);
    let mut sim = Simulator::new(&sys, 1.0);
    for _ in 0..5 {
        sim.step(&mut sys);
    }
    sys
}

struct RunResult {
    interval: usize,
    wall_s: f64,
    steps: usize,
    snapshots: usize,
    snapshot_bytes: u64,
}

impl RunResult {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.wall_s
    }
}

fn run_interval(sys: &System, o: &Opts, interval: usize) -> RunResult {
    let dir = std::env::temp_dir().join(format!(
        "namd-ckpt-overhead-{}-{interval}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut sim = ParallelSim::new(sys.clone(), o.threads, 1.0).expect("sim");
    sim.migrate_every = MIGRATE_EVERY;
    if o.warmup > 0 {
        sim.run(o.warmup);
    }
    if interval > 0 {
        sim.set_checkpointing(&dir, interval);
    }
    let t0 = Instant::now();
    sim.run(o.steps);
    let wall_s = t0.elapsed().as_secs_f64();
    let (mut snapshots, mut snapshot_bytes) = (0usize, 0u64);
    if interval > 0 {
        let ckdir = ckpt::CheckpointDir::create(&dir).expect("checkpoint dir");
        for path in ckdir.list().expect("list checkpoints") {
            snapshots += 1;
            snapshot_bytes += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    RunResult { interval, wall_s, steps: o.steps, snapshots, snapshot_bytes }
}

fn json_run(r: &RunResult, overhead: f64) -> String {
    format!(
        "    {{\"checkpoint_interval\": {}, \"wall_s\": {:.6}, \"steps\": {}, \
         \"steps_per_sec\": {:.3}, \"snapshots_written\": {}, \
         \"snapshot_bytes\": {}, \"overhead_vs_off\": {:.6}}}",
        r.interval,
        r.wall_s,
        r.steps,
        r.steps_per_sec(),
        r.snapshots,
        r.snapshot_bytes,
        overhead,
    )
}

fn main() {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ckpt_overhead: {e}");
            eprintln!(
                "usage: ckpt_overhead [--steps N] [--warmup N] [--scale F] [--threads N] \
                 [--max-overhead F] [--out PATH] [--check]"
            );
            std::process::exit(2);
        }
    };
    let sys = apoa1_small(o.scale);
    eprintln!(
        "ckpt_overhead: apoa1-small scale {} ({} atoms), {} threads, \
         migrate every {} steps, {} warmup + {} timed steps",
        o.scale,
        sys.n_atoms(),
        o.threads,
        MIGRATE_EVERY,
        o.warmup,
        o.steps
    );

    let runs: Vec<RunResult> =
        INTERVALS.iter().map(|&i| run_interval(&sys, &o, i)).collect();
    let baseline = runs.iter().find(|r| r.interval == 0).unwrap().steps_per_sec();
    let overhead = |r: &RunResult| -> f64 {
        if r.interval == 0 { 0.0 } else { baseline / r.steps_per_sec() - 1.0 }
    };
    for r in &runs {
        let label =
            if r.interval == 0 { "off".to_string() } else { r.interval.to_string() };
        eprintln!(
            "  interval {:>4}  {:>7.2} steps/s  {:>3} snapshot(s), {:>8} B  \
             overhead {:>6.2}%",
            label,
            r.steps_per_sec(),
            r.snapshots,
            r.snapshot_bytes,
            overhead(r) * 100.0,
        );
    }
    let default_overhead =
        runs.iter().find(|r| r.interval == 10).map(overhead).unwrap();

    let json = format!(
        "{{\n  \"benchmark\": \"ckpt_overhead\",\n  \"system\": \"apoa1-small\",\n  \
         \"scale\": {},\n  \"atoms\": {},\n  \"threads\": {},\n  \
         \"migrate_every\": {},\n  \"warmup_steps\": {},\n  \"timed_steps\": {},\n  \
         \"runs\": [\n{}\n  ],\n  \"default_interval\": 10,\n  \
         \"default_interval_overhead\": {:.6},\n  \"max_overhead\": {}\n}}\n",
        o.scale,
        sys.n_atoms(),
        o.threads,
        MIGRATE_EVERY,
        o.warmup,
        o.steps,
        runs.iter().map(|r| json_run(r, overhead(r))).collect::<Vec<_>>().join(",\n"),
        default_overhead,
        o.max_overhead,
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("ckpt_overhead: cannot write {}: {e}", o.out);
        std::process::exit(1);
    }
    eprintln!("ckpt_overhead: wrote {}", o.out);

    if o.check {
        if default_overhead > o.max_overhead {
            eprintln!(
                "ckpt_overhead: CHECK FAILED — default-interval overhead {:.2}% \
                 exceeds the {:.2}% budget",
                default_overhead * 100.0,
                o.max_overhead * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("ckpt_overhead: check passed ({:.2}% overhead)", default_overhead * 100.0);
    }
}
