//! Figures 1 and 2: the grainsize distribution of non-bonded compute tasks
//! before and after splitting the face-adjacent pair computes (§4.2.1).
//!
//! Each bar counts the task instances of that grainsize during an average
//! timestep on 1024 PEs of the ASCI-Red model, exactly like the figures.
use namd_bench::paper::{FIG1_MAX_GRAINSIZE_S, FIG2_MAX_GRAINSIZE_S};
use namd_core::prelude::*;

fn histogram(split: bool, sys: &mdcore::system::System) {
    let machine = machine::presets::asci_red();
    let cfg = SimConfig::builder(1024, machine)
        .grainsize(160, split, 112)
        .tracing(true)
        .steps_per_phase(3)
        .build()
        .unwrap();
    let mut engine = Engine::new(sys.clone(), cfg);
    let run = engine.run_benchmark();
    let last = run.phases.last().unwrap();
    let trace = last.trace.as_ref().expect("tracing enabled");
    let h = trace.grainsize_histogram(
        &last.entries.nonbonded(),
        0.0,
        last.total_time,
        0.002, // 2 ms bins, like the figures
        last.n_steps as f64,
    );
    let (title, paper_max) = if split {
        ("Figure 2 — grainsize after splitting face pairs", FIG2_MAX_GRAINSIZE_S)
    } else {
        ("Figure 1 — grainsize before splitting face pairs", FIG1_MAX_GRAINSIZE_S)
    };
    println!("{title}");
    println!("(paper: largest task ≈ {:.0} ms)", paper_max * 1e3);
    print!("{}", h.render(60));
    println!(
        "largest measured task: {:.1} ms over {} tasks/step\n",
        h.max_duration() * 1e3,
        h.total()
    );
}

fn main() {
    let sys = molgen::apoa1_like().build();
    histogram(false, &sys);
    histogram(true, &sys);
}
