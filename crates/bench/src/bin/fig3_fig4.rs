//! Figures 3 and 4: Projections-style timelines of two timesteps on ApoA-I /
//! 1024 PEs, before (naive) and after (optimized) the multicast optimization
//! of §4.2.3. Integration appears as 'I'; shortening it shrinks the idle
//! gaps on the processors that own no patches.
use charmrt::MulticastMode;
use namd_core::prelude::*;

fn timeline(mode: MulticastMode, sys: &mdcore::system::System) {
    let machine = machine::presets::asci_red();
    let cfg = SimConfig::builder(1024, machine)
        .multicast(mode)
        .tracing(true)
        .steps_per_phase(4)
        .build()
        .unwrap();
    let mut engine = Engine::new(sys.clone(), cfg);
    let run = engine.run_benchmark();
    let last = run.phases.last().unwrap();
    let trace = last.trace.as_ref().expect("tracing enabled");
    let e = last.entries;

    let label = match mode {
        MulticastMode::Naive => "Figure 3 — before optimizing the multicast (naive)",
        MulticastMode::Optimized => "Figure 4 — after optimizing the multicast",
    };
    println!("{label}");
    println!("glyphs: I=integrate N=nonbonded b=bonded p=proxy/receive .=idle");
    // Two steps out of the middle of the phase.
    let t0 = last.total_time * 0.25;
    let t1 = t0 + 2.0 * last.time_per_step;
    // A band of PEs around the patch-count boundary: some with patches
    // (integration bars) and some without (idle gaps).
    let pes: Vec<usize> = (240..252).collect();
    let classify = move |entry: charmrt::EntryId| -> char {
        if entry == e.integrate {
            'I'
        } else if entry == e.exec_self || entry == e.exec_pair {
            'N'
        } else if entry == e.exec_bonded || entry == e.exec_bonded_inter {
            'b'
        } else {
            'p'
        }
    };
    print!("{}", trace.render_timeline(&pes, t0, t1, 100, classify));

    // The quantitative claim: average Integrate entry duration.
    let integ_ms =
        last.stats.entry_time[e.integrate.idx()] / last.stats.entry_count[e.integrate.idx()] as f64;
    println!(
        "avg Integrate entry: {:.3} ms   step time: {:.2} ms\n",
        integ_ms * 1e3,
        last.time_per_step * 1e3
    );
}

fn main() {
    let sys = molgen::apoa1_like().build();
    timeline(MulticastMode::Naive, &sys);
    timeline(MulticastMode::Optimized, &sys);
}
