//! hotpath — perf harness for the engine's non-bonded hot path: pair-list
//! caching + zero-realloc patch arrays, cached vs uncached, on both
//! runtime backends.
//!
//! ```text
//! hotpath [--steps N] [--warmup N] [--scale F] [--margin F] [--pes N]
//!         [--out PATH] [--check]
//! ```
//!
//! Runs the apoa1-small system (`apoa1_like().scaled(0.04)` by default,
//! restrained + thermalized like the equivalence tests) for `--steps`
//! velocity-Verlet updates per configuration — {threads, des} × {cached,
//! uncached} — and writes a machine-readable JSON report (`--out`, default
//! `BENCH_hotpath.json`): steps/sec, ns/pair, rebuild rate, cache hit rate,
//! plus cached-vs-uncached energy/position equivalence at the tolerances of
//! `tests/backend_equivalence.rs`.
//!
//! `--check` exits non-zero if the cached threads run is slower than the
//! uncached one, or if equivalence fails — the CI perf-smoke guard.
//!
//! No serde in the workspace: the JSON is assembled by hand.

use mdcore::prelude::*;
use namd_core::prelude::*;
use std::time::Instant;

struct Opts {
    steps: usize,
    warmup: usize,
    scale: f64,
    margin: f64,
    pes: usize,
    out: String,
    check: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        steps: 60,
        warmup: 5,
        scale: 0.04,
        margin: 2.5,
        pes: 2,
        out: "BENCH_hotpath.json".to_string(),
        check: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--steps" => o.steps = val("--steps")?.parse().map_err(|e| format!("--steps: {e}"))?,
            "--warmup" => {
                o.warmup = val("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?
            }
            "--scale" => o.scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--margin" => {
                o.margin = val("--margin")?.parse().map_err(|e| format!("--margin: {e}"))?
            }
            "--pes" => o.pes = val("--pes")?.parse().map_err(|e| format!("--pes: {e}"))?,
            "--out" => o.out = val("--out")?,
            "--check" => o.check = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if o.steps == 0 {
        return Err("--steps must be at least 1".into());
    }
    if !(o.margin >= 0.0 && o.margin.is_finite()) {
        return Err(format!("--margin must be non-negative and finite, got {}", o.margin));
    }
    Ok(o)
}

/// The equivalence tests' system: apoa1-like, protein restrained,
/// thermalized, pre-stepped so the restraints are strained.
fn apoa1_small(scale: f64) -> System {
    let bench = molgen::apoa1_like().scaled(scale);
    let mut sys = molgen::SystemBuilder::new(bench.spec().clone()).build_restrained();
    sys.thermalize(300.0, 11);
    let mut sim = Simulator::new(&sys, 1.0);
    for _ in 0..5 {
        sim.step(&mut sys);
    }
    sys
}

fn config(backend: Backend, pes: usize, cached: bool, margin: f64) -> SimConfig {
    SimConfig::builder(pes, machine::presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .backend(backend)
        .dt_fs(1.0)
        .pairlist(cached, margin)
        .build()
        .expect("hotpath config is validated by parse_opts")
}

struct RunResult {
    backend: &'static str,
    cached: bool,
    wall_s: f64,
    steps: usize,
    /// Force evaluations performed (phase bootstraps included).
    evaluations: usize,
    /// Within-cutoff pairs summed over all force evaluations.
    total_pairs: u64,
    stats: PairlistStats,
    potential_first: f64,
    potential_last: f64,
}

impl RunResult {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.wall_s
    }
    fn ns_per_pair(&self) -> f64 {
        self.wall_s * 1e9 / self.total_pairs.max(1) as f64
    }
}

/// Time `steps` updates the way `ParallelSim::advance` runs them: phases of
/// `c + 1` evaluations (bootstrap + `c` updates), atom migration every
/// `migrate_every` completed updates. Per-phase `PhaseResult::metrics`
/// pair-list deltas are summed *before* migration resets the cache, so the
/// counters are exact even across migrations.
fn run_backend(
    sys: &System,
    backend: Backend,
    name: &'static str,
    o: &Opts,
    cached: bool,
) -> RunResult {
    let migrate_every = 20usize;
    let mut engine = Engine::new(sys.clone(), config(backend, o.pes, cached, o.margin));
    if o.warmup > 0 {
        engine.run_phase(o.warmup + 1);
    }
    let mut stats = PairlistStats::default();
    let mut total_pairs = 0u64;
    let mut evaluations = 0usize;
    let mut potential_first = f64::NAN;
    let mut potential_last = f64::NAN;
    let mut remaining = o.steps;
    let mut since_migrate = o.warmup % migrate_every;
    let t0 = Instant::now();
    while remaining > 0 {
        let c = remaining.min((migrate_every - since_migrate).max(1));
        let r = engine.run_phase(c + 1);
        stats.builds += r.metrics.pairlist.builds;
        stats.hits += r.metrics.pairlist.hits;
        for e in &r.energies {
            total_pairs += e.pairs;
        }
        evaluations += r.energies.len();
        if potential_first.is_nan() {
            potential_first = r.energies[0].potential();
        }
        potential_last = r.energies[c].potential();
        remaining -= c;
        since_migrate += c;
        if since_migrate >= migrate_every && remaining > 0 {
            engine.migrate_atoms();
            since_migrate = 0;
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    RunResult {
        backend: name,
        cached,
        wall_s,
        steps: o.steps,
        evaluations,
        total_pairs,
        stats,
        potential_first,
        potential_last,
    }
}

struct Equivalence {
    backend: &'static str,
    potential_rel_diff: f64,
    max_position_diff: f64,
    ok: bool,
}

/// Cached vs uncached from the *same* initial configuration (fresh engines,
/// no warmup): step-0 potential within 1e-8 relative, positions after a
/// short phase within 1e-6 Å — the `tests/backend_equivalence.rs`
/// tolerances.
fn equivalence(sys: &System, backend: Backend, name: &'static str, o: &Opts) -> Equivalence {
    let run = |cached: bool| -> (f64, Vec<Vec3>) {
        let mut engine = Engine::new(sys.clone(), config(backend, o.pes, cached, o.margin));
        let r = engine.run_phase(7);
        let pos = engine.shared.state.read().unwrap().system.positions.clone();
        (r.energies[0].potential(), pos)
    };
    let (p_cached, x_cached) = run(true);
    let (p_plain, x_plain) = run(false);
    let potential_rel_diff = (p_cached - p_plain).abs() / p_plain.abs().max(1.0);
    let max_position_diff = x_cached
        .iter()
        .zip(&x_plain)
        .map(|(a, b)| (*a - *b).norm())
        .fold(0.0f64, f64::max);
    Equivalence {
        backend: name,
        potential_rel_diff,
        max_position_diff,
        ok: potential_rel_diff < 1e-8 && max_position_diff < 1e-6,
    }
}

fn json_run(r: &RunResult) -> String {
    format!(
        "    {{\"backend\": \"{}\", \"pairlist_cache\": {}, \"wall_s\": {:.6}, \
         \"steps\": {}, \"evaluations\": {}, \"steps_per_sec\": {:.3}, \
         \"ns_per_pair\": {:.2}, \"total_pairs\": {}, \"list_builds\": {}, \
         \"list_hits\": {}, \"rebuild_rate\": {:.4}, \"hit_rate\": {:.4}, \
         \"potential_first\": {:.6}, \"potential_last\": {:.6}}}",
        r.backend,
        r.cached,
        r.wall_s,
        r.steps,
        r.evaluations,
        r.steps_per_sec(),
        r.ns_per_pair(),
        r.total_pairs,
        r.stats.builds,
        r.stats.hits,
        r.stats.rebuild_rate(),
        r.stats.hit_rate(),
        r.potential_first,
        r.potential_last,
    )
}

fn json_equivalence(e: &Equivalence) -> String {
    format!(
        "    {{\"backend\": \"{}\", \"potential_rel_diff\": {:.3e}, \
         \"max_position_diff\": {:.3e}, \"ok\": {}}}",
        e.backend, e.potential_rel_diff, e.max_position_diff, e.ok
    )
}

fn main() {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hotpath: {e}");
            eprintln!(
                "usage: hotpath [--steps N] [--warmup N] [--scale F] [--margin F] \
                 [--pes N] [--out PATH] [--check]"
            );
            std::process::exit(2);
        }
    };
    let sys = apoa1_small(o.scale);
    eprintln!(
        "hotpath: apoa1-small scale {} ({} atoms), cutoff {} Å, margin {} Å, \
         {} PEs, {} warmup + {} timed steps",
        o.scale,
        sys.n_atoms(),
        sys.forcefield.cutoff,
        o.margin,
        o.pes,
        o.warmup,
        o.steps
    );

    let mut runs = Vec::new();
    for (backend, name) in [(Backend::Threads, "threads"), (Backend::Des, "des")] {
        for cached in [true, false] {
            let r = run_backend(&sys, backend, name, &o, cached);
            eprintln!(
                "  {:<7} cached={:<5}  {:>7.2} steps/s  {:>7.2} ns/pair  \
                 rebuild rate {:.3}  hit rate {:.3}",
                r.backend,
                r.cached,
                r.steps_per_sec(),
                r.ns_per_pair(),
                r.stats.rebuild_rate(),
                r.stats.hit_rate(),
            );
            runs.push(r);
        }
    }
    let speedup = |name: &str| -> f64 {
        let cached = runs.iter().find(|r| r.backend == name && r.cached).unwrap();
        let plain = runs.iter().find(|r| r.backend == name && !r.cached).unwrap();
        cached.steps_per_sec() / plain.steps_per_sec()
    };
    let threads_speedup = speedup("threads");
    let des_speedup = speedup("des");
    eprintln!("  cached/uncached steps/s: threads {threads_speedup:.2}x, des {des_speedup:.2}x");

    let equiv: Vec<Equivalence> = [(Backend::Threads, "threads"), (Backend::Des, "des")]
        .into_iter()
        .map(|(b, n)| equivalence(&sys, b, n, &o))
        .collect();
    for e in &equiv {
        eprintln!(
            "  {:<7} cached-vs-uncached equivalence: potential rel diff {:.2e}, \
             max position diff {:.2e} Å -> {}",
            e.backend,
            e.potential_rel_diff,
            e.max_position_diff,
            if e.ok { "ok" } else { "FAIL" }
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"hotpath\",\n  \"system\": \"apoa1-small\",\n  \
         \"scale\": {},\n  \"atoms\": {},\n  \"cutoff\": {},\n  \
         \"pairlist_margin\": {},\n  \"pes\": {},\n  \"warmup_steps\": {},\n  \
         \"timed_steps\": {},\n  \"runs\": [\n{}\n  ],\n  \
         \"speedup_threads_cached_vs_uncached\": {:.3},\n  \
         \"speedup_des_cached_vs_uncached\": {:.3},\n  \"equivalence\": [\n{}\n  ]\n}}\n",
        o.scale,
        sys.n_atoms(),
        sys.forcefield.cutoff,
        o.margin,
        o.pes,
        o.warmup,
        o.steps,
        runs.iter().map(json_run).collect::<Vec<_>>().join(",\n"),
        threads_speedup,
        des_speedup,
        equiv.iter().map(json_equivalence).collect::<Vec<_>>().join(",\n"),
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("hotpath: cannot write {}: {e}", o.out);
        std::process::exit(1);
    }
    eprintln!("hotpath: wrote {}", o.out);

    if o.check {
        let mut failed = false;
        if threads_speedup < 1.0 {
            eprintln!(
                "hotpath: CHECK FAILED — cached threads run is slower than uncached \
                 ({threads_speedup:.2}x)"
            );
            failed = true;
        }
        for e in &equiv {
            if !e.ok {
                eprintln!(
                    "hotpath: CHECK FAILED — {} cached run diverges from uncached",
                    e.backend
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("hotpath: check passed");
    }
}
