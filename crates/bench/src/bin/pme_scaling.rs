//! Extension experiment: the scalability contribution of the grid-based
//! full-electrostatics component (PME), which the paper defers to ongoing
//! work \[14, 16\] while noting it "consume\[s\] a small fraction of the total
//! computation time, particularly when combined with multiple timestepping".
//!
//! ApoA-I on the ASCI-Red model: cutoff-only vs PME every step vs PME with
//! 4-step multiple timestepping, across processor counts. The FFT
//! all-to-all transpose is what erodes scalability at high PE counts.
use namd_core::prelude::*;

fn main() {
    let bench = molgen::apoa1_like();
    let sys = bench.build();
    let machine = machine::presets::asci_red();
    let decomp = build_decomposition(&sys, &SimConfig::new(1, machine));

    println!("ApoA-I + full electrostatics (modeled PME, 128^3 mesh, 64 slabs)");
    println!("PEs      cutoff-only     PME every step    PME + MTS(4)   (s/step)");
    let variants: [Option<PmeSimConfig>; 3] = [
        None,
        Some(PmeSimConfig { every: 1, ..Default::default() }),
        Some(PmeSimConfig { every: 4, ..Default::default() }),
    ];
    for pes in [1usize, 64, 256, 1024, 2048] {
        let mut row = format!("{pes:>4}");
        for pme in variants {
            let cfg = SimConfig::builder(pes, machine)
                .pme(pme)
                .steps_per_phase(4)
                .build()
                .unwrap();
            let mut engine = Engine::with_decomposition(sys.clone(), decomp.clone(), cfg);
            let t = engine.run_benchmark().final_time_per_step();
            row.push_str(&format!("  {t:>14.4}"));
        }
        println!("{row}");
    }
    println!("\nspeedup relative to each variant's own 1-PE time:");
    let mut t1 = [0.0f64; 3];
    println!("PEs      cutoff-only     PME every step    PME + MTS(4)");
    for pes in [1usize, 64, 256, 1024, 2048] {
        let mut row = format!("{pes:>4}");
        for (v, pme) in variants.iter().enumerate() {
            let cfg = SimConfig::builder(pes, machine)
                .pme(pme.clone())
                .steps_per_phase(4)
                .build()
                .unwrap();
            let mut engine = Engine::with_decomposition(sys.clone(), decomp.clone(), cfg);
            let t = engine.run_benchmark().final_time_per_step();
            if pes == 1 {
                t1[v] = t;
            }
            row.push_str(&format!("  {:>14.1}", t1[v] / t));
        }
        println!("{row}");
    }
}
