//! proc_bench — compares the `proc` (one OS process per PE, Unix-socket
//! wire) and `threads` (one OS thread per PE, shared memory) backends on
//! the apoa1-small system.
//!
//! ```text
//! proc_bench [--steps N] [--warmup N] [--scale F] [--pes N] [--out PATH]
//! ```
//!
//! Drives `Engine::run_phase` directly on both backends for the same
//! number of velocity-Verlet updates and reports throughput (steps/sec)
//! and wire traffic (packed payload bytes per step, from the per-entry
//! `SummaryStats` counters). On the threads backend the same packed bytes
//! cross the in-process queues, so the bytes/step column is directly
//! comparable; the steps/sec ratio is the cost of real process isolation
//! (fork + socket framing + CRC + kernel round-trips).
//!
//! Non-blocking: the bench never fails CI on a slow ratio — it only
//! writes the machine-readable report (`--out`, default `BENCH_proc.json`).
//! No serde in the workspace: the JSON is assembled by hand.

use mdcore::prelude::*;
use namd_core::prelude::*;
use std::time::Instant;

struct Opts {
    steps: usize,
    warmup: usize,
    scale: f64,
    pes: usize,
    out: String,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        steps: 60,
        warmup: 5,
        scale: 0.04,
        pes: 3,
        out: "BENCH_proc.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--steps" => o.steps = val("--steps")?.parse().map_err(|e| format!("--steps: {e}"))?,
            "--warmup" => {
                o.warmup = val("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?
            }
            "--scale" => o.scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--pes" => o.pes = val("--pes")?.parse().map_err(|e| format!("--pes: {e}"))?,
            "--out" => o.out = val("--out")?,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if o.steps == 0 {
        return Err("--steps must be at least 1".into());
    }
    if o.pes == 0 {
        return Err("--pes must be at least 1".into());
    }
    Ok(o)
}

/// Same construction as `hotpath`/`ckpt_overhead`: apoa1-like, protein
/// restrained, thermalized, pre-stepped so the restraints are strained.
fn apoa1_small(scale: f64) -> System {
    let bench = molgen::apoa1_like().scaled(scale);
    let mut sys = molgen::SystemBuilder::new(bench.spec().clone()).build_restrained();
    sys.thermalize(300.0, 11);
    let mut sim = Simulator::new(&sys, 1.0);
    for _ in 0..5 {
        sim.step(&mut sys);
    }
    sys
}

struct RunResult {
    backend: &'static str,
    wall_s: f64,
    steps: usize,
    wire_msgs: u64,
    wire_bytes: u64,
    final_energy: f64,
}

impl RunResult {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.wall_s
    }
    fn bytes_per_step(&self) -> f64 {
        self.wire_bytes as f64 / self.steps as f64
    }
}

fn run_backend(sys: &System, o: &Opts, backend: Backend, label: &'static str) -> RunResult {
    let cfg = SimConfig::builder(o.pes, machine::presets::generic_cluster())
        .force_mode(ForceMode::Real)
        .backend(backend)
        .build()
        .expect("valid bench config");
    let mut engine = Engine::new(sys.clone(), cfg);
    if o.warmup > 0 {
        engine.run_phase(o.warmup);
    }
    let t0 = Instant::now();
    let r = engine.run_phase(o.steps);
    let wall_s = t0.elapsed().as_secs_f64();
    RunResult {
        backend: label,
        wall_s,
        steps: o.steps,
        wire_msgs: r.stats.entry_wire_msgs.iter().sum(),
        wire_bytes: r.stats.entry_wire_bytes.iter().sum(),
        final_energy: r.energies.last().map(|e| e.total()).unwrap_or(f64::NAN),
    }
}

fn json_run(r: &RunResult) -> String {
    format!(
        "    {{\"backend\": \"{}\", \"wall_s\": {:.6}, \"steps\": {}, \
         \"steps_per_sec\": {:.3}, \"wire_msgs\": {}, \"wire_bytes\": {}, \
         \"wire_bytes_per_step\": {:.1}, \"final_energy\": {:.6}}}",
        r.backend,
        r.wall_s,
        r.steps,
        r.steps_per_sec(),
        r.wire_msgs,
        r.wire_bytes,
        r.bytes_per_step(),
        r.final_energy,
    )
}

fn main() {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("proc_bench: {e}");
            eprintln!(
                "usage: proc_bench [--steps N] [--warmup N] [--scale F] [--pes N] [--out PATH]"
            );
            std::process::exit(2);
        }
    };
    let sys = apoa1_small(o.scale);
    eprintln!(
        "proc_bench: apoa1-small scale {} ({} atoms), {} PEs, {} warmup + {} timed steps",
        o.scale,
        sys.n_atoms(),
        o.pes,
        o.warmup,
        o.steps
    );

    let threads = run_backend(&sys, &o, Backend::Threads, "threads");
    let proc = run_backend(&sys, &o, Backend::Proc, "proc");
    for r in [&threads, &proc] {
        eprintln!(
            "  {:>7}  {:>7.2} steps/s  {:>9.0} wire B/step  ({} msgs)",
            r.backend,
            r.steps_per_sec(),
            r.bytes_per_step(),
            r.wire_msgs,
        );
    }
    let slowdown = threads.steps_per_sec() / proc.steps_per_sec();
    eprintln!("  proc is {slowdown:.2}x slower than threads (process isolation cost)");

    let json = format!(
        "{{\n  \"benchmark\": \"proc_bench\",\n  \"system\": \"apoa1-small\",\n  \
         \"scale\": {},\n  \"atoms\": {},\n  \"pes\": {},\n  \
         \"warmup_steps\": {},\n  \"timed_steps\": {},\n  \"runs\": [\n{}\n  ],\n  \
         \"proc_slowdown_vs_threads\": {:.4}\n}}\n",
        o.scale,
        sys.n_atoms(),
        o.pes,
        o.warmup,
        o.steps,
        [&threads, &proc].iter().map(|r| json_run(r)).collect::<Vec<_>>().join(",\n"),
        slowdown,
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("proc_bench: cannot write {}: {e}", o.out);
        std::process::exit(1);
    }
    eprintln!("proc_bench: wrote {}", o.out);
}
