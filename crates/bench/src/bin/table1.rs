//! Table 1: the performance audit for ApoA-I on 1024 processors.
//!
//! The paper's snapshot was taken at an intermediate optimization stage
//! (step time ≈ 86 ms): grainsize splitting and migratable bonded computes
//! were already in, but the multicast was still naive. We reproduce exactly
//! that configuration, then print the fully-optimized audit for contrast.
use charmrt::MulticastMode;
use namd_bench::paper::{TABLE1_ACTUAL_MS, TABLE1_IDEAL_MS};
use namd_core::prelude::*;

fn run(multicast: MulticastMode, label: &str, sys: &mdcore::system::System) {
    let machine = machine::presets::asci_red();
    let cfg = SimConfig::builder(1024, machine)
        .multicast(multicast)
        .steps_per_phase(3)
        .build()
        .unwrap();
    let mut engine = Engine::new(sys.clone(), cfg);
    let bench = engine.run_benchmark();
    let last = bench.phases.last().unwrap();
    let a = audit(engine.decomp(), &machine, last, 1024);
    println!("--- {label} (measured after greedy+refine load balancing) ---");
    print!("{}", a.render());
    println!();
}

fn main() {
    let sys = molgen::apoa1_like().build();
    println!("Paper Table 1 (ms/step/PE):");
    println!(
        "Ideal : total {:.2}  nonbond {:.2}  bonds {:.2}  integ {:.2}",
        TABLE1_IDEAL_MS[0], TABLE1_IDEAL_MS[1], TABLE1_IDEAL_MS[2], TABLE1_IDEAL_MS[3]
    );
    println!(
        "Actual: total {:.2}  nonbond {:.2}  bonds {:.2}  integ {:.2}  ovh {:.2}  imbal {:.2}  idle {:.2}  recv {:.2}",
        TABLE1_ACTUAL_MS[0], TABLE1_ACTUAL_MS[1], TABLE1_ACTUAL_MS[2], TABLE1_ACTUAL_MS[3],
        TABLE1_ACTUAL_MS[4], TABLE1_ACTUAL_MS[5], TABLE1_ACTUAL_MS[6], TABLE1_ACTUAL_MS[7]
    );
    println!();
    run(MulticastMode::Naive, "Audit at the paper's intermediate stage (naive multicast)", &sys);
    run(MulticastMode::Optimized, "Audit with the optimized multicast", &sys);
}
