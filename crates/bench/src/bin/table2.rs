//! Table 2: ApoA-I (92,224 atoms) on the ASCI-Red machine model.
use namd_bench::paper::TABLE2;
use namd_bench::speedup::{render_table, run_speedup_table};

fn main() {
    let pes = [1, 4, 8, 32, 64, 128, 256, 512, 768, 1024, 1536, 2048];
    let rows = run_speedup_table(
        &molgen::apoa1_like(),
        machine::presets::asci_red(),
        &pes,
        (1, 1.0),
        3,
    );
    print!(
        "{}",
        render_table("Table 2 — ApoA-I simulation (92,224 atoms) on ASCI-Red", &rows, TABLE2)
    );
}
