//! Table 3: BC1 (206,617 atoms) on the ASCI-Red machine model. Speedup is
//! scaled relative to 2 processors = 2.0, like the paper (the simulation
//! was too large to run on one node).
use namd_bench::paper::TABLE3;
use namd_bench::speedup::{render_table, run_speedup_table};

fn main() {
    let pes = [2, 4, 8, 32, 64, 128, 256, 512, 768, 1024, 1536, 2048];
    let rows = run_speedup_table(
        &molgen::bc1_like(),
        machine::presets::asci_red(),
        &pes,
        (2, 2.0),
        3,
    );
    print!(
        "{}",
        render_table(
            "Table 3 — BC1 simulation (206,617 atoms) on ASCI-Red (speedup rel. 2 PEs = 2.0)",
            &rows,
            TABLE3
        )
    );
}
