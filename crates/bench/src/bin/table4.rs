//! Table 4: bR (3,762 atoms) on the ASCI-Red machine model — the small
//! system that stops scaling around 64 processors.
use namd_bench::paper::TABLE4;
use namd_bench::speedup::{render_table, run_speedup_table};

fn main() {
    let pes = [1, 2, 4, 8, 32, 64, 128, 256];
    let rows = run_speedup_table(
        &molgen::br_like(),
        machine::presets::asci_red(),
        &pes,
        (1, 1.0),
        3,
    );
    print!(
        "{}",
        render_table("Table 4 — bR simulation (3,762 atoms) on ASCI-Red", &rows, TABLE4)
    );
}
