//! Table 5: ApoA-I on the Cray T3E-900 model. Speedup is scaled relative to
//! 4 processors = 4.0, like the paper.
use namd_bench::paper::TABLE5;
use namd_bench::speedup::{render_table, run_speedup_table};

fn main() {
    let pes = [4, 8, 16, 32, 64, 128, 256];
    let rows = run_speedup_table(
        &molgen::apoa1_like(),
        machine::presets::t3e_900(),
        &pes,
        (4, 4.0),
        3,
    );
    print!(
        "{}",
        render_table(
            "Table 5 — ApoA-I simulation on the PSC T3E-900 (speedup rel. 4 PEs = 4.0)",
            &rows,
            TABLE5
        )
    );
}
