//! Table 6: ApoA-I on the SGI Origin 2000 model (250 MHz processors).
use namd_bench::paper::TABLE6;
use namd_bench::speedup::{render_table, run_speedup_table};

fn main() {
    let pes = [1, 2, 4, 8, 16, 32, 64, 80];
    let rows = run_speedup_table(
        &molgen::apoa1_like(),
        machine::presets::origin2000(),
        &pes,
        (1, 1.0),
        3,
    );
    print!(
        "{}",
        render_table("Table 6 — ApoA-I simulation on the NCSA Origin 2000", &rows, TABLE6)
    );
}
