//! # namd-bench — the harness that regenerates every table and figure of
//! the SC 2000 NAMD paper.
//!
//! Each binary in `src/bin/` reproduces one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — performance audit, ApoA-I on 1024 PEs |
//! | `table2` | Table 2 — ApoA-I speedups on ASCI-Red |
//! | `table3` | Table 3 — BC1 speedups on ASCI-Red |
//! | `table4` | Table 4 — bR speedups on ASCI-Red |
//! | `table5` | Table 5 — ApoA-I speedups on T3E-900 |
//! | `table6` | Table 6 — ApoA-I speedups on Origin 2000 |
//! | `fig1_fig2` | Figures 1-2 — grainsize histograms before/after splitting |
//! | `fig3_fig4` | Figures 3-4 — timelines before/after multicast optimization |
//! | `ablation` | design-choice ablations (LB strategy, proxy-awareness, ...) |
//!
//! Criterion benches in `benches/` cover the kernels, the decomposition
//! build, the LB strategies, and real-multicore stepping.

// Clippy: indexed loops are kept where they mirror the mathematical
// notation of the kernels and the per-axis geometry code, and chare/builder
// constructors take positional wiring arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![allow(clippy::field_reassign_with_default)]
pub mod paper;
pub mod speedup;

pub use speedup::{run_speedup_table, SpeedupRow};
