//! Reference numbers from the paper's tables, printed beside our measured
//! values so every harness run is a self-contained paper-vs-measured
//! comparison.

/// One row of a paper speedup table.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    pub pes: usize,
    pub sec_per_step: f64,
    pub speedup: f64,
    /// GFLOPS where the paper reports it.
    pub gflops: Option<f64>,
}

const fn row(pes: usize, sec_per_step: f64, speedup: f64, gflops: f64) -> PaperRow {
    PaperRow { pes, sec_per_step, speedup, gflops: Some(gflops) }
}

/// Table 2: ApoA-I (92,224 atoms) on ASCI-Red.
pub const TABLE2: &[PaperRow] = &[
    row(1, 57.1, 1.0, 0.0480),
    row(4, 14.7, 3.9, 0.186),
    row(8, 7.31, 7.8, 0.375),
    row(32, 1.9, 30.1, 1.44),
    row(64, 0.964, 59.2, 2.84),
    row(128, 0.493, 116.0, 5.56),
    row(256, 0.259, 221.0, 10.6),
    row(512, 0.152, 376.0, 18.0),
    row(768, 0.102, 560.0, 26.9),
    row(1024, 0.0822, 695.0, 33.3),
    row(1536, 0.0645, 885.0, 42.5),
    row(2048, 0.0573, 997.0, 47.8),
];

/// Table 3: BC1 (206,617 atoms) on ASCI-Red; scaling relative to 2 PEs = 2.0.
pub const TABLE3: &[PaperRow] = &[
    row(2, 74.2, 2.0, 0.0933),
    row(4, 37.8, 3.9, 0.183),
    row(8, 19.3, 7.7, 0.359),
    row(32, 4.91, 30.3, 1.41),
    row(64, 2.49, 59.6, 2.78),
    row(128, 1.26, 118.0, 5.49),
    row(256, 0.653, 227.0, 10.6),
    row(512, 0.352, 422.0, 19.7),
    row(768, 0.246, 603.0, 28.1),
    row(1024, 0.192, 773.0, 36.1),
    row(1536, 0.141, 1052.0, 49.1),
    row(2048, 0.119, 1252.0, 58.4),
];

/// Table 4: bR (3,762 atoms) on ASCI-Red (no GFLOPS column in the paper).
pub const TABLE4: &[PaperRow] = &[
    PaperRow { pes: 1, sec_per_step: 1.47, speedup: 1.0, gflops: None },
    PaperRow { pes: 2, sec_per_step: 0.759, speedup: 1.94, gflops: None },
    PaperRow { pes: 4, sec_per_step: 0.384, speedup: 3.83, gflops: None },
    PaperRow { pes: 8, sec_per_step: 0.196, speedup: 7.50, gflops: None },
    PaperRow { pes: 32, sec_per_step: 0.071, speedup: 20.7, gflops: None },
    PaperRow { pes: 64, sec_per_step: 0.0358, speedup: 41.1, gflops: None },
    PaperRow { pes: 128, sec_per_step: 0.0299, speedup: 49.2, gflops: None },
    PaperRow { pes: 256, sec_per_step: 0.0300, speedup: 49.0, gflops: None },
];

/// Table 5: ApoA-I on the PSC T3E-900; scaling relative to 4 PEs = 4.0.
pub const TABLE5: &[PaperRow] = &[
    row(4, 10.7, 4.0, 0.256),
    row(8, 5.28, 8.1, 0.519),
    row(16, 2.64, 16.2, 1.04),
    row(32, 1.35, 31.7, 2.03),
    row(64, 0.688, 62.2, 3.98),
    row(128, 0.356, 120.0, 7.69),
    row(256, 0.185, 231.0, 14.8),
];

/// Table 6: ApoA-I on the NCSA Origin 2000.
pub const TABLE6: &[PaperRow] = &[
    row(1, 24.4, 1.0, 0.112),
    row(2, 12.5, 1.95, 0.219),
    row(4, 6.30, 3.89, 0.435),
    row(8, 3.18, 7.68, 0.862),
    row(16, 1.60, 15.2, 1.71),
    row(32, 0.860, 28.4, 3.19),
    row(64, 0.411, 59.4, 6.67),
    row(80, 0.349, 70.0, 7.86),
];

/// Table 1: the performance audit for ApoA-I on 1024 ASCI-Red PEs at an
/// intermediate optimization stage (ms/step): total, non-bonded, bonds,
/// integration, overhead, imbalance, idle, receives.
pub const TABLE1_IDEAL_MS: [f64; 8] = [57.04, 52.44, 3.16, 1.44, 0.0, 0.0, 0.0, 0.0];
/// Table 1, "Actual" row.
pub const TABLE1_ACTUAL_MS: [f64; 8] = [86.0, 49.77, 3.9, 3.05, 7.97, 10.45, 9.25, 1.61];

/// Figure 1: largest task grainsize before face-pair splitting, seconds.
pub const FIG1_MAX_GRAINSIZE_S: f64 = 0.042;
/// Figure 2 shows the post-splitting maximum near 15 ms.
pub const FIG2_MAX_GRAINSIZE_S: f64 = 0.015;

/// Find the paper row for a PE count.
pub fn lookup(table: &[PaperRow], pes: usize) -> Option<&PaperRow> {
    table.iter().find(|r| r.pes == pes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_monotone_in_pes() {
        for t in [TABLE2, TABLE3, TABLE4, TABLE5, TABLE6] {
            for w in t.windows(2) {
                assert!(w[0].pes < w[1].pes);
                assert!(w[0].sec_per_step >= w[1].sec_per_step * 0.95);
            }
        }
    }

    #[test]
    fn audit_rows_sum() {
        let sum: f64 = TABLE1_ACTUAL_MS[1..].iter().sum();
        assert!((sum - TABLE1_ACTUAL_MS[0]).abs() < 0.1, "paper audit sums to {sum}");
    }

    #[test]
    fn lookup_finds_rows() {
        assert!(lookup(TABLE2, 1024).is_some());
        assert!(lookup(TABLE2, 3).is_none());
    }
}
