//! Shared speedup-sweep harness used by the `table2`..`table6` binaries.

use crate::paper::{lookup, PaperRow};
use machine::MachineModel;
use molgen::BenchmarkSystem;
use namd_core::prelude::*;

/// One measured row of a speedup table.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupRow {
    pub pes: usize,
    pub sec_per_step: f64,
    pub speedup: f64,
    pub gflops: f64,
}

/// Run the benchmark system across `pe_counts` on `machine`, computing
/// speedups relative to `baseline` (e.g. `(2, 2.0)` for Table 3's
/// "2 processors = 2.0" convention: the measured time at PE count `2` maps
/// to speedup `2.0`).
pub fn run_speedup_table(
    bench: &BenchmarkSystem,
    machine: MachineModel,
    pe_counts: &[usize],
    baseline: (usize, f64),
    steps_per_phase: usize,
) -> Vec<SpeedupRow> {
    let system = bench.build();
    let cfg0 = SimConfig::new(1, machine);
    let decomp = build_decomposition(&system, &cfg0);

    let mut rows = Vec::new();
    for &pes in pe_counts {
        let cfg = SimConfig::builder(pes, machine)
            .steps_per_phase(steps_per_phase)
            .build()
            .expect("valid sweep config");
        let mut engine = Engine::with_decomposition(system.clone(), decomp.clone(), cfg);
        let run = engine.run_benchmark();
        let t = run.final_time_per_step();
        rows.push(SpeedupRow {
            pes,
            sec_per_step: t,
            speedup: 0.0, // filled below once the baseline row is known
            gflops: engine.gflops(t),
        });
    }
    let base_time = rows
        .iter()
        .find(|r| r.pes == baseline.0)
        .unwrap_or_else(|| panic!("baseline PE count {} not in sweep", baseline.0))
        .sec_per_step;
    for r in &mut rows {
        r.speedup = baseline.1 * base_time / r.sec_per_step;
    }
    rows
}

/// Render a measured-vs-paper table in the paper's column format.
pub fn render_table(title: &str, rows: &[SpeedupRow], paper: &[PaperRow]) -> String {
    let mut s = format!("{title}\n");
    s.push_str(
        "Procs |   s/step  speedup   GFLOPS |  paper s/step  paper speedup  paper GFLOPS\n",
    );
    s.push_str(
        "------+-----------------------------+--------------------------------------------\n",
    );
    for r in rows {
        let p = lookup(paper, r.pes);
        let (ps, psp, pg) = match p {
            Some(p) => (
                format!("{:>13.4}", p.sec_per_step),
                format!("{:>14.1}", p.speedup),
                p.gflops.map_or("             -".into(), |g| format!("{g:>14.3}")),
            ),
            None => ("            -".into(), "             -".into(), "             -".into()),
        };
        s.push_str(&format!(
            "{:>5} | {:>9.4} {:>8.1} {:>8.3} |{ps}{psp}{pg}\n",
            r.pes, r.sec_per_step, r.speedup, r.gflops
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::TABLE4;

    #[test]
    fn br_sweep_reproduces_table4_shape() {
        // The full bR system is small enough to sweep in a test: it must
        // scale to ~32 PEs and flatten by 128-256 (Table 4's signature).
        let rows = run_speedup_table(
            &molgen::br_like(),
            machine::presets::asci_red(),
            &[1, 8, 32, 128, 256],
            (1, 1.0),
            2,
        );
        let by_pe = |p: usize| rows.iter().find(|r| r.pes == p).unwrap();
        assert!(by_pe(8).speedup > 5.0, "8 PEs: {}", by_pe(8).speedup);
        assert!(by_pe(32).speedup > 14.0, "32 PEs: {}", by_pe(32).speedup);
        // Saturation: 256 PEs barely better (or worse) than 128.
        let s128 = by_pe(128).speedup;
        let s256 = by_pe(256).speedup;
        assert!(
            (s256 - s128).abs() < 0.5 * s128,
            "no saturation: 128 -> {s128}, 256 -> {s256}"
        );
        // And far below linear, like the paper's 49x.
        assert!(s256 < 120.0, "bR should saturate well below 256x: {s256}");
    }

    #[test]
    fn render_includes_paper_columns() {
        let rows = vec![SpeedupRow { pes: 1, sec_per_step: 1.5, speedup: 1.0, gflops: 0.05 }];
        let s = render_table("t", &rows, TABLE4);
        assert!(s.contains("1.47")); // paper value for 1 PE
    }
}
