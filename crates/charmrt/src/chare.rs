//! The data-driven object (chare) abstraction and the execution context
//! handed to entry methods.

use crate::msg::{ObjId, Payload, Pe, Priority};
use crate::wire::WireError;

/// A data-driven object. All computation happens inside [`Chare::receive`],
/// triggered by message delivery — the runtime's per-PE scheduler picks the
/// next available message and invokes the indicated method on the indicated
/// object, exactly as described in §2.2 of the paper.
///
/// `Send` because the real-threads backend owns each chare on one worker
/// thread at a time (and migration moves it between workers); there is no
/// concurrent sharing of a chare, only transfer of ownership.
pub trait Chare: Send {
    /// Handle one message. `entry` selects the method, `payload` carries the
    /// packed wire bytes (unpack with the message type's
    /// [`WireCodec`](crate::wire::WireCodec)); use `ctx` to send messages,
    /// declare modeled work, and query the runtime.
    fn receive(&mut self, entry: crate::msg::EntryId, payload: Payload, ctx: &mut Ctx);

    /// Pack the state this chare mutated during the run that the *parent*
    /// address space needs back when PEs are separate OS processes (the
    /// `proc` backend). Default: nothing — most chares are pure protocol
    /// actors whose results leave via messages or the checkpoint directory.
    fn harvest_state(&self) -> Payload {
        Vec::new()
    }

    /// Apply bytes produced by [`Chare::harvest_state`] in a worker process
    /// to this (parent-resident) instance. Must accept exactly what
    /// `harvest_state` produces. Default: reject non-empty payloads, so a
    /// chare that harvests but forgets to merge fails loudly.
    fn merge_state(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(WireError("chare harvested state but implements no merge_state".into()))
        }
    }
}

/// How a coordinate-style multicast is costed (§4.2.3 of the paper):
/// the naive path packs and allocates per destination; the optimized path
/// packs once and reuses the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulticastMode {
    /// One user-level allocation+packing per destination message.
    Naive,
    /// A single user-level allocation+packing shared by all destinations.
    Optimized,
}

/// One outgoing message recorded during an entry-method execution.
#[derive(Debug)]
pub(crate) struct OutMsg {
    pub to: ObjId,
    pub entry: crate::msg::EntryId,
    pub bytes: usize,
    pub priority: Priority,
    pub payload: Payload,
    /// Sender-side CPU cost category: position in the multicast, if any.
    pub pack: PackCost,
}

/// Sender-side packing cost classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PackCost {
    /// Standalone message: full pack + send overhead.
    Single,
    /// First message of an optimized multicast: pays the one packing.
    McFirst,
    /// Subsequent message of an optimized multicast: send overhead only.
    McRest,
}

/// Execution context for one entry-method invocation. Collects the work the
/// method performs and the messages it sends; the engine converts both into
/// virtual time using the machine model after the handler returns.
pub struct Ctx {
    pub(crate) sends: Vec<OutMsg>,
    pub(crate) work: f64,
    pub(crate) stop: bool,
    /// True when PEs are separate OS processes (the `proc` backend): a
    /// handler cannot see state written on other PEs, so chares that rely
    /// on shared memory for cross-PE data (e.g. proxies reading home-patch
    /// coordinates) must instead apply the payload bytes they received.
    pub(crate) distributed: bool,
    pe: Pe,
    now: f64,
    this: ObjId,
    n_pes: usize,
}

impl Ctx {
    pub(crate) fn new(pe: Pe, now: f64, this: ObjId, n_pes: usize) -> Self {
        Ctx { sends: Vec::new(), work: 0.0, stop: false, distributed: false, pe, now, this, n_pes }
    }

    /// Send a message of `bytes` bytes to another object. The payload is
    /// delivered to the destination's `receive`; `bytes` (not the Rust size
    /// of the payload) drives the communication cost model.
    pub fn send(
        &mut self,
        to: ObjId,
        entry: crate::msg::EntryId,
        bytes: usize,
        priority: Priority,
        payload: Payload,
    ) {
        self.sends.push(OutMsg { to, entry, bytes, priority, payload, pack: PackCost::Single });
    }

    /// Send a signal-only message (no payload bytes beyond a header).
    pub fn signal(&mut self, to: ObjId, entry: crate::msg::EntryId, priority: Priority) {
        self.send(to, entry, 32, priority, Vec::new());
    }

    /// Multicast identical data to several destinations: one packed
    /// payload, cloned per destination (the last destination takes the
    /// original, so an N-way multicast costs N−1 clones). With
    /// [`MulticastMode::Naive`], every destination pays the full
    /// user-level allocation and packing cost in the *cost model*; with
    /// [`MulticastMode::Optimized`] the packing is costed once — §4.2.3's
    /// optimization, which the one-buffer API now realizes for real.
    pub fn multicast(
        &mut self,
        dests: &[ObjId],
        entry: crate::msg::EntryId,
        bytes: usize,
        priority: Priority,
        mode: MulticastMode,
        payload: Payload,
    ) {
        let mut payload = Some(payload);
        let last = dests.len().wrapping_sub(1);
        for (k, &to) in dests.iter().enumerate() {
            let pack = match mode {
                MulticastMode::Naive => PackCost::Single,
                MulticastMode::Optimized if k == 0 => PackCost::McFirst,
                MulticastMode::Optimized => PackCost::McRest,
            };
            let body = if k == last {
                payload.take().unwrap_or_default()
            } else {
                payload.clone().unwrap_or_default()
            };
            self.sends.push(OutMsg { to, entry, bytes, priority, payload: body, pack });
        }
    }

    /// Declare that this entry method performed `units` abstract work units
    /// (≈ non-bonded pair interactions). The engine charges
    /// `machine.task_time(units)` of virtual CPU time.
    pub fn add_work(&mut self, units: f64) {
        debug_assert!(units >= 0.0 && units.is_finite());
        self.work += units;
    }

    /// Current virtual time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The PE this handler is executing on.
    pub fn my_pe(&self) -> Pe {
        self.pe
    }

    /// The object currently executing.
    pub fn this(&self) -> ObjId {
        self.this
    }

    /// Number of PEs in the run.
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// True when PEs are separate OS processes (the `proc` backend): no
    /// shared address space, so cross-PE data exists only in the payload
    /// bytes this handler received.
    pub fn distributed(&self) -> bool {
        self.distributed
    }

    /// Request that the engine stop after this handler (end of simulation).
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{EntryId, PRIO_NORMAL};

    #[test]
    fn ctx_records_sends_and_work() {
        let mut ctx = Ctx::new(3, 1.5, ObjId(9), 8);
        assert_eq!(ctx.my_pe(), 3);
        assert_eq!(ctx.now(), 1.5);
        assert_eq!(ctx.this(), ObjId(9));
        assert_eq!(ctx.n_pes(), 8);
        ctx.add_work(10.0);
        ctx.add_work(5.0);
        assert_eq!(ctx.work, 15.0);
        ctx.signal(ObjId(1), EntryId(0), PRIO_NORMAL);
        assert_eq!(ctx.sends.len(), 1);
        assert_eq!(ctx.sends[0].pack, PackCost::Single);
    }

    #[test]
    fn optimized_multicast_marks_first_message() {
        let mut ctx = Ctx::new(0, 0.0, ObjId(0), 4);
        let dests = [ObjId(1), ObjId(2), ObjId(3)];
        ctx.multicast(
            &dests,
            EntryId(1),
            1000,
            PRIO_NORMAL,
            MulticastMode::Optimized,
            vec![7, 8, 9],
        );
        let packs: Vec<_> = ctx.sends.iter().map(|s| s.pack).collect();
        assert_eq!(packs, vec![PackCost::McFirst, PackCost::McRest, PackCost::McRest]);
        // Every destination receives the same bytes.
        assert!(ctx.sends.iter().all(|s| s.payload == vec![7, 8, 9]));
    }

    #[test]
    fn naive_multicast_packs_every_message() {
        let mut ctx = Ctx::new(0, 0.0, ObjId(0), 4);
        let dests = [ObjId(1), ObjId(2)];
        ctx.multicast(&dests, EntryId(1), 1000, PRIO_NORMAL, MulticastMode::Naive, Vec::new());
        assert!(ctx.sends.iter().all(|s| s.pack == PackCost::Single));
    }
}
