//! Spanning-tree collectives: broadcast and reduction over a set of objects.
//!
//! The optimized multicast of §4.2.3 is one member of a family of Charm++
//! communication utilities ("a simple utility was then added to the Charm++
//! runtime, as it is useful for other programs as well"). This module adds
//! the other two workhorses: a k-ary spanning-tree *broadcast* (fan-out
//! without a serial sender bottleneck) and a *reduction* tree (fan-in
//! without a single hot receiver). At 2048 PEs a flat fan-in of N messages
//! serializes N receive overheads on one processor; a k-ary tree turns that
//! into `log_k N` rounds.
//!
//! The helpers are pure index arithmetic over a contiguous block of object
//! ids; [`TreeNode`] is a ready-made chare implementing both collectives for
//! signal-style (payload-free) use, as the engine's completion barrier.

use crate::chare::{Chare, Ctx};
use crate::msg::{EntryId, ObjId, Payload, Priority};

/// Children of tree node `i` (0-rooted, k-ary, heap layout): nodes
/// `k·i + 1 ..= k·i + k` that exist.
pub fn tree_children(i: usize, n: usize, arity: usize) -> Vec<usize> {
    assert!(arity >= 1);
    (1..=arity)
        .map(|j| arity * i + j)
        .filter(|&c| c < n)
        .collect()
}

/// Parent of tree node `i`, or `None` for the root.
pub fn tree_parent(i: usize, arity: usize) -> Option<usize> {
    assert!(arity >= 1);
    if i == 0 {
        None
    } else {
        Some((i - 1) / arity)
    }
}

/// Tree depth (number of message hops from root to the deepest leaf).
pub fn tree_depth(n: usize, arity: usize) -> usize {
    let mut depth = 0;
    let mut i = n.saturating_sub(1);
    while let Some(p) = tree_parent(i, arity) {
        depth += 1;
        i = p;
    }
    depth
}

/// A spanning-tree collective node for signal-style reductions/broadcasts.
///
/// Reduction: leaves (and interior nodes, once their own `contribute` call
/// and all children's messages arrive) forward one message to their parent;
/// the root signals `target` when the whole tree has contributed.
/// Broadcast: on receiving the broadcast entry, forward to all children.
pub struct TreeNode {
    /// This node's index within the tree block.
    pub index: usize,
    /// Total tree size.
    pub n: usize,
    /// Tree arity.
    pub arity: usize,
    /// ObjId of tree node 0 (the block is contiguous: node i = base + i).
    pub base: ObjId,
    /// Entry for upward (reduction) messages.
    pub reduce_entry: EntryId,
    /// Entry for downward (broadcast) messages.
    pub broadcast_entry: EntryId,
    /// Where the root reports a completed reduction: (object, entry).
    pub target: (ObjId, EntryId),
    /// Contributions received this round (own + children).
    received: usize,
    /// Message priority used for tree traffic.
    pub priority: Priority,
}

impl TreeNode {
    /// Contributions this node waits for per reduction round: its own plus
    /// one per child.
    fn expected(&self) -> usize {
        1 + tree_children(self.index, self.n, self.arity).len()
    }

    fn node_id(&self, i: usize) -> ObjId {
        ObjId(self.base.0 + i as u32)
    }
}

impl Chare for TreeNode {
    fn receive(&mut self, entry: EntryId, _payload: Payload, ctx: &mut Ctx) {
        if entry == self.reduce_entry {
            self.received += 1;
            debug_assert!(self.received <= self.expected());
            if self.received == self.expected() {
                self.received = 0;
                match tree_parent(self.index, self.arity) {
                    Some(p) => {
                        ctx.send(
                            self.node_id(p),
                            self.reduce_entry,
                            32,
                            self.priority,
                            Vec::new(),
                        );
                    }
                    None => {
                        let (obj, e) = self.target;
                        ctx.send(obj, e, 32, self.priority, Vec::new());
                    }
                }
            }
        } else if entry == self.broadcast_entry {
            for c in tree_children(self.index, self.n, self.arity) {
                ctx.send(
                    self.node_id(c),
                    self.broadcast_entry,
                    32,
                    self.priority,
                    Vec::new(),
                );
            }
        } else {
            unreachable!("TreeNode got unexpected entry {entry:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::Des;
    use crate::msg::PRIO_NORMAL;
    use machine::presets;
    use std::sync::{Arc, Mutex};

    #[test]
    fn tree_indexing_is_consistent() {
        for n in [1usize, 2, 7, 64, 245] {
            for arity in [2usize, 4, 8] {
                let mut child_count = 0;
                for i in 0..n {
                    for c in tree_children(i, n, arity) {
                        assert_eq!(tree_parent(c, arity), Some(i));
                        child_count += 1;
                    }
                }
                // Every node except the root is someone's child, exactly once.
                assert_eq!(child_count, n - 1, "n={n} arity={arity}");
            }
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        assert_eq!(tree_depth(1, 4), 0);
        assert!(tree_depth(2048, 4) <= 6);
        assert!(tree_depth(2048, 2) <= 11);
    }

    /// A sink chare that records when it is signalled.
    struct Flag(Arc<Mutex<u32>>);
    impl Chare for Flag {
        fn receive(&mut self, _e: EntryId, _p: Payload, _ctx: &mut Ctx) {
            *self.0.lock().unwrap() += 1;
        }
    }

    fn build_tree(
        des: &mut Des,
        n: usize,
        arity: usize,
        n_pes: usize,
    ) -> (ObjId, EntryId, EntryId, Arc<Mutex<u32>>) {
        let reduce = des.register_entry("TreeReduce");
        let broadcast = des.register_entry("TreeBroadcast");
        let done = des.register_entry("TreeDone");
        let hits = Arc::new(Mutex::new(0));
        let sink = des.register(Box::new(Flag(hits.clone())), 0, false);
        let base = ObjId(sink.0 + 1);
        for i in 0..n {
            let node = TreeNode {
                index: i,
                n,
                arity,
                base,
                reduce_entry: reduce,
                broadcast_entry: broadcast,
                target: (sink, done),
                received: 0,
                priority: PRIO_NORMAL,
            };
            let id = des.register(Box::new(node), i % n_pes, false);
            assert_eq!(id.0, base.0 + i as u32);
        }
        (base, reduce, broadcast, hits)
    }

    #[test]
    fn reduction_fires_target_exactly_once() {
        let mut des = Des::new(16, presets::asci_red());
        let n = 245;
        let (base, reduce, _b, hits) = build_tree(&mut des, n, 4, 16);
        // Every node contributes once (self-contribution message).
        for i in 0..n {
            des.inject(ObjId(base.0 + i as u32), reduce, 32, PRIO_NORMAL, Vec::new());
        }
        des.run();
        assert_eq!(*hits.lock().unwrap(), 1);
    }

    #[test]
    fn reduction_is_reusable_across_rounds() {
        let mut des = Des::new(8, presets::ideal());
        let n = 30;
        let (base, reduce, _b, hits) = build_tree(&mut des, n, 3, 8);
        for _round in 0..3 {
            for i in 0..n {
                des.inject(ObjId(base.0 + i as u32), reduce, 32, PRIO_NORMAL, Vec::new());
            }
            des.run();
        }
        assert_eq!(*hits.lock().unwrap(), 3);
    }

    #[test]
    fn broadcast_reaches_every_node() {
        // Broadcast to the tree, then have each node's handler count via
        // the sink — here we verify by message counts in the stats instead.
        let mut des = Des::new(8, presets::ideal());
        let n = 64;
        let (base, _r, broadcast, _hits) = build_tree(&mut des, n, 4, 8);
        des.inject(base, broadcast, 32, PRIO_NORMAL, Vec::new());
        des.run();
        // Every non-root node received exactly one broadcast message:
        // n-1 sends plus the injected one = n executions of the entry.
        assert_eq!(des.stats.entry_count[broadcast.idx()], n as u64);
    }

    #[test]
    fn tree_reduction_beats_flat_fan_in_at_scale() {
        // Time a flat 2048-way fan-in against a 4-ary tree on the ASCI-Red
        // model: the tree's makespan must be much shorter.
        let machine = presets::asci_red();
        let n = 2048;

        // Flat: all n signals arrive at a single sink, whose receive
        // overheads serialize on one processor.
        let mut flat = Des::new(n, machine);
        let e = flat.register_entry("sig");
        let hits = Arc::new(Mutex::new(0));
        let sink = flat.register(Box::new(Flag(hits.clone())), 0, false);
        for _ in 0..n {
            flat.inject(sink, e, 32, PRIO_NORMAL, Vec::new());
        }
        let t_flat = flat.run();

        // Tree: one node per PE.
        let mut tree = Des::new(n, machine);
        let (base, reduce, _b, thits) = build_tree(&mut tree, n, 4, n);
        for i in 0..n {
            tree.inject(ObjId(base.0 + i as u32), reduce, 32, PRIO_NORMAL, Vec::new());
        }
        let t_tree = tree.run();
        assert_eq!(*thits.lock().unwrap(), 1);
        assert!(
            t_tree < t_flat / 5.0,
            "tree {t_tree} should be ≫ faster than flat {t_flat}"
        );
    }
}
