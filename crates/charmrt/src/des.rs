//! The discrete-event execution engine: data-driven objects on `P` virtual
//! processors, each with a prioritized scheduler queue, costed by a
//! [`machine::MachineModel`].
//!
//! The engine reproduces the Converse/Charm++ execution model of §2.2:
//! messages are delivered to per-PE prioritized queues; an idle PE's
//! scheduler repeatedly picks the best available message and invokes the
//! indicated entry method on the indicated object. Handler CPU time is
//! `recv_overhead + task_time(declared work) + send costs`, and every
//! execution is attributed to the summary profile, the optional full trace,
//! and the load-balancing database.
//!
//! Determinism: event ordering is (time, sequence number); all queues break
//! ties by insertion order, so a run is a pure function of its inputs.

use crate::chare::{Chare, Ctx, PackCost};
use crate::fault::{DeadLetter, FaultAction, FaultPlan, FaultState};
use crate::ldb::LdbDatabase;
use crate::msg::{EntryId, ObjId, Payload, Pe, Priority};
use crate::sched::SchedulePolicy;
use crate::stats::SummaryStats;
use crate::trace::{Trace, TraceEvent};
use machine::MachineModel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A queued (delivered but not yet executed) message on a PE.
struct QMsg {
    /// Dequeue-order key from the [`SchedulePolicy`] (smaller runs first);
    /// `(priority, seq)` under the default FIFO policy.
    key: (i64, u64),
    seq: u64,
    /// Sending object (recorded on the LDB communication graph).
    #[allow(dead_code)]
    from: ObjId,
    to: ObjId,
    entry: EntryId,
    bytes: usize,
    payload: Payload,
    /// Payload CRC stamped at send time (only when a corrupt fault rule is
    /// installed); delivery verifies it and rejects damaged payloads.
    crc: Option<u64>,
    /// Length of the dependency chain (sum of handler costs, virtual
    /// seconds) that produced this message — the critical-path accumulator.
    path: f64,
}

impl PartialEq for QMsg {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for QMsg {}
impl PartialOrd for QMsg {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QMsg {
    // BinaryHeap is a max-heap; we want the *smallest* (key, seq) out
    // first, so invert the comparison.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

/// A future event in virtual time.
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

enum EventKind {
    /// A message reaches a PE's queue.
    Deliver { pe: Pe, msg: QMsg },
    /// A PE's scheduler wakes up to run the next queued message.
    Execute { pe: Pe },
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Min-heap by (time, seq) through inversion.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .partial_cmp(&self.time)
            .expect("NaN event time")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct PeState {
    /// Virtual time until which the PE is executing a handler.
    busy_until: f64,
    /// Prioritized scheduler queue.
    queue: BinaryHeap<QMsg>,
    /// Whether an Execute event is already pending for this PE.
    execute_scheduled: bool,
}

/// The engine. See the module docs for the execution model.
///
/// ```
/// use charmrt::{Chare, Ctx, Des, EntryId, Payload, PRIO_NORMAL};
///
/// // A chare that does 1000 work units when poked.
/// struct Worker;
/// impl Chare for Worker {
///     fn receive(&mut self, _e: EntryId, _p: Payload, ctx: &mut Ctx) {
///         ctx.add_work(1000.0);
///     }
/// }
///
/// let mut des = Des::new(4, machine::presets::asci_red());
/// let poke = des.register_entry("poke");
/// let w = des.register(Box::new(Worker), 2, true);
/// des.inject(w, poke, 0, PRIO_NORMAL, Vec::new());
/// let makespan = des.run();
/// assert!(makespan > 0.0);
/// assert_eq!(des.stats.entry_count[poke.idx()], 1);
/// ```
pub struct Des {
    machine: MachineModel,
    n_pes: usize,
    now: f64,
    seq: u64,
    events: BinaryHeap<Event>,
    pes: Vec<PeState>,
    objects: Vec<Option<Box<dyn Chare>>>,
    obj_pe: Vec<Pe>,
    stopped: bool,
    /// Latest handler completion time (the run's makespan).
    last_activity: f64,
    /// Per-PE speed factor (1.0 = nominal). Models heterogeneous or
    /// externally-loaded processors (workstation clusters, ref [3] of the
    /// paper): all CPU time on PE p is divided by `pe_speed[p]`.
    pe_speed: Vec<f64>,
    /// Dequeue-order perturbation (default: native FIFO).
    policy: SchedulePolicy,
    /// Installed fault plan, if any.
    fault: Option<FaultState>,
    /// Messages the fault plan dropped, awaiting possible redelivery.
    dead_letters: Vec<DeadLetter>,
    /// PEs felled by kill faults: dead machines whose deliveries are
    /// discarded and whose scheduler never wakes again.
    dead: Vec<bool>,
    /// First PE killed during this run, if any.
    crashed: Option<Pe>,
    /// Summary-profile instrumentation (always on; it is cheap).
    pub stats: SummaryStats,
    /// Full event trace (opt-in via [`Des::set_tracing`]).
    pub trace: Trace,
    tracing: bool,
    /// Load-balancing measurement database.
    pub ldb: LdbDatabase,
}

impl Des {
    /// Create an engine with `n_pes` virtual processors costed by `machine`.
    pub fn new(n_pes: usize, machine: MachineModel) -> Self {
        assert!(n_pes > 0, "need at least one PE");
        Des {
            machine,
            n_pes,
            now: 0.0,
            seq: 0,
            events: BinaryHeap::new(),
            pes: (0..n_pes)
                .map(|_| PeState {
                    busy_until: 0.0,
                    queue: BinaryHeap::new(),
                    execute_scheduled: false,
                })
                .collect(),
            objects: Vec::new(),
            obj_pe: Vec::new(),
            stopped: false,
            last_activity: 0.0,
            pe_speed: vec![1.0; n_pes],
            policy: SchedulePolicy::default(),
            fault: None,
            dead_letters: Vec::new(),
            dead: vec![false; n_pes],
            crashed: None,
            stats: SummaryStats::new(n_pes),
            trace: Trace::default(),
            tracing: false,
            ldb: LdbDatabase::new(n_pes),
        }
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// Current virtual time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The PE felled by a kill fault during the last run, if any. Such a
    /// run cannot be repaired by redelivery — recover from a checkpoint.
    pub fn crashed(&self) -> Option<Pe> {
        self.crashed
    }

    /// The machine model in use.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Register an entry method by name; returns its id.
    pub fn register_entry(&mut self, name: &str) -> EntryId {
        self.stats.register_entry(name)
    }

    /// Register an object on a PE. `migratable` controls whether its load is
    /// measured per-object (true) or folded into the PE's background load.
    pub fn register(&mut self, obj: Box<dyn Chare>, pe: Pe, migratable: bool) -> ObjId {
        assert!(pe < self.n_pes, "PE {pe} out of range ({} PEs)", self.n_pes);
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Some(obj));
        self.obj_pe.push(pe);
        self.ldb.on_register(migratable);
        id
    }

    /// The PE an object currently lives on.
    pub fn pe_of(&self, obj: ObjId) -> Pe {
        self.obj_pe[obj.idx()]
    }

    /// Current object→PE placement (indexed by `ObjId`).
    pub fn placement(&self) -> &[Pe] {
        &self.obj_pe
    }

    /// Move an object to another PE (between steps; the engine does not
    /// model migration message cost — the paper likewise excludes the load
    /// balancer's own cost from per-step times).
    pub fn migrate(&mut self, obj: ObjId, pe: Pe) {
        assert!(pe < self.n_pes);
        self.obj_pe[obj.idx()] = pe;
    }

    /// Immutable access to a registered object (e.g. to read results out
    /// after the run). Panics if the object is currently executing.
    pub fn object(&self, obj: ObjId) -> &dyn Chare {
        self.objects[obj.idx()].as_deref().expect("object is executing")
    }

    /// Mutable access to a registered object between runs.
    pub fn object_mut(&mut self, obj: ObjId) -> &mut dyn Chare {
        self.objects[obj.idx()].as_deref_mut().expect("object is executing")
    }

    /// Enable or disable full event tracing.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Set per-PE speed factors (1.0 = nominal; 0.5 = half speed, e.g. a
    /// workstation shared with an interactive user). All handler CPU time
    /// on a PE is divided by its factor, so the measurement-based load
    /// balancer *observes* the slowdown and can adapt to it.
    pub fn set_pe_speeds(&mut self, speeds: Vec<f64>) {
        assert_eq!(speeds.len(), self.n_pes);
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        self.pe_speed = speeds;
    }

    /// Set the schedule-perturbation policy for subsequent deliveries.
    /// Install before injecting: already-queued messages keep their keys.
    pub fn set_schedule_policy(&mut self, policy: SchedulePolicy) {
        self.policy = policy;
    }

    /// Install a fault plan, applied to every subsequent send. Panics if a
    /// rule names an entry method that is not registered (a plan that can
    /// never match is a harness bug, not a no-op).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault =
            Some(FaultState::install(plan, &self.stats.entry_names).expect("bad fault plan"));
    }

    /// Re-send every dead-lettered (dropped) message — the sender's
    /// retransmission after a delivery timeout. Redeliveries bypass the
    /// fault plan (the retry succeeds) and are delivered at the current
    /// virtual time. Returns how many messages were re-sent.
    pub fn redeliver_dead_letters(&mut self) -> usize {
        let letters = std::mem::take(&mut self.dead_letters);
        let n = letters.len();
        for dl in letters {
            let pe = self.obj_pe[dl.to.idx()];
            let seq = self.next_seq();
            let msg = QMsg {
                key: self.policy.key(dl.priority, seq),
                seq,
                from: dl.to,
                to: dl.to,
                entry: dl.entry,
                bytes: dl.bytes,
                payload: dl.payload,
                crc: None, // the retransmission arrives clean
                path: dl.path,
            };
            let t = self.now;
            self.push_event(t, EventKind::Deliver { pe, msg });
        }
        self.stats.msgs_redelivered += n as u64;
        n
    }

    /// Inject a message from "outside" (the driver bootstrap). It is
    /// delivered at the current virtual time with no communication cost.
    pub fn inject(
        &mut self,
        to: ObjId,
        entry: EntryId,
        bytes: usize,
        priority: Priority,
        payload: Payload,
    ) {
        let pe = self.obj_pe[to.idx()];
        let seq = self.next_seq();
        let msg = QMsg {
            key: self.policy.key(priority, seq),
            seq,
            from: to,
            to,
            entry,
            bytes,
            payload,
            crc: None,
            path: 0.0,
        };
        self.stats.msgs_injected += 1;
        let t = self.now;
        self.push_event(t, EventKind::Deliver { pe, msg });
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        let seq = self.next_seq();
        self.events.push(Event { time, seq, kind });
    }

    /// Run until the event queue drains or a handler calls [`Ctx::stop`].
    /// Returns the final virtual time (when the last handler finished).
    pub fn run(&mut self) -> f64 {
        self.stopped = false;
        while let Some(ev) = self.events.pop() {
            debug_assert!(ev.time >= self.now - 1e-12, "time went backwards");
            self.now = ev.time.max(self.now);
            match ev.kind {
                EventKind::Deliver { pe, msg } => self.on_deliver(pe, msg),
                EventKind::Execute { pe } => self.on_execute(pe),
            }
            if self.stopped {
                break;
            }
        }
        if self.stopped {
            // `Ctx::stop` discards whatever is still queued or in flight;
            // count the discards so the message-conservation ledger stays
            // exact (residual 0) even when stop races pending deliveries.
            for ev in self.events.drain() {
                if matches!(ev.kind, EventKind::Deliver { .. }) {
                    self.stats.msgs_discarded += 1;
                }
            }
            for st in &mut self.pes {
                self.stats.msgs_discarded += st.queue.len() as u64;
                st.queue.clear();
                st.execute_scheduled = false;
            }
        }
        self.now = self.now.max(self.last_activity);
        self.now
    }

    fn on_deliver(&mut self, pe: Pe, msg: QMsg) {
        if self.dead[pe] {
            // Addressed to a dead machine: the message is gone, but the
            // conservation ledger must see it leave the system.
            drop(msg);
            self.stats.msgs_discarded += 1;
            return;
        }
        let st = &mut self.pes[pe];
        st.queue.push(msg);
        if !st.execute_scheduled {
            st.execute_scheduled = true;
            let t = st.busy_until.max(self.now);
            self.push_event(t, EventKind::Execute { pe });
        }
    }

    fn on_execute(&mut self, pe: Pe) {
        if self.dead[pe] {
            return;
        }
        let msg = {
            let st = &mut self.pes[pe];
            st.execute_scheduled = false;
            match st.queue.pop() {
                Some(m) => m,
                None => return,
            }
        };
        let start = self.now;

        // The object may have migrated since delivery: forward the message.
        let home = self.obj_pe[msg.to.idx()];
        if home != pe {
            let t = start + self.machine.wire_time(msg.bytes);
            self.push_event(t, EventKind::Deliver { pe: home, msg });
            self.reschedule(pe);
            return;
        }

        // Verify the payload CRC stamped at send time (corrupt-fault runs
        // only): a damaged payload is rejected here — counted as dropped so
        // the conservation ledger balances — and never reaches the handler.
        // The clean dead-lettered copy repairs delivery later.
        if let Some(stamped) = msg.crc {
            if ckpt::crc64(&msg.payload) != stamped {
                self.stats.msgs_crc_rejected += 1;
                self.stats.msgs_dropped += 1;
                self.reschedule(pe);
                return;
            }
        }

        // Run the handler.
        let mut obj = self.objects[msg.to.idx()].take().expect("re-entrant object execution");
        let mut ctx = Ctx::new(pe, start, msg.to, self.n_pes);
        obj.receive(msg.entry, msg.payload, &mut ctx);
        self.objects[msg.to.idx()] = Some(obj);

        // Cost the execution: receive overhead + declared work + send costs.
        let mut cpu = self.machine.recv_time() + self.machine.task_time(ctx.work);
        self.stats.recv_overhead += self.machine.recv_time();
        let mut send_cpu = 0.0;
        let mut pack_cpu = 0.0;
        for s in &ctx.sends {
            let (pack, send) = match s.pack {
                PackCost::Single => (self.machine.pack_overhead_s, self.machine.send_time(s.bytes)),
                PackCost::McFirst => {
                    (self.machine.pack_overhead_s, self.machine.send_time(s.bytes))
                }
                // Buffer reuse: only the fixed per-message overhead remains.
                PackCost::McRest => (0.0, self.machine.send_overhead_s),
            };
            pack_cpu += pack;
            send_cpu += send;
        }
        cpu += send_cpu + pack_cpu;
        cpu /= self.pe_speed[pe];
        self.stats.send_overhead += send_cpu;
        self.stats.pack_time += pack_cpu;

        let end = start + cpu;
        // Critical path: the longest dependency chain ending at this
        // handler is whatever chain produced the triggering message plus
        // this handler's own cost. Sends below inherit it.
        let end_path = msg.path + cpu;
        self.stats.critical_path = self.stats.critical_path.max(end_path);
        self.pes[pe].busy_until = end;
        self.last_activity = self.last_activity.max(end);
        self.stats.pe_busy[pe] += cpu;
        self.stats.pe_overhead[pe] +=
            (self.machine.recv_time() + send_cpu + pack_cpu) / self.pe_speed[pe];
        self.stats.entry_time[msg.entry.idx()] += cpu;
        self.stats.entry_count[msg.entry.idx()] += 1;
        self.stats.msgs_sent += ctx.sends.len() as u64;
        self.stats.msgs_received += 1;
        self.ldb.attribute(msg.to, pe, cpu);
        if self.tracing {
            // The DES time axis is purely virtual; there is no meaningful
            // wall clock to stamp.
            self.trace.record(TraceEvent {
                pe,
                obj: msg.to,
                entry: msg.entry,
                start,
                end,
                wall: 0.0,
            });
        }

        // Dispatch the sends: they leave the sender when the handler ends.
        let stop = ctx.stop;
        let stamp_crc = self.fault.as_ref().is_some_and(|f| f.has_corruption());
        for mut s in ctx.sends.drain(..) {
            self.stats.bytes_sent += s.bytes as u64;
            self.stats.count_wire(s.entry, s.payload.len());
            self.ldb.on_message(msg.to, s.to, s.bytes);
            let dest_pe = self.obj_pe[s.to.idx()];
            let mut arrive =
                if dest_pe == pe { end } else { end + self.machine.wire_time(s.bytes) };
            // Stamp the payload CRC before the "network" can touch the
            // bytes (only worth the cycles when corruption is possible).
            let mut crc = stamp_crc.then(|| ckpt::crc64(&s.payload));
            let fate = self
                .fault
                .as_mut()
                .and_then(|f| f.decide(s.entry, pe, dest_pe));
            match fate {
                Some(FaultAction::Drop) => {
                    // Lost in the network: the send was costed and counted,
                    // but no Deliver event exists. Retained for redelivery.
                    self.stats.msgs_dropped += 1;
                    self.dead_letters.push(DeadLetter {
                        to: s.to,
                        entry: s.entry,
                        bytes: s.bytes,
                        priority: s.priority,
                        payload: s.payload,
                        path: end_path,
                    });
                    continue;
                }
                Some(FaultAction::Duplicate) => {
                    // An extra copy arrives alongside the original; its
                    // payload is an empty header re-send (delivering the
                    // body twice would double-apply it — the protocol only
                    // has to tolerate the spurious wakeup).
                    self.stats.msgs_duplicated += 1;
                    let seq = self.next_seq();
                    let dup = QMsg {
                        key: self.policy.key(s.priority, seq),
                        seq,
                        from: msg.to,
                        to: s.to,
                        entry: s.entry,
                        bytes: s.bytes,
                        payload: Vec::new(),
                        crc: None,
                        path: end_path,
                    };
                    self.push_event(arrive, EventKind::Deliver { pe: dest_pe, msg: dup });
                }
                Some(FaultAction::Delay(d)) => {
                    self.stats.msgs_delayed += 1;
                    arrive += d;
                }
                Some(FaultAction::Corrupt(n)) => {
                    // Keep a clean copy for repair, then flip bytes in the
                    // copy that travels. Empty payloads have no bytes to
                    // flip, so damage the stamped CRC instead — either way
                    // delivery must reject the message.
                    self.stats.msgs_corrupted += 1;
                    self.dead_letters.push(DeadLetter {
                        to: s.to,
                        entry: s.entry,
                        bytes: s.bytes,
                        priority: s.priority,
                        payload: s.payload.clone(),
                        path: end_path,
                    });
                    if s.payload.is_empty() {
                        crc = crc.map(|c| !c);
                    } else {
                        let flip = (n as usize).min(s.payload.len());
                        for b in &mut s.payload[..flip] {
                            *b ^= 0xFF;
                        }
                    }
                }
                Some(FaultAction::Kill) => {
                    // The destination machine dies at delivery time; the
                    // message is lost with it (dropped, not dead-lettered —
                    // there is no PE left to retry into), and everything
                    // already queued there dies too.
                    self.stats.msgs_dropped += 1;
                    if !self.dead[dest_pe] {
                        self.dead[dest_pe] = true;
                        self.stats.pes_killed += 1;
                        self.crashed.get_or_insert(dest_pe);
                        let queued = self.pes[dest_pe].queue.len() as u64;
                        self.stats.msgs_discarded += queued;
                        self.pes[dest_pe].queue.clear();
                        self.pes[dest_pe].execute_scheduled = false;
                    }
                    continue;
                }
                None => {}
            }
            let seq = self.next_seq();
            if dest_pe != pe {
                arrive += self.policy.delivery_jitter(seq);
            }
            let q = QMsg {
                key: self.policy.key(s.priority, seq),
                seq,
                from: msg.to,
                to: s.to,
                entry: s.entry,
                bytes: s.bytes,
                payload: s.payload,
                crc,
                path: end_path,
            };
            self.push_event(arrive, EventKind::Deliver { pe: dest_pe, msg: q });
        }

        if stop {
            self.stopped = true;
        }
        // Wake the scheduler for the next queued message.
        let st = &mut self.pes[pe];
        if !st.queue.is_empty() && !st.execute_scheduled {
            st.execute_scheduled = true;
            self.push_event(end, EventKind::Execute { pe });
        }
    }

    fn reschedule(&mut self, pe: Pe) {
        let st = &mut self.pes[pe];
        if !st.queue.is_empty() && !st.execute_scheduled {
            st.execute_scheduled = true;
            let t = st.busy_until.max(self.now);
            self.push_event(t, EventKind::Execute { pe });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{PRIO_HIGH, PRIO_LOW, PRIO_NORMAL};
    use machine::presets;

    use std::sync::{Arc, Mutex};

    /// An i32 order tag packed as 4 LE bytes — the tests' one wire format.
    fn tag(v: i32) -> Payload {
        v.to_le_bytes().to_vec()
    }

    /// A chare that counts invocations and optionally forwards to a peer
    /// with declared work. Tagged payloads are appended to a shared order
    /// log so tests can observe scheduling order.
    struct Node {
        hits: u32,
        forward: Option<(ObjId, EntryId)>,
        work: f64,
        order: Arc<Mutex<Vec<i32>>>,
    }

    impl Node {
        fn new() -> Self {
            Node { hits: 0, forward: None, work: 0.0, order: Arc::new(Mutex::new(Vec::new())) }
        }
    }

    impl Chare for Node {
        fn receive(&mut self, _entry: EntryId, payload: Payload, ctx: &mut Ctx) {
            self.hits += 1;
            if let Ok(bytes) = <[u8; 4]>::try_from(payload.as_slice()) {
                self.order.lock().unwrap().push(i32::from_le_bytes(bytes));
            }
            ctx.add_work(self.work);
            if let Some((to, e)) = self.forward {
                ctx.signal(to, e, PRIO_NORMAL);
            }
        }
    }

    #[test]
    fn message_chain_executes_in_virtual_time() {
        let mut des = Des::new(2, presets::ideal());
        let ping = des.register_entry("ping");
        let b = des.register(Box::new(Node { work: 100.0, ..Node::new() }), 1, true);
        let a = des.register(
            Box::new(Node { forward: Some((b, ping)), work: 50.0, ..Node::new() }),
            0,
            true,
        );
        des.inject(a, ping, 0, PRIO_NORMAL, Vec::new());
        let t = des.run();
        // a: 50 µs, then b: 100 µs (ideal machine: 1 µs per work unit).
        assert!((t - 150e-6).abs() < 1e-12, "final time {t}");
        assert_eq!(des.stats.entry_count[ping.idx()], 2);
        assert!((des.stats.pe_busy[0] - 50e-6).abs() < 1e-12);
        assert!((des.stats.pe_busy[1] - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn priorities_order_the_queue() {
        // Three messages delivered while the PE is busy; the high-priority
        // one must run first, then normal, then low.
        let mut des = Des::new(1, presets::ideal());
        let e = des.register_entry("tagged");
        let order = Arc::new(Mutex::new(Vec::new()));
        let sink = des.register(
            Box::new(Node { work: 10.0, order: order.clone(), ..Node::new() }),
            0,
            true,
        );
        // All four are delivered (in injection order) before the scheduler
        // first wakes, so execution orders purely by (priority, arrival):
        // high first, then the two normals in arrival order, then low.
        des.inject(sink, e, 0, PRIO_NORMAL, tag(1));
        des.inject(sink, e, 0, PRIO_LOW, tag(3));
        des.inject(sink, e, 0, PRIO_NORMAL, tag(2));
        des.inject(sink, e, 0, PRIO_HIGH, tag(0));
        des.run();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn work_costs_scale_with_machine() {
        for m in [presets::asci_red(), presets::origin2000()] {
            let mut des = Des::new(1, m);
            let e = des.register_entry("w");
            let o = des.register(Box::new(Node { work: 1e6, ..Node::new() }), 0, true);
            des.inject(o, e, 0, PRIO_NORMAL, Vec::new());
            let t = des.run();
            let expect = m.recv_time() + m.task_time(1e6);
            assert!((t - expect).abs() < 1e-12, "{}: {t} vs {expect}", m.name);
        }
    }

    #[test]
    fn cross_pe_messages_pay_wire_time() {
        let m = presets::asci_red();
        let mut des = Des::new(2, m);
        let e = des.register_entry("x");
        let b = des.register(Box::new(Node::new()), 1, true);
        let a =
            des.register(Box::new(Node { forward: Some((b, e)), ..Node::new() }), 0, true);
        des.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        let t = des.run();
        // a's handler: recv + send of 32B; then wire; then b's handler: recv.
        let a_cpu = m.recv_time() + m.pack_overhead_s + m.send_time(32);
        let expect = a_cpu + m.wire_time(32) + m.recv_time();
        assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
    }

    #[test]
    fn migration_moves_future_deliveries() {
        let mut des = Des::new(2, presets::ideal());
        let e = des.register_entry("m");
        let o = des.register(Box::new(Node { work: 5.0, ..Node::new() }), 0, true);
        des.inject(o, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        assert!(des.stats.pe_busy[0] > 0.0);
        des.migrate(o, 1);
        let before = des.stats.pe_busy[1];
        des.inject(o, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        assert!(des.stats.pe_busy[1] > before, "work should land on PE 1 after migration");
    }

    #[test]
    fn ldb_attributes_loads() {
        let mut des = Des::new(2, presets::ideal());
        let e = des.register_entry("l");
        let mig = des.register(Box::new(Node { work: 100.0, ..Node::new() }), 0, true);
        let fixed = des.register(Box::new(Node { work: 200.0, ..Node::new() }), 1, false);
        des.inject(mig, e, 0, PRIO_NORMAL, Vec::new());
        des.inject(fixed, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        let snap = des.ldb.snapshot(des.placement());
        assert!((snap.objects[mig.idx()].load - 100e-6).abs() < 1e-12);
        assert_eq!(snap.objects[fixed.idx()].load, 0.0);
        assert!((snap.background[1] - 200e-6).abs() < 1e-12);
    }

    #[test]
    fn tracing_records_executions() {
        let mut des = Des::new(1, presets::ideal());
        let e = des.register_entry("t");
        let o = des.register(Box::new(Node { work: 50.0, ..Node::new() }), 0, true);
        des.set_tracing(true);
        des.inject(o, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        assert_eq!(des.trace.events.len(), 1);
        let ev = des.trace.events[0];
        assert_eq!(ev.pe, 0);
        assert!((ev.duration() - 50e-6).abs() < 1e-12);
    }

    #[test]
    fn stop_halts_the_engine() {
        struct Stopper;
        impl Chare for Stopper {
            fn receive(&mut self, _e: EntryId, _p: Payload, ctx: &mut Ctx) {
                ctx.stop();
            }
        }
        let mut des = Des::new(1, presets::ideal());
        let e = des.register_entry("s");
        let o = des.register(Box::new(Stopper), 0, true);
        let n = des.register(Box::new(Node { work: 1e9, ..Node::new() }), 0, true);
        des.inject(o, e, 0, PRIO_HIGH, Vec::new());
        des.inject(n, e, 0, PRIO_LOW, Vec::new());
        des.run();
        // The big task never ran.
        assert_eq!(des.stats.entry_count[e.idx()], 1);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let build = || {
            let mut des = Des::new(4, presets::asci_red());
            let e = des.register_entry("d");
            let mut last = None;
            for pe in 0..4 {
                let node = Node { forward: last.map(|o| (o, e)), work: 33.0, ..Node::new() };
                last = Some(des.register(Box::new(node), pe, true));
            }
            des.inject(last.unwrap(), e, 64, PRIO_NORMAL, Vec::new());
            des.run()
        };
        assert_eq!(build().to_bits(), build().to_bits());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_rejects_bad_pe() {
        let mut des = Des::new(2, presets::ideal());
        des.register(Box::new(Node::new()), 5, true);
    }

    /// Two nodes where a forwards to b; returns (des, entry, ids).
    fn forward_pair() -> (Des, EntryId, ObjId, ObjId) {
        let mut des = Des::new(2, presets::ideal());
        let e = des.register_entry("ping");
        let b = des.register(Box::new(Node::new()), 1, true);
        let a =
            des.register(Box::new(Node { forward: Some((b, e)), ..Node::new() }), 0, true);
        (des, e, a, b)
    }

    #[test]
    fn dropped_message_dead_letters_then_redelivers() {
        let (mut des, e, a, _b) = forward_pair();
        des.set_fault_plan(FaultPlan::parse("drop:entry=ping").unwrap());
        des.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        // b never ran; the drop is accounted, so conservation still holds.
        assert_eq!(des.stats.entry_count[e.idx()], 1);
        assert_eq!(des.stats.msgs_dropped, 1);
        assert_eq!(des.stats.conservation_residual(), 0);
        // The sender retransmits; the protocol completes.
        assert_eq!(des.redeliver_dead_letters(), 1);
        des.run();
        assert_eq!(des.stats.entry_count[e.idx()], 2);
        assert_eq!(des.stats.msgs_redelivered, 1);
        assert_eq!(des.stats.conservation_residual(), 0);
    }

    #[test]
    fn duplicate_fault_delivers_an_extra_copy() {
        let (mut des, e, a, _b) = forward_pair();
        des.set_fault_plan(FaultPlan::parse("dup:entry=ping").unwrap());
        des.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        // a once, b twice (original + empty-payload copy).
        assert_eq!(des.stats.entry_count[e.idx()], 3);
        assert_eq!(des.stats.msgs_duplicated, 1);
        assert_eq!(des.stats.conservation_residual(), 0);
    }

    #[test]
    fn delay_fault_postpones_delivery_in_virtual_time() {
        let (mut des, e, a, _b) = forward_pair();
        des.set_fault_plan(FaultPlan::parse("delay:secs=1.0:entry=ping").unwrap());
        des.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        let t = des.run();
        assert!(t >= 1.0, "delayed delivery should dominate the makespan, got {t}");
        assert_eq!(des.stats.msgs_delayed, 1);
        assert_eq!(des.stats.entry_count[e.idx()], 2);
    }

    #[test]
    fn kill_fault_fells_the_destination_pe() {
        let (mut des, e, a, b) = forward_pair();
        des.set_fault_plan(FaultPlan::parse("kill:entry=ping:dst=1").unwrap());
        des.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        // a ran; b's PE died before the forward arrived.
        assert_eq!(des.stats.entry_count[e.idx()], 1);
        assert_eq!(des.crashed(), Some(1));
        assert_eq!(des.stats.pes_killed, 1);
        // The lost message is dropped (no dead letter to redeliver), and
        // the conservation ledger still balances.
        assert_eq!(des.stats.msgs_dropped, 1);
        assert_eq!(des.redeliver_dead_letters(), 0);
        assert_eq!(des.stats.conservation_residual(), 0);
        // Injections into the dead PE are discarded, not executed.
        let before = des.stats.entry_count[e.idx()];
        des.inject(b, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        assert_eq!(des.stats.entry_count[e.idx()], before);
        assert_eq!(des.stats.conservation_residual(), 0);
    }

    /// Forwards one tagged (non-empty) payload to a peer on first receipt.
    struct TagSender {
        to: ObjId,
        entry: EntryId,
    }

    impl Chare for TagSender {
        fn receive(&mut self, _e: EntryId, _p: Payload, ctx: &mut Ctx) {
            ctx.send(self.to, self.entry, 64, PRIO_NORMAL, tag(7));
        }
    }

    #[test]
    fn corrupt_fault_is_rejected_by_crc_then_repaired() {
        let mut des = Des::new(2, presets::ideal());
        let e = des.register_entry("tagged");
        let order = Arc::new(Mutex::new(Vec::new()));
        let b = des.register(Box::new(Node { order: order.clone(), ..Node::new() }), 1, true);
        let a = des.register(Box::new(TagSender { to: b, entry: e }), 0, true);
        des.set_fault_plan(FaultPlan::parse("corrupt:entry=tagged:bytes=1").unwrap());
        des.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        // The flipped payload failed its CRC at delivery: b never saw it.
        assert!(order.lock().unwrap().is_empty());
        assert_eq!(des.stats.msgs_corrupted, 1);
        assert_eq!(des.stats.msgs_crc_rejected, 1);
        assert_eq!(des.stats.msgs_dropped, 1);
        assert_eq!(des.stats.conservation_residual(), 0);
        // The clean copy was dead-lettered; the retransmission arrives
        // intact and delivers the original bytes.
        assert_eq!(des.redeliver_dead_letters(), 1);
        des.run();
        assert_eq!(*order.lock().unwrap(), vec![7]);
        assert_eq!(des.stats.conservation_residual(), 0);
    }

    #[test]
    fn corrupting_an_empty_payload_still_trips_the_crc() {
        let (mut des, e, a, _b) = forward_pair();
        des.set_fault_plan(FaultPlan::parse("corrupt:entry=ping").unwrap());
        des.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        // There are no payload bytes to flip, so the fault inverts the
        // stored checksum instead — the receiver must still reject it.
        assert_eq!(des.stats.entry_count[e.idx()], 1, "only the sender ran");
        assert_eq!((des.stats.msgs_corrupted, des.stats.msgs_crc_rejected), (1, 1));
        assert_eq!(des.redeliver_dead_letters(), 1);
        des.run();
        assert_eq!(des.stats.entry_count[e.idx()], 2);
        assert_eq!(des.stats.conservation_residual(), 0);
    }

    #[test]
    fn lifo_policy_reverses_dequeue_order_and_ignores_priority() {
        let mut des = Des::new(1, presets::ideal());
        let e = des.register_entry("tagged");
        let order = Arc::new(Mutex::new(Vec::new()));
        let sink = des.register(
            Box::new(Node { work: 10.0, order: order.clone(), ..Node::new() }),
            0,
            true,
        );
        des.set_schedule_policy(SchedulePolicy::adversarial_lifo());
        des.inject(sink, e, 0, PRIO_NORMAL, tag(1));
        des.inject(sink, e, 0, PRIO_LOW, tag(3));
        des.inject(sink, e, 0, PRIO_NORMAL, tag(2));
        des.inject(sink, e, 0, PRIO_HIGH, tag(0));
        des.run();
        // Newest-injected first, regardless of priority.
        assert_eq!(*order.lock().unwrap(), vec![0, 2, 3, 1]);
    }

    #[test]
    fn critical_path_is_the_longest_dependency_chain() {
        let mut des = Des::new(2, presets::ideal());
        let ping = des.register_entry("ping");
        let b = des.register(Box::new(Node { work: 100.0, ..Node::new() }), 1, true);
        let a = des.register(
            Box::new(Node { forward: Some((b, ping)), work: 50.0, ..Node::new() }),
            0,
            true,
        );
        // An independent heavy task, off the chain.
        let c = des.register(Box::new(Node { work: 120.0, ..Node::new() }), 0, true);
        des.inject(a, ping, 0, PRIO_NORMAL, Vec::new());
        des.inject(c, ping, 0, PRIO_NORMAL, Vec::new());
        des.run();
        // The a→b chain (50 + 100 µs) dominates the independent 120 µs task.
        assert!(
            (des.stats.critical_path - 150e-6).abs() < 1e-12,
            "critical path {}",
            des.stats.critical_path
        );
    }

    #[test]
    fn pe_overhead_is_the_messaging_share_of_busy() {
        let mut des = Des::new(2, presets::asci_red());
        let e = des.register_entry("x");
        let b = des.register(Box::new(Node::new()), 1, true);
        let a =
            des.register(Box::new(Node { forward: Some((b, e)), ..Node::new() }), 0, true);
        des.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        des.run();
        // a declares no work: its whole handler cost is messaging overhead.
        assert!(des.stats.pe_overhead[0] > 0.0);
        assert!((des.stats.pe_overhead[0] - des.stats.pe_busy[0]).abs() < 1e-15);
        for pe in 0..2 {
            assert!(des.stats.pe_overhead[pe] <= des.stats.pe_busy[pe] + 1e-15);
        }
    }

    #[test]
    fn shuffled_schedule_is_replay_deterministic() {
        let run_with = |seed: u64| {
            let mut des = Des::new(4, presets::asci_red());
            let e = des.register_entry("d");
            des.set_schedule_policy(SchedulePolicy::random_shuffle(seed));
            des.set_tracing(true);
            let mut last = None;
            for pe in 0..4 {
                let node = Node { forward: last.map(|o| (o, e)), work: 33.0, ..Node::new() };
                last = Some(des.register(Box::new(node), pe, true));
            }
            for _ in 0..3 {
                des.inject(last.unwrap(), e, 64, PRIO_NORMAL, Vec::new());
            }
            let t = des.run();
            (t.to_bits(), des.trace.clone())
        };
        let (t1, trace1) = run_with(7);
        let (t2, trace2) = run_with(7);
        assert_eq!(t1, t2);
        assert_eq!(trace1, trace2, "identical seed must replay identically");
    }
}
