//! Message fault injection: drop, duplicate, or delay messages matching a
//! predicate, with dead-letter retention so the protocol layer can repair
//! delivery (retry/timeout re-send) instead of wedging quiescence forever.
//!
//! Faults apply at *send* time, modeling a lossy network between the
//! sender's scheduler and the receiver's queue:
//!
//! * **Drop** — the sender believes the message left (quiescence counters
//!   see a send with no matching receive, exactly like a lost packet); the
//!   runtime retains the message in a dead-letter store, and
//!   [`crate::Runtime::redeliver_dead_letters`] models the sender's
//!   retransmission after a timeout.
//! * **Duplicate** — the destination receives the original plus one extra
//!   copy with an empty payload (a re-sent header whose body the protocol
//!   must treat idempotently; delivering the body twice would double-fold
//!   force contributions, which is not the failure mode modeled here).
//! * **Corrupt** — flip N payload bytes in flight. The runtime stamps a
//!   payload CRC on the message at send time whenever a corrupt rule is
//!   installed; delivery verifies it and *rejects* the damaged copy
//!   (`msgs_crc_rejected`, counted as dropped), while a clean copy is
//!   retained as a dead letter so the repair loop re-sends it — the same
//!   end-to-end story the `proc` backend's frame CRC enforces for real.
//! * **Delay** — delivery is postponed by a fixed virtual latency on the
//!   DES; the threads backend (which cannot delay wall-clock delivery)
//!   demotes the message behind all normal-priority work instead.
//! * **Kill** — the *destination PE* dies the instant the matching message
//!   would be delivered (the message itself is lost with it, counted in
//!   `msgs_dropped` but *not* retained as a dead letter — the machine it
//!   was addressed to no longer exists). The run cannot reach quiescence;
//!   the backend reports the casualty via [`crate::Runtime::crashed`] and
//!   the recovery layer restarts from the latest checkpoint. This models a
//!   process/node death mid-run, the failure mode checkpoint/restart
//!   exists for, rather than a transient network fault.
//!
//! Every application is counted in [`crate::SummaryStats`]
//! (`msgs_dropped`, `msgs_duplicated`, `msgs_delayed`, `msgs_redelivered`),
//! feeding the message-conservation oracle.

use crate::msg::{EntryId, ObjId, Payload, Pe, Priority};
use crate::wire::EntryTable;

/// What to do to a matching message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Lose the message in the network (retained as a dead letter).
    Drop,
    /// Deliver the original plus one empty-payload copy.
    Duplicate,
    /// Postpone delivery by this many (virtual) seconds.
    Delay(f64),
    /// Kill the destination PE at delivery time (process death; the
    /// message dies with it).
    Kill,
    /// Flip this many payload bytes in flight (each XOR 0xFF). The payload
    /// CRC rejects the damaged copy at delivery; a clean copy is retained
    /// as a dead letter for repair.
    Corrupt(u32),
}

/// One fault rule: an action plus a predicate over
/// (entry kind, source PE, destination PE) and an occurrence window.
/// `None` predicate fields are wildcards.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    pub action: FaultAction,
    /// Entry-method *name* (resolved against the runtime's registry when
    /// the plan is installed), e.g. `"PatchRecvForces"`.
    pub entry: Option<String>,
    pub src_pe: Option<Pe>,
    pub dst_pe: Option<Pe>,
    /// Skip the first `skip` matching messages (an occurrence index: for
    /// per-step protocols, the k-th matching message of a kind is the k-th
    /// step's instance of it).
    pub skip: u64,
    /// Apply to at most `limit` messages after the skipped ones.
    pub limit: u64,
}

impl FaultRule {
    /// A rule with wildcard predicates applying to the first match only.
    pub fn new(action: FaultAction) -> Self {
        FaultRule { action, entry: None, src_pe: None, dst_pe: None, skip: 0, limit: 1 }
    }

    /// Restrict to one entry-method name.
    pub fn entry(mut self, name: &str) -> Self {
        self.entry = Some(name.to_string());
        self
    }

    /// Occurrence window: skip `skip` matches, then apply to `limit`.
    pub fn window(mut self, skip: u64, limit: u64) -> Self {
        self.skip = skip;
        self.limit = limit;
        self
    }
}

/// An ordered list of fault rules. Cloneable (it is pure description), so
/// it can live in a `SimConfig` and be installed fresh into each phase's
/// runtime via [`crate::Runtime::set_fault_plan`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    pub fn new(rules: Vec<FaultRule>) -> Self {
        FaultPlan { rules }
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The same plan with every [`FaultAction::Kill`] rule removed. The
    /// recovery layer installs this after a crash: fault counters restart
    /// fresh each phase, so leaving the kill rule in place would fell the
    /// resumed run at the same message forever (and a kill models a
    /// one-shot hardware death, not a repeating one). `None` if nothing
    /// remains.
    pub fn without_kills(&self) -> Option<FaultPlan> {
        let rules: Vec<FaultRule> = self
            .rules
            .iter()
            .filter(|r| r.action != FaultAction::Kill)
            .cloned()
            .collect();
        if rules.is_empty() { None } else { Some(FaultPlan { rules }) }
    }

    /// Does any rule kill a PE?
    pub fn has_kills(&self) -> bool {
        self.rules.iter().any(|r| r.action == FaultAction::Kill)
    }

    /// Parse a plan from the CLI grammar: semicolon-separated rules, each
    /// `action[:key=value]*` with keys `entry`, `src`, `dst`, `skip`,
    /// `limit`, (for delay) `secs`, and (for corrupt) `bytes`. Examples:
    ///
    /// ```text
    /// drop:entry=PatchRecvForces:limit=1
    /// delay:secs=1e-4:dst=2 ; dup:entry=Done
    /// kill:entry=PatchRecvForces:dst=1:skip=40
    /// corrupt:entry=PatchRecvForces:bytes=3
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut rules = Vec::new();
        for rule_text in spec.split(';') {
            let rule_text = rule_text.trim();
            if rule_text.is_empty() {
                continue;
            }
            let mut parts = rule_text.split(':').map(str::trim);
            let action_name = parts.next().unwrap_or_default();
            let mut secs: Option<f64> = None;
            let mut flip_bytes: Option<u32> = None;
            let mut rule = match action_name {
                "drop" => FaultRule::new(FaultAction::Drop),
                "dup" | "duplicate" => FaultRule::new(FaultAction::Duplicate),
                "delay" => FaultRule::new(FaultAction::Delay(0.0)),
                "kill" => FaultRule::new(FaultAction::Kill),
                "corrupt" => FaultRule::new(FaultAction::Corrupt(1)),
                other => return Err(format!("unknown fault action '{other}'")),
            };
            for kv in parts {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("fault rule field '{kv}' is not key=value"))?;
                let bad = |what: &str| format!("bad {what} '{v}' in fault rule '{rule_text}'");
                match k {
                    "entry" => rule.entry = Some(v.to_string()),
                    "src" => rule.src_pe = Some(v.parse().map_err(|_| bad("src PE"))?),
                    "dst" => rule.dst_pe = Some(v.parse().map_err(|_| bad("dst PE"))?),
                    "skip" => rule.skip = v.parse().map_err(|_| bad("skip"))?,
                    "limit" => rule.limit = v.parse().map_err(|_| bad("limit"))?,
                    "secs" => secs = Some(v.parse().map_err(|_| bad("secs"))?),
                    "bytes" => flip_bytes = Some(v.parse().map_err(|_| bad("bytes"))?),
                    other => return Err(format!("unknown fault rule key '{other}'")),
                }
            }
            if let FaultAction::Delay(ref mut d) = rule.action {
                *d = secs.ok_or_else(|| format!("delay rule '{rule_text}' needs secs=..."))?;
                if !(*d >= 0.0 && d.is_finite()) {
                    return Err(format!("delay secs must be finite and >= 0, got {d}"));
                }
            } else if secs.is_some() {
                return Err(format!("secs= only applies to delay rules ('{rule_text}')"));
            }
            if let FaultAction::Corrupt(ref mut n) = rule.action {
                if let Some(b) = flip_bytes {
                    if b == 0 {
                        return Err(format!("corrupt bytes must be >= 1 ('{rule_text}')"));
                    }
                    *n = b;
                }
            } else if flip_bytes.is_some() {
                return Err(format!("bytes= only applies to corrupt rules ('{rule_text}')"));
            }
            rules.push(rule);
        }
        if rules.is_empty() {
            return Err("empty fault plan".to_string());
        }
        Ok(FaultPlan { rules })
    }
}

/// A message the network "lost": everything needed to re-send it later.
/// Payloads survive the drop — a retransmitting sender still holds the
/// message body.
pub(crate) struct DeadLetter {
    pub to: ObjId,
    pub entry: EntryId,
    pub bytes: usize,
    pub priority: Priority,
    pub payload: Payload,
    /// Dependency-chain length the message carried when it was dropped,
    /// preserved across redelivery so critical-path accounting survives
    /// the retransmission.
    pub path: f64,
}

/// An installed plan: rules with entry names resolved to ids, plus
/// per-rule occurrence counters. Backend-internal.
pub(crate) struct FaultState {
    rules: Vec<(FaultRule, Option<EntryId>)>,
    /// Messages matched per rule (before windowing).
    matched: Vec<u64>,
}

impl FaultState {
    /// Resolve a plan against the runtime's [`EntryTable`]. Unknown entry
    /// names are an installation error — a plan that can never match is a
    /// harness bug, not a no-op.
    pub fn install(plan: FaultPlan, entries: &EntryTable) -> Result<Self, String> {
        let mut rules = Vec::with_capacity(plan.rules.len());
        for r in plan.rules {
            let id = match &r.entry {
                Some(name) => Some(
                    entries
                        .lookup(name)
                        .ok_or_else(|| format!("fault rule names unknown entry '{name}'"))?,
                ),
                None => None,
            };
            rules.push((r, id));
        }
        let n = rules.len();
        Ok(FaultState { rules, matched: vec![0; n] })
    }

    /// Does any installed rule corrupt payloads? When true, backends stamp
    /// a payload CRC on every queued message so delivery can verify it.
    pub fn has_corruption(&self) -> bool {
        self.rules.iter().any(|(r, _)| matches!(r.action, FaultAction::Corrupt(_)))
    }

    /// Decide the fate of one outgoing message. The first rule whose
    /// predicate matches *and* whose occurrence window is open fires;
    /// rules with exhausted windows still count their matches.
    pub fn decide(&mut self, entry: EntryId, src: Pe, dst: Pe) -> Option<FaultAction> {
        for (i, (rule, id)) in self.rules.iter().enumerate() {
            let matches = id.is_none_or(|e| e == entry)
                && rule.src_pe.is_none_or(|p| p == src)
                && rule.dst_pe.is_none_or(|p| p == dst);
            if !matches {
                continue;
            }
            let k = self.matched[i];
            self.matched[i] += 1;
            if k >= rule.skip && k < rule.skip + rule.limit {
                return Some(rule.action);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> EntryTable {
        let mut t = EntryTable::new();
        t.register("PatchStart");
        t.register("PatchRecvForces");
        t.register("Done");
        t
    }

    #[test]
    fn parse_round_trips_the_readme_examples() {
        let p = FaultPlan::parse("drop:entry=PatchRecvForces:limit=1").unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].action, FaultAction::Drop);
        assert_eq!(p.rules[0].entry.as_deref(), Some("PatchRecvForces"));
        assert_eq!((p.rules[0].skip, p.rules[0].limit), (0, 1));

        let p = FaultPlan::parse("delay:secs=1e-4:dst=2 ; dup:entry=Done:skip=3:limit=2").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].action, FaultAction::Delay(1e-4));
        assert_eq!(p.rules[0].dst_pe, Some(2));
        assert_eq!(p.rules[1].action, FaultAction::Duplicate);
        assert_eq!((p.rules[1].skip, p.rules[1].limit), (3, 2));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("explode").is_err());
        assert!(FaultPlan::parse("drop:entry").is_err());
        assert!(FaultPlan::parse("drop:weird=1").is_err());
        assert!(FaultPlan::parse("delay:dst=1").is_err(), "delay needs secs");
        assert!(FaultPlan::parse("drop:secs=1").is_err(), "secs is delay-only");
        assert!(FaultPlan::parse("delay:secs=-1").is_err());
    }

    #[test]
    fn parse_and_strip_kill_rules() {
        let p = FaultPlan::parse("kill:entry=Done:dst=1:skip=2 ; drop:limit=1").unwrap();
        assert!(p.has_kills());
        assert_eq!(p.rules[0].action, FaultAction::Kill);
        assert_eq!(p.rules[0].dst_pe, Some(1));
        let stripped = p.without_kills().unwrap();
        assert!(!stripped.has_kills());
        assert_eq!(stripped.rules.len(), 1);
        let only_kill = FaultPlan::parse("kill:dst=0").unwrap();
        assert!(only_kill.without_kills().is_none());
        assert!(FaultPlan::parse("kill:secs=1").is_err(), "secs is delay-only");
    }

    #[test]
    fn parse_corrupt_rules() {
        let p = FaultPlan::parse("corrupt:entry=PatchRecvForces:bytes=3:limit=2").unwrap();
        assert_eq!(p.rules[0].action, FaultAction::Corrupt(3));
        assert_eq!(p.rules[0].limit, 2);
        // bytes defaults to 1 and is corrupt-only.
        let p = FaultPlan::parse("corrupt").unwrap();
        assert_eq!(p.rules[0].action, FaultAction::Corrupt(1));
        assert!(FaultPlan::parse("corrupt:bytes=0").is_err());
        assert!(FaultPlan::parse("drop:bytes=1").is_err());
        assert!(FaultPlan::parse("corrupt:secs=1").is_err());
        let st = FaultState::install(FaultPlan::parse("corrupt").unwrap(), &names()).unwrap();
        assert!(st.has_corruption());
        let st = FaultState::install(FaultPlan::parse("drop").unwrap(), &names()).unwrap();
        assert!(!st.has_corruption());
    }

    #[test]
    fn install_rejects_unknown_entries() {
        let plan = FaultPlan::parse("drop:entry=NoSuchEntry").unwrap();
        assert!(FaultState::install(plan, &names()).is_err());
    }

    #[test]
    fn decide_applies_predicates_and_windows() {
        let plan =
            FaultPlan::parse("drop:entry=PatchRecvForces:src=0:skip=1:limit=2").unwrap();
        let mut st = FaultState::install(plan, &names()).unwrap();
        let forces = EntryId(1);
        let done = EntryId(2);
        // Wrong entry / wrong src never fire and never consume the window.
        assert_eq!(st.decide(done, 0, 1), None);
        assert_eq!(st.decide(forces, 1, 0), None);
        // Matching messages: first skipped, next two dropped, then exhausted.
        assert_eq!(st.decide(forces, 0, 1), None);
        assert_eq!(st.decide(forces, 0, 1), Some(FaultAction::Drop));
        assert_eq!(st.decide(forces, 0, 2), Some(FaultAction::Drop));
        assert_eq!(st.decide(forces, 0, 1), None);
    }

    #[test]
    fn first_open_rule_wins() {
        let plan = FaultPlan::new(vec![
            FaultRule::new(FaultAction::Drop).window(0, 1),
            FaultRule::new(FaultAction::Duplicate).window(0, u64::MAX),
        ]);
        let mut st = FaultState::install(plan, &names()).unwrap();
        let e = EntryId(0);
        assert_eq!(st.decide(e, 0, 0), Some(FaultAction::Drop));
        assert_eq!(st.decide(e, 0, 0), Some(FaultAction::Duplicate));
        assert_eq!(st.decide(e, 0, 0), Some(FaultAction::Duplicate));
    }
}
