//! The load-balancing measurement database (§2.2, §3.2).
//!
//! The runtime automatically instruments every object: each entry-method
//! execution's CPU time is attributed to the object (for migratable objects)
//! or to the owning PE's *background load* (for non-migratable ones, e.g.
//! inter-cube bond computes and patch integration). Strategies consume a
//! [`LdbSnapshot`] and produce a new object→PE mapping; the framework
//! applies it by migrating objects.

use crate::msg::{ObjId, Pe};
use std::collections::HashMap;

/// Per-object measured data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjLoad {
    pub obj: ObjId,
    pub pe: Pe,
    /// Accumulated handler CPU time since the last reset, seconds.
    pub load: f64,
    pub migratable: bool,
}

/// A point-in-time copy of the database, handed to strategies.
#[derive(Debug, Clone, Default)]
pub struct LdbSnapshot {
    pub objects: Vec<ObjLoad>,
    /// Non-migratable ("background") load per PE, seconds.
    pub background: Vec<f64>,
    /// Communication graph: (from, to) → (message count, payload bytes).
    pub comm: HashMap<(ObjId, ObjId), (u64, u64)>,
}

impl LdbSnapshot {
    /// Total load per PE (background + migratable objects currently there).
    pub fn pe_loads(&self, n_pes: usize) -> Vec<f64> {
        let mut loads = self.background.clone();
        loads.resize(n_pes, 0.0);
        for o in &self.objects {
            loads[o.pe] += o.load;
        }
        loads
    }

    /// Max/avg load ratio — 1.0 is perfectly balanced.
    pub fn imbalance_ratio(&self, n_pes: usize) -> f64 {
        let loads = self.pe_loads(n_pes);
        let avg = loads.iter().sum::<f64>() / n_pes.max(1) as f64;
        if avg <= 0.0 {
            1.0
        } else {
            loads.iter().copied().fold(0.0, f64::max) / avg
        }
    }
}

/// The live database maintained by the engine.
#[derive(Debug, Default)]
pub struct LdbDatabase {
    obj_load: Vec<f64>,
    migratable: Vec<bool>,
    background: Vec<f64>,
    comm: HashMap<(ObjId, ObjId), (u64, u64)>,
    /// Whether comm-graph recording is on (it costs memory on big runs).
    pub record_comm: bool,
}

impl LdbDatabase {
    pub(crate) fn new(n_pes: usize) -> Self {
        LdbDatabase {
            obj_load: Vec::new(),
            migratable: Vec::new(),
            background: vec![0.0; n_pes],
            comm: HashMap::new(),
            record_comm: false,
        }
    }

    pub(crate) fn on_register(&mut self, migratable: bool) {
        self.obj_load.push(0.0);
        self.migratable.push(migratable);
    }

    /// Attribute `secs` of measured CPU time to `obj` on `pe`.
    pub(crate) fn attribute(&mut self, obj: ObjId, pe: Pe, secs: f64) {
        if self.migratable[obj.idx()] {
            self.obj_load[obj.idx()] += secs;
        } else {
            self.background[pe] += secs;
        }
    }

    /// Record a message on the communication graph.
    pub(crate) fn on_message(&mut self, from: ObjId, to: ObjId, bytes: usize) {
        if self.record_comm {
            let e = self.comm.entry((from, to)).or_insert((0, 0));
            e.0 += 1;
            e.1 += bytes as u64;
        }
    }

    /// Is the object migratable?
    pub fn is_migratable(&self, obj: ObjId) -> bool {
        self.migratable[obj.idx()]
    }

    /// Zero all measurements (start a new measurement window).
    pub fn reset(&mut self) {
        self.obj_load.iter_mut().for_each(|l| *l = 0.0);
        self.background.iter_mut().for_each(|l| *l = 0.0);
        self.comm.clear();
    }

    /// Snapshot the database for a strategy. `obj_pe` supplies the current
    /// object placement (owned by the engine).
    pub fn snapshot(&self, obj_pe: &[Pe]) -> LdbSnapshot {
        LdbSnapshot {
            objects: (0..self.obj_load.len())
                .map(|i| ObjLoad {
                    obj: ObjId(i as u32),
                    pe: obj_pe[i],
                    load: self.obj_load[i],
                    migratable: self.migratable[i],
                })
                .collect(),
            background: self.background.clone(),
            comm: self.comm.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_splits_migratable_and_background() {
        let mut db = LdbDatabase::new(2);
        db.on_register(true); // obj 0
        db.on_register(false); // obj 1
        db.attribute(ObjId(0), 0, 1.5);
        db.attribute(ObjId(1), 1, 2.5);
        let snap = db.snapshot(&[0, 1]);
        assert_eq!(snap.objects[0].load, 1.5);
        assert_eq!(snap.objects[1].load, 0.0); // went to background
        assert_eq!(snap.background[1], 2.5);
    }

    #[test]
    fn pe_loads_combine_background_and_objects() {
        let mut db = LdbDatabase::new(2);
        db.on_register(true);
        db.attribute(ObjId(0), 0, 3.0);
        db.background[1] = 1.0;
        let snap = db.snapshot(&[1]); // object now lives on PE 1
        let loads = snap.pe_loads(2);
        assert_eq!(loads, vec![0.0, 4.0]);
        assert!((snap.imbalance_ratio(2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comm_recording_is_optional() {
        let mut db = LdbDatabase::new(1);
        db.on_register(true);
        db.on_register(true);
        db.on_message(ObjId(0), ObjId(1), 100);
        assert!(db.snapshot(&[0, 0]).comm.is_empty());
        db.record_comm = true;
        db.on_message(ObjId(0), ObjId(1), 100);
        db.on_message(ObjId(0), ObjId(1), 50);
        let snap = db.snapshot(&[0, 0]);
        assert_eq!(snap.comm[&(ObjId(0), ObjId(1))], (2, 150));
    }

    #[test]
    fn reset_clears_measurements() {
        let mut db = LdbDatabase::new(1);
        db.on_register(true);
        db.attribute(ObjId(0), 0, 1.0);
        db.reset();
        let snap = db.snapshot(&[0]);
        assert_eq!(snap.objects[0].load, 0.0);
        assert_eq!(snap.background[0], 0.0);
    }

    #[test]
    fn balanced_load_has_unit_ratio() {
        let mut db = LdbDatabase::new(2);
        db.on_register(true);
        db.on_register(true);
        db.attribute(ObjId(0), 0, 2.0);
        db.attribute(ObjId(1), 1, 2.0);
        let snap = db.snapshot(&[0, 1]);
        assert!((snap.imbalance_ratio(2) - 1.0).abs() < 1e-12);
    }
}
