//! # charmrt — a Charm++/Converse-style message-driven runtime
//!
//! The substrate the paper's parallelization rests on (§2): applications are
//! decomposed into many more *data-driven objects* (chares) than processors;
//! all communication is object-to-object; a per-PE prioritized scheduler
//! picks the next available message and invokes the indicated entry method;
//! the runtime instruments every object and feeds a measurement-based
//! load-balancing framework that can remap objects between processors.
//!
//! ## Execution backends
//!
//! The original ran on real MPPs. Here a single backend-agnostic contract,
//! [`Runtime`], has three implementations:
//!
//! * [`Des`] — a deterministic **discrete-event simulator**: handlers run
//!   immediately (real Rust code mutating real data), while their *cost* —
//!   declared work units plus per-message send/receive/packing overheads —
//!   advances per-PE virtual clocks under a [`machine::MachineModel`].
//!   Scheduling decisions, queue priorities, load measurement, and object
//!   migration behave exactly as on a real machine; only wall-clock duration
//!   is modeled. This is the standard substitution for reproducing
//!   2048-processor scheduling research on a laptop (DESIGN.md §2).
//! * [`ThreadRuntime`] — **real OS worker threads**, one per PE, each with a
//!   prioritized message queue. The same chare graph executes concurrently;
//!   handler cost is *measured* wall-clock time, fed into the identical
//!   instrumentation so the measurement-based load balancer runs from real
//!   durations.
//! * [`ProcRuntime`] — **real OS processes**, one per PE, exchanging
//!   length-prefixed, CRC-checked frames of packed message bytes over Unix
//!   domain sockets through a thin Converse-style comm layer. The closest
//!   shape to the paper's multi-node deployments: PEs share nothing but
//!   the wire (and the checkpoint directory), and a killed worker is a
//!   real process failure the recovery path must survive.
//!
//! Payloads are owned wire bytes on every backend (see [`wire`]): one
//! pack/unpack boundary, bit-identical trajectories across all three.
//!
//! ## Pieces
//!
//! * [`chare::Chare`], [`chare::Ctx`] — the object model: receive a message,
//!   declare work, send messages (including costed naive/optimized
//!   multicasts, §4.2.3).
//! * [`runtime::Runtime`] — the backend-agnostic contract (register, inject,
//!   run-to-quiescence, migrate, harvest measurements).
//! * [`des::Des`] — the modeled engine: event loop, per-PE prioritized
//!   queues, machine-model costing, migration.
//! * [`threads::ThreadRuntime`] — the real-threads engine: worker threads,
//!   in-flight-counter quiescence, wall-clock measurement.
//! * [`stats::SummaryStats`] — per-entry-method summary profiles (§4.1).
//! * [`trace::Trace`] — Projections-style full traces: grainsize histograms
//!   (Figs 1-2) and text timelines (Figs 3-4).
//! * [`ldb`] — the load-balancing measurement database (§3.2).

// Clippy: indexed loops are kept where they mirror the mathematical
// notation of the kernels and the per-axis geometry code, and chare/builder
// constructors take positional wiring arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![allow(clippy::field_reassign_with_default)]
pub mod chare;
pub mod collectives;
pub mod des;
pub mod fault;
pub mod ldb;
pub mod msg;
pub mod proc;
pub mod runtime;
pub mod sched;
pub mod stats;
pub mod threads;
pub mod trace;
pub mod wire;

pub use chare::{Chare, Ctx, MulticastMode};
pub use collectives::{tree_children, tree_depth, tree_parent, TreeNode};
pub use des::Des;
pub use fault::{FaultAction, FaultPlan, FaultRule};
pub use ldb::{LdbDatabase, LdbSnapshot, ObjLoad};
pub use msg::{EntryId, ObjId, Payload, Pe, Priority, PRIO_HIGH, PRIO_LOW, PRIO_NORMAL};
pub use proc::ProcRuntime;
pub use runtime::{RunStall, Runtime};
pub use sched::{SchedulePolicy, SchedulePolicyKind};
pub use stats::SummaryStats;
pub use threads::ThreadRuntime;
pub use trace::{Histogram, Trace, TraceEvent};
pub use wire::{Dec, Enc, EntryTable, WireCodec, WireError, WireMsg};
