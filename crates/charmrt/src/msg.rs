//! Message and identifier types for the message-driven runtime.

/// A (virtual) processor index.
pub type Pe = usize;

/// Identifier of a data-driven object (chare) registered with the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Index into runtime tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an entry method. Entry methods are registered by name so
/// the summary-profile instrumentation can report per-method times, exactly
/// like the Charm++ summary profiles described in §4.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryId(pub u16);

impl EntryId {
    /// Index into runtime tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Message priority: smaller values are scheduled first (like a nice level).
/// The per-PE scheduler is a prioritized queue, "the scheduler repeatedly
/// picks the next available message" — ties break by arrival order.
pub type Priority = i32;

/// Default priority for ordinary messages.
pub const PRIO_NORMAL: Priority = 0;
/// Priority for messages on the critical path (e.g. coordinate multicasts).
pub const PRIO_HIGH: Priority = -10;
/// Priority for background/bookkeeping messages.
pub const PRIO_LOW: Priority = 10;

/// Message payload: owned wire bytes. Message types implement
/// [`WireCodec`](crate::wire::WireCodec) (`pack`/`unpack` on the `ckpt`
/// little-endian codec), so the *same* bytes flow through the DES backend,
/// the threads backend, and — framed over Unix domain sockets — the
/// multi-process backend. Signal-only messages carry `Vec::new()`.
pub type Payload = Vec<u8>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_and_entry_ids_roundtrip() {
        assert_eq!(ObjId(7).idx(), 7);
        assert_eq!(EntryId(3).idx(), 3);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the convention
    fn priority_ordering_convention() {
        assert!(PRIO_HIGH < PRIO_NORMAL);
        assert!(PRIO_NORMAL < PRIO_LOW);
    }

    #[test]
    fn signal_payloads_are_empty_byte_vectors() {
        let p: Payload = Vec::new();
        assert!(p.is_empty());
    }
}
