//! Multi-process execution backend: one OS process per PE, exchanging
//! length-prefixed, CRC-checked frames of packed message bytes over Unix
//! domain sockets.
//!
//! This is the closest shape in the repo to the paper's real deployments:
//! PEs share *nothing* but the wire (and the filesystem), so every byte a
//! handler consumes arrived as a packed [`WireMsg`] and every result the
//! parent reads back crossed the process boundary explicitly — via
//! [`Chare::harvest_state`] per object, or the runtime-level shared hooks
//! ([`crate::Runtime::set_shared_hooks`]) for process-global accumulators.
//!
//! ## Topology and lifecycle
//!
//! The parent binds one `UnixListener` per PE *before* forking (no
//! bind/connect race) and creates one socketpair control channel per
//! child. Each child `p` connects to every lower-numbered peer's listener
//! (announcing itself with a `Hello` frame) and accepts one connection
//! from every higher-numbered peer — a full mesh of n−1 streams. After
//! the mesh is up the child reports `Ready`; once all are ready the
//! parent broadcasts `Go` with the pid map (kill faults need real pids).
//! Bootstrap messages are inherited through `fork` — injection is
//! parent-side by definition — and enqueued when `Go` arrives.
//!
//! A child runs one scheduler thread (prioritized heap, same dequeue key
//! as the other backends) plus one reader thread per peer stream and one
//! control-reader thread — a miniature Converse comm layer.
//!
//! ## Quiescence
//!
//! The parent runs a Mattern-style double poll over the control channels:
//! it probes every child for `(idle, frames sent, frames received,
//! handlers executed)` and declares quiescence only after two consecutive
//! rounds that are identical, all-idle, and channel-balanced
//! (Σsent = Σreceived). It then broadcasts `Drain`: each child discards
//! whatever is still queued (counted as discarded), writes a `FlushMark`
//! on every peer stream, waits until the matching `FlushMark` has arrived
//! from each peer (counting stragglers as discarded too), ships its
//! measurements and harvested state back in a `Results` frame, and
//! `_exit`s. `Ctx::stop` short-circuits the poll: the stopping child
//! reports `Stopped` and the parent drains everyone immediately.
//!
//! ## Failure semantics
//!
//! A [`FaultAction::Kill`] rule maps to a real `SIGKILL` of the
//! destination child, delivered by the *sending* child (it has the pid
//! map). The parent observes the death — a `Killed` control frame from
//! the sender, the victim's control-stream EOF, and `waitpid` — fells the
//! remaining children, and returns [`RunStall`] with
//! [`ProcRuntime::crashed`] set, exactly the contract the
//! checkpoint/recovery layer expects. A crashed run's statistics are
//! necessarily partial: the dead processes take their counters with
//! them. Other fault actions (drop/dup/delay/corrupt) are rejected at
//! plan installation — they are exercised on the DES and threads
//! backends, and wire corruption is already covered end-to-end by the
//! frame CRC. Fault occurrence counters are per-process here, so scope
//! rules with `src=` when exact occurrence windows matter.
//!
//! ## State return
//!
//! Handlers mutate memory owned by a *child*; the parent's copies are
//! untouched (copy-on-write). After a clean drain each child harvests
//! every object it owns ([`Chare::harvest_state`]) plus the shared hook,
//! and the parent applies the bytes in PE order
//! ([`Chare::merge_state`] / the merge hook) — so `Runtime::object` reads
//! the post-run state just as on the shared-memory backends, provided the
//! chare implements the pair. Filesystem effects (checkpoints) need no
//! harvesting: children write them durably in place.

use crate::chare::{Chare, Ctx};
use crate::fault::{FaultAction, FaultPlan, FaultState};
use crate::ldb::LdbDatabase;
use crate::msg::{EntryId, ObjId, Payload, Pe, Priority};
use crate::runtime::{RunStall, Runtime};
use crate::sched::SchedulePolicy;
use crate::stats::SummaryStats;
use crate::trace::{Trace, TraceEvent};
use crate::wire::{read_frame, write_frame, Dec, Enc, WireCodec, WireError, WireMsg};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtOrd};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------------------
// Minimal libc surface. The build has no `libc` crate; these five calls
// are all the process management the backend needs.
extern "C" {
    fn fork() -> i32;
    fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
    fn kill(pid: i32, sig: i32) -> i32;
    fn getpid() -> i32;
    fn _exit(code: i32) -> !;
}

const WNOHANG: i32 = 1;
const SIGKILL: i32 = 9;

/// `WIFSIGNALED` without libc: low 7 bits are the terminating signal and
/// the value is neither "exited" (0) nor "stopped" (0x7f).
fn term_signal(status: i32) -> Option<i32> {
    let sig = status & 0x7f;
    if sig != 0 && sig != 0x7f {
        Some(sig)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Frame tags. Control frames flow on the per-child socketpair; peer
// frames on the mesh streams. One tag byte, then a tag-specific body.
const TAG_GO: u8 = 0;
const TAG_PROBE: u8 = 1;
const TAG_DRAIN: u8 = 2;
const TAG_READY: u8 = 3;
const TAG_STATUS: u8 = 4;
const TAG_STOPPED: u8 = 5;
const TAG_KILLED: u8 = 6;
const TAG_RESULTS: u8 = 7;
const TAG_MSG: u8 = 8;
const TAG_FLUSH: u8 = 9;
const TAG_HELLO: u8 = 10;

/// A queued message awaiting execution inside a worker process. Identical
/// ordering contract to the threads backend's queue entry.
struct PMsg {
    key: (i64, u64),
    seq: u64,
    priority: Priority,
    bytes: usize,
    to: ObjId,
    entry: EntryId,
    payload: Payload,
    path: f64,
}

impl PartialEq for PMsg {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for PMsg {}
impl PartialOrd for PMsg {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PMsg {
    // Max-heap → invert for smallest (key, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

/// State shared between a child's scheduler, its peer readers, and its
/// control reader.
struct ChildShared {
    heap: Mutex<BinaryHeap<PMsg>>,
    available: Condvar,
    seq: AtomicU64,
    /// Scheduler is between a dequeue and finishing that handler's sends.
    /// Set while the heap lock is held at dequeue, so `idle` can never
    /// observe "empty heap, not busy" mid-handler.
    busy: AtomicBool,
    /// Parent ordered a drain (quiescence or stop).
    drain: AtomicBool,
    /// `FlushMark` received from this peer (self slot starts true).
    flush_seen: Vec<AtomicBool>,
    /// Cross-process message frames written to / read from peers.
    sent_x: AtomicU64,
    recv_x: AtomicU64,
    /// Handler executions completed.
    executed: AtomicU64,
    policy: SchedulePolicy,
}

impl ChildShared {
    fn enqueue(
        &self,
        priority: Priority,
        bytes: usize,
        to: ObjId,
        entry: EntryId,
        payload: Payload,
        path: f64,
    ) {
        let seq = self.seq.fetch_add(1, AtOrd::SeqCst);
        let key = self.policy.key(priority, seq);
        let mut heap = self.heap.lock().unwrap();
        heap.push(PMsg { key, seq, priority, bytes, to, entry, payload, path });
        self.available.notify_all();
    }

    fn idle(&self) -> bool {
        let heap = self.heap.lock().unwrap();
        heap.is_empty() && !self.busy.load(AtOrd::SeqCst)
    }
}

/// One child's measurements and harvested state, decoded from `Results`.
struct ChildResults {
    pe: Pe,
    busy: f64,
    last_end: f64,
    critical_path: f64,
    executed: u64,
    discarded: u64,
    msgs_sent: u64,
    bytes_sent: u64,
    entry_time: Vec<f64>,
    entry_count: Vec<u64>,
    wire_msgs: Vec<u64>,
    wire_bytes: Vec<u64>,
    obj_secs: Vec<(ObjId, f64)>,
    trace: Vec<TraceEvent>,
    harvests: Vec<(ObjId, Vec<u8>)>,
    shared: Vec<u8>,
}

impl ChildResults {
    fn decode(bytes: &[u8], n_entries: usize) -> Result<ChildResults, WireError> {
        let mut d = Dec::new(bytes);
        let pe = d.u32("pe")? as usize;
        let busy = d.f64("busy")?;
        let last_end = d.f64("last_end")?;
        let critical_path = d.f64("critical_path")?;
        let executed = d.u64("executed")?;
        let discarded = d.u64("discarded")?;
        let msgs_sent = d.u64("msgs_sent")?;
        let bytes_sent = d.u64("bytes_sent")?;
        let mut entry_time = Vec::with_capacity(n_entries);
        let mut entry_count = Vec::with_capacity(n_entries);
        let mut wire_msgs = Vec::with_capacity(n_entries);
        let mut wire_bytes = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            entry_time.push(d.f64("entry_time")?);
            entry_count.push(d.u64("entry_count")?);
            wire_msgs.push(d.u64("wire_msgs")?);
            wire_bytes.push(d.u64("wire_bytes")?);
        }
        let n_obj = d.u64("n_obj_secs")? as usize;
        let mut obj_secs = Vec::with_capacity(n_obj);
        for _ in 0..n_obj {
            obj_secs.push((ObjId(d.u32("obj")?), d.f64("secs")?));
        }
        let n_trace = d.u64("n_trace")? as usize;
        let mut trace = Vec::with_capacity(n_trace);
        for _ in 0..n_trace {
            trace.push(TraceEvent {
                pe,
                obj: ObjId(d.u32("t_obj")?),
                entry: EntryId(d.u16("t_entry")?),
                start: d.f64("t_start")?,
                end: d.f64("t_end")?,
                wall: d.f64("t_wall")?,
            });
        }
        let n_harvest = d.u64("n_harvest")? as usize;
        let mut harvests = Vec::with_capacity(n_harvest);
        for _ in 0..n_harvest {
            harvests.push((ObjId(d.u32("h_obj")?), d.bytes("h_state")?));
        }
        let shared = d.bytes("shared")?;
        if d.remaining() != 0 {
            return Err(WireError(format!("{} trailing bytes in Results", d.remaining())));
        }
        Ok(ChildResults {
            pe,
            busy,
            last_end,
            critical_path,
            executed,
            discarded,
            msgs_sent,
            bytes_sent,
            entry_time,
            entry_count,
            wire_msgs,
            wire_bytes,
            obj_secs,
            trace,
            harvests,
            shared,
        })
    }
}

/// Events the parent's per-child control readers feed into its main loop.
enum Event {
    Ready(Pe),
    Status { pe: Pe, round: u64, idle: bool, sent: u64, recv: u64, executed: u64 },
    Stopped(Pe),
    Killed { dst: Pe },
    Results(Pe, Vec<u8>),
    /// Control stream closed or errored before `Results` arrived.
    Gone(Pe),
}

/// Multi-process [`Runtime`] backend. See the module docs.
pub struct ProcRuntime {
    n_pes: usize,
    objects: Vec<Option<Box<dyn Chare>>>,
    obj_pe: Vec<Pe>,
    injected: Vec<(ObjId, EntryId, usize, Priority, Payload, f64)>,
    tracing: bool,
    policy: SchedulePolicy,
    fault: Option<FaultState>,
    /// Where the per-PE listener sockets live. Unix socket paths are
    /// limited to ~107 bytes, so this defaults to a short directory under
    /// the system temp dir, unique per runtime.
    socket_dir: PathBuf,
    /// No-progress window after which the run is declared stalled and the
    /// children felled. Generous: real processes start slowly.
    stall_timeout: Duration,
    harvest_hook: Option<Box<dyn Fn() -> Payload + Send + Sync>>,
    merge_hook: Option<Box<dyn FnMut(Pe, &[u8]) -> Result<(), WireError> + Send>>,
    /// Summary-profile instrumentation (measured wall-clock, merged from
    /// the children's `Results` frames).
    pub stats: SummaryStats,
    /// Full event trace (opt-in via `set_tracing`).
    pub trace: Trace,
    /// Load-balancing measurement database (measured wall-clock).
    pub ldb: LdbDatabase,
    crashed: Option<Pe>,
}

/// Distinguishes concurrently-constructed runtimes in one parent process.
static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

impl ProcRuntime {
    /// Create a runtime that will fork `n_pes` worker processes per run.
    pub fn new(n_pes: usize) -> Self {
        assert!(n_pes > 0, "need at least one worker process");
        let dir = std::env::temp_dir().join(format!(
            "namd-proc-{}-{}",
            unsafe { getpid() },
            DIR_COUNTER.fetch_add(1, AtOrd::SeqCst)
        ));
        ProcRuntime {
            n_pes,
            objects: Vec::new(),
            obj_pe: Vec::new(),
            injected: Vec::new(),
            tracing: false,
            policy: SchedulePolicy::default(),
            fault: None,
            socket_dir: dir,
            stall_timeout: Duration::from_millis(2000),
            harvest_hook: None,
            merge_hook: None,
            stats: SummaryStats::new(n_pes),
            trace: Trace::default(),
            ldb: LdbDatabase::new(n_pes),
            crashed: None,
        }
    }

    /// Number of worker processes per run.
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// Override where the per-PE listener sockets are created. Keep it
    /// short: Unix socket paths are limited to ~107 bytes.
    pub fn set_socket_dir(&mut self, dir: PathBuf) {
        self.socket_dir = dir;
    }

    /// The PE whose process died during any run of this runtime, if any.
    pub fn crashed(&self) -> Option<Pe> {
        self.crashed
    }

    /// Set the schedule-perturbation policy for subsequent deliveries.
    pub fn set_schedule_policy(&mut self, policy: SchedulePolicy) {
        self.policy = policy;
    }

    /// Install a fault plan. Only [`FaultAction::Kill`] rules are
    /// supported on this backend (see the module docs); panics on other
    /// actions or on a rule naming an unregistered entry method.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            plan.rules.iter().all(|r| r.action == FaultAction::Kill),
            "the proc backend supports kill fault rules only"
        );
        self.fault =
            Some(FaultState::install(plan, &self.stats.entry_names).expect("bad fault plan"));
    }

    /// Shrink the no-progress watchdog window (tests; default 2 s).
    pub fn set_stall_timeout(&mut self, timeout: Duration) {
        self.stall_timeout = timeout;
    }

    /// Run to quiescence (or `Ctx::stop`) on real worker processes.
    /// Returns the makespan: the latest handler end time in wall seconds
    /// from a child epoch. Panics on a stall — use
    /// [`ProcRuntime::try_run`] when kills are expected.
    pub fn run(&mut self) -> f64 {
        self.try_run().expect("quiescence unreachable")
    }

    /// Like [`ProcRuntime::run`], but a wedged or crashed run is returned
    /// as [`RunStall`] (check [`ProcRuntime::crashed`] to tell a real
    /// process death from a stall). Unlike the shared-memory backends, a
    /// crashed run loses the children's in-memory state — recover from a
    /// checkpoint, not by redelivery.
    pub fn try_run(&mut self) -> Result<f64, RunStall> {
        if self.injected.is_empty() {
            return Ok(0.0);
        }
        std::fs::create_dir_all(&self.socket_dir)
            .unwrap_or_else(|e| panic!("cannot create socket dir {:?}: {e}", self.socket_dir));

        // Bind every listener and build every control pair *before* the
        // first fork: children connect to already-bound sockets (the
        // backlog holds early connects) and inherit their own pair end.
        let listeners: Vec<UnixListener> = (0..self.n_pes)
            .map(|p| {
                let path = self.sock_path(p);
                let _ = std::fs::remove_file(&path);
                UnixListener::bind(&path).unwrap_or_else(|e| panic!("cannot bind {path:?}: {e}"))
            })
            .collect();
        let mut pairs: Vec<Option<(UnixStream, UnixStream)>> = (0..self.n_pes)
            .map(|_| Some(UnixStream::pair().expect("socketpair failed")))
            .collect();

        // Route bootstrap messages to their destination PE; each child
        // inherits its slice through fork.
        let mut bootstrap: Vec<Vec<PMsg>> = (0..self.n_pes).map(|_| Vec::new()).collect();
        let injected: Vec<_> = self.injected.drain(..).collect();
        self.stats.msgs_injected += injected.len() as u64;
        for (to, entry, bytes, priority, payload, path) in injected {
            let dst = self.obj_pe[to.idx()];
            // key/seq are assigned at enqueue time in the child.
            bootstrap[dst].push(PMsg { key: (0, 0), seq: 0, priority, bytes, to, entry, payload, path });
        }

        // Flush inherited stdio buffers so children don't replay them.
        let _ = std::io::stdout().flush();
        let _ = std::io::stderr().flush();

        let mut pids: Vec<i32> = Vec::with_capacity(self.n_pes);
        for p in 0..self.n_pes {
            let pid = unsafe { fork() };
            assert!(pid >= 0, "fork failed");
            if pid == 0 {
                // Child: shed every inherited stream that is not ours,
                // then never return — even on panic — so the parent's
                // test harness or CLI is never re-entered from here.
                let my_ctrl = pairs[p].take().map(|(_parent, child)| child).unwrap();
                drop(pairs);
                let my_boot = std::mem::take(&mut bootstrap[p]);
                drop(bootstrap);
                let my_listener = listeners.into_iter().nth(p).unwrap();
                let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.child_main(p, my_listener, my_ctrl, my_boot)
                }))
                .is_ok();
                let _ = std::io::stderr().flush();
                unsafe { _exit(if ok { 0 } else { 101 }) }
            }
            pids.push(pid);
        }
        // Parent: close the children's pair ends and the listeners.
        drop(listeners);
        let ctrls: Vec<UnixStream> = pairs.into_iter().map(|pair| pair.unwrap().0).collect();
        let outcome = self.parent_loop(ctrls, pids);
        for p in 0..self.n_pes {
            let _ = std::fs::remove_file(self.sock_path(p));
        }
        outcome
    }

    fn sock_path(&self, pe: Pe) -> PathBuf {
        self.socket_dir.join(format!("pe{pe}.sock"))
    }

    // -----------------------------------------------------------------
    // Parent side.

    fn parent_loop(&mut self, ctrls: Vec<UnixStream>, pids: Vec<i32>) -> Result<f64, RunStall> {
        let n = self.n_pes;
        let (tx, rx) = mpsc::channel::<Event>();
        let mut writers: Vec<UnixStream> = Vec::with_capacity(n);
        let mut reader_handles = Vec::with_capacity(n);
        for (pe, ctrl) in ctrls.into_iter().enumerate() {
            let reader = ctrl.try_clone().expect("ctrl clone failed");
            writers.push(ctrl);
            let tx = tx.clone();
            reader_handles.push(std::thread::spawn(move || parent_reader(pe, reader, tx)));
        }
        drop(tx);

        let mut ready = vec![false; n];
        let mut results: Vec<Option<ChildResults>> = (0..n).map(|_| None).collect();
        let mut reaped = vec![false; n];
        let mut run_killed = 0u64;
        let mut run_dropped = 0u64;
        let mut crashed: Option<Pe> = None;
        let mut drain_sent = false;
        // Double-poll state: the probe round in flight, this round's
        // statuses, and the last complete round for the stability check.
        let mut round: u64 = 0;
        let mut cur: Vec<Option<(bool, u64, u64, u64)>> = vec![None; n];
        let mut prev_round: Option<Vec<(bool, u64, u64, u64)>> = None;
        let mut last_progress = Instant::now();
        let mut last_executed_sum = 0u64;
        let epoch = Instant::now();

        fn send_all(writers: &mut [UnixStream], body: &[u8]) {
            for w in writers.iter_mut() {
                let _ = write_frame(w, body);
            }
        }

        loop {
            // Reap any dead children; a death before Results is a crash.
            for p in 0..n {
                if reaped[p] {
                    continue;
                }
                let mut status = 0i32;
                let r = unsafe { waitpid(pids[p], &mut status, WNOHANG) };
                if r == pids[p] {
                    reaped[p] = true;
                    if term_signal(status).is_some() && results[p].is_none() {
                        crashed.get_or_insert(p);
                    }
                }
            }
            if let Some(first_dead) = crashed {
                // Fell the survivors: without the dead PE quiescence is
                // unreachable, and the recovery layer restarts from a
                // checkpoint anyway.
                for p in 0..n {
                    if !reaped[p] {
                        unsafe { kill(pids[p], SIGKILL) };
                    }
                }
                finish_run(&mut reaped, &pids, &mut reader_handles);
                self.crashed = self.crashed.or(Some(first_dead));
                self.stats.pes_killed += run_killed.max(1);
                self.stats.msgs_dropped += run_dropped;
                return Err(RunStall {
                    makespan: epoch.elapsed().as_secs_f64(),
                    in_flight: 1,
                    undelivered: 0,
                });
            }

            match rx.recv_timeout(Duration::from_millis(2)) {
                Ok(Event::Ready(pe)) => {
                    ready[pe] = true;
                    if ready.iter().all(|&r| r) {
                        // Everyone's mesh is up: release the herd with the
                        // pid map, then start probing.
                        let mut e = Enc::new();
                        e.u8(TAG_GO);
                        for &pid in &pids {
                            e.i32(pid);
                        }
                        send_all(&mut writers, &e.0);
                        last_progress = Instant::now();
                        round = 1;
                        send_all(&mut writers, &probe_frame(round));
                    }
                }
                Ok(Event::Status { pe, round: r, idle, sent, recv, executed }) => {
                    if r == round {
                        cur[pe] = Some((idle, sent, recv, executed));
                    }
                    if !drain_sent && cur.iter().all(|s| s.is_some()) {
                        let snapshot: Vec<_> = cur.iter().map(|s| s.unwrap()).collect();
                        let executed_sum: u64 = snapshot.iter().map(|s| s.3).sum();
                        if executed_sum != last_executed_sum {
                            last_executed_sum = executed_sum;
                            last_progress = Instant::now();
                        }
                        let all_idle = snapshot.iter().all(|s| s.0);
                        let sent_sum: u64 = snapshot.iter().map(|s| s.1).sum();
                        let recv_sum: u64 = snapshot.iter().map(|s| s.2).sum();
                        let stable = prev_round.as_deref() == Some(&snapshot[..]);
                        if all_idle && sent_sum == recv_sum && stable {
                            drain_sent = true;
                            send_all(&mut writers, &[TAG_DRAIN]);
                        } else {
                            prev_round = Some(snapshot);
                            cur.iter_mut().for_each(|s| *s = None);
                            round += 1;
                            std::thread::sleep(Duration::from_millis(1));
                            send_all(&mut writers, &probe_frame(round));
                        }
                    }
                }
                Ok(Event::Stopped(_pe)) => {
                    if !drain_sent {
                        drain_sent = true;
                        send_all(&mut writers, &[TAG_DRAIN]);
                    }
                }
                Ok(Event::Killed { dst }) => {
                    run_killed += 1;
                    run_dropped += 1;
                    crashed.get_or_insert(dst);
                }
                Ok(Event::Results(pe, bytes)) => {
                    let n_entries = self.stats.entry_names.len();
                    match ChildResults::decode(&bytes, n_entries) {
                        Ok(r) => results[pe] = Some(r),
                        Err(e) => panic!("malformed Results frame from PE {pe}: {e}"),
                    }
                    if results.iter().all(|r| r.is_some()) {
                        finish_run(&mut reaped, &pids, &mut reader_handles);
                        let makespan = self
                            .merge_results(results.into_iter().map(Option::unwrap).collect());
                        return Ok(makespan);
                    }
                }
                Ok(Event::Gone(pe)) => {
                    if results[pe].is_none() {
                        crashed.get_or_insert(pe);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    if let Some(first) = results.iter().position(|r| r.is_none()) {
                        crashed.get_or_insert(first);
                    }
                }
            }

            if last_progress.elapsed() >= self.stall_timeout {
                for p in 0..n {
                    if !reaped[p] {
                        unsafe { kill(pids[p], SIGKILL) };
                    }
                }
                finish_run(&mut reaped, &pids, &mut reader_handles);
                self.stats.pes_killed += run_killed;
                self.stats.msgs_dropped += run_dropped;
                self.crashed = self.crashed.or(crashed);
                return Err(RunStall {
                    makespan: epoch.elapsed().as_secs_f64(),
                    in_flight: 0,
                    undelivered: 0,
                });
            }
        }
    }

    /// Fold the children's `Results` frames into the runtime's
    /// instrumentation, per-object harvested state, and shared hooks.
    fn merge_results(&mut self, mut results: Vec<ChildResults>) -> f64 {
        results.sort_by_key(|r| r.pe);
        let mut makespan = 0.0f64;
        for r in results {
            self.stats.pe_busy[r.pe] += r.busy;
            self.stats.critical_path = self.stats.critical_path.max(r.critical_path);
            for i in 0..r.entry_time.len() {
                self.stats.entry_time[i] += r.entry_time[i];
                self.stats.entry_count[i] += r.entry_count[i];
                self.stats.entry_wire_msgs[i] += r.wire_msgs[i];
                self.stats.entry_wire_bytes[i] += r.wire_bytes[i];
            }
            self.stats.msgs_sent += r.msgs_sent;
            self.stats.bytes_sent += r.bytes_sent;
            self.stats.msgs_received += r.executed;
            self.stats.msgs_discarded += r.discarded;
            for (obj, secs) in r.obj_secs {
                self.ldb.attribute(obj, r.pe, secs);
            }
            if self.tracing {
                for ev in r.trace {
                    self.trace.record(ev);
                }
            }
            for (obj, bytes) in r.harvests {
                self.objects[obj.idx()]
                    .as_deref_mut()
                    .expect("harvest for unregistered object")
                    .merge_state(&bytes)
                    .unwrap_or_else(|e| panic!("merge_state failed for {obj:?}: {e}"));
            }
            if let Some(merge) = self.merge_hook.as_mut() {
                merge(r.pe, &r.shared)
                    .unwrap_or_else(|e| panic!("shared merge failed for PE {}: {e}", r.pe));
            }
            makespan = makespan.max(r.last_end);
        }
        makespan
    }

    // -----------------------------------------------------------------
    // Child side.

    /// Everything one worker process does, from mesh setup to `Results`.
    /// The caller `_exit`s when this returns (or panics).
    fn child_main(
        &mut self,
        pe: Pe,
        listener: UnixListener,
        ctrl: UnixStream,
        bootstrap: Vec<PMsg>,
    ) {
        // Build the peer mesh: connect downward, accept upward.
        let mut peers: Vec<Option<UnixStream>> = (0..self.n_pes).map(|_| None).collect();
        for q in 0..pe {
            let mut s = UnixStream::connect(self.sock_path(q))
                .unwrap_or_else(|e| panic!("PE {pe}: connect to {q} failed: {e}"));
            let mut hello = Enc::new();
            hello.u8(TAG_HELLO);
            hello.u32(pe as u32);
            write_frame(&mut s, &hello.0).expect("hello write failed");
            peers[q] = Some(s);
        }
        for _ in pe + 1..self.n_pes {
            let (mut s, _) = listener.accept().expect("accept failed");
            let body = read_frame(&mut s)
                .expect("hello read failed")
                .expect("peer closed before hello");
            let mut d = Dec::new(&body);
            assert_eq!(d.u8("tag").unwrap(), TAG_HELLO, "expected Hello");
            let q = d.u32("peer").unwrap() as usize;
            peers[q] = Some(s);
        }
        drop(listener);

        let mut ctrl_write = ctrl.try_clone().expect("ctrl clone failed");
        let mut ctrl_read = ctrl;
        write_frame(&mut ctrl_write, &[TAG_READY]).expect("ready write failed");

        // Block until Go: the pid map. Bootstrap messages were inherited.
        let go = read_frame(&mut ctrl_read)
            .expect("go read failed")
            .expect("parent closed before go");
        let mut d = Dec::new(&go);
        assert_eq!(d.u8("tag").unwrap(), TAG_GO, "expected Go");
        let pids: Vec<i32> = (0..self.n_pes).map(|_| d.i32("pid").unwrap()).collect();

        let shared = ChildShared {
            heap: Mutex::new(BinaryHeap::new()),
            available: Condvar::new(),
            seq: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            flush_seen: (0..self.n_pes).map(|q| AtomicBool::new(q == pe)).collect(),
            sent_x: AtomicU64::new(0),
            recv_x: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            policy: self.policy,
        };
        for m in bootstrap {
            shared.enqueue(m.priority, m.bytes, m.to, m.entry, m.payload, m.path);
        }

        let ctrl_mutex = Mutex::new(ctrl_write);
        std::thread::scope(|scope| {
            // Peer readers: decode frames into the scheduler heap.
            for (q, stream) in peers.iter().enumerate() {
                let Some(stream) = stream.as_ref() else { continue };
                let mut rd = stream.try_clone().expect("peer clone failed");
                let shared = &shared;
                scope.spawn(move || loop {
                    match read_frame(&mut rd) {
                        Ok(Some(body)) => match body.first().copied() {
                            Some(TAG_MSG) => {
                                let m = WireMsg::unpack(&body[1..]).expect("bad wire msg");
                                shared.recv_x.fetch_add(1, AtOrd::SeqCst);
                                shared.enqueue(
                                    m.priority,
                                    m.bytes as usize,
                                    m.to,
                                    m.entry,
                                    m.payload,
                                    m.path,
                                );
                            }
                            Some(TAG_FLUSH) => {
                                shared.flush_seen[q].store(true, AtOrd::SeqCst);
                                return;
                            }
                            t => panic!("unexpected peer frame tag {t:?}"),
                        },
                        // Peer death (or torn stream): no more can arrive.
                        Ok(None) | Err(_) => {
                            shared.flush_seen[q].store(true, AtOrd::SeqCst);
                            return;
                        }
                    }
                });
            }
            // Control reader: answer probes, latch the drain flag.
            {
                let shared = &shared;
                let ctrl_mutex = &ctrl_mutex;
                scope.spawn(move || loop {
                    match read_frame(&mut ctrl_read) {
                        Ok(Some(body)) => match body.first().copied() {
                            Some(TAG_PROBE) => {
                                let mut d = Dec::new(&body[1..]);
                                let round = d.u64("round").unwrap_or(0);
                                let mut e = Enc::new();
                                e.u8(TAG_STATUS);
                                e.u64(round);
                                e.u8(shared.idle() as u8);
                                e.u64(shared.sent_x.load(AtOrd::SeqCst));
                                e.u64(shared.recv_x.load(AtOrd::SeqCst));
                                e.u64(shared.executed.load(AtOrd::SeqCst));
                                let mut w = ctrl_mutex.lock().unwrap();
                                if write_frame(&mut *w, &e.0).is_err() {
                                    return;
                                }
                            }
                            Some(TAG_DRAIN) => {
                                shared.drain.store(true, AtOrd::SeqCst);
                                let _guard = shared.heap.lock().unwrap();
                                shared.available.notify_all();
                                return;
                            }
                            t => panic!("unexpected control frame tag {t:?}"),
                        },
                        Ok(None) | Err(_) => return,
                    }
                });
            }
            // The scheduler runs on this (main) thread.
            self.child_scheduler(pe, &shared, &mut peers, &pids, &ctrl_mutex);
        });
    }

    /// The child's per-PE scheduler: pop, execute, route sends; on drain,
    /// flush the mesh and ship `Results`.
    fn child_scheduler(
        &mut self,
        pe: Pe,
        shared: &ChildShared,
        peers: &mut [Option<UnixStream>],
        pids: &[i32],
        ctrl: &Mutex<UnixStream>,
    ) {
        let n_entries = self.stats.entry_names.len();
        let epoch = Instant::now();
        let epoch_wall = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let mut busy = 0.0f64;
        let mut last_end = 0.0f64;
        let mut critical_path = 0.0f64;
        let mut entry_time = vec![0.0f64; n_entries];
        let mut entry_count = vec![0u64; n_entries];
        let mut wire_msgs = vec![0u64; n_entries];
        let mut wire_bytes = vec![0u64; n_entries];
        let mut msgs_sent = 0u64;
        let mut bytes_sent = 0u64;
        let mut discarded = 0u64;
        let mut obj_secs: Vec<(ObjId, f64)> = Vec::new();
        let mut trace: Vec<TraceEvent> = Vec::new();
        let mut stopped = false;

        loop {
            // Dequeue the next message, or learn we must drain. `busy` is
            // raised under the heap lock so the probe responder can never
            // see "empty and not busy" while a handler is pending.
            let msg = {
                let mut heap = shared.heap.lock().unwrap();
                loop {
                    if shared.drain.load(AtOrd::SeqCst) {
                        discarded += heap.len() as u64;
                        heap.clear();
                        break None;
                    }
                    if !stopped {
                        if let Some(m) = heap.pop() {
                            shared.busy.store(true, AtOrd::SeqCst);
                            break Some(m);
                        }
                    }
                    let (guard, _) =
                        shared.available.wait_timeout(heap, Duration::from_millis(50)).unwrap();
                    heap = guard;
                }
            };
            let Some(msg) = msg else { break };

            let start = epoch.elapsed().as_secs_f64();
            let mut ctx = Ctx::new(pe, start, msg.to, self.n_pes);
            ctx.distributed = true;
            let obj = self.objects[msg.to.idx()]
                .as_deref_mut()
                .expect("message routed to a process that does not own the object");
            obj.receive(msg.entry, msg.payload, &mut ctx);
            let end = epoch.elapsed().as_secs_f64();

            let secs = end - start;
            let end_path = msg.path + secs;
            critical_path = critical_path.max(end_path);
            busy += secs;
            entry_time[msg.entry.idx()] += secs;
            entry_count[msg.entry.idx()] += 1;
            obj_secs.push((msg.to, secs));
            last_end = last_end.max(end);
            if self.tracing {
                trace.push(TraceEvent {
                    pe,
                    obj: msg.to,
                    entry: msg.entry,
                    start,
                    end,
                    wall: epoch_wall + start,
                });
            }
            shared.executed.fetch_add(1, AtOrd::SeqCst);

            let stop = ctx.stop;
            for s in ctx.sends.drain(..) {
                msgs_sent += 1;
                bytes_sent += s.bytes as u64;
                wire_msgs[s.entry.idx()] += 1;
                wire_bytes[s.entry.idx()] += s.payload.len() as u64;
                let dst = self.obj_pe[s.to.idx()];
                let fate = self.fault.as_mut().and_then(|f| f.decide(s.entry, pe, dst));
                if matches!(fate, Some(FaultAction::Kill)) {
                    // A real process death: SIGKILL the destination; the
                    // message dies with it. Tell the parent which PE we
                    // felled *first*, so the crash is attributed even if
                    // the waitpid race is lost (the Killed frame is
                    // already buffered when we kill — even ourselves).
                    let mut e = Enc::new();
                    e.u8(TAG_KILLED);
                    e.u32(dst as u32);
                    {
                        let mut w = ctrl.lock().unwrap();
                        let _ = write_frame(&mut *w, &e.0);
                    }
                    unsafe { kill(pids[dst], SIGKILL) };
                    continue;
                }
                if dst == pe {
                    shared.enqueue(s.priority, s.bytes, s.to, s.entry, s.payload, end_path);
                } else {
                    let m = WireMsg {
                        to: s.to,
                        entry: s.entry,
                        src: pe,
                        dst,
                        priority: s.priority,
                        bytes: s.bytes as u64,
                        path: end_path,
                        payload: s.payload,
                    };
                    let mut body = Vec::with_capacity(64 + m.payload.len());
                    body.push(TAG_MSG);
                    body.extend_from_slice(&m.pack());
                    shared.sent_x.fetch_add(1, AtOrd::SeqCst);
                    let stream = peers[dst].as_mut().expect("no stream to peer");
                    if write_frame(stream, &body).is_err() {
                        // Peer died mid-send (a kill rule fired): this
                        // process can make no further progress.
                        unsafe { _exit(3) }
                    }
                }
            }
            shared.busy.store(false, AtOrd::SeqCst);
            if stop && !stopped {
                stopped = true;
                let mut w = ctrl.lock().unwrap();
                let _ = write_frame(&mut *w, &[TAG_STOPPED]);
            }
        }

        // Drain: mark every outgoing stream, then wait until every peer's
        // mark has arrived — stream FIFO order guarantees no message from
        // that peer can still be in flight behind its mark.
        for stream in peers.iter_mut().flatten() {
            let _ = write_frame(stream, &[TAG_FLUSH]);
        }
        while !shared.flush_seen.iter().all(|f| f.load(AtOrd::SeqCst)) {
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let mut heap = shared.heap.lock().unwrap();
            discarded += heap.len() as u64;
            heap.clear();
        }

        // Ship measurements and harvested state back to the parent.
        let mut e = Enc::new();
        e.u8(TAG_RESULTS);
        e.u32(pe as u32);
        e.f64(busy);
        e.f64(last_end);
        e.f64(critical_path);
        e.u64(shared.executed.load(AtOrd::SeqCst));
        e.u64(discarded);
        e.u64(msgs_sent);
        e.u64(bytes_sent);
        for i in 0..n_entries {
            e.f64(entry_time[i]);
            e.u64(entry_count[i]);
            e.u64(wire_msgs[i]);
            e.u64(wire_bytes[i]);
        }
        e.u64(obj_secs.len() as u64);
        for (o, s) in &obj_secs {
            e.u32(o.0);
            e.f64(*s);
        }
        e.u64(trace.len() as u64);
        for ev in &trace {
            e.u32(ev.obj.0);
            e.u16(ev.entry.0);
            e.f64(ev.start);
            e.f64(ev.end);
            e.f64(ev.wall);
        }
        let mut harvests: Vec<(u32, Payload)> = Vec::new();
        for (idx, slot) in self.objects.iter().enumerate() {
            if self.obj_pe[idx] != pe {
                continue;
            }
            if let Some(obj) = slot.as_deref() {
                let state = obj.harvest_state();
                if !state.is_empty() {
                    harvests.push((idx as u32, state));
                }
            }
        }
        e.u64(harvests.len() as u64);
        for (o, st) in &harvests {
            e.u32(*o);
            e.bytes(st);
        }
        let shared_state = self.harvest_hook.as_ref().map(|h| h()).unwrap_or_default();
        e.bytes(&shared_state);
        let mut w = ctrl.lock().unwrap();
        let _ = write_frame(&mut *w, &e.0);
    }
}

/// Reap every child and join the parent's reader threads at end of run.
fn finish_run(reaped: &mut [bool], pids: &[i32], handles: &mut Vec<std::thread::JoinHandle<()>>) {
    for (p, &pid) in pids.iter().enumerate() {
        if !reaped[p] {
            let mut status = 0i32;
            unsafe { waitpid(pid, &mut status, 0) };
            reaped[p] = true;
        }
    }
    for h in handles.drain(..) {
        let _ = h.join();
    }
}

fn probe_frame(round: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(TAG_PROBE);
    e.u64(round);
    e.0
}

/// Parent-side per-child control reader: turns frames into [`Event`]s.
fn parent_reader(pe: Pe, mut stream: UnixStream, tx: mpsc::Sender<Event>) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(body)) => {
                let event = match body.first().copied() {
                    Some(TAG_READY) => Event::Ready(pe),
                    Some(TAG_STATUS) => {
                        let mut d = Dec::new(&body[1..]);
                        Event::Status {
                            pe,
                            round: d.u64("round").unwrap_or(0),
                            idle: d.u8("idle").unwrap_or(0) != 0,
                            sent: d.u64("sent").unwrap_or(0),
                            recv: d.u64("recv").unwrap_or(0),
                            executed: d.u64("executed").unwrap_or(0),
                        }
                    }
                    Some(TAG_STOPPED) => Event::Stopped(pe),
                    Some(TAG_KILLED) => {
                        let mut d = Dec::new(&body[1..]);
                        Event::Killed { dst: d.u32("dst").unwrap_or(0) as usize }
                    }
                    Some(TAG_RESULTS) => Event::Results(pe, body[1..].to_vec()),
                    t => panic!("unexpected child frame tag {t:?}"),
                };
                if tx.send(event).is_err() {
                    return;
                }
            }
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::Gone(pe));
                return;
            }
        }
    }
}

impl Runtime for ProcRuntime {
    fn n_pes(&self) -> usize {
        self.n_pes
    }

    fn register_entry(&mut self, name: &str) -> EntryId {
        self.stats.register_entry(name)
    }

    fn register(&mut self, obj: Box<dyn Chare>, pe: Pe, migratable: bool) -> ObjId {
        assert!(pe < self.n_pes, "PE {pe} out of range ({} processes)", self.n_pes);
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Some(obj));
        self.obj_pe.push(pe);
        self.ldb.on_register(migratable);
        id
    }

    fn inject(
        &mut self,
        to: ObjId,
        entry: EntryId,
        bytes: usize,
        priority: Priority,
        payload: Payload,
    ) {
        self.injected.push((to, entry, bytes, priority, payload, 0.0));
    }

    fn run(&mut self) -> f64 {
        Self::run(self)
    }

    fn try_run(&mut self) -> Result<f64, RunStall> {
        Self::try_run(self)
    }

    fn set_schedule_policy(&mut self, policy: SchedulePolicy) {
        Self::set_schedule_policy(self, policy)
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        Self::set_fault_plan(self, plan)
    }

    fn crashed(&self) -> Option<Pe> {
        Self::crashed(self)
    }

    fn stats(&self) -> &SummaryStats {
        &self.stats
    }

    fn trace(&self) -> &Trace {
        &self.trace
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn ldb(&self) -> &LdbDatabase {
        &self.ldb
    }

    fn placement(&self) -> &[Pe] {
        &self.obj_pe
    }

    fn migrate(&mut self, obj: ObjId, pe: Pe) {
        assert!(pe < self.n_pes);
        self.obj_pe[obj.idx()] = pe;
    }

    fn object(&self, obj: ObjId) -> &dyn Chare {
        self.objects[obj.idx()].as_deref().expect("object missing")
    }

    fn object_mut(&mut self, obj: ObjId) -> &mut dyn Chare {
        self.objects[obj.idx()].as_deref_mut().expect("object missing")
    }

    fn set_shared_hooks(
        &mut self,
        harvest: Box<dyn Fn() -> Payload + Send + Sync>,
        merge: Box<dyn FnMut(Pe, &[u8]) -> Result<(), WireError> + Send>,
    ) {
        self.harvest_hook = Some(harvest);
        self.merge_hook = Some(merge);
    }
}

impl Drop for ProcRuntime {
    fn drop(&mut self) {
        // Best-effort cleanup of the socket directory.
        let _ = std::fs::remove_dir_all(&self.socket_dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{PRIO_HIGH, PRIO_LOW, PRIO_NORMAL};

    /// Counts hits in its own state; forwards `hops` more times along
    /// `next`. State crosses back to the parent via harvest/merge.
    struct Hopper {
        next: Option<ObjId>,
        entry: EntryId,
        hops: u32,
        hits: u32,
    }

    impl Chare for Hopper {
        fn receive(&mut self, _e: EntryId, _p: Payload, ctx: &mut Ctx) {
            self.hits += 1;
            assert!(ctx.distributed(), "proc handlers must see a distributed ctx");
            if self.hops > 0 {
                self.hops -= 1;
                if let Some(next) = self.next {
                    ctx.signal(next, self.entry, PRIO_NORMAL);
                }
            }
        }

        fn harvest_state(&self) -> Payload {
            let mut e = Enc::new();
            e.u32(self.hits);
            e.into_bytes()
        }

        fn merge_state(&mut self, bytes: &[u8]) -> Result<(), WireError> {
            let mut d = Dec::new(bytes);
            self.hits += d.u32("hits")?;
            Ok(())
        }
    }

    fn hopper_ring(n_pes: usize, n: usize, hops: u32) -> (ProcRuntime, EntryId) {
        let mut rt = ProcRuntime::new(n_pes);
        let e = rt.register_entry("hop");
        for i in 0..n {
            rt.register(
                Box::new(Hopper {
                    next: Some(ObjId(((i + 1) % n) as u32)),
                    entry: e,
                    hops,
                    hits: 0,
                }),
                i % n_pes,
                true,
            );
        }
        (rt, e)
    }

    #[test]
    fn ring_hops_across_real_processes() {
        let (mut rt, e) = hopper_ring(3, 3, 5);
        rt.inject(ObjId(0), e, 0, PRIO_NORMAL, Vec::new());
        let t = rt.run();
        // Bootstrap + each node forwards until its hop budget drains.
        assert_eq!(rt.stats.entry_count[e.idx()], 16);
        assert_eq!(rt.stats.msgs_received, 16);
        assert_eq!(rt.stats.conservation_residual(), 0);
        assert!(t > 0.0);
        // Harvested per-object state made it back: total hits = handler
        // executions.
        let hits: u32 = (0..3)
            .map(|i| {
                // No downcast needed: re-harvest the parent-side state.
                let state = rt.object(ObjId(i)).harvest_state();
                let mut d = Dec::new(&state);
                d.u32("hits").unwrap()
            })
            .sum();
        assert_eq!(hits, 16);
    }

    #[test]
    fn payload_bytes_cross_the_process_boundary() {
        /// Sends its configured bytes to a peer on another PE.
        struct Sender {
            to: ObjId,
            entry: EntryId,
        }
        impl Chare for Sender {
            fn receive(&mut self, _e: EntryId, _p: Payload, ctx: &mut Ctx) {
                ctx.send(self.to, self.entry, 64, PRIO_NORMAL, vec![0xAB, 0xCD, 0xEF]);
            }
        }
        /// Stores the last payload it received; harvests it verbatim.
        #[derive(Default)]
        struct Sink {
            got: Payload,
        }
        impl Chare for Sink {
            fn receive(&mut self, _e: EntryId, p: Payload, _ctx: &mut Ctx) {
                self.got = p;
            }
            fn harvest_state(&self) -> Payload {
                self.got.clone()
            }
            fn merge_state(&mut self, bytes: &[u8]) -> Result<(), WireError> {
                self.got = bytes.to_vec();
                Ok(())
            }
        }

        let mut rt = ProcRuntime::new(2);
        let e = rt.register_entry("bytes");
        let sink = rt.register(Box::new(Sink::default()), 1, true);
        let sender = rt.register(Box::new(Sender { to: sink, entry: e }), 0, true);
        rt.inject(sender, e, 0, PRIO_NORMAL, Vec::new());
        rt.run();
        // The exact bytes sent in the child on PE 0 are now readable on
        // the parent's copy of the sink, via harvest → wire → merge.
        assert_eq!(rt.object(sink).harvest_state(), vec![0xAB, 0xCD, 0xEF]);
        assert_eq!(rt.stats.entry_count[e.idx()], 2);
        // Wire accounting counted the packed payload bytes.
        assert_eq!(rt.stats.entry_wire_msgs[e.idx()], 1);
        assert_eq!(rt.stats.entry_wire_bytes[e.idx()], 3);
    }

    #[test]
    fn stop_discards_queued_work_exactly() {
        struct Stopper;
        impl Chare for Stopper {
            fn receive(&mut self, _e: EntryId, _p: Payload, ctx: &mut Ctx) {
                ctx.stop();
            }
        }
        let mut rt = ProcRuntime::new(1);
        let e = rt.register_entry("s");
        let o = rt.register(Box::new(Stopper), 0, true);
        let n = rt.register(
            Box::new(Hopper { next: None, entry: e, hops: 0, hits: 0 }),
            0,
            true,
        );
        rt.inject(o, e, 0, PRIO_HIGH, Vec::new());
        rt.inject(n, e, 0, PRIO_LOW, Vec::new());
        rt.run();
        assert_eq!(rt.stats.entry_count[e.idx()], 1);
        assert_eq!(rt.stats.msgs_discarded, 1);
        assert_eq!(rt.stats.conservation_residual(), 0);
    }

    #[test]
    fn shared_hooks_carry_process_global_state() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;
        // Incremented by handlers *in the children*; the parent's copy
        // stays zero — only the harvest/merge hook pair moves the total.
        static CHILD_COUNTER: AtomicU32 = AtomicU32::new(0);

        struct Bumper;
        impl Chare for Bumper {
            fn receive(&mut self, _e: EntryId, _p: Payload, _ctx: &mut Ctx) {
                CHILD_COUNTER.fetch_add(1, AtOrd::SeqCst);
            }
        }

        let mut rt = ProcRuntime::new(2);
        let e = rt.register_entry("bump");
        for pe in 0..2 {
            rt.register(Box::new(Bumper), pe, true);
        }
        let total = Arc::new(AtomicU32::new(0));
        let total_in_merge = total.clone();
        rt.set_shared_hooks(
            Box::new(|| {
                let mut enc = Enc::new();
                enc.u32(CHILD_COUNTER.load(AtOrd::SeqCst));
                enc.into_bytes()
            }),
            Box::new(move |_pe, bytes| {
                let mut d = Dec::new(bytes);
                total_in_merge.fetch_add(d.u32("count")?, AtOrd::SeqCst);
                Ok(())
            }),
        );
        rt.inject(ObjId(0), e, 0, PRIO_NORMAL, Vec::new());
        rt.inject(ObjId(1), e, 0, PRIO_NORMAL, Vec::new());
        rt.run();
        assert_eq!(total.load(AtOrd::SeqCst), 2);
        assert_eq!(CHILD_COUNTER.load(AtOrd::SeqCst), 0, "parent copy untouched");
    }

    #[test]
    fn kill_fault_fells_a_real_process() {
        let mut rt = ProcRuntime::new(2);
        rt.set_stall_timeout(Duration::from_millis(3000));
        let e = rt.register_entry("hop");
        let a = rt.register(
            Box::new(Hopper { next: Some(ObjId(1)), entry: e, hops: 1, hits: 0 }),
            0,
            true,
        );
        rt.register(Box::new(Hopper { next: None, entry: e, hops: 0, hits: 0 }), 1, true);
        // The first hop into PE 1 SIGKILLs that worker process for real.
        rt.set_fault_plan(FaultPlan::parse("kill:entry=hop:dst=1").unwrap());
        rt.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        let err = rt.try_run().expect_err("a killed process must end the run");
        assert!(err.makespan >= 0.0);
        assert_eq!(rt.crashed(), Some(1));
        assert_eq!(rt.stats.pes_killed, 1);
    }

    #[test]
    fn non_kill_fault_rules_are_rejected() {
        let mut rt = ProcRuntime::new(1);
        rt.register_entry("hop");
        let plan = FaultPlan::parse("drop:entry=hop").unwrap();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.set_fault_plan(plan);
        }))
        .is_err());
    }
}
