//! The backend-agnostic runtime abstraction.
//!
//! The paper's central architectural claim is that one message-driven
//! object graph — patches, proxies, computes — runs unchanged on any
//! substrate, with measurement-based load balancing and instrumentation
//! riding along for free. [`Runtime`] is that contract: register entry
//! methods and chares, inject bootstrap messages, run to quiescence, and
//! harvest the same three measurement products ([`SummaryStats`],
//! [`Trace`], [`LdbDatabase`]) regardless of what executed the handlers.
//!
//! Three backends implement it:
//!
//! * [`crate::Des`] — the deterministic discrete-event simulator. Handler
//!   *cost* is modeled (declared work + per-message overheads under a
//!   `machine::MachineModel`); `run` returns virtual seconds.
//! * [`crate::ThreadRuntime`] — real OS worker threads, one per PE, each
//!   with a prioritized message queue. Handler cost is *measured*
//!   wall-clock time; `run` returns wall seconds.
//! * [`crate::ProcRuntime`] — real OS processes, one per PE, exchanging
//!   CRC-framed packed messages over Unix domain sockets. Handler cost is
//!   measured wall-clock time; chare state crosses the process boundary
//!   via [`Chare::harvest_state`]/[`Chare::merge_state`].
//!
//! Because all of them feed per-object durations into the same
//! [`LdbDatabase`], the measure → greedy → refine → migrate load-balancing
//! cycle is written once and works from modeled durations on one backend
//! and measured durations on the others.

use crate::chare::Chare;
use crate::fault::FaultPlan;
use crate::ldb::LdbDatabase;
use crate::msg::{EntryId, ObjId, Payload, Pe, Priority};
use crate::sched::SchedulePolicy;
use crate::stats::SummaryStats;
use crate::trace::Trace;

/// A run wedged short of quiescence: the no-progress watchdog saw every
/// worker idle while quiescence counters say messages are still in flight
/// (e.g. a fault plan dropped one). The protocol layer can repair this by
/// re-sending dead letters ([`Runtime::redeliver_dead_letters`]) and
/// re-running.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStall {
    /// Makespan up to the stall, seconds.
    pub makespan: f64,
    /// Sends still unmatched by receives when the watchdog fired.
    pub in_flight: u64,
    /// Dead-lettered messages available for redelivery.
    pub undelivered: usize,
}

impl std::fmt::Display for RunStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "runtime stalled short of quiescence after {:.6}s: {} message(s) in flight, \
             {} dead letter(s) held for redelivery",
            self.makespan, self.in_flight, self.undelivered
        )
    }
}

impl std::error::Error for RunStall {}

/// A message-driven execution substrate. See the module docs.
pub trait Runtime {
    /// Number of processing elements (virtual PEs or worker threads).
    fn n_pes(&self) -> usize;

    /// Register an entry method by name; returns its id. Must be called
    /// for every entry before any object uses it.
    fn register_entry(&mut self, name: &str) -> EntryId;

    /// Register an object on a PE. `migratable` controls whether its load
    /// is measured per-object (true) or folded into the PE's background
    /// load. Ids are assigned densely in registration order on every
    /// backend, so an object graph built twice gets identical ids.
    fn register(&mut self, obj: Box<dyn Chare>, pe: Pe, migratable: bool) -> ObjId;

    /// Inject a bootstrap message from outside the object graph.
    fn inject(
        &mut self,
        to: ObjId,
        entry: EntryId,
        bytes: usize,
        priority: Priority,
        payload: Payload,
    );

    /// Run to quiescence (or until a handler calls `Ctx::stop`). Returns
    /// the makespan in seconds: virtual seconds on modeled backends, wall
    /// seconds on real ones.
    fn run(&mut self) -> f64;

    /// Like [`Runtime::run`], but backends with a no-progress watchdog
    /// return [`RunStall`] instead of spinning forever when quiescence can
    /// never be reached (a dropped message under fault injection). On a
    /// stall, undelivered queued messages are preserved for a repair
    /// re-run. The default covers backends that cannot wedge: a drained
    /// event queue *is* their quiescence.
    fn try_run(&mut self) -> Result<f64, RunStall> {
        Ok(self.run())
    }

    /// Install a seeded dequeue-order perturbation, consulted for every
    /// subsequently delivered message. Install before injecting.
    fn set_schedule_policy(&mut self, _policy: SchedulePolicy) {}

    /// Install a fault plan applied to every subsequent send. Panics if a
    /// rule names an unregistered entry method.
    fn set_fault_plan(&mut self, _plan: FaultPlan) {}

    /// Re-send every dead-lettered (dropped) message — modeling the
    /// sender's retransmission after a delivery timeout. Returns how many
    /// were re-sent; call `run`/`try_run` again afterwards to process them.
    fn redeliver_dead_letters(&mut self) -> usize {
        0
    }

    /// The PE felled by a [`crate::FaultAction::Kill`] rule during the
    /// last run, if any. A crashed run can never be repaired by message
    /// redelivery — the caller must abandon this runtime and recover from
    /// a checkpoint. Default: no kill faults, never crashed.
    fn crashed(&self) -> Option<Pe> {
        None
    }

    /// Summary-profile instrumentation accumulated so far.
    fn stats(&self) -> &SummaryStats;

    /// The event trace (empty unless tracing was enabled).
    fn trace(&self) -> &Trace;

    /// Enable or disable full event tracing.
    fn set_tracing(&mut self, on: bool);

    /// The load-balancing measurement database.
    fn ldb(&self) -> &LdbDatabase;

    /// Current object→PE placement, indexed by `ObjId`.
    fn placement(&self) -> &[Pe];

    /// The PE an object currently lives on.
    fn pe_of(&self, obj: ObjId) -> Pe {
        self.placement()[obj.idx()]
    }

    /// Move an object to another PE. Takes effect for subsequent delivery
    /// (between runs / phases); measurement attribution follows.
    fn migrate(&mut self, obj: ObjId, pe: Pe);

    /// Immutable access to a registered object (read results after a run).
    fn object(&self, obj: ObjId) -> &dyn Chare;

    /// Mutable access to a registered object between runs.
    fn object_mut(&mut self, obj: ObjId) -> &mut dyn Chare;

    /// Set per-PE speed factors (1.0 = nominal). Meaningful on modeled
    /// backends only; real backends run at whatever speed the hardware
    /// delivers and ignore this.
    fn set_pe_speeds(&mut self, _speeds: Vec<f64>) {}

    /// Install hooks for carrying *process-global* shared state (anything
    /// not owned by a single chare, e.g. accumulated step energies) across
    /// the process boundary of the `proc` backend: `harvest` packs the
    /// state inside a worker process after its last handler; `merge` folds
    /// those bytes back in the parent, called once per PE in PE order.
    /// Shared-memory backends see every write directly and ignore this.
    fn set_shared_hooks(
        &mut self,
        _harvest: Box<dyn Fn() -> Payload + Send + Sync>,
        _merge: Box<dyn FnMut(Pe, &[u8]) -> Result<(), crate::wire::WireError> + Send>,
    ) {
    }
}

impl Runtime for crate::Des {
    fn n_pes(&self) -> usize {
        Self::n_pes(self)
    }
    fn register_entry(&mut self, name: &str) -> EntryId {
        Self::register_entry(self, name)
    }
    fn register(&mut self, obj: Box<dyn Chare>, pe: Pe, migratable: bool) -> ObjId {
        Self::register(self, obj, pe, migratable)
    }
    fn inject(
        &mut self,
        to: ObjId,
        entry: EntryId,
        bytes: usize,
        priority: Priority,
        payload: Payload,
    ) {
        Self::inject(self, to, entry, bytes, priority, payload)
    }
    fn run(&mut self) -> f64 {
        Self::run(self)
    }
    fn set_schedule_policy(&mut self, policy: SchedulePolicy) {
        Self::set_schedule_policy(self, policy)
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        Self::set_fault_plan(self, plan)
    }
    fn redeliver_dead_letters(&mut self) -> usize {
        Self::redeliver_dead_letters(self)
    }
    fn crashed(&self) -> Option<Pe> {
        Self::crashed(self)
    }
    fn stats(&self) -> &SummaryStats {
        &self.stats
    }
    fn trace(&self) -> &Trace {
        &self.trace
    }
    fn set_tracing(&mut self, on: bool) {
        Self::set_tracing(self, on)
    }
    fn ldb(&self) -> &LdbDatabase {
        &self.ldb
    }
    fn placement(&self) -> &[Pe] {
        Self::placement(self)
    }
    fn migrate(&mut self, obj: ObjId, pe: Pe) {
        Self::migrate(self, obj, pe)
    }
    fn object(&self, obj: ObjId) -> &dyn Chare {
        Self::object(self, obj)
    }
    fn object_mut(&mut self, obj: ObjId) -> &mut dyn Chare {
        Self::object_mut(self, obj)
    }
    fn set_pe_speeds(&mut self, speeds: Vec<f64>) {
        Self::set_pe_speeds(self, speeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::PRIO_NORMAL;
    use crate::{Des, ThreadRuntime};
    use machine::presets;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    /// Forwards `hops` times around the registered ring, counting every
    /// invocation on a shared counter.
    struct RingNode {
        next: Option<(ObjId, EntryId)>,
        remaining: u32,
        counter: Arc<AtomicU32>,
    }

    impl Chare for RingNode {
        fn receive(&mut self, _e: EntryId, _p: Payload, ctx: &mut crate::Ctx) {
            self.counter.fetch_add(1, Ordering::SeqCst);
            ctx.add_work(10.0);
            if self.remaining > 0 {
                self.remaining -= 1;
                if let Some((to, entry)) = self.next {
                    ctx.signal(to, entry, PRIO_NORMAL);
                }
            }
        }
    }

    /// The same generic driver runs against any backend — the point of the
    /// abstraction. Ids are dense in registration order on every backend,
    /// so the two ring nodes can name each other up front.
    fn drive_ring<R: Runtime>(rt: &mut R) -> (f64, u32) {
        let counter = Arc::new(AtomicU32::new(0));
        let e = rt.register_entry("ring");
        let (a, b) = (ObjId(0), ObjId(1));
        let id_a = rt.register(
            Box::new(RingNode { next: Some((b, e)), remaining: 3, counter: counter.clone() }),
            0,
            true,
        );
        let id_b = rt.register(
            Box::new(RingNode { next: Some((a, e)), remaining: 3, counter: counter.clone() }),
            rt.n_pes() - 1,
            true,
        );
        assert_eq!((id_a, id_b), (a, b));
        rt.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        let t = rt.run();
        (t, counter.load(Ordering::SeqCst))
    }

    #[test]
    fn des_and_threads_run_the_same_object_graph() {
        let mut des = Des::new(2, presets::ideal());
        let (t_des, hits_des) = drive_ring(&mut des);
        let mut threads = ThreadRuntime::new(2);
        let (t_thr, hits_thr) = drive_ring(&mut threads);

        // 1 bootstrap + 3 forwards each way = 7 handler executions.
        assert_eq!(hits_des, 7);
        assert_eq!(hits_thr, hits_des);
        assert!(t_des > 0.0);
        assert!(t_thr > 0.0);
        assert_eq!(des.stats.entry_count[0], 7);
        assert_eq!(threads.stats.entry_count[0], 7);
    }

    #[test]
    fn both_backends_fill_the_ldb() {
        let mut des = Des::new(2, presets::ideal());
        drive_ring(&mut des);
        let snap = des.ldb.snapshot(Runtime::placement(&des));
        assert_eq!(snap.objects.len(), 2);
        assert!(snap.objects.iter().all(|o| o.load > 0.0), "des: {:?}", snap.objects);

        let mut thr = ThreadRuntime::new(2);
        drive_ring(&mut thr);
        let snap = thr.ldb.snapshot(Runtime::placement(&thr));
        assert_eq!(snap.objects.len(), 2);
        assert!(snap.objects.iter().all(|o| o.load > 0.0), "threads: {:?}", snap.objects);
    }
}
