//! Seeded schedule-perturbation policies for the runtime's dequeue order.
//!
//! The paper's claim (§2.2, §3) is that message-driven execution tolerates
//! *arbitrary* message arrival order: correctness must not depend on the
//! schedule the runtime happens to pick. A [`SchedulePolicy`] makes that
//! claim testable: both backends consult the policy when ordering their
//! per-PE scheduler queues, so one seed reproduces one exact interleaving
//! in the deterministic DES backend, and a fuzzing harness can sweep seeds
//! looking for order-dependent bugs.
//!
//! The policy is a *pure function* of `(seed, priority, sequence number)` —
//! it keeps no mutable state, so both the single-threaded DES and the
//! lock-sharded threads backend can consult it without coordination, and a
//! replayed run computes identical keys.

use crate::msg::Priority;

/// SplitMix64: the standard 64-bit mixing function. Deterministic, seedable,
/// and statistically adequate for tie-break keys (the same generator the
/// engine's load-drift walk uses).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which perturbation the scheduler applies before dequeuing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicyKind {
    /// The runtime's native order: (priority, arrival sequence). This is
    /// bit-identical to the pre-policy behaviour.
    #[default]
    Fifo,
    /// Uniformly random dequeue order, *ignoring priorities* — the most
    /// general adversary the protocol must survive.
    RandomShuffle,
    /// Newest message first, ignoring priorities — maximizes the depth of
    /// deferred work and starves the oldest messages longest.
    AdversarialLifo,
    /// Queues keep their native (priority, seq) order, but every cross-PE
    /// message pays an extra seeded latency in `[0, jitter_s)` — models
    /// network-induced arrival reordering rather than scheduler reordering.
    /// On the threads backend (no virtual latency), this degrades to a
    /// seeded tie-break *within* each priority class.
    FixedLatencyJitter,
}

/// A seeded dequeue-order policy, consulted by both [`crate::Des`] and
/// [`crate::ThreadRuntime`]. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulePolicy {
    pub kind: SchedulePolicyKind,
    /// Seed: the entire interleaving (on the DES) is a pure function of it.
    pub seed: u64,
    /// Jitter bound for [`SchedulePolicyKind::FixedLatencyJitter`], seconds.
    pub jitter_s: f64,
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        SchedulePolicy::fifo()
    }
}

impl SchedulePolicy {
    /// The native order (no perturbation).
    pub fn fifo() -> Self {
        SchedulePolicy { kind: SchedulePolicyKind::Fifo, seed: 0, jitter_s: 0.0 }
    }

    /// Seeded uniformly random dequeue order.
    pub fn random_shuffle(seed: u64) -> Self {
        SchedulePolicy { kind: SchedulePolicyKind::RandomShuffle, seed, jitter_s: 0.0 }
    }

    /// Newest-first dequeue order.
    pub fn adversarial_lifo() -> Self {
        SchedulePolicy { kind: SchedulePolicyKind::AdversarialLifo, seed: 0, jitter_s: 0.0 }
    }

    /// Native order plus seeded per-message delivery latency in
    /// `[0, jitter_s)` (DES backend).
    pub fn latency_jitter(seed: u64, jitter_s: f64) -> Self {
        assert!(jitter_s >= 0.0 && jitter_s.is_finite());
        SchedulePolicy { kind: SchedulePolicyKind::FixedLatencyJitter, seed, jitter_s }
    }

    /// The dequeue-order key for a message: smaller keys dequeue first.
    /// Pure in `(self, priority, seq)`; queues break remaining ties by
    /// arrival sequence.
    pub fn key(&self, priority: Priority, seq: u64) -> (i64, u64) {
        match self.kind {
            SchedulePolicyKind::Fifo => (priority as i64, seq),
            SchedulePolicyKind::RandomShuffle => (0, splitmix64(self.seed ^ seq)),
            SchedulePolicyKind::AdversarialLifo => (0, u64::MAX - seq),
            // Jitter perturbs delivery *time* on the DES; within a queue it
            // keeps priorities but randomizes the tie-break so the threads
            // backend (which cannot delay delivery) still sees reordering.
            SchedulePolicyKind::FixedLatencyJitter => {
                (priority as i64, splitmix64(self.seed ^ seq))
            }
        }
    }

    /// Extra delivery latency for a cross-PE message, seconds (DES only;
    /// zero for every kind but [`SchedulePolicyKind::FixedLatencyJitter`]).
    pub fn delivery_jitter(&self, seq: u64) -> f64 {
        if self.kind != SchedulePolicyKind::FixedLatencyJitter || self.jitter_s == 0.0 {
            return 0.0;
        }
        let u = splitmix64(self.seed ^ seq.rotate_left(17)) as f64 / u64::MAX as f64;
        u * self.jitter_s
    }

    /// Parse a policy name (the CLI's `--schedule` values): `fifo`,
    /// `shuffle` (alias `random-shuffle`), `lifo` (alias
    /// `adversarial-lifo`), `jitter` (alias `fixed-latency-jitter`). The
    /// seed is supplied separately (`--schedule-seed`).
    pub fn parse(name: &str, seed: u64) -> Result<Self, String> {
        match name {
            "fifo" => Ok(SchedulePolicy::fifo()),
            "shuffle" | "random-shuffle" => Ok(SchedulePolicy::random_shuffle(seed)),
            "lifo" | "adversarial-lifo" => {
                Ok(SchedulePolicy { seed, ..SchedulePolicy::adversarial_lifo() })
            }
            // Default jitter bound: 100 µs, comfortably larger than any
            // modeled wire time so messages genuinely overtake each other.
            "jitter" | "fixed-latency-jitter" => Ok(SchedulePolicy::latency_jitter(seed, 100e-6)),
            other => Err(format!(
                "unknown schedule policy '{other}' (want fifo|shuffle|lifo|jitter)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_key_preserves_priority_then_arrival() {
        let p = SchedulePolicy::fifo();
        assert!(p.key(-10, 5) < p.key(0, 1));
        assert!(p.key(0, 1) < p.key(0, 2));
        assert!(p.key(0, 2) < p.key(10, 1));
    }

    #[test]
    fn shuffle_is_seed_deterministic_and_seed_sensitive() {
        let a = SchedulePolicy::random_shuffle(42);
        let b = SchedulePolicy::random_shuffle(42);
        let c = SchedulePolicy::random_shuffle(43);
        let keys = |p: &SchedulePolicy| (0..32u64).map(|s| p.key(0, s)).collect::<Vec<_>>();
        assert_eq!(keys(&a), keys(&b));
        assert_ne!(keys(&a), keys(&c));
        // Not in arrival order (the point of the shuffle).
        let ks = keys(&a);
        assert!(!ks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lifo_reverses_arrival_order() {
        let p = SchedulePolicy::adversarial_lifo();
        assert!(p.key(0, 9) < p.key(0, 3));
        // And ignores priority entirely.
        assert!(p.key(10, 9) < p.key(-10, 3));
    }

    #[test]
    fn jitter_bounds_and_determinism() {
        let p = SchedulePolicy::latency_jitter(7, 50e-6);
        for s in 0..100 {
            let j = p.delivery_jitter(s);
            assert!((0.0..50e-6).contains(&j), "jitter {j} out of bounds");
            assert_eq!(j, p.delivery_jitter(s));
        }
        assert_eq!(SchedulePolicy::fifo().delivery_jitter(3), 0.0);
        // Jitter keeps priority classes intact in the queue key.
        assert!(p.key(-10, 8) < p.key(0, 1));
    }

    #[test]
    fn parse_accepts_all_names() {
        assert_eq!(SchedulePolicy::parse("fifo", 1).unwrap().kind, SchedulePolicyKind::Fifo);
        assert_eq!(
            SchedulePolicy::parse("shuffle", 1).unwrap().kind,
            SchedulePolicyKind::RandomShuffle
        );
        assert_eq!(
            SchedulePolicy::parse("adversarial-lifo", 1).unwrap().kind,
            SchedulePolicyKind::AdversarialLifo
        );
        assert_eq!(
            SchedulePolicy::parse("jitter", 1).unwrap().kind,
            SchedulePolicyKind::FixedLatencyJitter
        );
        assert!(SchedulePolicy::parse("bogus", 1).is_err());
    }
}
