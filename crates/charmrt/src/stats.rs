//! Summary-profile instrumentation (§4.1, level two).
//!
//! Mirrors the Charm++ summary profiles: per-entry-method accumulated
//! execution time and counts, per-PE busy time, and aggregate communication
//! overheads. Unlike function-level profiling there are only dozens of entry
//! methods, so the data stays small and the act of measuring costs nothing
//! in the virtual-time model.

use crate::msg::EntryId;
use crate::wire::EntryTable;

/// Accumulated summary statistics for a run (or a measurement window —
/// see [`SummaryStats::reset`]).
#[derive(Debug, Clone, Default)]
pub struct SummaryStats {
    /// The wire-stable entry registry, indexed by `EntryId` (derefs to
    /// `[String]`, so name-slice consumers keep working).
    pub entry_names: EntryTable,
    /// Total handler CPU time per entry method, seconds.
    pub entry_time: Vec<f64>,
    /// Invocation count per entry method.
    pub entry_count: Vec<u64>,
    /// Messages sent per entry method (wire accounting: counted once per
    /// destination, including multicast copies).
    pub entry_wire_msgs: Vec<u64>,
    /// *Packed* payload bytes sent per entry method — the actual
    /// serialized length on the wire, as opposed to `bytes_sent`, which is
    /// the cost model's modeled message size.
    pub entry_wire_bytes: Vec<u64>,
    /// Busy (handler-executing) time per PE, seconds.
    pub pe_busy: Vec<f64>,
    /// Messaging overhead per PE (receive + send + packing attributed to
    /// the handlers that ran there), seconds. A subset of `pe_busy`, so
    /// `pe_busy - pe_overhead` is pure application work. Filled by the DES
    /// backend, whose cost model separates the components; the threads
    /// backend measures handlers whole and leaves this zero.
    pub pe_overhead: Vec<f64>,
    /// Longest dependency chain through the message graph, seconds: the
    /// maximum over all executed handlers of (path length carried by the
    /// triggering message + that handler's cost). Virtual time on the DES,
    /// measured wall time on threads. With unbounded PEs no schedule can
    /// finish the window faster than this.
    pub critical_path: f64,
    /// Total sender-side message overhead (send + per-byte packing), seconds.
    pub send_overhead: f64,
    /// Total user-level allocation/packing time (the multicast cost the
    /// paper's §4.2.3 halves), seconds.
    pub pack_time: f64,
    /// Total receiver-side message overhead, seconds.
    pub recv_overhead: f64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received (handler executions).
    pub msgs_received: u64,
    /// Messages injected from outside the object graph (bootstrap).
    pub msgs_injected: u64,
    /// Messages dropped by the installed fault plan.
    pub msgs_dropped: u64,
    /// Extra copies delivered by the fault plan's duplicate rules.
    pub msgs_duplicated: u64,
    /// Messages delayed by the fault plan.
    pub msgs_delayed: u64,
    /// Dead letters re-sent via `Runtime::redeliver_dead_letters`.
    pub msgs_redelivered: u64,
    /// Messages still queued when `Ctx::stop` ended the run (discarded).
    pub msgs_discarded: u64,
    /// PEs killed by the fault plan's kill rules. Messages lost with a
    /// dying PE are counted in `msgs_dropped` (no dead letter), keeping
    /// the conservation ledger balanced.
    pub pes_killed: u64,
    /// Messages whose payload bytes were flipped by a `corrupt` fault rule
    /// (a clean copy is retained as a dead letter for repair).
    pub msgs_corrupted: u64,
    /// Corrupted messages the payload CRC rejected at delivery (each is
    /// also counted in `msgs_dropped`, keeping the ledger balanced).
    pub msgs_crc_rejected: u64,
    /// Virtual time when the current measurement window began.
    pub window_start: f64,
}

impl SummaryStats {
    pub(crate) fn new(n_pes: usize) -> Self {
        SummaryStats {
            pe_busy: vec![0.0; n_pes],
            pe_overhead: vec![0.0; n_pes],
            ..Default::default()
        }
    }

    pub(crate) fn register_entry(&mut self, name: &str) -> EntryId {
        let id = self.entry_names.register(name);
        self.entry_time.push(0.0);
        self.entry_count.push(0);
        self.entry_wire_msgs.push(0);
        self.entry_wire_bytes.push(0);
        id
    }

    /// Account one message entering the wire: `len` packed payload bytes
    /// bound for one destination.
    pub(crate) fn count_wire(&mut self, entry: EntryId, len: usize) {
        self.entry_wire_msgs[entry.idx()] += 1;
        self.entry_wire_bytes[entry.idx()] += len as u64;
    }

    /// Total messages across entries, wire accounting.
    pub fn wire_msgs(&self) -> u64 {
        self.entry_wire_msgs.iter().sum()
    }

    /// Total packed payload bytes across entries, wire accounting.
    pub fn wire_bytes(&self) -> u64 {
        self.entry_wire_bytes.iter().sum()
    }

    /// Zero all counters and restart the measurement window at `now`.
    /// Entry registrations are preserved.
    pub fn reset(&mut self, now: f64) {
        self.entry_time.iter_mut().for_each(|t| *t = 0.0);
        self.entry_count.iter_mut().for_each(|c| *c = 0);
        self.entry_wire_msgs.iter_mut().for_each(|c| *c = 0);
        self.entry_wire_bytes.iter_mut().for_each(|c| *c = 0);
        self.pe_busy.iter_mut().for_each(|t| *t = 0.0);
        self.pe_overhead.iter_mut().for_each(|t| *t = 0.0);
        self.critical_path = 0.0;
        self.send_overhead = 0.0;
        self.pack_time = 0.0;
        self.recv_overhead = 0.0;
        self.msgs_sent = 0;
        self.bytes_sent = 0;
        self.msgs_received = 0;
        self.msgs_injected = 0;
        self.msgs_dropped = 0;
        self.msgs_duplicated = 0;
        self.msgs_delayed = 0;
        self.msgs_redelivered = 0;
        self.msgs_discarded = 0;
        self.pes_killed = 0;
        self.msgs_corrupted = 0;
        self.msgs_crc_rejected = 0;
        self.window_start = now;
    }

    /// Message-conservation residual: how many messages entered the system
    /// (sends + injections + duplicate copies + redeliveries, minus drops)
    /// but were neither received nor accounted for as discarded at
    /// `Ctx::stop`. Zero for any completed run whose dead letters were all
    /// redelivered; a positive residual means messages were silently lost —
    /// the invariant the fault-injection oracle checks.
    pub fn conservation_residual(&self) -> i64 {
        let entered = self.msgs_sent + self.msgs_injected + self.msgs_duplicated
            + self.msgs_redelivered
            - self.msgs_dropped;
        entered as i64 - (self.msgs_received + self.msgs_discarded) as i64
    }

    /// Name of an entry method.
    pub fn entry_name(&self, e: EntryId) -> &str {
        &self.entry_names[e.idx()]
    }

    /// Entry id by name, if registered.
    pub fn entry_by_name(&self, name: &str) -> Option<EntryId> {
        self.entry_names
            .iter()
            .position(|n| n == name)
            .map(|i| EntryId(i as u16))
    }

    /// Average busy time across PEs over the window.
    pub fn avg_busy(&self) -> f64 {
        if self.pe_busy.is_empty() {
            0.0
        } else {
            self.pe_busy.iter().sum::<f64>() / self.pe_busy.len() as f64
        }
    }

    /// Maximum busy time across PEs over the window.
    pub fn max_busy(&self) -> f64 {
        self.pe_busy.iter().copied().fold(0.0, f64::max)
    }

    /// Load imbalance as the paper's audit measures it: the difference
    /// between maximum and average per-PE load.
    pub fn imbalance(&self) -> f64 {
        self.max_busy() - self.avg_busy()
    }

    /// Per-PE utilization over a window ending at `now`: busy / elapsed.
    pub fn utilization(&self, now: f64) -> Vec<f64> {
        let elapsed = (now - self.window_start).max(1e-30);
        self.pe_busy.iter().map(|b| (b / elapsed).min(1.0)).collect()
    }

    /// Render a per-entry summary table as text (for examples and debug).
    pub fn entry_table(&self) -> String {
        let mut s = String::from("entry-method                        calls     total(s)    avg(ms)\n");
        for (i, name) in self.entry_names.iter().enumerate() {
            let c = self.entry_count[i];
            let t = self.entry_time[i];
            let avg_ms = if c > 0 { t / c as f64 * 1e3 } else { 0.0 };
            s.push_str(&format!("{name:<34} {c:>8} {t:>12.4} {avg_ms:>10.4}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = SummaryStats::new(4);
        let a = s.register_entry("integrate");
        let b = s.register_entry("nonbonded");
        assert_eq!(s.entry_name(a), "integrate");
        assert_eq!(s.entry_by_name("nonbonded"), Some(b));
        assert_eq!(s.entry_by_name("missing"), None);
    }

    #[test]
    fn imbalance_is_max_minus_avg() {
        let mut s = SummaryStats::new(4);
        s.pe_busy = vec![1.0, 2.0, 3.0, 6.0];
        assert!((s.avg_busy() - 3.0).abs() < 1e-12);
        assert!((s.max_busy() - 6.0).abs() < 1e-12);
        assert!((s.imbalance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_preserves_registrations() {
        let mut s = SummaryStats::new(2);
        let a = s.register_entry("x");
        s.entry_time[a.idx()] = 5.0;
        s.entry_count[a.idx()] = 3;
        s.pe_busy[0] = 1.0;
        s.send_overhead = 0.5;
        s.reset(10.0);
        assert_eq!(s.entry_name(a), "x");
        assert_eq!(s.entry_time[a.idx()], 0.0);
        assert_eq!(s.entry_count[a.idx()], 0);
        assert_eq!(s.pe_busy[0], 0.0);
        assert_eq!(s.send_overhead, 0.0);
        assert_eq!(s.window_start, 10.0);
    }

    #[test]
    fn wire_counters_accumulate_and_reset() {
        let mut s = SummaryStats::new(1);
        let a = s.register_entry("x");
        s.register_entry("y");
        s.count_wire(a, 100);
        s.count_wire(a, 28);
        assert_eq!(s.entry_wire_msgs[a.idx()], 2);
        assert_eq!(s.entry_wire_bytes[a.idx()], 128);
        assert_eq!((s.wire_msgs(), s.wire_bytes()), (2, 128));
        s.reset(0.0);
        assert_eq!((s.wire_msgs(), s.wire_bytes()), (0, 0));
    }

    #[test]
    fn utilization_is_bounded() {
        let mut s = SummaryStats::new(2);
        s.window_start = 0.0;
        s.pe_busy = vec![0.5, 2.0];
        let u = s.utilization(1.0);
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert_eq!(u[1], 1.0); // clamped
    }

    #[test]
    fn table_renders_all_entries() {
        let mut s = SummaryStats::new(1);
        s.register_entry("a");
        s.register_entry("b");
        let t = s.entry_table();
        assert!(t.contains('a') && t.contains('b'));
    }
}
