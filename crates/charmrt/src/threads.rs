//! A real-threads message-driven executor: Converse's SMP mode.
//!
//! The DES backend ([`crate::des::Des`]) simulates virtual processors for
//! deterministic paper-scale studies; this module actually *runs* a
//! message-driven object program on OS threads. Each worker owns a disjoint
//! set of objects and drains a channel of envelopes; handlers execute on
//! the owning worker (so objects need no internal locking, exactly like
//! Charm++'s one-chare-one-PE execution), and sends go directly to the
//! destination worker's queue.
//!
//! Termination is quiescence detection, Charm++'s classic utility: a global
//! in-flight counter is incremented *before* every enqueue and decremented
//! only after the receiving handler (and the enqueue of everything it sent)
//! completes, so the counter reads zero only when no message is queued,
//! in flight, or being processed.
//!
//! Unlike the DES, execution order across workers is nondeterministic —
//! that is the point; programs must be written message-driven, and the
//! tests check outcomes, not schedules.

use crate::msg::{EntryId, ObjId};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Payload for the threaded runtime (must cross threads).
pub type SendPayload = Box<dyn std::any::Any + Send>;

/// A thread-safe data-driven object.
pub trait SendChare: Send {
    /// Handle one message; use `ctx` to send further messages.
    fn receive(&mut self, entry: EntryId, payload: SendPayload, ctx: &mut ThreadCtx);
}

/// One message envelope.
struct Envelope {
    to: ObjId,
    entry: EntryId,
    payload: SendPayload,
}

/// Execution context for threaded handlers: collects sends, which the
/// worker dispatches after the handler returns.
pub struct ThreadCtx {
    sends: Vec<Envelope>,
    this: ObjId,
    worker: usize,
}

impl ThreadCtx {
    /// Send a message to another object.
    pub fn send(&mut self, to: ObjId, entry: EntryId, payload: SendPayload) {
        self.sends.push(Envelope { to, entry, payload });
    }

    /// The object currently executing.
    pub fn this(&self) -> ObjId {
        self.this
    }

    /// The worker thread index executing this handler.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

/// Shared runtime state.
struct Inner {
    /// Messages enqueued-or-executing; zero ⇒ quiescent.
    in_flight: AtomicU64,
    /// Per-entry execution counts (same summary idea as the DES stats).
    entry_counts: Vec<AtomicU64>,
    /// Worker input channels.
    queues: Vec<Sender<Envelope>>,
    /// Owning worker per object.
    owner: Vec<usize>,
}

/// The threaded message-driven runtime.
pub struct ThreadRuntime {
    n_workers: usize,
    /// Objects grouped by owning worker (moved into threads at `run`).
    objects: Vec<HashMap<u32, Box<dyn SendChare>>>,
    owner: Vec<usize>,
    entry_names: Vec<String>,
    pending_injections: Vec<Envelope>,
}

impl ThreadRuntime {
    /// Create a runtime with `n_workers` OS threads.
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers > 0);
        ThreadRuntime {
            n_workers,
            objects: (0..n_workers).map(|_| HashMap::new()).collect(),
            owner: Vec::new(),
            entry_names: Vec::new(),
            pending_injections: Vec::new(),
        }
    }

    /// Register an entry method by name.
    pub fn register_entry(&mut self, name: &str) -> EntryId {
        let id = EntryId(self.entry_names.len() as u16);
        self.entry_names.push(name.to_string());
        id
    }

    /// Register an object on a worker.
    pub fn register(&mut self, obj: Box<dyn SendChare>, worker: usize) -> ObjId {
        assert!(worker < self.n_workers);
        let id = ObjId(self.owner.len() as u32);
        self.owner.push(worker);
        self.objects[worker].insert(id.0, obj);
        id
    }

    /// Queue a bootstrap message (delivered when `run` starts).
    pub fn inject(&mut self, to: ObjId, entry: EntryId, payload: SendPayload) {
        self.pending_injections.push(Envelope { to, entry, payload });
    }

    /// Run to quiescence. Returns per-entry execution counts and the
    /// objects (so results can be read back out).
    pub fn run(mut self) -> ThreadRunResult {
        let (senders, receivers): (Vec<Sender<Envelope>>, Vec<Receiver<Envelope>>) =
            (0..self.n_workers).map(|_| unbounded()).unzip();
        let inner = Arc::new(Inner {
            in_flight: AtomicU64::new(0),
            entry_counts: (0..self.entry_names.len()).map(|_| AtomicU64::new(0)).collect(),
            queues: senders,
            owner: self.owner.clone(),
        });

        // Count and enqueue the injections before any worker starts.
        for env in self.pending_injections.drain(..) {
            inner.in_flight.fetch_add(1, Ordering::SeqCst);
            let w = inner.owner[env.to.idx()];
            inner.queues[w].send(env).expect("queue open");
        }

        let mut handles = Vec::new();
        for (w, rx) in receivers.into_iter().enumerate() {
            let mut objects = std::mem::take(&mut self.objects[w]);
            let inner = inner.clone();
            handles.push(std::thread::spawn(move || {
                // Drain until the runtime is quiescent. A blocking recv
                // with timeout lets workers notice global quiescence.
                loop {
                    match rx.recv_timeout(std::time::Duration::from_millis(1)) {
                        Ok(env) => {
                            let obj = objects
                                .get_mut(&env.to.0)
                                .expect("message for object not on this worker");
                            let mut ctx =
                                ThreadCtx { sends: Vec::new(), this: env.to, worker: w };
                            obj.receive(env.entry, env.payload, &mut ctx);
                            inner.entry_counts[env.entry.idx()]
                                .fetch_add(1, Ordering::Relaxed);
                            // Enqueue (and count) everything the handler
                            // sent before releasing this message's slot, so
                            // in_flight can never transiently read zero
                            // while work remains.
                            for out in ctx.sends.drain(..) {
                                inner.in_flight.fetch_add(1, Ordering::SeqCst);
                                let dest = inner.owner[out.to.idx()];
                                inner.queues[dest].send(out).expect("queue open");
                            }
                            inner.in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(_) => {
                            if inner.in_flight.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                        }
                    }
                }
                objects
            }));
        }

        let mut objects: Vec<HashMap<u32, Box<dyn SendChare>>> = Vec::new();
        for h in handles {
            objects.push(h.join().expect("worker panicked"));
        }
        ThreadRunResult {
            entry_counts: inner
                .entry_counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            entry_names: self.entry_names,
            objects,
            owner: self.owner,
        }
    }
}

/// The outcome of a threaded run.
pub struct ThreadRunResult {
    /// Executions per entry method.
    pub entry_counts: Vec<u64>,
    /// Registered entry names.
    pub entry_names: Vec<String>,
    objects: Vec<HashMap<u32, Box<dyn SendChare>>>,
    owner: Vec<usize>,
}

impl ThreadRunResult {
    /// Take an object back out of the runtime (for reading results).
    pub fn take_object(&mut self, id: ObjId) -> Option<Box<dyn SendChare>> {
        let w = *self.owner.get(id.idx())?;
        self.objects[w].remove(&id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts hits; optionally forwards `remaining` hops around a ring.
    struct Hopper {
        hits: Arc<AtomicUsize>,
        next: Option<ObjId>,
        entry: EntryId,
    }

    impl SendChare for Hopper {
        fn receive(&mut self, _e: EntryId, payload: SendPayload, ctx: &mut ThreadCtx) {
            self.hits.fetch_add(1, Ordering::SeqCst);
            let remaining = *payload.downcast::<u32>().expect("u32 hop count");
            if remaining > 0 {
                if let Some(next) = self.next {
                    ctx.send(next, self.entry, Box::new(remaining - 1));
                }
            }
        }
    }

    #[test]
    fn ring_message_hops_to_completion() {
        // Objects are numbered in registration order, so the ring's next
        // pointers are known up front.
        let mut rt = ThreadRuntime::new(4);
        let hop = rt.register_entry("hop");
        let hits = Arc::new(AtomicUsize::new(0));
        let n = 8usize;
        for i in 0..n {
            let next = ObjId(((i + 1) % n) as u32);
            let id = rt.register(
                Box::new(Hopper { hits: hits.clone(), next: Some(next), entry: hop }),
                i % 4,
            );
            assert_eq!(id, ObjId(i as u32));
        }
        rt.inject(ObjId(0), hop, Box::new(100u32));
        let result = rt.run();
        assert_eq!(hits.load(Ordering::SeqCst), 101);
        assert_eq!(result.entry_counts[hop.idx()], 101);
    }

    /// Fans out `width` messages to workers, each of which replies to a sink.
    struct FanSource {
        targets: Vec<ObjId>,
        entry: EntryId,
    }
    impl SendChare for FanSource {
        fn receive(&mut self, _e: EntryId, _p: SendPayload, ctx: &mut ThreadCtx) {
            for &t in &self.targets {
                ctx.send(t, self.entry, Box::new(()));
            }
        }
    }
    struct Echo {
        sink: ObjId,
        entry: EntryId,
    }
    impl SendChare for Echo {
        fn receive(&mut self, _e: EntryId, _p: SendPayload, ctx: &mut ThreadCtx) {
            ctx.send(self.sink, self.entry, Box::new(()));
        }
    }
    struct Sink {
        count: Arc<AtomicUsize>,
    }
    impl SendChare for Sink {
        fn receive(&mut self, _e: EntryId, _p: SendPayload, _ctx: &mut ThreadCtx) {
            self.count.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn fan_out_fan_in_reaches_quiescence_with_exact_counts() {
        let mut rt = ThreadRuntime::new(3);
        let go = rt.register_entry("go");
        let echo = rt.register_entry("echo");
        let done = rt.register_entry("done");
        let sink_count = Arc::new(AtomicUsize::new(0));
        let sink = rt.register(Box::new(Sink { count: sink_count.clone() }), 0);
        let width = 200;
        let echoes: Vec<ObjId> = (0..width)
            .map(|i| rt.register(Box::new(Echo { sink, entry: done }), i % 3))
            .collect();
        let source = rt.register(Box::new(FanSource { targets: echoes, entry: echo }), 1);
        rt.inject(source, go, Box::new(()));
        let mut result = rt.run();
        assert_eq!(result.entry_counts[echo.idx()], width as u64);
        assert_eq!(result.entry_counts[done.idx()], width as u64);
        assert_eq!(sink_count.load(Ordering::SeqCst), width);
        // The object can also be taken back out after the run.
        assert!(result.take_object(sink).is_some());
        assert!(result.take_object(sink).is_none());
    }

    #[test]
    fn empty_runtime_terminates() {
        let rt = ThreadRuntime::new(2);
        let result = rt.run();
        assert!(result.entry_counts.is_empty());
    }

    #[test]
    fn heavy_cross_worker_traffic_loses_no_messages() {
        // Every object broadcasts to every other object once; total
        // executions must be exactly n + n·(n−1).
        struct Broadcaster {
            peers: Vec<ObjId>,
            entry: EntryId,
            started: bool,
        }
        impl SendChare for Broadcaster {
            fn receive(&mut self, _e: EntryId, _p: SendPayload, ctx: &mut ThreadCtx) {
                if !self.started {
                    self.started = true;
                    for &p in &self.peers {
                        ctx.send(p, self.entry, Box::new(()));
                    }
                }
            }
        }
        let mut rt = ThreadRuntime::new(4);
        let e = rt.register_entry("bcast");
        let n = 40u32;
        for i in 0..n {
            let peers: Vec<ObjId> = (0..n).filter(|&j| j != i).map(ObjId).collect();
            rt.register(Box::new(Broadcaster { peers, entry: e, started: false }), i as usize % 4);
        }
        for i in 0..n {
            rt.inject(ObjId(i), e, Box::new(()));
        }
        let result = rt.run();
        // n initial receives trigger n·(n−1) broadcasts, all of which are
        // received (but do not rebroadcast).
        assert_eq!(result.entry_counts[e.idx()], (n + n * (n - 1)) as u64);
    }
}
