//! Real-threads execution backend: the same chare graph the DES runs,
//! executed by OS worker threads with measured wall-clock instrumentation.
//!
//! One worker thread per PE, each with a prioritized message queue
//! (mirroring the per-PE scheduler of §2.2). A handler runs on the worker
//! that owns its object; its sends are enqueued on the destination
//! owners' queues when it returns, exactly like the DES dispatch order.
//! Quiescence is detected by a global in-flight message counter:
//! the count is incremented *before* a message is enqueued and
//! decremented only after its handler has run *and* enqueued its own
//! sends, so the counter can only reach zero when no work remains.
//!
//! Measurement: every handler execution is timed with a monotonic clock
//! from a common epoch and attributed to the same [`SummaryStats`],
//! [`Trace`], and [`LdbDatabase`] the DES fills — so the
//! measurement-based load-balancing cycle runs unchanged on real
//! hardware, from *measured* rather than modeled durations. The makespan
//! returned by [`ThreadRuntime::run`] is the latest handler end time,
//! which excludes thread spawn/join overhead.
//!
//! Unlike the DES, execution order across workers is nondeterministic —
//! that is the point; programs must be written message-driven, and the
//! tests check outcomes, not schedules.

use crate::chare::{Chare, Ctx};
use crate::fault::{DeadLetter, FaultAction, FaultPlan, FaultState};
use crate::ldb::LdbDatabase;
use crate::msg::{EntryId, ObjId, Payload, Pe, Priority};
use crate::runtime::{RunStall, Runtime};
use crate::sched::SchedulePolicy;
use crate::stats::SummaryStats;
use crate::trace::{Trace, TraceEvent};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtOrd};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A queued message awaiting execution on a worker.
struct TMsg {
    /// Dequeue-order key from the [`SchedulePolicy`] (smaller runs first);
    /// `(priority, seq)` under the default FIFO policy.
    key: (i64, u64),
    seq: u64,
    /// Original priority and declared size, retained so a message still
    /// queued at a stall can be re-injected for the repair re-run.
    priority: Priority,
    bytes: usize,
    to: ObjId,
    entry: EntryId,
    payload: Payload,
    /// CRC-64 of the payload stamped at send time when the fault plan can
    /// corrupt messages; verified before the handler runs. `None` when no
    /// corruption is possible (the common case — checksumming is free then).
    crc: Option<u64>,
    /// Length of the dependency chain (sum of measured handler seconds)
    /// that produced this message — the critical-path accumulator.
    path: f64,
}

impl PartialEq for TMsg {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for TMsg {}
impl PartialOrd for TMsg {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TMsg {
    // Max-heap → invert for smallest (key, seq) first, like the DES.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

/// One worker's scheduler queue.
struct WorkerQueue {
    heap: Mutex<BinaryHeap<TMsg>>,
    available: Condvar,
}

/// State shared by all workers during a run.
struct Sched {
    queues: Vec<WorkerQueue>,
    /// Messages enqueued but whose handler (plus its sends' enqueueing)
    /// has not completed. Zero ⇒ quiescence.
    in_flight: AtomicU64,
    /// Set on quiescence or `Ctx::stop`; remaining queued messages drop.
    done: AtomicBool,
    /// Global message sequence for priority tie-breaks within a queue.
    seq: AtomicU64,
    /// Object → owning worker, frozen for the duration of the run.
    obj_pe: Vec<Pe>,
    n_pes: usize,
    epoch: Instant,
    /// Wall-clock time of the epoch, seconds since the Unix epoch: trace
    /// events carry `epoch_wall + start` so timeline diagnostics line up
    /// with external logs (checkpoint fsync stalls, competing load).
    epoch_wall: f64,
    /// Dequeue-order perturbation (default: native FIFO).
    policy: SchedulePolicy,
    /// Installed fault plan, if any (shared occurrence counters).
    fault: Option<Mutex<FaultState>>,
    /// True when the fault plan holds a corrupt rule: every send gets a
    /// payload CRC stamped so flipped bytes are caught at delivery.
    stamp_crc: bool,
    /// Messages the fault plan dropped, awaiting possible redelivery.
    dead_letters: Mutex<Vec<DeadLetter>>,
    /// Handler executions completed — the watchdog's progress signal.
    executed: AtomicU64,
    /// Workers currently blocked waiting for a message.
    idle: AtomicU64,
    /// Set by the watchdog when quiescence can never be reached.
    stalled: AtomicBool,
    /// Per-PE kill flags: a dead worker exits its loop (counting itself
    /// permanently idle so the watchdog still works for the survivors).
    dead: Vec<AtomicBool>,
    /// First PE killed during this run, if any.
    crashed: Mutex<Option<Pe>>,
    msgs_dropped: AtomicU64,
    msgs_duplicated: AtomicU64,
    msgs_delayed: AtomicU64,
    pes_killed: AtomicU64,
    msgs_corrupted: AtomicU64,
    msgs_crc_rejected: AtomicU64,
}

impl Sched {
    fn enqueue(&self, pe: Pe, msg: TMsg) {
        self.in_flight.fetch_add(1, AtOrd::SeqCst);
        let q = &self.queues[pe];
        let mut heap = q.heap.lock().unwrap();
        heap.push(msg);
        q.available.notify_one();
    }

    fn finish_message(&self) {
        if self.in_flight.fetch_sub(1, AtOrd::SeqCst) == 1 {
            self.shutdown();
        }
    }

    fn shutdown(&self) {
        self.done.store(true, AtOrd::SeqCst);
        for q in &self.queues {
            // Take the lock so a worker between its `done` check and its
            // wait cannot miss the wakeup.
            let _guard = q.heap.lock().unwrap();
            q.available.notify_all();
        }
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, AtOrd::SeqCst)
    }
}

/// Per-worker measurement collector, merged into the runtime's
/// instrumentation after the workers join.
struct WorkerMetrics {
    pe: Pe,
    busy: f64,
    entry_time: Vec<f64>,
    entry_count: Vec<u64>,
    msgs_sent: u64,
    bytes_sent: u64,
    /// Per-entry wire accounting: messages and packed payload bytes sent.
    wire_msgs: Vec<u64>,
    wire_bytes: Vec<u64>,
    /// (object, measured seconds) per handler execution.
    obj_secs: Vec<(ObjId, f64)>,
    trace: Vec<TraceEvent>,
    /// Latest handler end time (epoch-relative seconds).
    last_end: f64,
    /// Longest dependency chain ending at a handler this worker ran.
    critical_path: f64,
}

/// Real-threads [`Runtime`] backend. See the module docs.
///
/// ```
/// use charmrt::{Chare, Ctx, EntryId, Payload, Runtime, ThreadRuntime, PRIO_NORMAL};
///
/// struct Echo;
/// impl Chare for Echo {
///     fn receive(&mut self, _e: EntryId, _p: Payload, _ctx: &mut Ctx) {}
/// }
///
/// let mut rt = ThreadRuntime::new(2);
/// let e = rt.register_entry("echo");
/// let o = rt.register(Box::new(Echo), 1, true);
/// rt.inject(o, e, 0, PRIO_NORMAL, Vec::new());
/// rt.run();
/// assert_eq!(rt.stats.entry_count[e.idx()], 1);
/// ```
pub struct ThreadRuntime {
    n_pes: usize,
    objects: Vec<Option<Box<dyn Chare>>>,
    obj_pe: Vec<Pe>,
    /// Bootstrap messages queued by `inject` until the next `run`. The
    /// trailing f64 is the carried critical-path length (0 for bootstraps).
    injected: Vec<(ObjId, EntryId, usize, Priority, Payload, f64)>,
    /// Messages queued for a repair re-run (redelivered dead letters and
    /// messages still queued when a stall ended the previous run). Unlike
    /// `injected` these are *not* new entries into the system, so draining
    /// them does not bump `msgs_injected`.
    requeued: Vec<(ObjId, EntryId, usize, Priority, Payload, f64)>,
    tracing: bool,
    /// Dequeue-order perturbation (default: native FIFO).
    policy: SchedulePolicy,
    /// Installed fault plan (occurrence counters persist across re-runs,
    /// so a `limit=1` drop rule does not re-drop its redelivery cascade).
    fault: Option<FaultState>,
    /// Messages the fault plan dropped, awaiting possible redelivery.
    dead_letters: Vec<DeadLetter>,
    /// No-progress window after which a non-quiescent run is declared
    /// stalled. Generous relative to the 50 ms worker wait.
    stall_timeout: Duration,
    /// Summary-profile instrumentation (measured wall-clock).
    pub stats: SummaryStats,
    /// Full event trace (opt-in via `set_tracing`).
    pub trace: Trace,
    /// Load-balancing measurement database (measured wall-clock).
    pub ldb: LdbDatabase,
    /// First PE felled by a kill fault, across all runs of this runtime.
    crashed: Option<Pe>,
}

impl ThreadRuntime {
    /// Create a runtime with `n_pes` worker threads.
    pub fn new(n_pes: usize) -> Self {
        assert!(n_pes > 0, "need at least one worker");
        ThreadRuntime {
            n_pes,
            objects: Vec::new(),
            obj_pe: Vec::new(),
            injected: Vec::new(),
            requeued: Vec::new(),
            tracing: false,
            policy: SchedulePolicy::default(),
            fault: None,
            dead_letters: Vec::new(),
            stall_timeout: Duration::from_millis(500),
            stats: SummaryStats::new(n_pes),
            trace: Trace::default(),
            ldb: LdbDatabase::new(n_pes),
            crashed: None,
        }
    }

    /// Number of worker threads.
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// The PE felled by a kill fault during any run of this runtime, if
    /// any. A crashed run cannot be repaired by redelivery — recover from
    /// a checkpoint.
    pub fn crashed(&self) -> Option<Pe> {
        self.crashed
    }

    /// Set the schedule-perturbation policy for subsequent deliveries.
    pub fn set_schedule_policy(&mut self, policy: SchedulePolicy) {
        self.policy = policy;
    }

    /// Install a fault plan, applied to every subsequent send. Panics if a
    /// rule names an entry method that is not registered.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault =
            Some(FaultState::install(plan, &self.stats.entry_names).expect("bad fault plan"));
    }

    /// Shrink the no-progress watchdog window (tests; default 500 ms).
    pub fn set_stall_timeout(&mut self, timeout: Duration) {
        self.stall_timeout = timeout;
    }

    /// Re-queue every dead-lettered (dropped) message for the next run —
    /// the sender's retransmission after a delivery timeout. Redeliveries
    /// take the bootstrap path, bypassing the fault plan entirely (the
    /// retry succeeds). Returns how many were re-sent.
    pub fn redeliver_dead_letters(&mut self) -> usize {
        let letters = std::mem::take(&mut self.dead_letters);
        let n = letters.len();
        for dl in letters {
            self.requeued.push((dl.to, dl.entry, dl.bytes, dl.priority, dl.payload, dl.path));
        }
        self.stats.msgs_redelivered += n as u64;
        n
    }

    fn worker_loop(
        sched: &Sched,
        pe: Pe,
        objects: &mut [Option<Box<dyn Chare>>],
        n_entries: usize,
    ) -> WorkerMetrics {
        let mut metrics = WorkerMetrics {
            pe,
            busy: 0.0,
            entry_time: vec![0.0; n_entries],
            entry_count: vec![0; n_entries],
            msgs_sent: 0,
            bytes_sent: 0,
            wire_msgs: vec![0; n_entries],
            wire_bytes: vec![0; n_entries],
            obj_secs: Vec::new(),
            trace: Vec::new(),
            last_end: 0.0,
            critical_path: 0.0,
        };
        let q = &sched.queues[pe];
        loop {
            let msg = {
                let mut heap = q.heap.lock().unwrap();
                loop {
                    if sched.done.load(AtOrd::SeqCst) {
                        return metrics;
                    }
                    if sched.dead[pe].load(AtOrd::SeqCst) {
                        // Killed by the fault plan: exit for good, counting
                        // this worker permanently idle so the survivors'
                        // no-progress watchdog can still see "everyone
                        // idle" and end the run.
                        sched.idle.fetch_add(1, AtOrd::SeqCst);
                        return metrics;
                    }
                    if let Some(m) = heap.pop() {
                        break m;
                    }
                    // Timed wait purely as a belt-and-braces guard: every
                    // state change notifies under this lock, so the
                    // timeout should never be what wakes us. The idle
                    // count lets the no-progress watchdog distinguish
                    // "everyone waiting, messages lost" from live work.
                    sched.idle.fetch_add(1, AtOrd::SeqCst);
                    let (guard, _) =
                        q.available.wait_timeout(heap, Duration::from_millis(50)).unwrap();
                    sched.idle.fetch_sub(1, AtOrd::SeqCst);
                    heap = guard;
                }
            };

            // Verify the payload checksum before the handler sees the bytes:
            // a corrupted message is rejected here, exactly as a NIC would
            // discard a frame with a bad FCS.
            if let Some(stamped) = msg.crc {
                if ckpt::crc64(&msg.payload) != stamped {
                    sched.msgs_crc_rejected.fetch_add(1, AtOrd::SeqCst);
                    sched.msgs_dropped.fetch_add(1, AtOrd::SeqCst);
                    sched.finish_message();
                    continue;
                }
            }

            let start = sched.epoch.elapsed().as_secs_f64();
            let mut ctx = Ctx::new(pe, start, msg.to, sched.n_pes);
            let obj = objects[msg.to.idx()]
                .as_deref_mut()
                .expect("message routed to a worker that does not own the object");
            obj.receive(msg.entry, msg.payload, &mut ctx);
            let end = sched.epoch.elapsed().as_secs_f64();

            let secs = end - start;
            let end_path = msg.path + secs;
            metrics.critical_path = metrics.critical_path.max(end_path);
            metrics.busy += secs;
            metrics.entry_time[msg.entry.idx()] += secs;
            metrics.entry_count[msg.entry.idx()] += 1;
            metrics.obj_secs.push((msg.to, secs));
            metrics.last_end = metrics.last_end.max(end);
            metrics.trace.push(TraceEvent {
                pe,
                obj: msg.to,
                entry: msg.entry,
                start,
                end,
                wall: sched.epoch_wall + start,
            });

            sched.executed.fetch_add(1, AtOrd::SeqCst);
            let stop = ctx.stop;
            for mut s in ctx.sends.drain(..) {
                metrics.msgs_sent += 1;
                metrics.bytes_sent += s.bytes as u64;
                metrics.wire_msgs[s.entry.idx()] += 1;
                metrics.wire_bytes[s.entry.idx()] += s.payload.len() as u64;
                let mut crc = sched.stamp_crc.then(|| ckpt::crc64(&s.payload));
                let dest = sched.obj_pe[s.to.idx()];
                let fate = sched
                    .fault
                    .as_ref()
                    .and_then(|f| f.lock().unwrap().decide(s.entry, pe, dest));
                match fate {
                    Some(FaultAction::Drop) => {
                        // A faithful lost packet: the quiescence counter
                        // sees the send but no receive will ever match it,
                        // so the watchdog (not quiescence) ends the run.
                        sched.in_flight.fetch_add(1, AtOrd::SeqCst);
                        sched.msgs_dropped.fetch_add(1, AtOrd::SeqCst);
                        sched.dead_letters.lock().unwrap().push(DeadLetter {
                            to: s.to,
                            entry: s.entry,
                            bytes: s.bytes,
                            priority: s.priority,
                            payload: s.payload,
                            path: end_path,
                        });
                        continue;
                    }
                    Some(FaultAction::Kill) => {
                        // The destination PE dies at this delivery and the
                        // message dies with it — a dropped send with no
                        // dead letter (the process that would have read it
                        // no longer exists). Like Drop, the in-flight
                        // counter sees a send no receive will ever match,
                        // so quiescence is provably unreachable and the
                        // watchdog ends the run; the caller must recover
                        // from a checkpoint, not redeliver.
                        sched.in_flight.fetch_add(1, AtOrd::SeqCst);
                        sched.msgs_dropped.fetch_add(1, AtOrd::SeqCst);
                        if !sched.dead[dest].swap(true, AtOrd::SeqCst) {
                            sched.pes_killed.fetch_add(1, AtOrd::SeqCst);
                            sched.crashed.lock().unwrap().get_or_insert(dest);
                            // Wake the victim so it notices it is dead.
                            let _guard = sched.queues[dest].heap.lock().unwrap();
                            sched.queues[dest].available.notify_all();
                        }
                        continue;
                    }
                    Some(FaultAction::Duplicate) => {
                        sched.msgs_duplicated.fetch_add(1, AtOrd::SeqCst);
                        let seq = sched.next_seq();
                        sched.enqueue(
                            dest,
                            TMsg {
                                key: sched.policy.key(s.priority, seq),
                                seq,
                                priority: s.priority,
                                bytes: s.bytes,
                                to: s.to,
                                entry: s.entry,
                                payload: Vec::new(),
                                crc: None,
                                path: end_path,
                            },
                        );
                    }
                    Some(FaultAction::Corrupt(n)) => {
                        // Flip payload bytes in flight. A clean copy goes to
                        // the dead-letter queue so the CRC rejection can be
                        // repaired by retransmission, like a drop.
                        sched.msgs_corrupted.fetch_add(1, AtOrd::SeqCst);
                        sched.dead_letters.lock().unwrap().push(DeadLetter {
                            to: s.to,
                            entry: s.entry,
                            bytes: s.bytes,
                            priority: s.priority,
                            payload: s.payload.clone(),
                            path: end_path,
                        });
                        if s.payload.is_empty() {
                            // Nothing to flip: corrupt the checksum instead.
                            crc = crc.map(|c| !c);
                        } else {
                            let flip = (n as usize).min(s.payload.len());
                            for byte in &mut s.payload[..flip] {
                                *byte ^= 0xFF;
                            }
                        }
                    }
                    _ => {}
                }
                let seq = sched.next_seq();
                // No virtual clock to postpone delivery on: a delayed
                // message is instead demoted behind all normal work.
                let key = if matches!(fate, Some(FaultAction::Delay(_))) {
                    sched.msgs_delayed.fetch_add(1, AtOrd::SeqCst);
                    (i64::MAX, seq)
                } else {
                    sched.policy.key(s.priority, seq)
                };
                sched.enqueue(
                    dest,
                    TMsg {
                        key,
                        seq,
                        priority: s.priority,
                        bytes: s.bytes,
                        to: s.to,
                        entry: s.entry,
                        payload: s.payload,
                        crc,
                        path: end_path,
                    },
                );
            }
            if stop {
                self::Sched::shutdown(sched);
                sched.in_flight.fetch_sub(1, AtOrd::SeqCst);
            } else {
                sched.finish_message();
            }
        }
    }

    /// Run to quiescence (or `Ctx::stop`) on real worker threads. Returns
    /// the makespan: the latest handler end time, in wall seconds from the
    /// run's epoch. Panics if the no-progress watchdog declares a stall —
    /// use [`ThreadRuntime::try_run`] when stalls are expected (fault
    /// injection).
    pub fn run(&mut self) -> f64 {
        self.try_run().expect("quiescence unreachable")
    }

    /// Like [`ThreadRuntime::run`], but a run that can never reach
    /// quiescence (a dropped message leaves the in-flight counter pinned
    /// above zero) is detected by a no-progress watchdog and returned as
    /// [`RunStall`] instead of spinning forever. Messages still queued at
    /// the stall are preserved and re-queued for the next run.
    pub fn try_run(&mut self) -> Result<f64, RunStall> {
        if self.injected.is_empty() && self.requeued.is_empty() {
            return Ok(0.0);
        }
        let n_entries = self.stats.entry_names.len();
        let stamp_crc = self.fault.as_ref().is_some_and(|f| f.has_corruption());
        let sched = Sched {
            queues: (0..self.n_pes)
                .map(|_| WorkerQueue {
                    heap: Mutex::new(BinaryHeap::new()),
                    available: Condvar::new(),
                })
                .collect(),
            in_flight: AtomicU64::new(0),
            done: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            obj_pe: self.obj_pe.clone(),
            n_pes: self.n_pes,
            epoch: Instant::now(),
            epoch_wall: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0),
            policy: self.policy,
            fault: self.fault.take().map(Mutex::new),
            stamp_crc,
            dead_letters: Mutex::new(Vec::new()),
            executed: AtomicU64::new(0),
            idle: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            dead: (0..self.n_pes).map(|_| AtomicBool::new(false)).collect(),
            crashed: Mutex::new(None),
            msgs_dropped: AtomicU64::new(0),
            msgs_duplicated: AtomicU64::new(0),
            msgs_delayed: AtomicU64::new(0),
            pes_killed: AtomicU64::new(0),
            msgs_corrupted: AtomicU64::new(0),
            msgs_crc_rejected: AtomicU64::new(0),
        };
        self.stats.msgs_injected += self.injected.len() as u64;
        for (to, entry, bytes, priority, payload, path) in
            self.injected.drain(..).chain(self.requeued.drain(..))
        {
            let pe = sched.obj_pe[to.idx()];
            let seq = sched.next_seq();
            let key = sched.policy.key(priority, seq);
            sched.enqueue(pe, TMsg { key, seq, priority, bytes, to, entry, payload, crc: None, path });
        }

        // Partition object ownership: each worker gets a dense table with
        // only its own objects present.
        let n_objects = self.objects.len();
        let mut owned: Vec<Vec<Option<Box<dyn Chare>>>> =
            (0..self.n_pes).map(|_| (0..n_objects).map(|_| None).collect()).collect();
        for (idx, slot) in self.objects.iter_mut().enumerate() {
            if let Some(obj) = slot.take() {
                owned[self.obj_pe[idx]][idx] = Some(obj);
            }
        }

        let stall_timeout = self.stall_timeout;
        let mut worker_metrics: Vec<WorkerMetrics> = std::thread::scope(|scope| {
            let handles: Vec<_> = owned
                .iter_mut()
                .enumerate()
                .map(|(pe, objs)| {
                    let sched = &sched;
                    scope.spawn(move || Self::worker_loop(sched, pe, objs, n_entries))
                })
                .collect();

            // No-progress watchdog, run on the calling thread: quiescence
            // can never be reached if every worker sits idle while the
            // in-flight counter stays pinned above zero (a lost message).
            // "No progress" = the executed count has not moved for the
            // whole stall window — transient all-idle moments between a
            // notify and a wakeup don't trip it.
            let mut last_exec = sched.executed.load(AtOrd::SeqCst);
            let mut last_change = Instant::now();
            loop {
                if sched.done.load(AtOrd::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
                let exec = sched.executed.load(AtOrd::SeqCst);
                if exec != last_exec {
                    last_exec = exec;
                    last_change = Instant::now();
                    continue;
                }
                // A kill makes quiescence unreachable by construction, so
                // don't make the recovery path wait out the full window.
                let window = if sched.pes_killed.load(AtOrd::SeqCst) > 0 {
                    stall_timeout.min(Duration::from_millis(50))
                } else {
                    stall_timeout
                };
                if sched.in_flight.load(AtOrd::SeqCst) > 0
                    && sched.idle.load(AtOrd::SeqCst) as usize == sched.n_pes
                    && last_change.elapsed() >= window
                {
                    sched.stalled.store(true, AtOrd::SeqCst);
                    sched.shutdown();
                    break;
                }
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        // Return object ownership to the runtime.
        for objs in owned.iter_mut() {
            for (idx, slot) in objs.iter_mut().enumerate() {
                if let Some(obj) = slot.take() {
                    self.objects[idx] = Some(obj);
                }
            }
        }

        // Fault state (occurrence counters) and dead letters outlive the run.
        self.fault = sched.fault.map(|f| f.into_inner().unwrap());
        self.dead_letters.extend(sched.dead_letters.into_inner().unwrap());
        let stalled = sched.stalled.load(AtOrd::SeqCst);
        let mut undelivered = 0usize;
        for q in &sched.queues {
            let mut heap = q.heap.lock().unwrap();
            for m in heap.drain() {
                if stalled {
                    // Preserve for the repair re-run (no counter: the send
                    // was already counted; the receive is still to come).
                    undelivered += 1;
                    self.requeued.push((m.to, m.entry, m.bytes, m.priority, m.payload, m.path));
                } else {
                    // `Ctx::stop` discards whatever was still queued.
                    self.stats.msgs_discarded += 1;
                }
            }
        }

        // Merge per-worker measurements into the shared instrumentation.
        worker_metrics.sort_by_key(|m| m.pe);
        let mut makespan = 0.0f64;
        for m in worker_metrics {
            self.stats.pe_busy[m.pe] += m.busy;
            self.stats.critical_path = self.stats.critical_path.max(m.critical_path);
            for (i, (&t, &c)) in m.entry_time.iter().zip(&m.entry_count).enumerate() {
                self.stats.entry_time[i] += t;
                self.stats.entry_count[i] += c;
            }
            self.stats.msgs_sent += m.msgs_sent;
            self.stats.bytes_sent += m.bytes_sent;
            for (i, (&wm, &wb)) in m.wire_msgs.iter().zip(&m.wire_bytes).enumerate() {
                self.stats.entry_wire_msgs[i] += wm;
                self.stats.entry_wire_bytes[i] += wb;
            }
            for (obj, secs) in m.obj_secs {
                self.ldb.attribute(obj, m.pe, secs);
            }
            if self.tracing {
                for ev in m.trace {
                    self.trace.record(ev);
                }
            }
            makespan = makespan.max(m.last_end);
        }
        self.stats.msgs_received += sched.executed.load(AtOrd::SeqCst);
        self.stats.msgs_dropped += sched.msgs_dropped.load(AtOrd::SeqCst);
        self.stats.msgs_duplicated += sched.msgs_duplicated.load(AtOrd::SeqCst);
        self.stats.msgs_delayed += sched.msgs_delayed.load(AtOrd::SeqCst);
        self.stats.pes_killed += sched.pes_killed.load(AtOrd::SeqCst);
        self.stats.msgs_corrupted += sched.msgs_corrupted.load(AtOrd::SeqCst);
        self.stats.msgs_crc_rejected += sched.msgs_crc_rejected.load(AtOrd::SeqCst);
        self.crashed = self.crashed.or(sched.crashed.into_inner().unwrap());

        if stalled {
            Err(RunStall {
                makespan,
                in_flight: sched.in_flight.load(AtOrd::SeqCst),
                undelivered: undelivered + self.dead_letters.len(),
            })
        } else {
            Ok(makespan)
        }
    }
}

impl Runtime for ThreadRuntime {
    fn n_pes(&self) -> usize {
        self.n_pes
    }

    fn register_entry(&mut self, name: &str) -> EntryId {
        self.stats.register_entry(name)
    }

    fn register(&mut self, obj: Box<dyn Chare>, pe: Pe, migratable: bool) -> ObjId {
        assert!(pe < self.n_pes, "PE {pe} out of range ({} workers)", self.n_pes);
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Some(obj));
        self.obj_pe.push(pe);
        self.ldb.on_register(migratable);
        id
    }

    fn inject(
        &mut self,
        to: ObjId,
        entry: EntryId,
        bytes: usize,
        priority: Priority,
        payload: Payload,
    ) {
        self.injected.push((to, entry, bytes, priority, payload, 0.0));
    }

    fn run(&mut self) -> f64 {
        Self::run(self)
    }

    fn try_run(&mut self) -> Result<f64, RunStall> {
        Self::try_run(self)
    }

    fn set_schedule_policy(&mut self, policy: SchedulePolicy) {
        Self::set_schedule_policy(self, policy)
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        Self::set_fault_plan(self, plan)
    }

    fn redeliver_dead_letters(&mut self) -> usize {
        Self::redeliver_dead_letters(self)
    }

    fn crashed(&self) -> Option<Pe> {
        Self::crashed(self)
    }

    fn stats(&self) -> &SummaryStats {
        &self.stats
    }

    fn trace(&self) -> &Trace {
        &self.trace
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn ldb(&self) -> &LdbDatabase {
        &self.ldb
    }

    fn placement(&self) -> &[Pe] {
        &self.obj_pe
    }

    fn migrate(&mut self, obj: ObjId, pe: Pe) {
        assert!(pe < self.n_pes);
        self.obj_pe[obj.idx()] = pe;
    }

    fn object(&self, obj: ObjId) -> &dyn Chare {
        self.objects[obj.idx()].as_deref().expect("object missing")
    }

    fn object_mut(&mut self, obj: ObjId) -> &mut dyn Chare {
        self.objects[obj.idx()].as_deref_mut().expect("object missing")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{PRIO_HIGH, PRIO_NORMAL};
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    /// Counts hits; forwards `hops` more times along `next`.
    struct Hopper {
        next: Option<ObjId>,
        entry: EntryId,
        hops: u32,
        hits: Arc<AtomicU32>,
    }

    impl Chare for Hopper {
        fn receive(&mut self, _e: EntryId, _p: Payload, ctx: &mut Ctx) {
            self.hits.fetch_add(1, AtOrd::SeqCst);
            if self.hops > 0 {
                self.hops -= 1;
                if let Some(next) = self.next {
                    ctx.signal(next, self.entry, PRIO_NORMAL);
                }
            }
        }
    }

    #[test]
    fn ring_message_hops_to_completion() {
        let mut rt = ThreadRuntime::new(3);
        let e = rt.register_entry("hop");
        let hits = Arc::new(AtomicU32::new(0));
        let n = 3;
        // Ids are dense and sequential: node i forwards to (i + 1) % n.
        let ids: Vec<ObjId> = (0..n)
            .map(|i| {
                rt.register(
                    Box::new(Hopper {
                        next: Some(ObjId(((i + 1) % n) as u32)),
                        entry: e,
                        hops: 5,
                        hits: hits.clone(),
                    }),
                    i % 3,
                    true,
                )
            })
            .collect();
        assert_eq!(ids[1], ObjId(1));
        rt.inject(ids[0], e, 0, PRIO_NORMAL, Vec::new());
        let t = rt.run();
        // Bootstrap + each node forwards until its own hop budget drains:
        // 1 + 3 × 5 executions in a 3-ring.
        assert_eq!(hits.load(AtOrd::SeqCst), 16);
        assert_eq!(rt.stats.entry_count[e.idx()], 16);
        assert!(t > 0.0);
    }

    /// Root fans out to all leaves; each leaf reports back; root counts.
    struct FanRoot {
        leaves: Vec<ObjId>,
        fan: EntryId,
        acks: u32,
    }

    impl Chare for FanRoot {
        fn receive(&mut self, entry: EntryId, _p: Payload, ctx: &mut Ctx) {
            if entry == self.fan {
                let leaves = self.leaves.clone();
                for leaf in leaves {
                    ctx.signal(leaf, self.fan, PRIO_NORMAL);
                }
            } else {
                self.acks += 1;
            }
        }
    }

    struct FanLeaf {
        root: ObjId,
        ack: EntryId,
    }

    impl Chare for FanLeaf {
        fn receive(&mut self, _e: EntryId, _p: Payload, ctx: &mut Ctx) {
            ctx.signal(self.root, self.ack, PRIO_HIGH);
        }
    }

    #[test]
    fn fan_out_fan_in_reaches_quiescence_with_exact_counts() {
        let mut rt = ThreadRuntime::new(4);
        let fan = rt.register_entry("fan");
        let ack = rt.register_entry("ack");
        let n_leaves = 24u32;
        let root = ObjId(0);
        let leaves: Vec<ObjId> = (1..=n_leaves).map(ObjId).collect();
        rt.register(Box::new(FanRoot { leaves: leaves.clone(), fan, acks: 0 }), 0, false);
        for (i, _) in leaves.iter().enumerate() {
            rt.register(Box::new(FanLeaf { root, ack }), i % 4, true);
        }
        rt.inject(root, fan, 0, PRIO_NORMAL, Vec::new());
        rt.run();
        assert_eq!(rt.stats.entry_count[fan.idx()], 1 + n_leaves as u64);
        assert_eq!(rt.stats.entry_count[ack.idx()], n_leaves as u64);
        // Leaf loads were measured and attributed per object; the fixed
        // root landed in PE 0's background load.
        let snap = rt.ldb.snapshot(Runtime::placement(&rt));
        assert!(snap.objects.iter().skip(1).all(|o| o.load > 0.0));
        assert!(snap.background[0] > 0.0);
    }

    #[test]
    fn empty_runtime_terminates() {
        let mut rt = ThreadRuntime::new(2);
        rt.register_entry("never");
        assert_eq!(rt.run(), 0.0);
    }

    #[test]
    fn heavy_cross_worker_traffic_loses_no_messages() {
        let mut rt = ThreadRuntime::new(4);
        let e = rt.register_entry("bounce");
        let hits = Arc::new(AtomicU32::new(0));
        let n = 16usize;
        for i in 0..n {
            rt.register(
                Box::new(Hopper {
                    next: Some(ObjId(((i + 7) % n) as u32)),
                    entry: e,
                    hops: 40,
                    hits: hits.clone(),
                }),
                i % 4,
                true,
            );
        }
        for i in 0..n {
            rt.inject(ObjId(i as u32), e, 64, PRIO_NORMAL, Vec::new());
        }
        rt.run();
        // n bootstraps + n × 40 forwards.
        assert_eq!(hits.load(AtOrd::SeqCst), (n + n * 40) as u32);
    }

    #[test]
    fn migration_moves_objects_between_runs() {
        let mut rt = ThreadRuntime::new(2);
        let e = rt.register_entry("m");
        let hits = Arc::new(AtomicU32::new(0));
        let o = rt.register(
            Box::new(Hopper { next: None, entry: e, hops: 0, hits: hits.clone() }),
            0,
            true,
        );
        rt.inject(o, e, 0, PRIO_NORMAL, Vec::new());
        rt.run();
        let busy0 = rt.stats.pe_busy[0];
        assert!(busy0 > 0.0);

        Runtime::migrate(&mut rt, o, 1);
        rt.inject(o, e, 0, PRIO_NORMAL, Vec::new());
        rt.run();
        assert!(rt.stats.pe_busy[1] > 0.0, "work should land on worker 1 after migration");
        assert_eq!(hits.load(AtOrd::SeqCst), 2);
    }

    #[test]
    fn watchdog_reports_stall_instead_of_hanging() {
        let mut rt = ThreadRuntime::new(2);
        rt.set_stall_timeout(Duration::from_millis(100));
        let e = rt.register_entry("hop");
        let hits = Arc::new(AtomicU32::new(0));
        let a = rt.register(
            Box::new(Hopper { next: Some(ObjId(1)), entry: e, hops: 1, hits: hits.clone() }),
            0,
            true,
        );
        rt.register(
            Box::new(Hopper { next: None, entry: e, hops: 0, hits: hits.clone() }),
            1,
            true,
        );
        // Drop the one message a sends to b: quiescence is unreachable.
        rt.set_fault_plan(FaultPlan::parse("drop:entry=hop").unwrap());
        rt.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        let stall = rt.try_run().expect_err("a dropped message must stall, not hang");
        assert_eq!(stall.in_flight, 1);
        assert_eq!(stall.undelivered, 1);
        assert_eq!(hits.load(AtOrd::SeqCst), 1, "only the sender ran");
        // The sender retransmits; the repair run completes normally.
        assert_eq!(rt.redeliver_dead_letters(), 1);
        rt.try_run().expect("redelivered run must reach quiescence");
        assert_eq!(hits.load(AtOrd::SeqCst), 2);
        assert_eq!(rt.stats.msgs_dropped, 1);
        assert_eq!(rt.stats.msgs_redelivered, 1);
        assert_eq!(rt.stats.conservation_residual(), 0);
    }

    #[test]
    fn kill_fault_fells_the_destination_worker() {
        let mut rt = ThreadRuntime::new(2);
        rt.set_stall_timeout(Duration::from_millis(200));
        let e = rt.register_entry("hop");
        let hits = Arc::new(AtomicU32::new(0));
        let a = rt.register(
            Box::new(Hopper { next: Some(ObjId(1)), entry: e, hops: 1, hits: hits.clone() }),
            0,
            true,
        );
        rt.register(
            Box::new(Hopper { next: None, entry: e, hops: 0, hits: hits.clone() }),
            1,
            true,
        );
        // The first message into PE 1 kills it; the message is lost with it.
        rt.set_fault_plan(FaultPlan::parse("kill:entry=hop:dst=1").unwrap());
        rt.inject(a, e, 0, PRIO_NORMAL, Vec::new());
        let stall = rt.try_run().expect_err("a killed PE must stall the run, not hang");
        assert!(stall.in_flight >= 1);
        assert_eq!(hits.load(AtOrd::SeqCst), 1, "only the sender ran");
        assert_eq!(rt.crashed(), Some(1));
        assert_eq!(rt.stats.pes_killed, 1);
        assert_eq!(rt.stats.msgs_dropped, 1);
        // Nothing to retransmit: the loss is the PE, not the network.
        assert_eq!(rt.redeliver_dead_letters(), 0);
        assert_eq!(rt.stats.conservation_residual(), 0);
    }

    #[test]
    fn shuffled_schedule_still_reaches_quiescence_with_exact_counts() {
        let mut rt = ThreadRuntime::new(4);
        rt.set_schedule_policy(crate::SchedulePolicy::random_shuffle(99));
        let e = rt.register_entry("bounce");
        let hits = Arc::new(AtomicU32::new(0));
        let n = 8usize;
        for i in 0..n {
            rt.register(
                Box::new(Hopper {
                    next: Some(ObjId(((i + 3) % n) as u32)),
                    entry: e,
                    hops: 10,
                    hits: hits.clone(),
                }),
                i % 4,
                true,
            );
        }
        for i in 0..n {
            rt.inject(ObjId(i as u32), e, 0, PRIO_NORMAL, Vec::new());
        }
        rt.run();
        assert_eq!(hits.load(AtOrd::SeqCst), (n + n * 10) as u32);
        assert_eq!(rt.stats.conservation_residual(), 0);
    }

    #[test]
    fn stop_halts_remaining_work() {
        struct Stopper;
        impl Chare for Stopper {
            fn receive(&mut self, _e: EntryId, _p: Payload, ctx: &mut Ctx) {
                ctx.stop();
            }
        }
        let mut rt = ThreadRuntime::new(1);
        let e = rt.register_entry("s");
        let o = rt.register(Box::new(Stopper), 0, true);
        // Single worker: the high-priority stopper runs first; the lower
        // priority message is dropped at shutdown.
        let hits = Arc::new(AtomicU32::new(0));
        let n = rt.register(
            Box::new(Hopper { next: None, entry: e, hops: 0, hits: hits.clone() }),
            0,
            true,
        );
        rt.inject(o, e, 0, PRIO_HIGH, Vec::new());
        rt.inject(n, e, 0, crate::msg::PRIO_LOW, Vec::new());
        rt.run();
        assert_eq!(rt.stats.entry_count[e.idx()], 1);
        assert_eq!(hits.load(AtOrd::SeqCst), 0);
    }
}
