//! Projections-style event tracing (§4.1, level three).
//!
//! The full trace records every entry-method execution: which object ran
//! which method on which PE, from when to when. From this we derive the
//! paper's two key visual diagnostics:
//!
//! * **grainsize histograms** (Figures 1 and 2): the distribution of task
//!   durations for a given entry method;
//! * **timelines** (Figures 3 and 4): "Upshot-style" per-PE activity bars.
//!
//! Traces can be large, so tracing is opt-in, the paper's practice of
//! tracing only short instrumented runs applies here too.

use crate::msg::{EntryId, ObjId, Pe};

/// One recorded entry-method execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    pub pe: Pe,
    pub obj: ObjId,
    pub entry: EntryId,
    /// Virtual start time, seconds.
    pub start: f64,
    /// Virtual end time, seconds.
    pub end: f64,
    /// Wall-clock start time, seconds since the Unix epoch. 0 on the DES
    /// backend (whose time axis is purely virtual); the threads backend
    /// stamps real time so externally caused stalls — checkpoint fsyncs,
    /// competing processes — line up with other system logs in timeline
    /// diagnostics. Deliberately excluded from nothing: replay-equality
    /// tests compare DES traces, where this field is constant.
    pub wall: f64,
}

impl TraceEvent {
    /// Task duration (grainsize), seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// An in-memory event log with query helpers. `PartialEq` so replay tests
/// can assert two runs produced bit-identical event streams.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

/// A grainsize histogram: `bins[i]` counts tasks with duration in
/// `[i*bin_width, (i+1)*bin_width)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub bin_width: f64,
    pub bins: Vec<u64>,
}

impl Histogram {
    /// Largest observed duration, seconds (0 for an empty histogram).
    pub fn max_duration(&self) -> f64 {
        match self.bins.iter().rposition(|&c| c > 0) {
            Some(i) => (i + 1) as f64 * self.bin_width,
            None => 0.0,
        }
    }

    /// Total task count.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Render as a text bar chart (durations in milliseconds), mirroring the
    /// figures' presentation.
    pub fn render(&self, max_width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        // Render up to the last non-zero bin; computing it once keeps the
        // render linear in the bin count even for sparse histograms.
        let last = match self.bins.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return String::new(),
        };
        let mut s = String::new();
        for (i, &c) in self.bins.iter().enumerate().take(last + 1) {
            let lo_ms = i as f64 * self.bin_width * 1e3;
            let bar = "#".repeat(((c as f64 / peak as f64) * max_width as f64).round() as usize);
            s.push_str(&format!("{lo_ms:>7.1} ms | {bar} {c}\n"));
        }
        s
    }
}

impl Trace {
    /// Record an event (called by the engine).
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Clear all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Grainsize histogram over the events for the given entry methods
    /// within `[t0, t1)`, divided by `per` (e.g. the number of timesteps in
    /// the window, to get the paper's "instances during an average
    /// timestep").
    pub fn grainsize_histogram(
        &self,
        entries: &[EntryId],
        t0: f64,
        t1: f64,
        bin_width: f64,
        per: f64,
    ) -> Histogram {
        assert!(bin_width > 0.0 && per > 0.0);
        let mut bins: Vec<f64> = Vec::new();
        for ev in &self.events {
            if ev.start < t0 || ev.start >= t1 || !entries.contains(&ev.entry) {
                continue;
            }
            let b = (ev.duration() / bin_width).floor() as usize;
            if bins.len() <= b {
                bins.resize(b + 1, 0.0);
            }
            bins[b] += 1.0;
        }
        Histogram {
            bin_width,
            bins: bins.into_iter().map(|c| (c / per).round() as u64).collect(),
        }
    }

    /// Events on one PE within a window, ordered by start time.
    pub fn pe_events(&self, pe: Pe, t0: f64, t1: f64) -> Vec<TraceEvent> {
        let mut evs: Vec<TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.pe == pe && e.end > t0 && e.start < t1)
            .copied()
            .collect();
        evs.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        evs
    }

    /// Busy fraction of a PE within a window.
    pub fn pe_utilization(&self, pe: Pe, t0: f64, t1: f64) -> f64 {
        let span = (t1 - t0).max(1e-30);
        let busy: f64 = self
            .pe_events(pe, t0, t1)
            .iter()
            .map(|e| e.end.min(t1) - e.start.max(t0))
            .sum();
        (busy / span).min(1.0)
    }

    /// Export the trace as JSON-lines (one event per line) for external
    /// tooling — the moral equivalent of writing Projections log files.
    /// `entry_names` maps entry ids to names (see
    /// [`crate::stats::SummaryStats::entry_names`]).
    pub fn export_jsonl(
        &self,
        entry_names: &[String],
        sink: &mut dyn std::io::Write,
    ) -> std::io::Result<()> {
        for ev in &self.events {
            let name = entry_names
                .get(ev.entry.idx())
                .map(String::as_str)
                .unwrap_or("?");
            writeln!(
                sink,
                "{{\"pe\":{},\"obj\":{},\"entry\":\"{}\",\"start\":{:.9},\"end\":{:.9},\
                 \"wall\":{:.6}}}",
                ev.pe, ev.obj.0, name, ev.start, ev.end, ev.wall
            )?;
        }
        Ok(())
    }

    /// Render an Upshot-style text timeline for PEs `pes` over `[t0, t1)`,
    /// `width` characters wide. `classify` maps an entry method to a
    /// single-character glyph ('.' is reserved for idle).
    pub fn render_timeline(
        &self,
        pes: &[Pe],
        t0: f64,
        t1: f64,
        width: usize,
        classify: impl Fn(EntryId) -> char,
    ) -> String {
        assert!(t1 > t0 && width > 0);
        let dt = (t1 - t0) / width as f64;
        let mut out = String::new();
        for &pe in pes {
            let mut row = vec!['.'; width];
            for ev in self.pe_events(pe, t0, t1) {
                let c = classify(ev.entry);
                let a = (((ev.start - t0) / dt).floor().max(0.0)) as usize;
                let b = (((ev.end - t0) / dt).ceil() as usize).min(width);
                for cell in row.iter_mut().take(b).skip(a.min(width)) {
                    *cell = c;
                }
            }
            out.push_str(&format!("PE {pe:>5} |{}|\n", row.into_iter().collect::<String>()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pe: Pe, entry: u16, start: f64, end: f64) -> TraceEvent {
        TraceEvent { pe, obj: ObjId(0), entry: EntryId(entry), start, end, wall: 0.0 }
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::default();
        t.record(ev(0, 0, 0.000, 0.009)); // 9 ms
        t.record(ev(0, 0, 0.010, 0.019)); // 9 ms
        t.record(ev(1, 0, 0.000, 0.042)); // 42 ms
        t.record(ev(1, 1, 0.050, 0.060)); // other entry
        t
    }

    #[test]
    fn histogram_bins_durations() {
        let t = sample_trace();
        let h = t.grainsize_histogram(&[EntryId(0)], 0.0, 1.0, 0.002, 1.0);
        assert_eq!(h.total(), 3);
        // 9 ms tasks land in bin 4 ([8,10) ms), the 42 ms task in bin 21.
        assert_eq!(h.bins[4], 2);
        assert_eq!(h.bins[21], 1);
        assert!((h.max_duration() - 0.044).abs() < 1e-12);
    }

    #[test]
    fn histogram_respects_window_and_per() {
        let t = sample_trace();
        // Window excludes everything after 5 ms start.
        let h = t.grainsize_histogram(&[EntryId(0)], 0.0, 0.005, 0.002, 1.0);
        assert_eq!(h.total(), 2); // the two tasks starting at 0.0
        let h2 = t.grainsize_histogram(&[EntryId(0)], 0.0, 1.0, 0.002, 2.0);
        assert_eq!(h2.bins[4], 1); // divided by 2 steps
    }

    #[test]
    fn utilization_counts_overlap_only() {
        let t = sample_trace();
        let u = t.pe_utilization(0, 0.0, 0.020);
        assert!((u - 0.9).abs() < 1e-9, "utilization {u}");
        assert_eq!(t.pe_utilization(3, 0.0, 1.0), 0.0);
    }

    #[test]
    fn timeline_renders_glyphs_and_idle() {
        let t = sample_trace();
        let s = t.render_timeline(&[0, 1], 0.0, 0.06, 30, |e| if e.0 == 0 { 'N' } else { 'I' });
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('N'));
        assert!(lines[0].contains('.'));
        assert!(lines[1].contains('I'));
    }

    #[test]
    fn empty_histogram() {
        let t = Trace::default();
        let h = t.grainsize_histogram(&[EntryId(0)], 0.0, 1.0, 0.001, 1.0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_duration(), 0.0);
        assert_eq!(h.render(40), "");
    }

    #[test]
    fn export_jsonl_is_line_per_event_and_parseable() {
        let t = sample_trace();
        let names = vec!["nonbonded".to_string(), "integrate".to_string()];
        let mut buf = Vec::new();
        t.export_jsonl(&names, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), t.events.len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"entry\":"));
            assert!(line.contains("\"wall\":"));
        }
        assert!(lines[3].contains("integrate"));
    }

    #[test]
    fn render_large_sparse_histogram_is_linear_and_complete() {
        // A histogram with one task in bin 0 and one far out: the render
        // must cover every bin up to the last non-zero one, include both
        // counts, and not take quadratic time doing so.
        let n = 200_000;
        let mut bins = vec![0u64; n];
        bins[0] = 1;
        bins[n - 1] = 3;
        let h = Histogram { bin_width: 0.001, bins };
        let t0 = std::time::Instant::now();
        let r = h.render(10);
        assert!(t0.elapsed().as_secs_f64() < 5.0, "render took too long");
        assert_eq!(r.lines().count(), n);
        assert!(r.lines().next().unwrap().ends_with(" 1"));
        assert!(r.lines().last().unwrap().ends_with(" 3"));
        // Trailing zero bins past the last populated one are not rendered.
        let h2 = Histogram { bin_width: 0.001, bins: vec![2, 0, 0, 0] };
        assert_eq!(h2.render(10).lines().count(), 1);
    }

    #[test]
    fn render_scales_bars() {
        let t = sample_trace();
        let h = t.grainsize_histogram(&[EntryId(0)], 0.0, 1.0, 0.002, 1.0);
        let r = h.render(10);
        assert!(r.contains("##########")); // peak bin full width
        assert!(r.lines().count() >= 2);
    }
}
