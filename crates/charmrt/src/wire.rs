//! The wire layer: owned byte payloads, one pack/unpack boundary, framing.
//!
//! Every message payload in the runtime is an owned byte vector
//! ([`Payload`](crate::msg::Payload) = `Vec<u8>`). Application message
//! types implement [`WireCodec`] — explicit `pack`/`unpack` built on the
//! `ckpt` crate's little-endian [`Enc`]/[`Dec`] codec — so the *same*
//! bytes flow through the DES backend, the threads backend, and (framed
//! over Unix domain sockets) the multi-process backend. There is no
//! in-process fast path with a different representation: what the DES
//! delivers is bit-identical to what crosses the wire.
//!
//! [`EntryTable`] is the one wire-stable registry of entry-method names:
//! entry ids are dense `u16`s in registration order, shared by
//! pack/unpack, fault-rule matching, tracing, and statistics.
//!
//! Framing (the `proc` backend's transport unit) is length-prefixed and
//! checksummed:
//!
//! ```text
//! u32 body_len · u64 crc64(body) · body
//! ```
//!
//! The CRC-64/ECMA checksum (reused from `ckpt`) rejects any single-bit
//! corruption at the frame boundary; [`read_frame`] surfaces it as an
//! `InvalidData` I/O error, never as a silently wrong message.

use std::io::{self, Read, Write};

use crate::msg::{EntryId, Payload};

pub use ckpt::{crc64, Dec, Enc};

/// A pack/unpack failure: truncated payload, bad tag, out-of-range field.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<ckpt::CkptError> for WireError {
    fn from(e: ckpt::CkptError) -> Self {
        WireError(e.to_string())
    }
}

/// Explicit serialization for one message type. `unpack(pack())` must be
/// the identity — bit-exact, not just semantically equal — because the
/// DES/threads backends deliver the packed bytes directly and trajectory
/// determinism across backends rides on it.
pub trait WireCodec: Sized {
    /// Serialize to an owned byte payload (little-endian, `ckpt` codec).
    fn pack(&self) -> Payload;
    /// Deserialize; every malformed input yields a named error.
    fn unpack(bytes: &[u8]) -> Result<Self, WireError>;
}

/// The wire-stable registry of entry-method names. Entry ids are dense
/// `u16`s in registration order; both sides of a socket register entries
/// in the same order (they fork from the same parent), so an id on the
/// wire means the same handler everywhere.
///
/// Derefs to `[String]` so existing `&[String]` consumers (trace export,
/// grainsize reports) keep working unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntryTable {
    names: Vec<String>,
}

impl EntryTable {
    pub fn new() -> EntryTable {
        EntryTable { names: Vec::new() }
    }

    /// Register the next entry method, returning its dense id.
    pub fn register(&mut self, name: &str) -> EntryId {
        assert!(self.names.len() < u16::MAX as usize, "entry table full");
        let id = EntryId(self.names.len() as u16);
        self.names.push(name.to_string());
        id
    }

    /// Human-readable name for an id (`"?"` for unregistered ids).
    pub fn name(&self, entry: EntryId) -> &str {
        self.names.get(entry.idx()).map(String::as_str).unwrap_or("?")
    }

    /// Reverse lookup: the id registered under `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<EntryId> {
        self.names.iter().position(|n| n == name).map(|i| EntryId(i as u16))
    }

    /// The registered names, densely indexed by entry id.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

impl std::ops::Deref for EntryTable {
    type Target = [String];
    fn deref(&self) -> &[String] {
        &self.names
    }
}

/// One application message as it crosses a process boundary: the routing
/// header the comm layer needs plus the packed payload bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMsg {
    /// Destination object.
    pub to: crate::msg::ObjId,
    /// Entry method to invoke (id from the shared [`EntryTable`]).
    pub entry: EntryId,
    /// Sending PE.
    pub src: crate::msg::Pe,
    /// Destination PE (owner of `to` — routed by the sender so the
    /// receiver need not consult a placement table).
    pub dst: crate::msg::Pe,
    /// Queueing priority at the destination.
    pub priority: crate::msg::Priority,
    /// *Modeled* message size in bytes (the cost model's notion of size,
    /// carried so measured backends report the same `bytes_sent` as DES).
    pub bytes: u64,
    /// Critical-path length through this message, seconds.
    pub path: f64,
    /// Packed application payload.
    pub payload: Payload,
}

impl WireCodec for WireMsg {
    fn pack(&self) -> Payload {
        let mut e = Enc::with_capacity(38 + self.payload.len());
        e.u32(self.to.0);
        e.u16(self.entry.0);
        e.u32(self.src as u32);
        e.u32(self.dst as u32);
        e.i32(self.priority);
        e.u64(self.bytes);
        e.f64(self.path);
        e.bytes(&self.payload);
        e.into_bytes()
    }

    fn unpack(bytes: &[u8]) -> Result<WireMsg, WireError> {
        let mut d = Dec::new(bytes);
        let msg = WireMsg {
            to: crate::msg::ObjId(d.u32("to")?),
            entry: EntryId(d.u16("entry")?),
            src: d.u32("src")? as usize,
            dst: d.u32("dst")? as usize,
            priority: d.i32("priority")?,
            bytes: d.u64("bytes")?,
            path: d.f64("path")?,
            payload: d.bytes("payload")?,
        };
        if d.remaining() != 0 {
            return Err(WireError(format!("{} trailing bytes after WireMsg", d.remaining())));
        }
        Ok(msg)
    }
}

/// Frames larger than this are rejected as corrupt rather than allocated.
pub const MAX_FRAME: usize = 1 << 30;

/// Encode `body` as one checksummed frame: `u32 len · u64 crc64 · body`.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    assert!(body.len() <= MAX_FRAME, "frame body exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc64(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Write one frame to `w` (single `write_all` so a frame is never
/// interleaved when exactly one thread owns the stream).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(body))
}

/// Read one frame from `r`. Returns `Ok(None)` on clean EOF (no bytes at
/// the frame boundary); a CRC mismatch, oversized length, or mid-frame
/// EOF is an `InvalidData`/`UnexpectedEof` error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 12];
    // Distinguish clean EOF (zero bytes read) from a torn header.
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("EOF inside frame header ({got}/12 bytes)"),
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let stored_crc = u64::from_le_bytes(header[4..12].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let computed = crc64(&body);
    if computed != stored_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame CRC mismatch: stored {stored_crc:016x}, computed {computed:016x}"),
        ));
    }
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ObjId;

    #[test]
    fn entry_table_registers_dense_ids_and_looks_up_names() {
        let mut t = EntryTable::new();
        let a = t.register("start");
        let b = t.register("forces");
        assert_eq!((a, b), (EntryId(0), EntryId(1)));
        assert_eq!(t.name(b), "forces");
        assert_eq!(t.lookup("start"), Some(a));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.name(EntryId(9)), "?");
        // Deref keeps &[String] consumers working.
        let names: &[String] = &t;
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn wire_msg_roundtrips_bit_exactly() {
        let m = WireMsg {
            to: ObjId(7),
            entry: EntryId(3),
            src: 1,
            dst: 2,
            priority: -10,
            bytes: 4096,
            path: 1.5e-3,
            payload: vec![1, 2, 3, 255, 0],
        };
        let packed = m.pack();
        assert_eq!(WireMsg::unpack(&packed).unwrap(), m);
        // Trailing garbage is rejected, not ignored.
        let mut long = packed.clone();
        long.push(0);
        assert!(WireMsg::unpack(&long).is_err());
        assert!(WireMsg::unpack(&packed[..packed.len() - 1]).is_err());
    }

    #[test]
    fn frames_roundtrip_through_a_byte_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF is None");
    }

    #[test]
    fn frame_crc_rejects_a_flipped_bit() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn torn_frame_is_an_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"0123456789").unwrap();
        let cut = &buf[..buf.len() - 3];
        assert!(read_frame(&mut &cut[..]).is_err());
        let cut = &buf[..7]; // inside the header
        assert!(read_frame(&mut &cut[..]).is_err());
    }
}
