//! CRC-64/ECMA-182 (polynomial 0x42F0E1EBA9EA3693), table-driven.
//!
//! A CRC with a degree-64 generator detects *every* single-bit error (the
//! difference polynomial `x^k` is never divisible by a polynomial with more
//! than one term), which is exactly the guarantee the snapshot corruption
//! tests assert: any one flipped byte in the payload is caught.

const POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 { (crc << 1) ^ POLY } else { crc << 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// CRC-64/ECMA of `data` (init 0, no reflection, no final xor).
pub fn crc64(data: &[u8]) -> u64 {
    let t = table();
    let mut crc = 0u64;
    for &b in data {
        crc = (crc << 8) ^ t[((crc >> 56) as u8 ^ b) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-64/ECMA-182 check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x6C40_DF5F_0B49_7347);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 37 % 251) as u8).collect();
        let base = crc64(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[i] ^= 1 << bit;
                assert_ne!(crc64(&d), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
