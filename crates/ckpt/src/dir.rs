//! A directory of checkpoints with crash-safe writes.
//!
//! Snapshots are named `ckpt_{step:012}.ckpt` so lexical order is step
//! order. Writes go to a dot-prefixed temporary in the same directory,
//! are flushed with `fsync`, then atomically renamed over the final name,
//! and the directory itself is fsynced — a crash at any point leaves
//! either the old set of snapshots or the old set plus one complete new
//! one, never a half-written file under a final name. Readers scan newest
//! first and skip anything that fails to decode, so one corrupt file
//! (e.g. torn by a crashed *earlier* writer, or bit-rotted) costs one
//! checkpoint interval, not the run.

use crate::{CkptError, Snapshot};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Handle to a checkpoint directory (created on construction).
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    path: PathBuf,
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> CkptError {
    CkptError::Io(format!("{op} {}: {e}", path.display()))
}

impl CheckpointDir {
    /// Open (creating if needed) a checkpoint directory.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let path = path.into();
        fs::create_dir_all(&path).map_err(|e| io_err("create", &path, e))?;
        Ok(CheckpointDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The final on-disk name for a snapshot of `step`.
    pub fn file_for_step(&self, step: u64) -> PathBuf {
        self.path.join(format!("ckpt_{step:012}.ckpt"))
    }

    /// Write `snap` atomically; returns the final path. An existing
    /// snapshot for the same step is replaced (also atomically).
    pub fn write(&self, snap: &Snapshot) -> Result<PathBuf, CkptError> {
        let finalp = self.file_for_step(snap.step);
        let tmp = self.path.join(format!(".ckpt_{:012}.tmp", snap.step));
        let bytes = snap.encode();
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            f.write_all(&bytes).map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
        }
        fs::rename(&tmp, &finalp).map_err(|e| io_err("rename", &finalp, e))?;
        // Persist the rename itself (POSIX: fsync the containing directory).
        // Failure here is not fatal to atomicity — the rename already
        // happened — but surface it anyway.
        if let Ok(d) = fs::File::open(&self.path) {
            let _ = d.sync_all();
        }
        Ok(finalp)
    }

    /// All snapshot files present, oldest first (lexical == step order).
    pub fn list(&self) -> Result<Vec<PathBuf>, CkptError> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.path)
            .map_err(|e| io_err("read dir", &self.path, e))?
            .filter_map(|r| r.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.starts_with("ckpt_") && n.ends_with(".ckpt"))
                    .unwrap_or(false)
            })
            .collect();
        files.sort();
        Ok(files)
    }

    /// Load the newest snapshot that decodes cleanly, skipping corrupt
    /// files. Returns [`CkptError::NoCheckpoint`] if the directory has no
    /// snapshots at all; if it has only corrupt ones, returns the newest
    /// file's decode error (so the caller sees *why*, not just "none").
    pub fn latest_valid(&self) -> Result<(Snapshot, PathBuf), CkptError> {
        let files = self.list()?;
        if files.is_empty() {
            return Err(CkptError::NoCheckpoint(format!(
                "{} contains no ckpt_*.ckpt files",
                self.path.display()
            )));
        }
        let mut first_err: Option<CkptError> = None;
        for p in files.iter().rev() {
            let bytes = match fs::read(p) {
                Ok(b) => b,
                Err(e) => {
                    first_err.get_or_insert(io_err("read", p, e));
                    continue;
                }
            };
            match Snapshot::decode(&bytes) {
                Ok(s) => return Ok((s, p.clone())),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        Err(first_err.expect("non-empty file list with no error"))
    }

    /// Delete all but the newest `keep` snapshots; returns how many were
    /// removed. Corrupt files count as snapshots here (they are still
    /// pruned oldest-first).
    pub fn prune(&self, keep: usize) -> Result<usize, CkptError> {
        let files = self.list()?;
        let n = files.len().saturating_sub(keep);
        for p in &files[..n] {
            fs::remove_file(p).map_err(|e| io_err("remove", p, e))?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ckpt_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn snap(step: u64) -> Snapshot {
        Snapshot {
            step,
            topo_hash: 7,
            positions: vec![[step as f64, 0.0, 0.0]],
            velocities: vec![[0.0, 0.0, 0.0]],
            ..Snapshot::default()
        }
    }

    #[test]
    fn write_then_latest_roundtrips() {
        let dir = CheckpointDir::create(tmpdir("roundtrip")).unwrap();
        dir.write(&snap(5)).unwrap();
        dir.write(&snap(10)).unwrap();
        let (s, p) = dir.latest_valid().unwrap();
        assert_eq!(s.step, 10);
        assert!(p.ends_with("ckpt_000000000010.ckpt"));
        let _ = fs::remove_dir_all(dir.path());
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = CheckpointDir::create(tmpdir("fallback")).unwrap();
        dir.write(&snap(5)).unwrap();
        let newest = dir.write(&snap(10)).unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let (s, _) = dir.latest_valid().unwrap();
        assert_eq!(s.step, 5, "must skip the corrupt newest snapshot");
        let _ = fs::remove_dir_all(dir.path());
    }

    #[test]
    fn all_corrupt_reports_the_newest_error() {
        let dir = CheckpointDir::create(tmpdir("allbad")).unwrap();
        let p = dir.write(&snap(3)).unwrap();
        fs::write(&p, b"garbage").unwrap();
        let err = dir.latest_valid().unwrap_err();
        assert!(matches!(err, CkptError::BadMagic(_)), "{err}");
        let _ = fs::remove_dir_all(dir.path());
    }

    #[test]
    fn empty_dir_is_no_checkpoint() {
        let dir = CheckpointDir::create(tmpdir("empty")).unwrap();
        assert!(matches!(dir.latest_valid(), Err(CkptError::NoCheckpoint(_))));
        let _ = fs::remove_dir_all(dir.path());
    }

    #[test]
    fn no_temporary_survives_a_write() {
        let dir = CheckpointDir::create(tmpdir("tmpclean")).unwrap();
        dir.write(&snap(1)).unwrap();
        let leftovers: Vec<_> = fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(dir.path());
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = CheckpointDir::create(tmpdir("prune")).unwrap();
        for s in [1, 2, 3, 4, 5] {
            dir.write(&snap(s)).unwrap();
        }
        assert_eq!(dir.prune(2).unwrap(), 3);
        let left = dir.list().unwrap();
        assert_eq!(left.len(), 2);
        assert_eq!(dir.latest_valid().unwrap().0.step, 5);
        let _ = fs::remove_dir_all(dir.path());
    }
}
