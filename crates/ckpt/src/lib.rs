//! Checkpoint/restart snapshots for long parallel MD runs.
//!
//! A [`Snapshot`] captures everything the engine needs for a *deterministic*
//! resume: atom positions and velocities at a clean step boundary, the
//! global step counter, the load-drift RNG stream and per-compute drift
//! factors, the load balancer's measured loads (so LB does not restart
//! cold — the principle of persistence survives the crash), and hashes /
//! compatibility fields of the topology and run configuration so a restart
//! into the wrong system is refused with a descriptive error. Pair-list
//! caches are deliberately *not* captured: they are derived data and are
//! rebuilt bit-compatibly on the first step after resume.
//!
//! The on-disk format is a small, versioned, little-endian container:
//!
//! ```text
//! magic "NRCK" · version u32 · payload_len u64 · crc64(payload) · payload
//! ```
//!
//! The CRC-64/ECMA checksum detects any single-bit (hence any single-byte)
//! corruption; decoding a damaged file yields a named [`CkptError`], never
//! a silently wrong state. [`CheckpointDir`] layers an atomic
//! write-to-temporary-then-rename protocol on top, so a crash *during*
//! checkpointing can never corrupt the latest good snapshot.
//!
//! This crate is dependency-free; the engine converts its own vector types
//! to the `[f64; 3]` triples stored here.

mod crc64;
mod dir;

pub use crc64::crc64;
pub use dir::CheckpointDir;

use std::fmt;

/// On-disk magic: "NRCK" (namd-repro checkpoint).
pub const MAGIC: [u8; 4] = *b"NRCK";
/// Current container version.
pub const VERSION: u32 = 1;

/// Everything needed to resume a run deterministically. See the crate docs
/// for what is deliberately *not* captured.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Global completed position updates ("the trajectory is at step N").
    pub step: u64,
    /// FNV-1a hash of the topology, force field, and box — computed by the
    /// engine; a mismatch on restore is refused with
    /// [`CkptError::TopologyMismatch`].
    pub topo_hash: u64,
    /// Compatibility fields, checked individually on restore so a mismatch
    /// names the offending knob ([`CkptError::ConfigMismatch`]).
    pub cutoff: f64,
    /// Timestep, fs.
    pub dt_fs: f64,
    /// PE count the run was using (informational; restores onto a different
    /// PE count are refused since placement would differ).
    pub n_pes: u64,
    /// Box edge lengths, Å.
    pub box_lengths: [f64; 3],
    /// Positions, Å.
    pub positions: Vec<[f64; 3]>,
    /// Velocities, Å/fs.
    pub velocities: Vec<[f64; 3]>,
    /// Counted-mode load-drift RNG stream state.
    pub drift_rng: u64,
    /// Per-compute multiplicative drift factors.
    pub drift: Vec<f64>,
    /// Measured per-compute loads from the last LB harvest (seconds).
    pub loads: Vec<f64>,
    /// Measured per-PE background loads from the last LB harvest.
    pub background: Vec<f64>,
    /// Opaque caller payload (the CLI stashes thermostat kind/params/seed
    /// here so a restart refuses a changed thermostat).
    pub extra: Vec<u8>,
}

/// Named decode/IO/compatibility failures. Every corruption mode maps to a
/// specific variant — a bad snapshot is never silently resumed.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptError {
    /// Filesystem error, with the path and operation that failed.
    Io(String),
    /// The file does not start with the `NRCK` magic.
    BadMagic([u8; 4]),
    /// Container version not understood by this build.
    UnsupportedVersion(u32),
    /// File shorter/longer than its header claims, or a field ran off the
    /// end of the payload.
    Truncated(String),
    /// Stored CRC-64 does not match the payload.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// Snapshot was taken of a different system.
    TopologyMismatch { snapshot: u64, current: u64 },
    /// A run-configuration field differs; the string names it.
    ConfigMismatch(String),
    /// No (valid) checkpoint found in the directory.
    NoCheckpoint(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            CkptError::BadMagic(m) => {
                write!(f, "not a checkpoint file: bad magic {m:02x?} (want \"NRCK\")")
            }
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads {VERSION})")
            }
            CkptError::Truncated(m) => write!(f, "corrupt checkpoint: {m}"),
            CkptError::ChecksumMismatch { stored, computed } => write!(
                f,
                "corrupt checkpoint: CRC-64 mismatch (stored {stored:016x}, \
                 computed {computed:016x})"
            ),
            CkptError::TopologyMismatch { snapshot, current } => write!(
                f,
                "checkpoint is for a different system: topology hash {snapshot:016x} \
                 != current {current:016x}"
            ),
            CkptError::ConfigMismatch(m) => {
                write!(f, "checkpoint configuration mismatch: {m}")
            }
            CkptError::NoCheckpoint(m) => write!(f, "no usable checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Little-endian payload writer — the one serialization primitive shared
/// by checkpoint snapshots and (via the `charmrt` wire layer) every
/// runtime message payload.
pub struct Enc(pub Vec<u8>);

impl Enc {
    /// Start an empty payload.
    pub fn new() -> Enc {
        Enc(Vec::new())
    }
    /// Start a payload with a capacity hint.
    pub fn with_capacity(n: usize) -> Enc {
        Enc(Vec::with_capacity(n))
    }
    /// Finish, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub fn f64s(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }
    pub fn triples(&mut self, v: &[[f64; 3]]) {
        self.u64(v.len() as u64);
        for t in v {
            for &x in t {
                self.f64(x);
            }
        }
    }
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
}

impl Default for Enc {
    fn default() -> Self {
        Enc::new()
    }
}

/// Little-endian payload reader over a checksummed slice. Every accessor
/// is bounds-checked and returns a named [`CkptError::Truncated`] instead
/// of panicking, so a corrupt payload can never take the process down.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CkptError> {
        if self.buf.len() - self.pos < n {
            return Err(CkptError::Truncated(format!(
                "payload ends inside {what} (need {n} bytes at offset {})",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub fn u8(&mut self, what: &str) -> Result<u8, CkptError> {
        Ok(self.take(1, what)?[0])
    }
    pub fn u16(&mut self, what: &str) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }
    pub fn u32(&mut self, what: &str) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    pub fn u64(&mut self, what: &str) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
    pub fn i32(&mut self, what: &str) -> Result<i32, CkptError> {
        Ok(i32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    pub fn i64(&mut self, what: &str) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
    pub fn f64(&mut self, what: &str) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    /// Bounded length prefix: a corrupted length must not drive an
    /// out-of-memory allocation before the bounds check catches it.
    fn len(&mut self, what: &str) -> Result<usize, CkptError> {
        let n = self.u64(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(8).map(|b| b > remaining).unwrap_or(true) {
            return Err(CkptError::Truncated(format!(
                "{what} length {n} exceeds remaining payload ({remaining} bytes)"
            )));
        }
        Ok(n)
    }
    pub fn f64s(&mut self, what: &str) -> Result<Vec<f64>, CkptError> {
        let n = self.len(what)?;
        (0..n).map(|_| self.f64(what)).collect()
    }
    pub fn triples(&mut self, what: &str) -> Result<Vec<[f64; 3]>, CkptError> {
        let n = self.u64(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(24).map(|b| b > remaining).unwrap_or(true) {
            return Err(CkptError::Truncated(format!(
                "{what} length {n} exceeds remaining payload ({remaining} bytes)"
            )));
        }
        (0..n).map(|_| Ok([self.f64(what)?, self.f64(what)?, self.f64(what)?])).collect()
    }
    pub fn bytes(&mut self, what: &str) -> Result<Vec<u8>, CkptError> {
        let n = self.u64(what)? as usize;
        if n > self.buf.len() - self.pos {
            return Err(CkptError::Truncated(format!(
                "{what} length {n} exceeds remaining payload"
            )));
        }
        Ok(self.take(n, what)?.to_vec())
    }
}

impl Snapshot {
    /// Serialize to the versioned, checksummed container.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Enc(Vec::with_capacity(64 + 48 * self.positions.len()));
        p.u64(self.step);
        p.u64(self.topo_hash);
        p.f64(self.cutoff);
        p.f64(self.dt_fs);
        p.u64(self.n_pes);
        for &l in &self.box_lengths {
            p.f64(l);
        }
        p.triples(&self.positions);
        p.triples(&self.velocities);
        p.u64(self.drift_rng);
        p.f64s(&self.drift);
        p.f64s(&self.loads);
        p.f64s(&self.background);
        p.bytes(&self.extra);
        let payload = p.0;

        let mut out = Enc(Vec::with_capacity(payload.len() + 24));
        out.0.extend_from_slice(&MAGIC);
        out.u32(VERSION);
        out.u64(payload.len() as u64);
        out.u64(crc64(&payload));
        out.0.extend_from_slice(&payload);
        out.0
    }

    /// Decode a container produced by [`Snapshot::encode`]. Every corruption
    /// mode returns a named error: bad magic, unknown version, length
    /// mismatch, checksum mismatch, or a field running off the payload.
    pub fn decode(data: &[u8]) -> Result<Snapshot, CkptError> {
        if data.len() < 4 {
            return Err(CkptError::Truncated(format!(
                "file is {} bytes, shorter than the magic",
                data.len()
            )));
        }
        let magic: [u8; 4] = data[..4].try_into().unwrap();
        if magic != MAGIC {
            return Err(CkptError::BadMagic(magic));
        }
        if data.len() < 24 {
            return Err(CkptError::Truncated(format!(
                "file is {} bytes, shorter than the header",
                data.len()
            )));
        }
        let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(CkptError::UnsupportedVersion(version));
        }
        let payload_len = u64::from_le_bytes(data[8..16].try_into().unwrap());
        let stored_crc = u64::from_le_bytes(data[16..24].try_into().unwrap());
        let payload = &data[24..];
        if payload.len() as u64 != payload_len {
            return Err(CkptError::Truncated(format!(
                "header claims a {payload_len}-byte payload, file carries {}",
                payload.len()
            )));
        }
        let computed = crc64(payload);
        if computed != stored_crc {
            return Err(CkptError::ChecksumMismatch { stored: stored_crc, computed });
        }

        let mut d = Dec { buf: payload, pos: 0 };
        let snap = Snapshot {
            step: d.u64("step")?,
            topo_hash: d.u64("topo_hash")?,
            cutoff: d.f64("cutoff")?,
            dt_fs: d.f64("dt_fs")?,
            n_pes: d.u64("n_pes")?,
            box_lengths: [
                d.f64("box_lengths")?,
                d.f64("box_lengths")?,
                d.f64("box_lengths")?,
            ],
            positions: d.triples("positions")?,
            velocities: d.triples("velocities")?,
            drift_rng: d.u64("drift_rng")?,
            drift: d.f64s("drift")?,
            loads: d.f64s("loads")?,
            background: d.f64s("background")?,
            extra: d.bytes("extra")?,
        };
        if d.pos != payload.len() {
            return Err(CkptError::Truncated(format!(
                "{} unread bytes after the last field",
                payload.len() - d.pos
            )));
        }
        Ok(snap)
    }

    /// Verify this snapshot belongs to the system/configuration described
    /// by the arguments; a mismatch names what differs.
    pub fn check_compatible(
        &self,
        topo_hash: u64,
        cutoff: f64,
        dt_fs: f64,
        n_pes: usize,
        box_lengths: [f64; 3],
    ) -> Result<(), CkptError> {
        if self.topo_hash != topo_hash {
            return Err(CkptError::TopologyMismatch {
                snapshot: self.topo_hash,
                current: topo_hash,
            });
        }
        let field = |name: &str, snap: f64, cur: f64| -> Result<(), CkptError> {
            if snap.to_bits() != cur.to_bits() {
                return Err(CkptError::ConfigMismatch(format!(
                    "{name}: snapshot has {snap}, run has {cur}"
                )));
            }
            Ok(())
        };
        field("cutoff", self.cutoff, cutoff)?;
        field("timestep (fs)", self.dt_fs, dt_fs)?;
        if self.n_pes != n_pes as u64 {
            return Err(CkptError::ConfigMismatch(format!(
                "PE count: snapshot has {}, run has {n_pes} (placement would differ)",
                self.n_pes
            )));
        }
        for (axis, (s, c)) in ["x", "y", "z"]
            .iter()
            .zip(self.box_lengths.iter().zip(box_lengths.iter()))
        {
            field(&format!("box length {axis} (Å)"), *s, *c)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            step: 42,
            topo_hash: 0xDEAD_BEEF_0123_4567,
            cutoff: 9.0,
            dt_fs: 1.0,
            n_pes: 4,
            box_lengths: [30.0, 31.5, 29.25],
            positions: vec![[1.0, 2.0, 3.0], [-4.5, 0.0, 6.25]],
            velocities: vec![[0.1, -0.2, 0.3], [0.0, 0.5, -0.5]],
            drift_rng: 0x5EED_5EED,
            drift: vec![1.0, 1.01, 0.99],
            loads: vec![0.5, 0.25],
            background: vec![0.0, 0.125],
            extra: b"thermostat=berendsen".to_vec(),
        }
    }

    #[test]
    fn roundtrip_identity() {
        let s = sample();
        let decoded = Snapshot::decode(&s.encode()).unwrap();
        assert_eq!(decoded, s);
        // Bit-exact on the floats, not just PartialEq.
        assert_eq!(decoded.positions[1][2].to_bits(), s.positions[1][2].to_bits());
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let s = Snapshot::default();
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn bad_magic_is_named() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(Snapshot::decode(&bytes), Err(CkptError::BadMagic(_))));
    }

    #[test]
    fn unknown_version_is_named() {
        let mut bytes = sample().encode();
        bytes[4] = 99;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_named() {
        let bytes = sample().encode();
        let cut = &bytes[..bytes.len() - 5];
        assert!(matches!(Snapshot::decode(cut), Err(CkptError::Truncated(_))));
    }

    #[test]
    fn payload_corruption_is_a_checksum_mismatch() {
        let mut bytes = sample().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn compatibility_mismatches_are_descriptive() {
        let s = sample();
        let err = s
            .check_compatible(1, s.cutoff, s.dt_fs, s.n_pes as usize, s.box_lengths)
            .unwrap_err();
        assert!(matches!(err, CkptError::TopologyMismatch { .. }));
        let err = s
            .check_compatible(s.topo_hash, 12.0, s.dt_fs, s.n_pes as usize, s.box_lengths)
            .unwrap_err();
        assert!(err.to_string().contains("cutoff"), "{err}");
        let err = s
            .check_compatible(s.topo_hash, s.cutoff, s.dt_fs, 8, s.box_lengths)
            .unwrap_err();
        assert!(err.to_string().contains("PE count"), "{err}");
        s.check_compatible(s.topo_hash, s.cutoff, s.dt_fs, s.n_pes as usize, s.box_lengths)
            .unwrap();
    }
}
