//! Property tests for the snapshot codec (ISSUE 4 satellite):
//!
//! * encode → decode is the identity on arbitrary snapshots (bit-exact on
//!   every float);
//! * flipping any single byte anywhere in the encoded container is
//!   rejected with a *named* [`CkptError`] — a damaged checkpoint can
//!   never silently resume as a wrong state.

use ckpt::{CkptError, Snapshot};
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary-ish f64s including negatives, zeros, and wide magnitudes
/// (transmuted from random bits, with NaN avoided so `PartialEq` on the
/// decoded snapshot stays meaningful — bit-exactness is asserted
/// separately on the raw bits).
fn any_f64() -> impl Strategy<Value = f64> {
    (0u64..u64::MAX).prop_map(|bits| {
        let v = f64::from_bits(bits);
        if v.is_nan() {
            f64::from_bits(bits & 0x7FF0_0000_0000_0000 ^ 0x0010_0000_0000_0000)
        } else {
            v
        }
    })
}

fn triple() -> impl Strategy<Value = [f64; 3]> {
    (any_f64(), any_f64(), any_f64()).prop_map(|(x, y, z)| [x, y, z])
}

fn any_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        (0u64..1_000_000, 0u64..u64::MAX, any_f64(), any_f64(), 1u64..512),
        (triple(), vec(triple(), 0..40), vec(triple(), 0..40)),
        (
            0u64..u64::MAX,
            vec(any_f64(), 0..20),
            vec(any_f64(), 0..20),
            vec(any_f64(), 0..20),
            vec(0u8..=255, 0..64),
        ),
    )
        .prop_map(
            |(
                (step, topo_hash, cutoff, dt_fs, n_pes),
                (box_t, positions, velocities),
                (drift_rng, drift, loads, background, extra),
            )| Snapshot {
                step,
                topo_hash,
                cutoff,
                dt_fs,
                n_pes,
                box_lengths: box_t,
                positions,
                velocities,
                drift_rng,
                drift,
                loads,
                background,
                extra,
            },
        )
}

proptest! {
    #[test]
    fn roundtrip_is_identity(snap in any_snapshot()) {
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).expect("fresh encoding must decode");
        prop_assert_eq!(&back, &snap);
        // PartialEq treats -0.0 == 0.0; the resume guarantee is bitwise.
        for (a, b) in back.positions.iter().zip(&snap.positions) {
            for k in 0..3 {
                prop_assert_eq!(a[k].to_bits(), b[k].to_bits());
            }
        }
        for (a, b) in back.velocities.iter().zip(&snap.velocities) {
            for k in 0..3 {
                prop_assert_eq!(a[k].to_bits(), b[k].to_bits());
            }
        }
    }

    #[test]
    fn any_single_flipped_byte_is_rejected(
        snap in any_snapshot(),
        pos_seed in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let mut bytes = snap.encode();
        let idx = pos_seed % bytes.len();
        bytes[idx] ^= 1 << bit;
        match Snapshot::decode(&bytes) {
            Ok(decoded) => {
                // The only way a flip may "succeed" is if it produced the
                // very same snapshot back — impossible: every byte of the
                // container is load-bearing (magic, version, length, CRC,
                // CRC-protected payload). Treat any Ok as a failure.
                prop_assert!(
                    false,
                    "flipped byte {} bit {} went undetected (decoded step {})",
                    idx, bit, decoded.step
                );
            }
            Err(
                CkptError::BadMagic(_)
                | CkptError::UnsupportedVersion(_)
                | CkptError::Truncated(_)
                | CkptError::ChecksumMismatch { .. },
            ) => {}
            Err(other) => {
                prop_assert!(false, "unexpected error kind for corruption: {}", other);
            }
        }
    }

    #[test]
    fn truncation_at_any_point_is_rejected(
        snap in any_snapshot(),
        cut_seed in 0usize..1_000_000,
    ) {
        let bytes = snap.encode();
        let cut = cut_seed % bytes.len(); // strictly shorter than full
        prop_assert!(Snapshot::decode(&bytes[..cut]).is_err());
    }
}
