//! NAMD-style configuration-file parser.
//!
//! NAMD is driven by plain-text `key value` configuration files; `namd-rs`
//! accepts the same shape:
//!
//! ```text
//! # quick water box
//! system        water
//! atoms         3000
//! boxSize       34.0
//! cutoff        8.0
//! timestep      1.0
//! steps         100
//! temperature   300
//! thermostat    langevin
//! langevinGamma 0.01
//! threads       4
//! outputName    run1
//! trajectoryEvery 10
//! pme           on
//! pmeSpacing    1.2
//! mtsFrequency  4
//! seed          42
//! ```
//!
//! Keys are case-insensitive; `#` starts a comment; later keys override
//! earlier ones. Unknown keys are errors (typos should not silently
//! de-configure a simulation).

use std::collections::BTreeMap;

/// Which molecular system to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Pure water box (`atoms`, `boxSize`).
    Water,
    /// The ApoA-I-like benchmark (optionally scaled).
    Apoa1,
    /// The BC1-like benchmark (optionally scaled).
    Bc1,
    /// The bR-like benchmark (optionally scaled).
    Br,
    /// A scenario-zoo stress system (`atoms`, `seed`, optionally scaled);
    /// the name is one of [`molgen::zoo::names`], e.g. `vacuum-droplet`.
    Zoo(&'static str),
}

/// Thermostat selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThermostatKind {
    None,
    Berendsen,
    Langevin,
}

/// A parsed and validated run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub system: SystemKind,
    /// Benchmark scale factor (fraction of full size), for apoa1/bc1/br.
    pub scale: f64,
    /// Atom count for `system water`.
    pub atoms: usize,
    /// Cubic box edge for `system water`, Å.
    pub box_size: f64,
    pub cutoff: f64,
    /// Timestep, fs.
    pub timestep: f64,
    pub steps: usize,
    /// Initial/target temperature, K.
    pub temperature: f64,
    pub thermostat: ThermostatKind,
    pub langevin_gamma: f64,
    pub berendsen_tau: f64,
    /// Worker threads (1 = sequential path).
    pub threads: usize,
    /// Runtime backend for the parallel driver: `threads` (one OS thread
    /// per PE, the default), `proc` (one OS *process* per PE, exchanging
    /// packed wire messages over Unix sockets), or `des` (deterministic
    /// virtual-time execution). Any value other than `threads` forces the
    /// parallel driver even with `threads 1`.
    pub backend: String,
    /// Worker-process count for `backend proc` (0 = one per PE).
    pub procs: usize,
    /// Directory for the proc backend's Unix socket mesh (empty = a fresh
    /// directory under the system temp dir).
    pub socket_dir: String,
    /// Reuse non-bonded pair lists across steps (NAMD's `pairlistdist`
    /// reuse). Applies to the sequential and threads drivers.
    pub pairlist_cache: bool,
    /// Pair-list margin beyond the cutoff, Å.
    pub pairlist_margin: f64,
    /// Basename for outputs (`<name>.xyz`, `<name>.energies`); empty = none.
    pub output_name: String,
    pub trajectory_every: usize,
    /// Full electrostatics via PME.
    pub pme: bool,
    pub pme_spacing: f64,
    /// Ewald screening parameter β (0 = auto from cutoff).
    pub ewald_beta: f64,
    /// r-RESPA outer/inner ratio when PME is on (1 = off).
    pub mts_frequency: usize,
    /// Restrain protein atoms to their initial positions.
    pub restrain_protein: bool,
    /// Steepest-descent minimization steps before dynamics (0 = none).
    pub minimize: usize,
    pub seed: u64,
    /// Directory for periodic checkpoints (empty = checkpointing off).
    /// Checkpointing (and restart) runs on the parallel threads driver,
    /// even with `threads 1`.
    pub checkpoint_dir: String,
    /// Steps between checkpoints (active only with `checkpointDir`).
    pub checkpoint_interval: usize,
    /// Resume from this checkpoint file, or from the newest valid
    /// checkpoint when the path is a directory (empty = fresh start).
    pub restart_from: String,
    /// Fault-injection plan (see `charmrt::FaultPlan::parse`); empty = none.
    /// `kill:...` rules exercise the crash-recovery loop, which needs
    /// `checkpointDir` to recover from.
    pub fault_plan: String,
    /// Message dequeue-order policy: fifo | shuffle | lifo | jitter.
    pub schedule: String,
    pub schedule_seed: u64,
    /// Directory for profiling output (empty = profiling off). Runs on the
    /// parallel threads driver; writes Chrome-trace JSON files loadable in
    /// Perfetto plus `phases.jsonl` / `lb_audit.jsonl` summaries.
    pub profile_dir: String,
    /// Phases (steps) between full trace captures; summary lines are
    /// written every phase regardless.
    pub profile_interval: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            system: SystemKind::Water,
            scale: 1.0,
            atoms: 3_000,
            box_size: 34.0,
            cutoff: 9.0,
            timestep: 1.0,
            steps: 50,
            temperature: 300.0,
            thermostat: ThermostatKind::None,
            langevin_gamma: 0.005,
            berendsen_tau: 100.0,
            threads: 1,
            backend: String::from("threads"),
            procs: 0,
            socket_dir: String::new(),
            pairlist_cache: true,
            pairlist_margin: 2.5,
            output_name: String::new(),
            trajectory_every: 10,
            pme: false,
            pme_spacing: 1.2,
            ewald_beta: 0.0,
            mts_frequency: 1,
            restrain_protein: false,
            minimize: 0,
            seed: 7,
            checkpoint_dir: String::new(),
            checkpoint_interval: 10,
            restart_from: String::new(),
            fault_plan: String::new(),
            schedule: String::from("fifo"),
            schedule_seed: 0,
            profile_dir: String::new(),
            profile_interval: 10,
        }
    }
}

/// Parse a configuration file's text. Returns the config or a message
/// naming the offending line.
pub fn parse(text: &str) -> Result<RunConfig, String> {
    let mut kv: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let key = it.next().unwrap().to_ascii_lowercase();
        let value: String = it.collect::<Vec<_>>().join(" ");
        if value.is_empty() {
            return Err(format!("line {}: key '{key}' has no value", lineno + 1));
        }
        kv.insert(key, (value, lineno + 1));
    }

    let mut cfg = RunConfig::default();
    for (key, (value, lineno)) in kv {
        let err = |what: &str| format!("line {lineno}: {what}");
        let parse_f64 = |v: &str| {
            v.parse::<f64>()
                .map_err(|_| format!("line {lineno}: '{v}' is not a number"))
        };
        let parse_usize = |v: &str| {
            v.parse::<usize>()
                .map_err(|_| format!("line {lineno}: '{v}' is not an integer"))
        };
        let parse_bool = |v: &str| match v.to_ascii_lowercase().as_str() {
            "on" | "yes" | "true" | "1" => Ok(true),
            "off" | "no" | "false" | "0" => Ok(false),
            other => Err(format!("line {lineno}: '{other}' is not on/off")),
        };
        match key.as_str() {
            "system" => {
                cfg.system = match value.to_ascii_lowercase().as_str() {
                    "water" => SystemKind::Water,
                    "apoa1" | "apoa-i" => SystemKind::Apoa1,
                    "bc1" => SystemKind::Bc1,
                    "br" | "bacteriorhodopsin" => SystemKind::Br,
                    other => match molgen::zoo::names().iter().find(|n| **n == other) {
                        Some(name) => SystemKind::Zoo(name),
                        None => {
                            return Err(err(&format!(
                                "unknown system '{other}' (water, apoa1, bc1, br, or a \
                                 zoo scenario: {})",
                                molgen::zoo::names().join(", ")
                            )))
                        }
                    },
                }
            }
            "scale" => cfg.scale = parse_f64(&value)?,
            "atoms" => cfg.atoms = parse_usize(&value)?,
            "boxsize" => cfg.box_size = parse_f64(&value)?,
            "cutoff" => cfg.cutoff = parse_f64(&value)?,
            "timestep" => cfg.timestep = parse_f64(&value)?,
            "steps" => cfg.steps = parse_usize(&value)?,
            "temperature" => cfg.temperature = parse_f64(&value)?,
            "thermostat" => {
                cfg.thermostat = match value.to_ascii_lowercase().as_str() {
                    "none" | "off" => ThermostatKind::None,
                    "berendsen" => ThermostatKind::Berendsen,
                    "langevin" => ThermostatKind::Langevin,
                    other => return Err(err(&format!("unknown thermostat '{other}'"))),
                }
            }
            "langevingamma" => cfg.langevin_gamma = parse_f64(&value)?,
            "berendsentau" => cfg.berendsen_tau = parse_f64(&value)?,
            "threads" => cfg.threads = parse_usize(&value)?,
            "backend" => cfg.backend = value.to_ascii_lowercase(),
            "procs" => cfg.procs = parse_usize(&value)?,
            "socketdir" => cfg.socket_dir = value,
            "pairlistcache" => cfg.pairlist_cache = parse_bool(&value)?,
            "pairlistmargin" => cfg.pairlist_margin = parse_f64(&value)?,
            "outputname" => cfg.output_name = value,
            "trajectoryevery" => cfg.trajectory_every = parse_usize(&value)?,
            "pme" => cfg.pme = parse_bool(&value)?,
            "pmespacing" => cfg.pme_spacing = parse_f64(&value)?,
            "ewaldbeta" => cfg.ewald_beta = parse_f64(&value)?,
            "mtsfrequency" => cfg.mts_frequency = parse_usize(&value)?,
            "restrainprotein" => cfg.restrain_protein = parse_bool(&value)?,
            "minimize" => cfg.minimize = parse_usize(&value)?,
            "seed" => cfg.seed = parse_usize(&value)? as u64,
            "checkpointdir" => cfg.checkpoint_dir = value,
            "checkpointinterval" => cfg.checkpoint_interval = parse_usize(&value)?,
            "restartfrom" => cfg.restart_from = value,
            "faultplan" => cfg.fault_plan = value,
            "schedule" => cfg.schedule = value.to_ascii_lowercase(),
            "scheduleseed" => cfg.schedule_seed = parse_usize(&value)? as u64,
            "profiledir" => cfg.profile_dir = value,
            "profileinterval" => cfg.profile_interval = parse_usize(&value)?,
            other => return Err(err(&format!("unknown key '{other}'"))),
        }
    }
    validate(&cfg)?;
    Ok(cfg)
}

/// Check cross-key consistency. `parse` runs this; callers that mutate a
/// parsed config afterwards (e.g. CLI flag overrides) should re-run it.
pub fn validate(cfg: &RunConfig) -> Result<(), String> {
    if !(cfg.scale > 0.0 && cfg.scale <= 1.0) {
        return Err(format!("scale must be in (0, 1], got {}", cfg.scale));
    }
    if cfg.cutoff <= 0.0 || cfg.timestep <= 0.0 {
        return Err("cutoff and timestep must be positive".into());
    }
    if cfg.threads == 0 {
        return Err("threads must be at least 1".into());
    }
    if !(cfg.pairlist_margin >= 0.0 && cfg.pairlist_margin.is_finite()) {
        return Err(format!(
            "pairlistMargin must be non-negative and finite, got {}",
            cfg.pairlist_margin
        ));
    }
    if matches!(cfg.system, SystemKind::Zoo(_)) && cfg.restrain_protein {
        return Err(
            "restrainProtein applies to the benchmark decks (apoa1/bc1/br), \
             not zoo scenarios"
                .into(),
        );
    }
    if cfg.system == SystemKind::Water && cfg.box_size < 2.0 * cfg.cutoff {
        return Err(format!(
            "boxSize {} too small for cutoff {} (need ≥ 2×cutoff)",
            cfg.box_size, cfg.cutoff
        ));
    }
    if cfg.mts_frequency == 0 {
        return Err("mtsFrequency must be at least 1".into());
    }
    if cfg.pme && cfg.mts_frequency > 8 {
        return Err("mtsFrequency above 8 is unstable; choose 1-8".into());
    }
    if cfg.thermostat == ThermostatKind::Langevin && (cfg.threads > 1 || cfg.pme) {
        return Err(
            "thermostat langevin runs on the sequential cutoff driver only              (threads 1, pme off); use berendsen for multicore or PME runs"
                .into(),
        );
    }
    if cfg.pme && cfg.threads > 1 {
        return Err("pme runs use the sequential full-electrostatics driver; set threads 1".into());
    }
    let ckpt_active = !cfg.checkpoint_dir.is_empty() || !cfg.restart_from.is_empty();
    if ckpt_active && cfg.pme {
        return Err(
            "checkpointing/restart runs on the parallel cutoff driver; pme is not supported"
                .into(),
        );
    }
    if ckpt_active && cfg.thermostat == ThermostatKind::Langevin {
        return Err(
            "checkpointing/restart runs on the parallel driver; thermostat langevin is \
             sequential-only (use berendsen or none)"
                .into(),
        );
    }
    if !cfg.checkpoint_dir.is_empty() && cfg.checkpoint_interval == 0 {
        return Err("checkpointInterval must be at least 1".into());
    }
    match cfg.backend.as_str() {
        "threads" | "des" | "proc" => {}
        other => return Err(format!("unknown backend '{other}' (threads, des, or proc)")),
    }
    let proc_backend = cfg.backend == "proc";
    if !proc_backend && (cfg.procs != 0 || !cfg.socket_dir.is_empty()) {
        return Err("procs/socketDir apply to backend proc only".into());
    }
    if proc_backend && cfg.procs != 0 && cfg.procs != cfg.threads {
        return Err(format!(
            "procs must be 0 (one per PE) or equal threads ({}), got {}",
            cfg.threads, cfg.procs
        ));
    }
    if cfg.backend != "threads" && cfg.pme {
        return Err(format!(
            "backend {} drives the parallel cutoff path; pme is not supported",
            cfg.backend
        ));
    }
    if cfg.backend != "threads" && cfg.thermostat == ThermostatKind::Langevin {
        return Err(format!(
            "backend {} uses the parallel driver; thermostat langevin is \
             sequential-only (use berendsen or none)",
            cfg.backend
        ));
    }
    if !cfg.fault_plan.is_empty() {
        let plan = charmrt::FaultPlan::parse(&cfg.fault_plan)
            .map_err(|e| format!("faultPlan: {e}"))?;
        if plan.has_kills() && cfg.checkpoint_dir.is_empty() {
            return Err(
                "faultPlan has kill rules but no checkpointDir to recover from".into(),
            );
        }
        if proc_backend
            && plan.rules.iter().any(|r| r.action != charmrt::FaultAction::Kill)
        {
            return Err(
                "backend proc supports kill fault rules only (drop/dup/delay/corrupt \
                 act on the in-process queue, which proc workers do not share)"
                    .into(),
            );
        }
    }
    charmrt::SchedulePolicy::parse(&cfg.schedule, cfg.schedule_seed)
        .map_err(|e| format!("schedule: {e}"))?;
    // Faults and schedule perturbations exercise the message-driven
    // parallel driver; on the sequential drivers they would be silently
    // ignored — reject rather than de-configure.
    let parallel_active = cfg.threads > 1 || ckpt_active || cfg.backend != "threads";
    if (!cfg.fault_plan.is_empty() || cfg.schedule != "fifo") && !parallel_active {
        return Err(
            "faultPlan/schedule apply to the parallel driver only; set threads > 1 \
             or enable checkpointing"
                .into(),
        );
    }
    if !cfg.profile_dir.is_empty() {
        if cfg.profile_interval == 0 {
            return Err("profileInterval must be at least 1".into());
        }
        if cfg.pme {
            return Err(
                "profileDir runs on the parallel cutoff driver; pme is not supported".into(),
            );
        }
        if !parallel_active {
            return Err(
                "profileDir applies to the parallel driver only; set threads > 1 \
                 or enable checkpointing"
                    .into(),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_config() {
        let cfg = parse(
            "# demo\n\
             system apoa1\n\
             scale 0.25   # quarter size\n\
             cutoff 12\n\
             timestep 0.5\n\
             steps 20\n\
             thermostat berendsen\n\
             pme on\n\
             mtsFrequency 4\n",
        )
        .unwrap();
        assert_eq!(cfg.system, SystemKind::Apoa1);
        assert_eq!(cfg.scale, 0.25);
        assert_eq!(cfg.thermostat, ThermostatKind::Berendsen);
        assert!(cfg.pme);
        assert_eq!(cfg.mts_frequency, 4);
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let cfg = parse("system water\n").unwrap();
        assert_eq!(cfg.atoms, 3_000);
        assert_eq!(cfg.thermostat, ThermostatKind::None);
        assert!(!cfg.pme);
    }

    #[test]
    fn unknown_key_is_an_error_with_line_number() {
        let e = parse("system water\ncutoof 12\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        assert!(e.contains("cutoof"), "{e}");
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(parse("steps many\n").unwrap_err().contains("not an integer"));
        assert!(parse("pme maybe\n").unwrap_err().contains("on/off"));
        assert!(parse("system unobtainium\n").unwrap_err().contains("unknown system"));
    }

    #[test]
    fn validation_catches_inconsistencies() {
        assert!(parse("scale 1.5\n").unwrap_err().contains("scale"));
        assert!(parse("threads 0\n").unwrap_err().contains("threads"));
        assert!(parse("system water\nboxSize 10\ncutoff 9\n")
            .unwrap_err()
            .contains("too small"));
        // Driver/thermostat combinations that would silently misbehave are
        // rejected up front.
        assert!(parse("thermostat langevin\nthreads 2\n")
            .unwrap_err()
            .contains("sequential"));
        assert!(parse("pme on\nthreads 4\n").unwrap_err().contains("threads 1"));
    }

    #[test]
    fn pairlist_keys_parse_and_validate() {
        let cfg = parse("pairlistCache off\npairlistMargin 1.5\n").unwrap();
        assert!(!cfg.pairlist_cache);
        assert_eq!(cfg.pairlist_margin, 1.5);
        let defaults = parse("system water\n").unwrap();
        assert!(defaults.pairlist_cache);
        assert_eq!(defaults.pairlist_margin, 2.5);
        assert!(parse("pairlistMargin -1\n").unwrap_err().contains("pairlistMargin"));
    }

    #[test]
    fn case_insensitive_keys_and_comments() {
        let cfg = parse("SYSTEM BR\nTimeStep 2.0 # big\n").unwrap();
        assert_eq!(cfg.system, SystemKind::Br);
        assert_eq!(cfg.timestep, 2.0);
    }

    #[test]
    fn profile_keys_parse_and_validate() {
        let cfg = parse("threads 2\nprofileDir prof\nprofileInterval 5\n").unwrap();
        assert_eq!(cfg.profile_dir, "prof");
        assert_eq!(cfg.profile_interval, 5);
        // Profiling instruments the parallel driver; sequential-only
        // combinations are rejected rather than silently de-configured.
        assert!(parse("profileDir prof\n").unwrap_err().contains("parallel"));
        assert!(parse("threads 2\nprofileDir prof\nprofileInterval 0\n")
            .unwrap_err()
            .contains("profileInterval"));
        assert!(parse("pme on\nprofileDir prof\n").unwrap_err().contains("pme"));
    }

    #[test]
    fn backend_keys_parse_and_validate() {
        let cfg = parse("threads 3\nbackend proc\nprocs 3\nsocketDir /tmp/mesh\n").unwrap();
        assert_eq!(cfg.backend, "proc");
        assert_eq!(cfg.procs, 3);
        assert_eq!(cfg.socket_dir, "/tmp/mesh");
        // `backend des` needs no extra knobs and forces the parallel driver.
        assert_eq!(parse("backend DES\n").unwrap().backend, "des");
        assert!(parse("backend qemu\n").unwrap_err().contains("unknown backend"));
        assert!(parse("threads 2\nprocs 2\n").unwrap_err().contains("backend proc"));
        assert!(parse("threads 4\nbackend proc\nprocs 3\n")
            .unwrap_err()
            .contains("equal threads"));
        assert!(parse("backend proc\npme on\n").unwrap_err().contains("pme"));
        assert!(parse("backend proc\nthermostat langevin\n")
            .unwrap_err()
            .contains("langevin"));
        // Proc workers exchange packed messages; queue-level faults other
        // than kills cannot reach them.
        assert!(parse(
            "threads 2\nbackend proc\nfaultPlan drop:entry=PatchRecvForces:limit=1\n"
        )
        .unwrap_err()
        .contains("kill fault rules only"));
    }

    #[test]
    fn zoo_scenarios_are_valid_systems() {
        let cfg = parse("system vacuum-droplet\natoms 1200\nseed 9\n").unwrap();
        assert_eq!(cfg.system, SystemKind::Zoo("vacuum-droplet"));
        assert_eq!(cfg.atoms, 1200);
        let cfg = parse("system MEMBRANE-SLAB\n").unwrap();
        assert_eq!(cfg.system, SystemKind::Zoo("membrane-slab"));
        // The unknown-system error now lists the zoo.
        let e = parse("system no-such-zoo\n").unwrap_err();
        assert!(e.contains("density-hotspot"), "{e}");
        // Restraints only make sense on the benchmark decks.
        assert!(parse("system polymer-melt\nrestrainProtein on\n")
            .unwrap_err()
            .contains("zoo"));
    }

    #[test]
    fn later_keys_override_earlier() {
        let cfg = parse("steps 10\nsteps 99\n").unwrap();
        assert_eq!(cfg.steps, 99);
    }
}
