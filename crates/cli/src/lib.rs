//! # namd-cli — the `namd-rs` command-line front end
//!
//! NAMD is driven by plain-text configuration files; this crate provides
//! the same experience for the reproduction: [`config`] parses a NAMD-style
//! `key value` config, [`runner`] executes it on the sequential, multicore,
//! or full-electrostatics (PME + r-RESPA) driver, with optional thermostats
//! and XYZ trajectory output. The `namd-rs` binary adds `run`, `info`,
//! `bench` (DES scaling sweeps), and `sample-config` subcommands.

// Clippy: indexed loops are kept where they mirror the mathematical
// notation of the kernels and the per-axis geometry code, and chare/builder
// constructors take positional wiring arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![allow(clippy::field_reassign_with_default)]
pub mod config;
pub mod runner;
pub mod scaling;
