//! `namd-rs` — command-line front end for the NAMD SC2000 reproduction.
//!
//! ```text
//! namd-rs run <config-file> [opts] run an MD simulation from a config file
//!     --checkpoint-dir DIR         periodic checkpoints (overrides config)
//!     --restart-from PATH          resume from a checkpoint file/directory
//!     --profile-dir DIR            Perfetto traces + phase/LB summaries
//!     --profile-interval N         steps between full trace captures
//! namd-rs info <config-file>       parse + describe a config without running
//! namd-rs bench <system> [opts]    DES scaling benchmark (virtual PEs)
//!     --machine asci_red|t3e|origin|cluster
//!     --pes 1,8,64,256
//!     --steps N
//!     --schedule fifo|shuffle|lifo|jitter   dequeue-order perturbation
//!     --schedule-seed N                     seed for the perturbation
//!     --fault-plan "drop:entry=PatchRecvForces;..."  message faults
//!     --profile-dir DIR            per-PE-count Perfetto traces + summaries
//! namd-rs sample-config            print an annotated example config
//! ```

use namd_cli::config::parse;
use namd_cli::runner;
use namd_core::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("sample-config") => {
            print!("{}", SAMPLE);
            0
        }
        _ => {
            eprintln!(
                "usage: namd-rs <run|info|bench|sample-config> ...\n\
                 try `namd-rs sample-config > demo.conf && namd-rs run demo.conf`"
            );
            2
        }
    };
    std::process::exit(code);
}

const SAMPLE: &str = "\
# namd-rs sample configuration
system        water      # water | apoa1 | bc1 | br | a zoo scenario
#                        # (solvated-box, membrane-slab, polymer-melt,
#                        #  vacuum-droplet, density-hotspot, ...)
atoms         1500       # water and zoo scenarios
boxSize       26.0       # water only, Å
#scale        0.1        # benchmark systems: fraction of full size
cutoff        8.0
timestep      1.0        # fs
steps         100
temperature   300
minimize      0          # steepest-descent steps before dynamics
thermostat    berendsen  # none | berendsen | langevin (langevin: threads 1)
berendsenTau  100
threads       2
pairlistCache on         # reuse non-bonded pair lists across steps
pairlistMargin 2.5       # list radius = cutoff + margin, Å
outputName    demo       # writes demo.xyz
trajectoryEvery 10
pme           off        # full electrostatics (particle-mesh Ewald)
#pmeSpacing   1.2
#mtsFrequency 4          # r-RESPA: PME every 4th step
seed          42
#checkpointDir  ckpts    # periodic checkpoints (atomic write-rename)
#checkpointInterval 10   # steps between checkpoints
#restartFrom  ckpts      # resume from newest valid checkpoint in a dir
#                        # (or a specific .ckpt file); bit-identical resume
#faultPlan    kill:entry=PatchRecvForces:dst=1:skip=40  # crash drill
#schedule     shuffle    # fifo | shuffle | lifo | jitter (parallel driver)
#scheduleSeed 1
#profileDir   prof       # Perfetto-loadable traces + phase/LB summaries
#profileInterval 10      # steps between full trace captures
";

fn load(path: &str) -> Result<namd_cli::config::RunConfig, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text)
}

fn cmd_run(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!(
            "usage: namd-rs run <config-file> [--checkpoint-dir DIR] [--restart-from PATH] \
             [--profile-dir DIR] [--profile-interval N]"
        );
        return 2;
    };
    let mut cfg = match load(path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("config error: {e}");
            return 1;
        }
    };
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--checkpoint-dir" => match it.next() {
                Some(d) => cfg.checkpoint_dir = d.clone(),
                None => {
                    eprintln!("--checkpoint-dir needs a directory");
                    return 2;
                }
            },
            "--restart-from" => match it.next() {
                Some(p) => cfg.restart_from = p.clone(),
                None => {
                    eprintln!("--restart-from needs a checkpoint file or directory");
                    return 2;
                }
            },
            "--profile-dir" => match it.next() {
                Some(d) => cfg.profile_dir = d.clone(),
                None => {
                    eprintln!("--profile-dir needs a directory");
                    return 2;
                }
            },
            "--profile-interval" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.profile_interval = n,
                None => {
                    eprintln!("--profile-interval needs a step count");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown option {other}");
                return 2;
            }
        }
    }
    if let Err(e) = namd_cli::config::validate(&cfg) {
        eprintln!("config error: {e}");
        return 1;
    }
    match runner::run(&cfg, &mut std::io::stdout()) {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("run failed: {e}");
            1
        }
    }
}

fn cmd_info(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: namd-rs info <config-file>");
        return 2;
    };
    match load(path) {
        Ok(cfg) => {
            let sys = runner::build_system(&cfg);
            println!("config: {cfg:#?}");
            println!(
                "system: {} atoms, {} bonds, {} angles, {} dihedrals, {} impropers, {} restraints",
                sys.n_atoms(),
                sys.topology.bonds.len(),
                sys.topology.angles.len(),
                sys.topology.dihedrals.len(),
                sys.topology.impropers.len(),
                sys.topology.restraints.len(),
            );
            let decomp = build_decomposition(
                &sys,
                &SimConfig::new(1, machine::presets::generic_cluster()),
            );
            println!(
                "decomposition: {} patches ({}x{}x{}), {} compute objects",
                decomp.grid.n_patches(),
                decomp.grid.dims[0],
                decomp.grid.dims[1],
                decomp.grid.dims[2],
                decomp.computes.len()
            );
            0
        }
        Err(e) => {
            eprintln!("config error: {e}");
            1
        }
    }
}

fn cmd_bench(args: &[String]) -> i32 {
    let Some(system) = args.first() else {
        eprintln!(
            "usage: namd-rs bench <apoa1|bc1|br|scaling> [--machine M] [--pes LIST] [--steps N] \
             [--scale F] [--schedule fifo|shuffle|lifo|jitter] [--schedule-seed N] \
             [--fault-plan SPEC] [--profile-dir DIR]\n\
             (`bench scaling` sweeps the scenario zoo; see `namd-rs bench scaling --help`)"
        );
        return 2;
    };
    if system == "scaling" {
        return namd_cli::scaling::cmd_bench_scaling(&args[1..]);
    }
    let mut machine = machine::presets::asci_red();
    let mut pes: Vec<usize> = vec![1, 8, 64, 256];
    let mut steps = 3usize;
    let mut scale = 1.0f64;
    let mut schedule_name = String::from("fifo");
    let mut schedule_seed = 0u64;
    let mut fault_plan: Option<charmrt::FaultPlan> = None;
    let mut profile_dir: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| -> Option<String> {
            it.next().cloned()
        };
        match a.as_str() {
            "--machine" => match value(&mut it).as_deref() {
                Some("asci_red") => machine = machine::presets::asci_red(),
                Some("t3e") => machine = machine::presets::t3e_900(),
                Some("origin") => machine = machine::presets::origin2000(),
                Some("cluster") => machine = machine::presets::generic_cluster(),
                other => {
                    eprintln!("unknown machine {other:?}");
                    return 2;
                }
            },
            "--pes" => {
                let Some(v) = value(&mut it) else {
                    eprintln!("--pes needs a list");
                    return 2;
                };
                match v.split(',').map(|s| s.trim().parse::<usize>()).collect() {
                    Ok(list) => pes = list,
                    Err(_) => {
                        eprintln!("bad --pes list '{v}'");
                        return 2;
                    }
                }
            }
            "--steps" => match value(&mut it).and_then(|v| v.parse().ok()) {
                Some(n) => steps = n,
                None => {
                    eprintln!("bad --steps");
                    return 2;
                }
            },
            "--scale" => match value(&mut it).and_then(|v| v.parse().ok()) {
                Some(f) => scale = f,
                None => {
                    eprintln!("bad --scale");
                    return 2;
                }
            },
            "--schedule" => match value(&mut it) {
                Some(name) => schedule_name = name,
                None => {
                    eprintln!("--schedule needs a policy name");
                    return 2;
                }
            },
            "--schedule-seed" => match value(&mut it).and_then(|v| v.parse().ok()) {
                Some(s) => schedule_seed = s,
                None => {
                    eprintln!("bad --schedule-seed");
                    return 2;
                }
            },
            "--fault-plan" => match value(&mut it).map(|v| charmrt::FaultPlan::parse(&v)) {
                Some(Ok(plan)) => fault_plan = Some(plan),
                Some(Err(e)) => {
                    eprintln!("bad --fault-plan: {e}");
                    return 2;
                }
                None => {
                    eprintln!("--fault-plan needs a spec (e.g. drop:entry=PatchRecvForces)");
                    return 2;
                }
            },
            "--profile-dir" => match value(&mut it) {
                Some(d) => profile_dir = Some(d),
                None => {
                    eprintln!("--profile-dir needs a directory");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown option {other}");
                return 2;
            }
        }
    }
    let bench = match system.as_str() {
        "apoa1" => molgen::apoa1_like(),
        "bc1" => molgen::bc1_like(),
        "br" => molgen::br_like(),
        other => {
            eprintln!("unknown benchmark system '{other}'");
            return 2;
        }
    };
    let schedule = match charmrt::SchedulePolicy::parse(&schedule_name, schedule_seed) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bad --schedule: {e}");
            return 2;
        }
    };
    // `scaled` preserves density in both directions, so --scale can also
    // grow a deck (e.g. --scale 4 for a weak-scaling point).
    let bench = if scale != 1.0 { bench.scaled(scale) } else { bench };
    println!("benchmark {} ({} atoms) on {}", bench.name, bench.n_atoms, machine.name);
    if schedule.kind != charmrt::SchedulePolicyKind::Fifo {
        println!("schedule policy {:?}, seed {}", schedule.kind, schedule.seed);
    }
    if let Some(plan) = &fault_plan {
        println!("fault plan: {} rule(s), engine retries repair dropped deliveries", plan.rules.len());
    }
    let sys = bench.build();
    let decomp = build_decomposition(&sys, &SimConfig::new(1, machine));
    println!(
        "{} patches, {} computes, ideal 1-PE step {:.3} s",
        decomp.grid.n_patches(),
        decomp.computes.len(),
        decomp.ideal_step_time(&machine)
    );
    // Speedup scaled relative to the first PE count in the sweep (the
    // paper's own convention for systems too large to run on one node).
    println!("PEs      s/step   speedup");
    let mut base: Option<f64> = None;
    for &p in &pes {
        let cfg = match SimConfig::builder(p, machine)
            .steps_per_phase(steps)
            .schedule(schedule)
            .fault_plan(fault_plan.clone())
            .build()
        {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("bad configuration for {p} PEs: {e}");
                return 1;
            }
        };
        let mut e = Engine::with_decomposition(sys.clone(), decomp.clone(), cfg);
        if let Some(dir) = &profile_dir {
            // One registry per PE count: phase indices restart for each
            // engine, so each sweep point gets its own subdirectory.
            match MetricsRegistry::with_dir(format!("{dir}/pes{p:03}"), 1) {
                Ok(reg) => e.set_metrics(Some(reg)),
                Err(err) => {
                    eprintln!("cannot open profile dir {dir}: {err}");
                    return 1;
                }
            }
        }
        let t = e.run_benchmark().final_time_per_step();
        let b = *base.get_or_insert(t * pes[0] as f64);
        println!("{p:>4} {t:>11.4} {:>9.1}", b / t);
    }
    if let Some(dir) = &profile_dir {
        println!("profiles written under {dir}/ (load trace_*.json in ui.perfetto.dev)");
    }
    0
}
