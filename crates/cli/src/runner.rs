//! Turns a parsed [`RunConfig`] into an actual simulation run.

use crate::config::{RunConfig, SystemKind, ThermostatKind};
use mdcore::prelude::*;
use mdcore::thermostat::{Berendsen, Langevin};
use namd_core::parallel::ParallelSim;
use pme::md::MtsSimulator;
use std::io::Write;

/// Summary of a finished run (also printed step-by-step as it goes).
#[derive(Debug, Clone)]
pub struct RunReport {
    pub n_atoms: usize,
    pub steps: usize,
    /// Total energy at the first and last recorded step.
    pub e_first: f64,
    pub e_last: f64,
    pub final_temperature: f64,
    pub wall_seconds: f64,
    pub trajectory_frames: usize,
}

/// Build the molecular system a config describes.
pub fn build_system(cfg: &RunConfig) -> System {
    let mut system = match cfg.system {
        SystemKind::Water => molgen::SystemBuilder::new(molgen::SystemSpec {
            name: "water",
            box_lengths: Vec3::splat(cfg.box_size),
            target_atoms: cfg.atoms - cfg.atoms % 3,
            protein_chains: 0,
            protein_chain_len: 0,
            lipid_slab: None,
            cutoff: cfg.cutoff,
            seed: cfg.seed,
        })
        .build(),
        SystemKind::Apoa1 | SystemKind::Bc1 | SystemKind::Br => {
            let bench = match cfg.system {
                SystemKind::Apoa1 => molgen::apoa1_like(),
                SystemKind::Bc1 => molgen::bc1_like(),
                _ => molgen::br_like(),
            };
            let bench = if cfg.scale < 1.0 { bench.scaled(cfg.scale) } else { bench };
            let builder = molgen::SystemBuilder::new(bench.spec().clone());
            if cfg.restrain_protein {
                builder.build_restrained()
            } else {
                builder.build()
            }
        }
    };
    if cfg.pme {
        let beta = if cfg.ewald_beta > 0.0 {
            cfg.ewald_beta
        } else {
            // erfc(β·r_cut) ≈ 1e-6 heuristic.
            (1e6f64).ln().sqrt() / cfg.cutoff
        };
        system.forcefield = system.forcefield.clone().with_ewald(beta);
    }
    system.thermalize(cfg.temperature, cfg.seed);
    system
}

/// Execute the run, streaming a one-line-per-step energy log to `log`.
pub fn run(cfg: &RunConfig, log: &mut dyn Write) -> std::io::Result<RunReport> {
    let mut system = build_system(cfg);
    let n_atoms = system.n_atoms();
    if cfg.minimize > 0 {
        let r = mdcore::minimize::minimize(&mut system, cfg.minimize, 5.0);
        writeln!(
            log,
            "minimized: {:.1} -> {:.1} kcal/mol over {} evaluations (max force {:.1})",
            r.e_initial, r.e_final, r.evaluations, r.max_force
        )?;
    }
    writeln!(
        log,
        "namd-rs: {} atoms, cutoff {} Å, dt {} fs, {} steps, {} threads{}",
        n_atoms,
        cfg.cutoff,
        cfg.timestep,
        cfg.steps,
        cfg.threads,
        if cfg.pme { ", PME on" } else { "" }
    )?;

    let mut xyz = if cfg.output_name.is_empty() {
        None
    } else {
        let file = std::fs::File::create(format!("{}.xyz", cfg.output_name))?;
        Some(XyzWriter::from_system(std::io::BufWriter::new(file), &system))
    };

    let berendsen = Berendsen { target_k: cfg.temperature, tau_fs: cfg.berendsen_tau };
    let mut langevin = match cfg.thermostat {
        ThermostatKind::Langevin => Some(Langevin::new(
            &system,
            cfg.temperature,
            cfg.langevin_gamma,
            cfg.timestep,
            cfg.seed,
        )),
        _ => None,
    };

    enum Driver {
        Sequential(Simulator),
        Threads(Box<ParallelSim>),
        FullElectro(Box<MtsSimulator>),
    }
    // PME runs use the MTS driver (k = 1 reduces to velocity Verlet);
    // Langevin runs use the thermostat's own integrator.
    let mut driver = if cfg.pme {
        Driver::FullElectro(Box::new(MtsSimulator::new(
            &system,
            cfg.pme_spacing,
            cfg.timestep,
            cfg.mts_frequency,
        )))
    } else if cfg.threads > 1 {
        let mut par = ParallelSim::new(system.clone(), cfg.threads, cfg.timestep)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        par.set_pairlist(cfg.pairlist_cache, cfg.pairlist_margin);
        Driver::Threads(Box::new(par))
    } else if cfg.pairlist_cache && cfg.pairlist_margin > 0.0 {
        // Sequential analogue of the engine's pair-list cache: a Verlet list
        // at cutoff + margin with displacement-based rebuilds.
        Driver::Sequential(Simulator::with_pairlist(&system, cfg.timestep, cfg.pairlist_margin))
    } else {
        Driver::Sequential(Simulator::new(&system, cfg.timestep))
    };

    writeln!(log, "step      potential        kinetic          total     temp(K)")?;
    let start = std::time::Instant::now();
    let mut e_first = f64::NAN;
    let mut e_last = f64::NAN;
    let mut frames = 0usize;
    for step in 0..cfg.steps {
        let (potential, kinetic) = match &mut driver {
            Driver::Sequential(sim) => {
                let e = if let Some(l) = &mut langevin {
                    l.step(&mut system)
                } else {
                    let e = sim.step(&mut system);
                    if cfg.thermostat == ThermostatKind::Berendsen {
                        berendsen.apply(&mut system, cfg.timestep);
                    }
                    e
                };
                (e.potential(), e.kinetic)
            }
            Driver::Threads(par) => {
                let e = par.step();
                if cfg.thermostat == ThermostatKind::Berendsen {
                    berendsen.apply(&mut par.system_mut(), cfg.timestep);
                }
                (e.potential(), e.kinetic)
            }
            Driver::FullElectro(mts) => {
                let e = mts.outer_step(&mut system);
                if cfg.thermostat == ThermostatKind::Berendsen {
                    berendsen.apply(&mut system, cfg.timestep);
                }
                (e.potential(), e.kinetic)
            }
        };
        let total = potential + kinetic;
        if step == 0 {
            e_first = total;
        }
        e_last = total;
        let temp = match &driver {
            Driver::Threads(par) => par.system().temperature(),
            _ => system.temperature(),
        };
        writeln!(log, "{step:>4} {potential:>14.2} {kinetic:>14.2} {total:>14.2} {temp:>10.1}")?;
        if let Some(w) = &mut xyz {
            if step % cfg.trajectory_every.max(1) == 0 {
                let label = format!("step {step}");
                match &driver {
                    Driver::Threads(par) => w.write_frame(&par.system().positions, &label)?,
                    _ => w.write_frame(&system.positions, &label)?,
                }
                frames += 1;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let final_temperature = match &driver {
        Driver::Threads(par) => par.system().temperature(),
        _ => system.temperature(),
    };
    writeln!(
        log,
        "done: {:.2} s wall ({:.1} ms/step){}",
        wall,
        wall / cfg.steps.max(1) as f64 * 1e3,
        if frames > 0 { format!(", {frames} trajectory frames") } else { String::new() }
    )?;
    Ok(RunReport {
        n_atoms,
        steps: cfg.steps,
        e_first,
        e_last,
        final_temperature,
        wall_seconds: wall,
        trajectory_frames: frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::parse;

    #[test]
    fn water_run_executes_and_conserves() {
        let cfg = parse(
            "system water\natoms 600\nboxSize 20\ncutoff 6\ntimestep 0.5\nsteps 30\n",
        )
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert_eq!(report.n_atoms, 600);
        let drift = (report.e_last - report.e_first).abs() / report.e_first.abs().max(1.0);
        assert!(drift < 2e-2, "NVE drift {drift}");
        let text = String::from_utf8(log).unwrap();
        assert!(text.lines().count() > 30);
    }

    #[test]
    fn langevin_run_heats_a_cold_system() {
        let cfg = parse(
            "system water\natoms 300\nboxSize 20\ncutoff 6\ntimestep 1.0\nsteps 120\n\
             temperature 250\nthermostat langevin\nlangevinGamma 0.02\n",
        )
        .unwrap();
        // Zero the velocities by building cold, then let the thermostat heat.
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert!(
            report.final_temperature > 100.0,
            "thermostat failed to heat: {}",
            report.final_temperature
        );
    }

    #[test]
    fn minimization_precedes_dynamics() {
        let cfg = parse(
            "system water\natoms 300\nboxSize 20\ncutoff 6\nsteps 10\nminimize 50\n",
        )
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("minimized:"), "{text}");
        assert!(report.e_last.is_finite());
    }

    #[test]
    fn multicore_run_works() {
        let cfg = parse(
            "system br\nscale 0.3\ntimestep 0.5\nsteps 5\nthreads 2\n",
        )
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert!(report.n_atoms > 500);
        assert!(report.e_last.is_finite());
    }

    #[test]
    fn pme_run_works() {
        let cfg = parse(
            "system water\natoms 450\nboxSize 20\ncutoff 7\ntimestep 0.5\nsteps 8\n\
             pme on\nmtsFrequency 2\n",
        )
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert!(report.e_last.is_finite());
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("PME on"));
    }

    #[test]
    fn trajectory_output_writes_frames() {
        let dir = std::env::temp_dir().join("namd_rs_test_traj");
        let _ = std::fs::create_dir_all(&dir);
        let name = dir.join("t1");
        let cfg = parse(&format!(
            "system water\natoms 90\nboxSize 16\ncutoff 5\nsteps 10\n\
             outputName {}\ntrajectoryEvery 2\n",
            name.display()
        ))
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert_eq!(report.trajectory_frames, 5);
        let xyz = std::fs::read_to_string(format!("{}.xyz", name.display())).unwrap();
        assert!(xyz.starts_with("90\n"));
        let _ = std::fs::remove_file(format!("{}.xyz", name.display()));
    }
}
