//! Turns a parsed [`RunConfig`] into an actual simulation run.

use crate::config::{RunConfig, SystemKind, ThermostatKind};
use mdcore::prelude::*;
use mdcore::thermostat::{Berendsen, Langevin};
use namd_core::config::Backend;
use namd_core::parallel::ParallelSim;
use pme::md::MtsSimulator;
use std::io::Write;
use std::path::Path;

/// Give up the in-process crash-recovery loop after this many consecutive
/// recoveries.
const MAX_RECOVERIES: u32 = 3;

/// Opaque per-snapshot payload the runner stores in `Snapshot::extra`:
/// the first recorded total energy (for the final report), the number of
/// trajectory frames already on disk (so a restart neither duplicates nor
/// re-truncates them), and the migration cadence (so a restarted run
/// reproduces the original run's decomposition-rebuild pattern).
fn encode_extra(e_first: f64, frames: u64, migrate_every: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(24);
    v.extend_from_slice(&e_first.to_le_bytes());
    v.extend_from_slice(&frames.to_le_bytes());
    v.extend_from_slice(&migrate_every.to_le_bytes());
    v
}

fn decode_extra(bytes: &[u8]) -> Option<(f64, u64, u64)> {
    if bytes.len() != 24 {
        return None;
    }
    let f = |r: std::ops::Range<usize>| <[u8; 8]>::try_from(&bytes[r]).unwrap();
    Some((
        f64::from_le_bytes(f(0..8)),
        u64::from_le_bytes(f(8..16)),
        u64::from_le_bytes(f(16..24)),
    ))
}

/// Largest atom-migration cadence ≤ 20 steps that divides the checkpoint
/// interval, so every checkpoint barrier lands on a migration boundary
/// (the alignment bit-identical restarts need).
fn migrate_cadence(interval: usize) -> usize {
    (1..=20.min(interval)).rev().find(|d| interval % d == 0).unwrap_or(1)
}

fn ckpt_io_err(e: ckpt::CkptError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// Load a restart snapshot from a checkpoint file, or from the newest
/// valid checkpoint when `path` is a directory.
fn load_snapshot(path: &str) -> std::io::Result<(ckpt::Snapshot, String)> {
    let p = Path::new(path);
    if p.is_dir() {
        let dir = ckpt::CheckpointDir::create(p).map_err(ckpt_io_err)?;
        let (snap, file) = dir.latest_valid().map_err(ckpt_io_err)?;
        Ok((snap, file.display().to_string()))
    } else {
        let bytes = std::fs::read(p)?;
        let snap = ckpt::Snapshot::decode(&bytes).map_err(ckpt_io_err)?;
        Ok((snap, path.to_string()))
    }
}

/// Keep only the first `frames` complete XYZ frames of an existing
/// trajectory file (a restart must not re-truncate or duplicate what the
/// interrupted run already wrote; anything after the checkpoint's
/// high-water mark is re-produced bit-identically by the resumed run).
fn truncate_xyz(path: &str, frames: usize, n_atoms: usize) -> std::io::Result<usize> {
    let text = std::fs::read_to_string(path)?;
    let frame_lines = n_atoms + 2;
    let complete = text.lines().count() / frame_lines;
    let keep = frames.min(complete);
    let truncated: String = text
        .lines()
        .take(keep * frame_lines)
        .flat_map(|l| [l, "\n"])
        .collect();
    std::fs::write(path, truncated)?;
    Ok(keep)
}

/// Summary of a finished run (also printed step-by-step as it goes).
#[derive(Debug, Clone)]
pub struct RunReport {
    pub n_atoms: usize,
    pub steps: usize,
    /// Total energy at the first and last recorded step.
    pub e_first: f64,
    pub e_last: f64,
    pub final_temperature: f64,
    pub wall_seconds: f64,
    pub trajectory_frames: usize,
}

/// Build the molecular system a config describes.
pub fn build_system(cfg: &RunConfig) -> System {
    let mut system = match cfg.system {
        SystemKind::Water => molgen::SystemBuilder::new(molgen::SystemSpec {
            name: "water",
            box_lengths: Vec3::splat(cfg.box_size),
            target_atoms: cfg.atoms - cfg.atoms % 3,
            protein_chains: 0,
            protein_chain_len: 0,
            lipid_slab: None,
            cutoff: cfg.cutoff,
            seed: cfg.seed,
        })
        .build(),
        SystemKind::Apoa1 | SystemKind::Bc1 | SystemKind::Br => {
            let bench = match cfg.system {
                SystemKind::Apoa1 => molgen::apoa1_like(),
                SystemKind::Bc1 => molgen::bc1_like(),
                _ => molgen::br_like(),
            };
            let bench = if cfg.scale < 1.0 { bench.scaled(cfg.scale) } else { bench };
            let builder = molgen::SystemBuilder::new(bench.spec().clone());
            if cfg.restrain_protein {
                builder.build_restrained()
            } else {
                builder.build()
            }
        }
        SystemKind::Zoo(name) => molgen::zoo::by_name(name, cfg.atoms, cfg.seed)
            .expect("config validation accepts known zoo names only")
            .build_scaled(cfg.scale),
    };
    if cfg.pme {
        let beta = if cfg.ewald_beta > 0.0 {
            cfg.ewald_beta
        } else {
            // erfc(β·r_cut) ≈ 1e-6 heuristic.
            (1e6f64).ln().sqrt() / cfg.cutoff
        };
        system.forcefield = system.forcefield.clone().with_ewald(beta);
    }
    system.thermalize(cfg.temperature, cfg.seed);
    system
}

/// Execute the run, streaming a one-line-per-step energy log to `log`.
pub fn run(cfg: &RunConfig, log: &mut dyn Write) -> std::io::Result<RunReport> {
    let mut system = build_system(cfg);
    let n_atoms = system.n_atoms();
    if cfg.minimize > 0 {
        let r = mdcore::minimize::minimize(&mut system, cfg.minimize, 5.0);
        writeln!(
            log,
            "minimized: {:.1} -> {:.1} kcal/mol over {} evaluations (max force {:.1})",
            r.e_initial, r.e_final, r.evaluations, r.max_force
        )?;
    }
    writeln!(
        log,
        "namd-rs: {} atoms, cutoff {} Å, dt {} fs, {} steps, {} threads{}",
        n_atoms,
        cfg.cutoff,
        cfg.timestep,
        cfg.steps,
        cfg.threads,
        if cfg.pme { ", PME on" } else { "" }
    )?;

    let berendsen = Berendsen { target_k: cfg.temperature, tau_fs: cfg.berendsen_tau };
    let mut langevin = match cfg.thermostat {
        ThermostatKind::Langevin => Some(Langevin::new(
            &system,
            cfg.temperature,
            cfg.langevin_gamma,
            cfg.timestep,
            cfg.seed,
        )),
        _ => None,
    };

    let checkpointing = !cfg.checkpoint_dir.is_empty();
    let restarting = !cfg.restart_from.is_empty();
    let use_parallel =
        cfg.threads > 1 || checkpointing || restarting || cfg.backend != "threads";
    let mut e_first = f64::NAN;
    let mut frames = 0usize;
    let mut start_step = 0usize;

    enum Driver {
        Sequential(Simulator),
        Threads(Box<ParallelSim>),
        FullElectro(Box<MtsSimulator>),
    }
    // PME runs use the MTS driver (k = 1 reduces to velocity Verlet);
    // Langevin runs use the thermostat's own integrator. Checkpoint and
    // restart runs always use the parallel driver (even with threads 1):
    // checkpoints are in-phase barriers of its message protocol.
    let mut driver = if cfg.pme {
        Driver::FullElectro(Box::new(MtsSimulator::new(
            &system,
            cfg.pme_spacing,
            cfg.timestep,
            cfg.mts_frequency,
        )))
    } else if use_parallel {
        let backend = match cfg.backend.as_str() {
            "des" => Backend::Des,
            "proc" => Backend::Proc,
            _ => Backend::Threads,
        };
        let mut par = ParallelSim::with_backend(system.clone(), cfg.threads, cfg.timestep, backend)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        if backend == Backend::Proc {
            let dir = (!cfg.socket_dir.is_empty())
                .then(|| std::path::PathBuf::from(&cfg.socket_dir));
            par.set_proc_options(cfg.procs, dir);
            writeln!(log, "backend proc: one worker process per PE ({})", cfg.threads)?;
        } else if backend == Backend::Des {
            writeln!(log, "backend des: deterministic virtual-time execution")?;
        }
        par.set_pairlist(cfg.pairlist_cache, cfg.pairlist_margin);
        if !cfg.fault_plan.is_empty() {
            let plan = charmrt::FaultPlan::parse(&cfg.fault_plan)
                .expect("validated by config::parse");
            par.set_fault_plan(Some(plan));
        }
        if cfg.schedule != "fifo" {
            let policy = charmrt::SchedulePolicy::parse(&cfg.schedule, cfg.schedule_seed)
                .expect("validated by config::parse");
            par.set_schedule(policy);
        }
        if !cfg.profile_dir.is_empty() {
            let reg = namd_core::prelude::MetricsRegistry::with_dir(
                cfg.profile_dir.clone(),
                cfg.profile_interval,
            )?;
            par.set_metrics(Some(reg));
        }
        if checkpointing {
            par.migrate_every = migrate_cadence(cfg.checkpoint_interval);
        }
        if restarting {
            let (snap, from) = load_snapshot(&cfg.restart_from)?;
            if let Some((ef, fr, me)) = decode_extra(&snap.extra) {
                e_first = ef;
                frames = fr as usize;
                if !checkpointing && me > 0 {
                    par.migrate_every = me as usize;
                }
            }
            par.restore(&snap).map_err(ckpt_io_err)?;
            if snap.step > 0 && cfg.thermostat == ThermostatKind::Berendsen {
                // The snapshot holds the barrier state, taken before that
                // step's thermostat rescale; apply it once to land on the
                // exact state the uninterrupted run continued from.
                berendsen.apply(&mut par.system_mut(), cfg.timestep);
            }
            start_step = snap.step as usize;
            writeln!(log, "restarted from {from} at step {start_step}")?;
        }
        if checkpointing {
            par.set_checkpointing(&cfg.checkpoint_dir, cfg.checkpoint_interval);
        }
        Driver::Threads(Box::new(par))
    } else if cfg.pairlist_cache && cfg.pairlist_margin > 0.0 {
        // Sequential analogue of the engine's pair-list cache: a Verlet list
        // at cutoff + margin with displacement-based rebuilds.
        Driver::Sequential(Simulator::with_pairlist(&system, cfg.timestep, cfg.pairlist_margin))
    } else {
        Driver::Sequential(Simulator::new(&system, cfg.timestep))
    };

    let every = cfg.trajectory_every.max(1);
    let mut xyz = if cfg.output_name.is_empty() {
        None
    } else {
        let path = format!("{}.xyz", cfg.output_name);
        let file = if restarting && Path::new(&path).exists() {
            frames = truncate_xyz(&path, frames, n_atoms)?;
            std::fs::OpenOptions::new().append(true).open(&path)?
        } else {
            frames = 0;
            std::fs::File::create(&path)?
        };
        Some(XyzWriter::from_system(std::io::BufWriter::new(file), &system))
    };

    // Baseline snapshot: a crash before the first checkpoint barrier must
    // still have something to roll back to.
    if checkpointing {
        if let Driver::Threads(par) = &mut driver {
            if par.steps_done() == 0 {
                par.set_ckpt_extra(encode_extra(
                    e_first,
                    frames as u64,
                    par.migrate_every as u64,
                ));
                let dir =
                    ckpt::CheckpointDir::create(&cfg.checkpoint_dir).map_err(ckpt_io_err)?;
                dir.write(&par.snapshot()).map_err(ckpt_io_err)?;
            }
        }
    }

    writeln!(log, "step      potential        kinetic          total     temp(K)")?;
    let start = std::time::Instant::now();
    let mut e_last = f64::NAN;
    let mut recoveries = 0u32;
    let mut step = start_step;
    while step < cfg.steps {
        let (potential, kinetic) = match &mut driver {
            Driver::Sequential(sim) => {
                let e = if let Some(l) = &mut langevin {
                    l.step(&mut system)
                } else {
                    let e = sim.step(&mut system);
                    if cfg.thermostat == ThermostatKind::Berendsen {
                        berendsen.apply(&mut system, cfg.timestep);
                    }
                    e
                };
                (e.potential(), e.kinetic)
            }
            Driver::Threads(par) => {
                if checkpointing {
                    // The barrier inside this step snapshots state mid-step;
                    // record the frame high-water mark *including* the frame
                    // this iteration will write, since a restart resumes
                    // after it.
                    let will_write =
                        xyz.is_some() && step % every == 0 && step / every >= frames;
                    par.set_ckpt_extra(encode_extra(
                        e_first,
                        (frames + will_write as usize) as u64,
                        par.migrate_every as u64,
                    ));
                }
                match par.try_step() {
                    Ok(e) => {
                        if cfg.thermostat == ThermostatKind::Berendsen {
                            berendsen.apply(&mut par.system_mut(), cfg.timestep);
                        }
                        (e.potential(), e.kinetic)
                    }
                    Err(crash) => {
                        // Crash-recovery loop: strip the (one-shot) kill,
                        // back off, reload the newest valid checkpoint, and
                        // rewind the step counter to it.
                        recoveries += 1;
                        if recoveries > MAX_RECOVERIES {
                            return Err(std::io::Error::other(format!(
                                "giving up after {recoveries} crash recoveries: {crash}"
                            )));
                        }
                        writeln!(log, "{crash}; recovering (attempt {recoveries})")?;
                        par.strip_kills();
                        std::thread::sleep(std::time::Duration::from_millis(
                            10u64 << (recoveries - 1),
                        ));
                        let dir = ckpt::CheckpointDir::create(&cfg.checkpoint_dir)
                            .map_err(ckpt_io_err)?;
                        let (snap, path) = dir.latest_valid().map_err(ckpt_io_err)?;
                        par.restore(&snap).map_err(ckpt_io_err)?;
                        if snap.step > 0 && cfg.thermostat == ThermostatKind::Berendsen {
                            berendsen.apply(&mut par.system_mut(), cfg.timestep);
                        }
                        step = snap.step as usize;
                        writeln!(
                            log,
                            "resumed from {} at step {step}",
                            path.display()
                        )?;
                        continue;
                    }
                }
            }
            Driver::FullElectro(mts) => {
                let e = mts.outer_step(&mut system);
                if cfg.thermostat == ThermostatKind::Berendsen {
                    berendsen.apply(&mut system, cfg.timestep);
                }
                (e.potential(), e.kinetic)
            }
        };
        let total = potential + kinetic;
        if step == 0 {
            e_first = total;
        }
        e_last = total;
        let temp = match &driver {
            Driver::Threads(par) => par.system().temperature(),
            _ => system.temperature(),
        };
        writeln!(log, "{step:>4} {potential:>14.2} {kinetic:>14.2} {total:>14.2} {temp:>10.1}")?;
        if let Some(w) = &mut xyz {
            // The index guard makes frame writing idempotent across
            // crash-recovery rewinds and restarts: a frame already on disk
            // (it is bit-identical) is never written twice.
            if step % every == 0 && step / every >= frames {
                let label = format!("step {step}");
                match &driver {
                    Driver::Threads(par) => w.write_frame(&par.system().positions, &label)?,
                    _ => w.write_frame(&system.positions, &label)?,
                }
                frames += 1;
            }
        }
        step += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    let final_temperature = match &driver {
        Driver::Threads(par) => par.system().temperature(),
        _ => system.temperature(),
    };
    writeln!(
        log,
        "done: {:.2} s wall ({:.1} ms/step){}",
        wall,
        wall / cfg.steps.max(1) as f64 * 1e3,
        if frames > 0 { format!(", {frames} trajectory frames") } else { String::new() }
    )?;
    if let Driver::Threads(par) = &driver {
        if let Some(reg) = par.metrics() {
            if let Some(dir) = reg.dir() {
                writeln!(
                    log,
                    "profiles: {} phase record(s) under {} (open trace_*.json in \
                     ui.perfetto.dev)",
                    reg.phases.len(),
                    dir.display()
                )?;
            }
        }
    }
    Ok(RunReport {
        n_atoms,
        steps: cfg.steps,
        e_first,
        e_last,
        final_temperature,
        wall_seconds: wall,
        trajectory_frames: frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::parse;

    #[test]
    fn water_run_executes_and_conserves() {
        let cfg = parse(
            "system water\natoms 600\nboxSize 20\ncutoff 6\ntimestep 0.5\nsteps 30\n",
        )
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert_eq!(report.n_atoms, 600);
        let drift = (report.e_last - report.e_first).abs() / report.e_first.abs().max(1.0);
        assert!(drift < 2e-2, "NVE drift {drift}");
        let text = String::from_utf8(log).unwrap();
        assert!(text.lines().count() > 30);
    }

    #[test]
    fn langevin_run_heats_a_cold_system() {
        let cfg = parse(
            "system water\natoms 300\nboxSize 20\ncutoff 6\ntimestep 1.0\nsteps 120\n\
             temperature 250\nthermostat langevin\nlangevinGamma 0.02\n",
        )
        .unwrap();
        // Zero the velocities by building cold, then let the thermostat heat.
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert!(
            report.final_temperature > 100.0,
            "thermostat failed to heat: {}",
            report.final_temperature
        );
    }

    #[test]
    fn minimization_precedes_dynamics() {
        let cfg = parse(
            "system water\natoms 300\nboxSize 20\ncutoff 6\nsteps 10\nminimize 50\n",
        )
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("minimized:"), "{text}");
        assert!(report.e_last.is_finite());
    }

    #[test]
    fn multicore_run_works() {
        let cfg = parse(
            "system br\nscale 0.3\ntimestep 0.5\nsteps 5\nthreads 2\n",
        )
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert!(report.n_atoms > 500);
        assert!(report.e_last.is_finite());
    }

    #[test]
    fn proc_backend_run_works() {
        let cfg = parse(
            "system water\natoms 300\nboxSize 20\ncutoff 6\ntimestep 0.5\nsteps 4\n\
             threads 2\nbackend proc\n",
        )
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert!(report.e_last.is_finite());
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("backend proc"), "{text}");

        // Same config on threads: energies are sum-order-dependent
        // observables, so equal to rounding (positions are bit-identical;
        // tests/proc_backend.rs checks that at the engine level).
        let cfg2 = parse(
            "system water\natoms 300\nboxSize 20\ncutoff 6\ntimestep 0.5\nsteps 4\n\
             threads 2\n",
        )
        .unwrap();
        let report2 = run(&cfg2, &mut Vec::new()).unwrap();
        let tol = 1e-8 * report2.e_last.abs().max(1.0);
        assert!(
            (report.e_last - report2.e_last).abs() < tol,
            "proc {} vs threads {}",
            report.e_last,
            report2.e_last
        );
    }

    #[test]
    fn pme_run_works() {
        let cfg = parse(
            "system water\natoms 450\nboxSize 20\ncutoff 7\ntimestep 0.5\nsteps 8\n\
             pme on\nmtsFrequency 2\n",
        )
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert!(report.e_last.is_finite());
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("PME on"));
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("namd_rs_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const CKPT_BASE: &str = "system water\natoms 300\nboxSize 20\ncutoff 6\ntimestep 0.5\n\
                             steps 12\nthreads 2\nthermostat berendsen\ntrajectoryEvery 2\n";

    #[test]
    fn killed_checkpointed_run_recovers_bit_identically() {
        let dir = tmp("kill");
        let ref_cfg = parse(&format!(
            "{CKPT_BASE}checkpointDir {}\ncheckpointInterval 4\noutputName {}\n",
            dir.join("ck_ref").display(),
            dir.join("ref").display()
        ))
        .unwrap();
        let mut log = Vec::new();
        run(&ref_cfg, &mut log).unwrap();

        let kill_cfg = parse(&format!(
            "{CKPT_BASE}checkpointDir {}\ncheckpointInterval 4\noutputName {}\n\
             faultPlan kill:entry=PatchRecvForces:dst=1:skip=30\n",
            dir.join("ck_kill").display(),
            dir.join("kill").display()
        ))
        .unwrap();
        let mut log = Vec::new();
        run(&kill_cfg, &mut log).unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("recovering"), "kill never fired:\n{text}");
        assert!(text.contains("resumed from"), "{text}");

        let a = std::fs::read(dir.join("ref.xyz")).unwrap();
        let b = std::fs::read(dir.join("kill.xyz")).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "recovered trajectory differs from uninterrupted one");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_resumes_bit_identically() {
        let dir = tmp("restart");
        let ref_cfg = parse(&format!(
            "{CKPT_BASE}checkpointDir {}\ncheckpointInterval 4\noutputName {}\n",
            dir.join("ck_ref").display(),
            dir.join("ref").display()
        ))
        .unwrap();
        let mut log = Vec::new();
        run(&ref_cfg, &mut log).unwrap();

        // "Interrupted" run: stop exactly at a checkpoint step, then resume
        // from the directory's newest snapshot and finish.
        let ck = dir.join("ck_part");
        let part_cfg = parse(&format!(
            "{CKPT_BASE}checkpointDir {}\ncheckpointInterval 4\noutputName {}\nsteps 8\n",
            ck.display(),
            dir.join("part").display()
        ))
        .unwrap();
        let mut log = Vec::new();
        run(&part_cfg, &mut log).unwrap();

        let resume_cfg = parse(&format!(
            "{CKPT_BASE}checkpointDir {}\ncheckpointInterval 4\noutputName {}\n\
             restartFrom {}\n",
            ck.display(),
            dir.join("part").display(),
            ck.display()
        ))
        .unwrap();
        let mut log = Vec::new();
        run(&resume_cfg, &mut log).unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("restarted from"), "{text}");
        assert!(text.contains(" 8 "), "resume should log step 8 first:\n{text}");

        let a = std::fs::read(dir.join("ref.xyz")).unwrap();
        let b = std::fs::read(dir.join("part.xyz")).unwrap();
        assert_eq!(a, b, "restarted trajectory differs from uninterrupted one");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_refuses_mismatched_and_corrupt_snapshots() {
        let dir = tmp("refuse");
        let ck = dir.join("ck");
        let cfg = parse(&format!(
            "{CKPT_BASE}checkpointDir {}\ncheckpointInterval 4\n",
            ck.display()
        ))
        .unwrap();
        let mut log = Vec::new();
        run(&cfg, &mut log).unwrap();

        // Different topology (atom count) must be refused with a clear error.
        let other = parse(&format!(
            "system water\natoms 600\nboxSize 20\ncutoff 6\ntimestep 0.5\nsteps 4\n\
             threads 2\nthermostat berendsen\nrestartFrom {}\n",
            ck.display()
        ))
        .unwrap();
        let err = run(&other, &mut Vec::new()).unwrap_err().to_string();
        assert!(
            err.contains("different system") || err.contains("mismatch"),
            "unexpected refusal message: {err}"
        );

        // A corrupted snapshot file named directly must be refused too.
        let file = ckpt::CheckpointDir::create(&ck).unwrap().file_for_step(4);
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&file, &bytes).unwrap();
        let broken = parse(&format!(
            "{CKPT_BASE}restartFrom {}\nsteps 12\n",
            file.display()
        ))
        .unwrap();
        let err = run(&broken, &mut Vec::new()).unwrap_err().to_string();
        assert!(
            err.contains("checksum") || err.contains("truncated") || err.contains("corrupt"),
            "unexpected refusal message: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profiled_run_writes_perfetto_trace_and_summaries() {
        let dir = tmp("profile");
        let prof = dir.join("prof");
        let cfg = parse(&format!(
            "system water\natoms 300\nboxSize 20\ncutoff 6\ntimestep 0.5\nsteps 6\n\
             threads 2\nprofileDir {}\nprofileInterval 3\n",
            prof.display()
        ))
        .unwrap();
        let mut log = Vec::new();
        run(&cfg, &mut log).unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("profiles:"), "{text}");

        let summaries = std::fs::read_to_string(prof.join("phases.jsonl")).unwrap();
        assert_eq!(summaries.lines().count(), 6, "one summary line per step");
        // Interval 3 over 6 phases captures phases 0 and 3.
        let traces: Vec<_> = std::fs::read_dir(&prof)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().into_string().unwrap())
            .filter(|n| n.starts_with("trace_") && n.ends_with(".json"))
            .collect();
        assert_eq!(traces.len(), 2, "{traces:?}");
        let body = std::fs::read_to_string(prof.join(&traces[0])).unwrap();
        assert!(body.starts_with("[\n"), "not a trace-event array: {body:.40}");
        assert!(body.contains("\"ph\":\"X\""), "no complete events");
        assert!(body.trim_end().ends_with("]"), "unterminated JSON");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trajectory_output_writes_frames() {
        let dir = std::env::temp_dir().join("namd_rs_test_traj");
        let _ = std::fs::create_dir_all(&dir);
        let name = dir.join("t1");
        let cfg = parse(&format!(
            "system water\natoms 90\nboxSize 16\ncutoff 5\nsteps 10\n\
             outputName {}\ntrajectoryEvery 2\n",
            name.display()
        ))
        .unwrap();
        let mut log = Vec::new();
        let report = run(&cfg, &mut log).unwrap();
        assert_eq!(report.trajectory_frames, 5);
        let xyz = std::fs::read_to_string(format!("{}.xyz", name.display())).unwrap();
        assert!(xyz.starts_with("90\n"));
        let _ = std::fs::remove_file(format!("{}.xyz", name.display()));
    }
}
