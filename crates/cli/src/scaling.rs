//! `namd-rs bench scaling` — the scenario-zoo scaling sweep.
//!
//! Sweeps cost-per-step across the zoo's stress scenarios in two modes:
//!
//! * **strong** — fixed PE count, system size swept through `--scales`
//!   fractions of the scenario's base size (cost/step vs atom count);
//! * **weak** — fixed atoms-per-PE: at `p` PEs the system is rebuilt at
//!   `p`× the base size, so a flat cost/step line means perfect weak
//!   scaling.
//!
//! Every (scenario × backend × LB strategy × point) runs the engine's
//! measurement→balance benchmark loop with an in-memory metrics registry,
//! and the point records the `LbAudit`-derived imbalance of the static RCB
//! placement and of the final strategy decision, the oracle verdict for
//! every phase, and whether the scenario's declared [`ImbalanceBudget`]
//! held. Results land in `BENCH_scaling.json` (`--out` to move it);
//! `--check` turns budget/oracle violations into a non-zero exit.
//!
//! Backends map to force modes the way the engine is honest about: the DES
//! backend replays counted loads (deterministic, so budgets are *enforced*
//! there), the threads backend runs the real kernels and measures
//! wall-clock loads (noisy, so its imbalance numbers are advisory).
//!
//! [`ImbalanceBudget`]: molgen::zoo::ImbalanceBudget

use machine::MachineModel;
use mdcore::prelude::System;
use molgen::zoo::{self, Scenario};
use namd_core::prelude::*;
use std::collections::HashMap;

/// One sweep measurement.
struct Point {
    scenario: &'static str,
    profile: &'static str,
    mode: &'static str,
    backend: &'static str,
    lb: &'static str,
    pes: usize,
    frac: f64,
    atoms: usize,
    patches: usize,
    sec_per_step: f64,
    imb_static: f64,
    imb_final: f64,
    migrations: usize,
    oracle_ok: bool,
    /// First failing phase + check, empty when the oracle passed.
    oracle_detail: String,
    budget_bar: f64,
    /// Budgets are enforced on the deterministic DES backend only.
    budget_enforced: bool,
    budget_ok: bool,
}

struct Opts {
    scenarios: Vec<String>,
    backends: Vec<String>,
    lb: Vec<String>,
    modes: Vec<String>,
    atoms: usize,
    pes: Vec<usize>,
    strong_pes: usize,
    scales: Vec<f64>,
    steps: usize,
    seed: u64,
    machine: MachineModel,
    out: String,
    check: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scenarios: vec![String::from("all")],
            backends: vec![String::from("des"), String::from("threads")],
            lb: vec![
                String::from("rcb-static"),
                String::from("greedy"),
                String::from("greedy-refine"),
                String::from("diffusion"),
            ],
            modes: vec![String::from("strong"), String::from("weak")],
            atoms: 2_500,
            pes: vec![1, 2, 4],
            strong_pes: 4,
            scales: vec![0.5, 1.0],
            steps: 3,
            seed: 2024,
            machine: machine::presets::generic_cluster(),
            out: String::from("BENCH_scaling.json"),
            check: false,
        }
    }
}

const USAGE: &str = "usage: namd-rs bench scaling [opts]\n\
    --scenarios LIST   comma list of zoo scenarios, or 'all' (default all)\n\
    --backends LIST    des,threads (default both)\n\
    --lb LIST          rcb-static,greedy,greedy-refine,diffusion (default all)\n\
    --modes LIST       strong,weak (default both)\n\
    --atoms N          base atom count (default 2500)\n\
    --pes LIST         weak-mode PE counts (default 1,2,4)\n\
    --strong-pes N     strong-mode fixed PE count (default 4)\n\
    --scales LIST      strong-mode size fractions (default 0.5,1.0)\n\
    --steps N          steps per measurement phase (default 3)\n\
    --seed N           zoo generator seed (default 2024)\n\
    --machine M        asci_red|t3e|origin|cluster (default cluster)\n\
    --out PATH         output file (default BENCH_scaling.json)\n\
    --check            exit 1 on any budget or oracle violation";

fn parse_list(v: &str) -> Vec<String> {
    v.split(',').map(|s| s.trim().to_ascii_lowercase()).filter(|s| !s.is_empty()).collect()
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{a} needs a value"))
        };
        match a.as_str() {
            "--scenarios" => o.scenarios = parse_list(&value()?),
            "--backends" => o.backends = parse_list(&value()?),
            "--lb" => o.lb = parse_list(&value()?),
            "--modes" => o.modes = parse_list(&value()?),
            "--atoms" => {
                o.atoms = value()?.parse().map_err(|_| "bad --atoms".to_string())?
            }
            "--pes" => {
                o.pes = parse_list(&value()?)
                    .iter()
                    .map(|s| s.parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "bad --pes list".to_string())?
            }
            "--strong-pes" => {
                o.strong_pes = value()?.parse().map_err(|_| "bad --strong-pes".to_string())?
            }
            "--scales" => {
                o.scales = parse_list(&value()?)
                    .iter()
                    .map(|s| s.parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "bad --scales list".to_string())?
            }
            "--steps" => o.steps = value()?.parse().map_err(|_| "bad --steps".to_string())?,
            "--seed" => o.seed = value()?.parse().map_err(|_| "bad --seed".to_string())?,
            "--machine" => {
                o.machine = match value()?.as_str() {
                    "asci_red" => machine::presets::asci_red(),
                    "t3e" => machine::presets::t3e_900(),
                    "origin" => machine::presets::origin2000(),
                    "cluster" => machine::presets::generic_cluster(),
                    other => return Err(format!("unknown machine '{other}'")),
                }
            }
            "--out" => o.out = value()?,
            "--check" => o.check = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if o.scenarios.iter().any(|s| s == "all") {
        o.scenarios = zoo::names().iter().map(|s| s.to_string()).collect();
    }
    for s in &o.scenarios {
        if !zoo::names().contains(&s.as_str()) {
            return Err(format!(
                "unknown scenario '{s}' (have: {})",
                zoo::names().join(", ")
            ));
        }
    }
    for b in &o.backends {
        if b != "des" && b != "threads" {
            return Err(format!("unknown backend '{b}' (des, threads)"));
        }
    }
    for l in &o.lb {
        if lb_strategy(l).is_none() {
            return Err(format!(
                "unknown lb strategy '{l}' (rcb-static, greedy, greedy-refine, diffusion)"
            ));
        }
    }
    for m in &o.modes {
        if m != "strong" && m != "weak" {
            return Err(format!("unknown mode '{m}' (strong, weak)"));
        }
    }
    if o.atoms < 500 {
        return Err("--atoms below 500 cannot exercise the balancer".into());
    }
    if o.steps == 0 || o.strong_pes == 0 || o.pes.is_empty() || o.scales.is_empty() {
        return Err("steps/strong-pes must be positive, pes/scales non-empty".into());
    }
    Ok(o)
}

/// Strategy tag → engine strategy. `rcb-static` keeps the initial RCB
/// placement (the engine audits it under the measured loads either way).
fn lb_strategy(tag: &str) -> Option<LbStrategy> {
    match tag {
        "rcb-static" => Some(LbStrategy::None),
        "greedy" => Some(LbStrategy::Greedy),
        "greedy-refine" => Some(LbStrategy::GreedyRefine),
        "diffusion" => Some(LbStrategy::Diffusion),
        _ => None,
    }
}

/// Run one sweep point. Returns `Err` only for configuration failures.
#[allow(clippy::too_many_arguments)]
fn run_point(
    sc: &Scenario,
    sys: &System,
    mode: &'static str,
    backend_tag: &str,
    lb_tag: &'static str,
    pes: usize,
    frac: f64,
    o: &Opts,
) -> Result<Point, String> {
    let (backend, force_mode, backend_name) = match backend_tag {
        "des" => (Backend::Des, ForceMode::Counted, "des"),
        _ => (Backend::Threads, ForceMode::Real, "threads"),
    };
    let mut builder = SimConfig::builder(pes, o.machine)
        .backend(backend)
        .force_mode(force_mode)
        .lb(lb_strategy(lb_tag).expect("validated"))
        .steps_per_phase(o.steps);
    if force_mode == ForceMode::Real {
        // Zoo decks are deliberately dense and start from unminimized
        // lattices; integrate them gently so the energy-drift oracle
        // measures the runtime, not the deck's relaxation burst.
        builder = builder.dt_fs(0.25);
    }
    let cfg = builder
        .build()
        .map_err(|e| format!("{}: bad config for {pes} PEs: {e}", sc.name))?;
    let mut engine = Engine::new(sys.clone(), cfg);
    engine.set_metrics(Some(MetricsRegistry::in_memory()));
    let run = engine.run_benchmark();

    // The sweep's oracle is the message-driven correctness contract:
    // quiescence, message conservation, Newton's third law, momentum.
    // Energy drift is excluded on Real-mode points — several zoo decks
    // start from clashing synthetic lattices whose relaxation burst
    // measures the deck, not the runtime (scenario_stress.rs and the
    // end-to-end tests cover physics stability on sane decks).
    let params =
        OracleParams { energy_drift_rel: f64::INFINITY, ..OracleParams::default() };
    let mut oracle_ok = true;
    let mut oracle_detail = String::new();
    for (k, phase) in run.phases.iter().enumerate() {
        let report = check_phase_with(&engine, phase, params);
        if !report.ok() && oracle_ok {
            oracle_ok = false;
            let v = &report.violations[0];
            oracle_detail = format!("phase {k}: {} — {}", v.check, v.detail);
        }
    }

    let reg = engine.metrics.as_ref().expect("registry attached above");
    let imb_static = reg
        .lb_audits
        .iter()
        .find(|a| a.strategy == "rcb-static")
        .map(|a| a.imbalance_after())
        .unwrap_or(f64::NAN);
    let imb_final =
        reg.lb_audits.last().map(|a| a.imbalance_after()).unwrap_or(imb_static);
    let migrations: usize = reg.lb_audits.iter().map(|a| a.migrations.len()).sum();

    let budget_bar = if lb_tag == "rcb-static" {
        sc.budget.static_max
    } else {
        sc.budget.lb_max
    };
    // Budgets apply where balancing is meaningful and deterministic:
    // wall-clock-measured loads (threads) are noise, 1 PE is always
    // balanced, and a sweep point with fewer than ~2 patches per PE has
    // no granularity for any strategy to work with (a single patch on 4
    // PEs is a 4.0 ratio by construction).
    let patches = engine.decomp().grid.n_patches();
    let budget_enforced = backend == Backend::Des && pes > 1 && patches >= 2 * pes;
    let budget_ok = !budget_enforced || imb_final <= budget_bar;

    Ok(Point {
        scenario: sc.name,
        profile: sc.profile.as_str(),
        mode,
        backend: backend_name,
        lb: lb_tag,
        pes,
        frac,
        atoms: sys.n_atoms(),
        patches,
        sec_per_step: run.final_time_per_step(),
        imb_static,
        imb_final,
        migrations,
        oracle_ok,
        oracle_detail,
        budget_bar,
        budget_enforced,
        budget_ok,
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(o: &Opts, scenarios: &[Scenario], points: &[Point]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-scaling-v1\",\n");
    out.push_str(&format!("  \"machine\": \"{}\",\n", json_escape(o.machine.name)));
    out.push_str(&format!("  \"base_atoms\": {},\n", o.atoms));
    out.push_str(&format!("  \"steps_per_phase\": {},\n", o.steps));
    out.push_str(&format!("  \"seed\": {},\n", o.seed));
    out.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"profile\": \"{}\", \"budget\": \
             {{\"static_max\": {}, \"lb_max\": {}, \"expected_static_min\": {}}}}}{}\n",
            sc.name,
            sc.profile.as_str(),
            sc.budget.static_max,
            sc.budget.lb_max,
            sc.budget.expected_static_min,
            if i + 1 < scenarios.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"profile\": \"{}\", \"mode\": \"{}\", \
             \"backend\": \"{}\", \"lb\": \"{}\", \"pes\": {}, \"frac\": {}, \
             \"atoms\": {}, \"patches\": {}, \"sec_per_step\": {:.6e}, \
             \"imb_static\": {:.4}, \"imb_final\": {:.4}, \"migrations\": {}, \
             \"oracle_ok\": {}, \"oracle_detail\": \"{}\", \"budget_bar\": {}, \
             \"budget_enforced\": {}, \"budget_ok\": {}}}{}\n",
            p.scenario,
            p.profile,
            p.mode,
            p.backend,
            p.lb,
            p.pes,
            p.frac,
            p.atoms,
            p.patches,
            p.sec_per_step,
            p.imb_static,
            p.imb_final,
            p.migrations,
            p.oracle_ok,
            json_escape(&p.oracle_detail),
            p.budget_bar,
            p.budget_enforced,
            p.budget_ok,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    let bad = points.iter().filter(|p| !p.budget_ok || !p.oracle_ok).count();
    out.push_str(&format!("  ],\n  \"violations\": {bad}\n}}\n"));
    out
}

/// Entry point for `namd-rs bench scaling ...` (args exclude "scaling").
pub fn cmd_bench_scaling(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return 0;
    }
    let o = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    let scenarios: Vec<Scenario> = o
        .scenarios
        .iter()
        .map(|n| zoo::by_name(n, o.atoms, o.seed).expect("validated"))
        .collect();
    println!(
        "bench scaling: {} scenario(s) x {:?} x {:?}, modes {:?}, machine {}",
        scenarios.len(),
        o.backends,
        o.lb,
        o.modes,
        o.machine.name
    );

    // (scenario index, size fraction) → built system: a build is the
    // slowest part of a point and is identical across backend × strategy.
    let mut built: HashMap<(usize, u64), System> = HashMap::new();
    let mut points: Vec<Point> = Vec::new();
    for (si, sc) in scenarios.iter().enumerate() {
        // (mode, pes, frac) sweep points for this scenario.
        let mut sweep: Vec<(&'static str, usize, f64)> = Vec::new();
        if o.modes.iter().any(|m| m == "strong") {
            for &f in &o.scales {
                sweep.push(("strong", o.strong_pes, f));
            }
        }
        if o.modes.iter().any(|m| m == "weak") {
            for &p in &o.pes {
                // Weak scaling: p PEs get a p×-size build — atoms-per-PE
                // stays at the scenario's base size.
                sweep.push(("weak", p, p as f64));
            }
        }
        for (mode, pes, frac) in sweep {
            let sys = built
                .entry((si, frac.to_bits()))
                .or_insert_with(|| sc.build_scaled(frac));
            for backend in &o.backends {
                for lb_name in &o.lb {
                    let lb_tag: &'static str = ["rcb-static", "greedy", "greedy-refine", "diffusion"]
                        .iter()
                        .find(|t| *t == lb_name)
                        .expect("validated");
                    let p = match run_point(sc, sys, mode, backend, lb_tag, pes, frac, &o) {
                        Ok(p) => p,
                        Err(e) => {
                            eprintln!("{e}");
                            return 1;
                        }
                    };
                    let verdict = if !p.oracle_ok {
                        "ORACLE-FAIL"
                    } else if !p.budget_ok {
                        "OVER-BUDGET"
                    } else {
                        "ok"
                    };
                    println!(
                        "{:>16} {:>6} {:>7} {:>13} pes {:>2} atoms {:>6} \
                         s/step {:>10.4e} imb {:>5.2}->{:<5.2} {}",
                        p.scenario,
                        p.mode,
                        p.backend,
                        p.lb,
                        p.pes,
                        p.atoms,
                        p.sec_per_step,
                        p.imb_static,
                        p.imb_final,
                        verdict
                    );
                    if !p.oracle_ok {
                        eprintln!(
                            "oracle violation: scenario {} (seed {}), strategy {}, {}",
                            p.scenario,
                            sc.seed(),
                            p.lb,
                            p.oracle_detail
                        );
                    }
                    if p.budget_enforced && !p.budget_ok {
                        eprintln!(
                            "budget violation: scenario {} (seed {}), strategy {}, \
                             imbalance {:.3} > budget {:.3} ({} mode, {} PEs)",
                            p.scenario,
                            sc.seed(),
                            p.lb,
                            p.imb_final,
                            p.budget_bar,
                            p.mode,
                            p.pes
                        );
                    }
                    points.push(p);
                }
            }
        }
    }

    let json = render_json(&o, &scenarios, &points);
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("cannot write {}: {e}", o.out);
        return 1;
    }
    let bad = points.iter().filter(|p| !p.budget_ok || !p.oracle_ok).count();
    println!("{} point(s), {} violation(s) -> {}", points.len(), bad, o.out);
    if o.check && bad > 0 {
        return 1;
    }
    0
}
