//! End-to-end tests of the `namd-rs` binary itself (spawned as a process).

use std::process::Command;

fn namd_rs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_namd-rs"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = namd_rs().output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn sample_config_round_trips_through_run() {
    let sample = namd_rs().arg("sample-config").output().unwrap();
    assert!(sample.status.success());
    let dir = std::env::temp_dir().join("namd_rs_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let conf = dir.join("roundtrip.conf");
    // Shrink the sample so the test is quick, and drop the trajectory.
    let mut text = String::from_utf8(sample.stdout).unwrap();
    text = text
        .replace("atoms         1500", "atoms         300")
        .replace("boxSize       26.0", "boxSize       20.0")
        .replace("steps         100", "steps         5")
        .replace("outputName    demo", "#outputName demo");
    std::fs::write(&conf, text).unwrap();

    let out = namd_rs().arg("run").arg(&conf).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("namd-rs: 300 atoms"), "{stdout}");
    assert!(stdout.contains("done:"), "{stdout}");
}

#[test]
fn info_reports_decomposition() {
    let dir = std::env::temp_dir().join("namd_rs_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let conf = dir.join("info.conf");
    std::fs::write(&conf, "system br\nscale 0.2\n").unwrap();
    let out = namd_rs().arg("info").arg(&conf).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("patches"), "{stdout}");
    assert!(stdout.contains("compute objects"), "{stdout}");
}

#[test]
fn config_errors_name_the_line() {
    let dir = std::env::temp_dir().join("namd_rs_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let conf = dir.join("bad.conf");
    std::fs::write(&conf, "system water\nbogusKey 12\n").unwrap();
    let out = namd_rs().arg("run").arg(&conf).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");
    assert!(err.contains("bogusKey") || err.contains("boguskey"), "{err}");
}

#[test]
fn bench_prints_a_speedup_table() {
    let out = namd_rs()
        .args(["bench", "br", "--scale", "0.2", "--pes", "1,4", "--steps", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("speedup"), "{stdout}");
    // Two data rows.
    assert!(stdout.lines().filter(|l| l.trim_start().starts_with(char::is_numeric)).count() >= 2);
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = namd_rs().args(["run", "/nonexistent/path.conf"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("config error"));
}
