//! The performance audit of §4.2.3 (Table 1): decompose a parallel run's
//! per-step time into ideal-vs-actual components.
//!
//! Columns follow the paper exactly: Total, Non-bonded, Bonds, Integration,
//! Overhead, Imbalance, Idle, Receives — all per-processor averages in
//! milliseconds per step, with the Ideal row computed from single-processor
//! times under perfect scaling. The identity
//! `Total = Non-bonded + Bonds + Integration + Overhead + Receives
//!          + Imbalance + Idle`
//! holds by construction (the last two absorb max-vs-avg skew and end-of-
//! step idleness).

use crate::decomp::Decomposition;
use crate::engine::PhaseResult;
use machine::MachineModel;

/// One audit row, all values seconds per step per PE.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AuditRow {
    pub total: f64,
    pub nonbonded: f64,
    pub bonds: f64,
    pub integration: f64,
    pub overhead: f64,
    pub imbalance: f64,
    pub idle: f64,
    pub receives: f64,
}

impl AuditRow {
    /// Sum of the component columns (should equal `total`).
    pub fn component_sum(&self) -> f64 {
        self.nonbonded
            + self.bonds
            + self.integration
            + self.overhead
            + self.imbalance
            + self.idle
            + self.receives
    }
}

/// The Table-1 style audit: ideal vs actual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Audit {
    pub ideal: AuditRow,
    pub actual: AuditRow,
    pub n_pes: usize,
}

/// Compute the audit for a measured phase.
pub fn audit(decomp: &Decomposition, machine: &MachineModel, r: &PhaseResult, n_pes: usize) -> Audit {
    let e = &r.entries;
    let steps = r.n_steps as f64;
    let pes = n_pes as f64;
    let per = |t: f64| t / steps / pes;
    let entry = |id: charmrt::EntryId| per(r.stats.entry_time[id.idx()]);

    let nonbonded = entry(e.exec_self) + entry(e.exec_pair);
    let bonds = entry(e.exec_bonded) + entry(e.exec_bonded_inter);
    let integration = entry(e.integrate);
    let receives = entry(e.patch_forces) + entry(e.proxy_forces);
    let overhead = entry(e.proxy_coords)
        + entry(e.ready)
        + entry(e.start)
        + entry(e.done)
        + entry(e.slab_charge)
        + entry(e.slab_transpose);

    let avg_busy = per(r.stats.pe_busy.iter().sum::<f64>());
    let max_busy = r.stats.max_busy() / steps;
    let imbalance = max_busy - avg_busy;
    let total = r.time_per_step;
    let idle = (total - max_busy).max(0.0);

    let actual = AuditRow {
        total,
        nonbonded,
        bonds,
        integration,
        overhead,
        imbalance,
        idle,
        receives,
    };

    // Ideal: single-processor times scaled perfectly across PEs.
    let nb_work: f64 = decomp
        .computes
        .iter()
        .filter(|c| c.terms.is_none())
        .map(|c| c.work)
        .sum();
    let bond_work: f64 = decomp
        .computes
        .iter()
        .filter(|c| c.terms.is_some())
        .map(|c| c.work)
        .sum();
    let ideal = AuditRow {
        total: machine.task_time(nb_work + bond_work + decomp.total_integration_work()) / pes,
        nonbonded: machine.task_time(nb_work) / pes,
        bonds: machine.task_time(bond_work) / pes,
        integration: machine.task_time(decomp.total_integration_work()) / pes,
        ..Default::default()
    };

    Audit { ideal, actual, n_pes }
}

impl Audit {
    /// Render the audit as the paper's Table 1 (milliseconds).
    pub fn render(&self) -> String {
        let ms = |v: f64| format!("{:>9.2}", v * 1e3);
        let row = |name: &str, r: &AuditRow| {
            format!(
                "{name:<7}{}{}{}{}{}{}{}{}\n",
                ms(r.total),
                ms(r.nonbonded),
                ms(r.bonds),
                ms(r.integration),
                ms(r.overhead),
                ms(r.imbalance),
                ms(r.idle),
                ms(r.receives)
            )
        };
        let mut s = String::from(
            "         Total  Non-bond    Bonds   Integr. Overhead  Imbal.     Idle  Receives  (ms/step/PE)\n",
        );
        s.push_str(&row("Ideal", &self.ideal));
        s.push_str(&row("Actual", &self.actual));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Engine;
    use machine::presets;
    use mdcore::prelude::*;

    fn run_audit(n_pes: usize) -> (Audit, f64) {
        let sys = molgen::SystemBuilder::new(molgen::SystemSpec {
            name: "audit-test",
            box_lengths: Vec3::new(36.0, 36.0, 36.0),
            target_atoms: 4200,
            protein_chains: 1,
            protein_chain_len: 60,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 21,
        })
        .build();
        let cfg = SimConfig::builder(n_pes, presets::asci_red())
            .steps_per_phase(2)
            .build()
            .unwrap();
        let mut eng = Engine::new(sys, cfg);
        let r = eng.run_phase(2);
        (audit(eng.decomp(), &presets::asci_red(), &r, n_pes), r.time_per_step)
    }

    #[test]
    fn actual_components_sum_to_total() {
        let (a, total) = run_audit(8);
        assert!((a.actual.total - total).abs() < 1e-12);
        let gap = (a.actual.component_sum() - a.actual.total).abs();
        assert!(
            gap < 0.02 * a.actual.total,
            "audit identity broken: sum {} vs total {}",
            a.actual.component_sum(),
            a.actual.total
        );
    }

    #[test]
    fn ideal_is_a_lower_bound() {
        let (a, _) = run_audit(8);
        assert!(a.ideal.total <= a.actual.total * 1.0001);
        assert!(a.ideal.overhead == 0.0 && a.ideal.idle == 0.0);
    }

    #[test]
    fn nonbonded_dominates() {
        // "The non-bonded computation can make up eighty percent or more of
        // the total computation."
        let (a, _) = run_audit(4);
        assert!(
            a.ideal.nonbonded > 0.7 * a.ideal.total,
            "non-bonded share {} of {}",
            a.ideal.nonbonded,
            a.ideal.total
        );
    }

    #[test]
    fn render_contains_both_rows() {
        let (a, _) = run_audit(4);
        let s = a.render();
        assert!(s.contains("Ideal"));
        assert!(s.contains("Actual"));
        assert_eq!(s.lines().count(), 3);
    }
}
