//! The chare implementations: home patches, proxy patches, compute objects,
//! and the completion reducer (§3.1).
//!
//! Per-step protocol (all message-driven, no barriers):
//!
//! 1. A home patch *publishes* its coordinates: one multicast to its proxy
//!    patches (§4.2.3's costed naive/optimized multicast) and ready-signals
//!    to co-located computes.
//! 2. A proxy receives the coordinates and ready-signals the computes on its
//!    processor.
//! 3. A compute that has heard from all of its (1 or 2+) patches self-enqueues
//!    an execute message; the execution runs the force kernels (or replays
//!    counted work), then sends one force message per involved patch to that
//!    patch's local representative (home patch or proxy).
//! 4. A proxy that has collected all local force contributions sends one
//!    combined force message to the home patch.
//! 5. A home patch that has collected everything self-enqueues *integrate*:
//!    velocity-Verlet update, then publish the next step's coordinates (this
//!    is the entry method the multicast optimization halves), or report
//!    completion to the reducer after the final step.

use crate::config::ForceMode;
use crate::costmodel;
use crate::decomp::{ComputeKind, PatchArrays};
use crate::patchgrid::PatchId;
use crate::state::Shared;
use charmrt::{empty_payload, Chare, Ctx, EntryId, MulticastMode, ObjId, Payload, PRIO_HIGH, PRIO_NORMAL};
use mdcore::bonded::{angle_force, bond_force, dihedral_force, improper_force, restraint_force};
use mdcore::forcefield::units;
use mdcore::nonbonded::{nb_pair_ranged, nb_self_ranged};
use std::rc::Rc;

/// Entry-method ids shared by all chares, registered once per engine run.
#[derive(Debug, Clone, Copy)]
pub struct Entries {
    /// Home patch: bootstrap / begin step 0.
    pub start: EntryId,
    /// Home patch: a force contribution arrived.
    pub patch_forces: EntryId,
    /// Home patch: integrate + publish (self-enqueued).
    pub integrate: EntryId,
    /// Proxy: coordinates arrived from home.
    pub proxy_coords: EntryId,
    /// Proxy: a local force contribution arrived.
    pub proxy_forces: EntryId,
    /// Compute: one of my patches is ready.
    pub ready: EntryId,
    /// Compute: execute (self-enqueued once all patches are ready).
    pub exec_self: EntryId,
    /// Compute: execute for pair computes.
    pub exec_pair: EntryId,
    /// Compute: execute for intra-patch bonded computes.
    pub exec_bonded: EntryId,
    /// Compute: execute for inter-patch bonded computes.
    pub exec_bonded_inter: EntryId,
    /// Reducer: one patch finished all steps.
    pub done: EntryId,
    /// PME slab: a patch's charge contribution arrived.
    pub slab_charge: EntryId,
    /// PME slab: a transpose block arrived from another slab.
    pub slab_transpose: EntryId,
}

impl Entries {
    /// Register all entry methods on an engine.
    pub fn register(des: &mut charmrt::Des) -> Entries {
        Entries {
            start: des.register_entry("PatchStart"),
            patch_forces: des.register_entry("PatchRecvForces"),
            integrate: des.register_entry("Integrate"),
            proxy_coords: des.register_entry("ProxyRecvCoords"),
            proxy_forces: des.register_entry("ProxyRecvForces"),
            ready: des.register_entry("ComputeReady"),
            exec_self: des.register_entry("NonbondedSelf"),
            exec_pair: des.register_entry("NonbondedPair"),
            exec_bonded: des.register_entry("BondedIntra"),
            exec_bonded_inter: des.register_entry("BondedInter"),
            done: des.register_entry("Done"),
            slab_charge: des.register_entry("PmeSlabCharges"),
            slab_transpose: des.register_entry("PmeSlabFft"),
        }
    }

    /// Entry ids attributable to the modeled PME pipeline.
    pub fn pme_entries(&self) -> [EntryId; 2] {
        [self.slab_charge, self.slab_transpose]
    }

    /// The entry ids that represent non-bonded work (for Figures 1-2).
    pub fn nonbonded(&self) -> [EntryId; 2] {
        [self.exec_self, self.exec_pair]
    }
}

/// Static per-run parameters shared by the patch/compute chares.
#[derive(Debug, Clone, Copy)]
pub struct RunParams {
    pub n_steps: usize,
    pub dt_fs: f64,
    pub force_mode: ForceMode,
    pub multicast: MulticastMode,
    /// PME cadence: reciprocal space evaluated on steps where
    /// `step % pme_every == 0`; 0 disables PME.
    pub pme_every: usize,
}

/// A home patch: owns a cube of space and its atoms; integrates them.
pub struct HomePatch {
    pub patch: PatchId,
    shared: Rc<Shared>,
    entries: Entries,
    params: RunParams,
    /// Proxy patch objects to multicast coordinates to.
    proxies: Vec<ObjId>,
    /// Co-located computes to ready-signal on publish.
    local_computes: Vec<ObjId>,
    /// Force messages expected per step (co-located computes needing this
    /// patch + one combined message per proxy).
    expected: usize,
    received: usize,
    step: usize,
    reducer: ObjId,
    /// Whether the velocity half-kick from the previous step is pending.
    started: bool,
    /// PME: the slab object this patch contributes charges to.
    slab: Option<ObjId>,
}

impl HomePatch {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        patch: PatchId,
        shared: Rc<Shared>,
        entries: Entries,
        params: RunParams,
        proxies: Vec<ObjId>,
        local_computes: Vec<ObjId>,
        expected: usize,
        reducer: ObjId,
        slab: Option<ObjId>,
    ) -> Self {
        HomePatch {
            patch,
            shared,
            entries,
            params,
            proxies,
            local_computes,
            expected,
            received: 0,
            step: 0,
            reducer,
            started: false,
            slab,
        }
    }

    /// Is PME evaluated on the *current* step?
    fn pme_step(&self) -> bool {
        self.slab.is_some()
            && self.params.pme_every > 0
            && self.step.is_multiple_of(self.params.pme_every)
    }

    /// Force/potential messages expected for the current step.
    fn expected_now(&self) -> usize {
        self.expected + usize::from(self.pme_step())
    }

    fn n_atoms(&self) -> usize {
        self.shared.decomp.grid.atoms[self.patch].len()
    }

    /// Send this step's coordinates to proxies and co-located computes; on
    /// PME steps, also spread charges and ship them to this patch's slab.
    fn publish(&self, ctx: &mut Ctx) {
        let bytes = self.n_atoms() * costmodel::BYTES_PER_ATOM;
        ctx.multicast(
            &self.proxies,
            self.entries.proxy_coords,
            bytes,
            PRIO_HIGH,
            self.params.multicast,
            |_| empty_payload(),
        );
        for &c in &self.local_computes {
            ctx.signal(c, self.entries.ready, PRIO_NORMAL);
        }
        if self.pme_step() {
            // Charge spreading (half of WORK_PME_PER_ATOM; gathering happens
            // at integration) and the charge-grid message to the slab.
            ctx.add_work(self.n_atoms() as f64 * costmodel::WORK_PME_PER_ATOM * 0.5);
            ctx.send(
                self.slab.expect("pme_step implies slab"),
                self.entries.slab_charge,
                bytes,
                PRIO_NORMAL,
                empty_payload(),
            );
        }
    }

    /// Velocity-Verlet update for this patch's atoms (Real mode).
    fn integrate_real(&mut self, ctx: &mut Ctx) {
        let shared = self.shared.clone();
        let mut st = shared.state.borrow_mut();
        let atoms = &self.shared.decomp.grid.atoms[self.patch];
        let dt = self.params.dt_fs;
        let last = self.step + 1 == self.params.n_steps;

        let mut kinetic = 0.0;
        for &a in atoms {
            let i = a as usize;
            let m = st.system.topology.atoms[i].mass;
            let acc = st.forces[i] * (units::ACCEL / m);
            // Complete the previous step's second half-kick.
            if self.started {
                st.system.velocities[i] += acc * (0.5 * dt);
            }
            let v = st.system.velocities[i];
            kinetic += 0.5 * m * v.norm2() * units::KE;
            if !last {
                // First half-kick and drift of the next step.
                st.system.velocities[i] += acc * (0.5 * dt);
                let vnew = st.system.velocities[i];
                st.system.positions[i] = st.system.cell.wrap(st.system.positions[i] + vnew * dt);
            }
            st.forces[i] = mdcore::vec3::Vec3::ZERO;
        }
        st.energies[self.step].kinetic += kinetic;
        drop(st);
        let _ = ctx;
    }
}

impl Chare for HomePatch {
    fn receive(&mut self, entry: EntryId, _payload: Payload, ctx: &mut Ctx) {
        if entry == self.entries.start {
            // Bootstrap: publish step-0 coordinates.
            self.publish(ctx);
        } else if entry == self.entries.patch_forces {
            self.received += 1;
            debug_assert!(self.received <= self.expected_now());
            if self.received == self.expected_now() {
                self.received = 0;
                // Integration is its own entry method so the trace and the
                // audit see it separately from cheap force receives.
                ctx.signal(ctx.this(), self.entries.integrate, PRIO_HIGH);
            }
        } else if entry == self.entries.integrate {
            ctx.add_work(self.n_atoms() as f64 * costmodel::WORK_PER_ATOM_INTEGRATION);
            if self.pme_step() {
                // Gather reciprocal-space forces from the potential grid.
                ctx.add_work(self.n_atoms() as f64 * costmodel::WORK_PME_PER_ATOM * 0.5);
            }
            if self.params.force_mode == ForceMode::Real {
                self.integrate_real(ctx);
            }
            self.started = true;
            self.step += 1;
            if self.step < self.params.n_steps {
                self.publish(ctx);
            } else {
                ctx.signal(self.reducer, self.entries.done, PRIO_NORMAL);
            }
        } else {
            unreachable!("HomePatch got unexpected entry {entry:?}");
        }
    }
}

/// A proxy patch: stands in for a remote home patch on this processor.
pub struct ProxyPatch {
    pub patch: PatchId,
    entries: Entries,
    home: ObjId,
    /// Computes on this PE that need this patch.
    local_computes: Vec<ObjId>,
    /// Force contributions expected per step (= local_computes needing it).
    expected: usize,
    received: usize,
    /// Bytes of a combined force message (patch atoms × per-atom bytes).
    force_bytes: usize,
    /// Unpacking cost per coordinate message, work units.
    unpack_work: f64,
}

impl ProxyPatch {
    pub fn new(
        patch: PatchId,
        entries: Entries,
        home: ObjId,
        local_computes: Vec<ObjId>,
        expected: usize,
        n_atoms: usize,
    ) -> Self {
        ProxyPatch {
            patch,
            entries,
            home,
            local_computes,
            expected,
            received: 0,
            force_bytes: n_atoms * costmodel::BYTES_PER_ATOM,
            unpack_work: n_atoms as f64 * 0.3,
        }
    }
}

impl Chare for ProxyPatch {
    fn receive(&mut self, entry: EntryId, _payload: Payload, ctx: &mut Ctx) {
        if entry == self.entries.proxy_coords {
            ctx.add_work(self.unpack_work);
            for &c in &self.local_computes {
                ctx.signal(c, self.entries.ready, PRIO_NORMAL);
            }
        } else if entry == self.entries.proxy_forces {
            self.received += 1;
            debug_assert!(self.received <= self.expected);
            if self.received == self.expected {
                self.received = 0;
                ctx.add_work(self.unpack_work);
                ctx.send(
                    self.home,
                    self.entries.patch_forces,
                    self.force_bytes,
                    PRIO_HIGH,
                    empty_payload(),
                );
            }
        } else {
            unreachable!("ProxyPatch got unexpected entry {entry:?}");
        }
    }
}

/// A compute object: non-bonded self/pair piece or bonded intra/inter.
pub struct ComputeChare {
    /// Index into `decomp.computes`.
    pub index: usize,
    shared: Rc<Shared>,
    entries: Entries,
    params: RunParams,
    /// Per required patch: the representative object on this PE to send the
    /// force contribution to (home patch if co-located, else proxy), the
    /// entry to invoke on it (`patch_forces` vs `proxy_forces`), and the
    /// byte size of that contribution.
    targets: Vec<(ObjId, EntryId, usize)>,
    expected: usize,
    received: usize,
    step: usize,
    /// Multiplier on the counted work (slow load drift, §3.2).
    work_scale: f64,
    /// Scheduler priority of this compute's execution (remote-feeding
    /// computes run first when `SimConfig::prioritize_remote` is on).
    exec_priority: charmrt::Priority,
}

impl ComputeChare {
    pub fn new(
        index: usize,
        shared: Rc<Shared>,
        entries: Entries,
        params: RunParams,
        targets: Vec<(ObjId, EntryId, usize)>,
        work_scale: f64,
        exec_priority: charmrt::Priority,
    ) -> Self {
        let expected = shared.decomp.computes[index].patches.len();
        ComputeChare {
            index,
            shared,
            entries,
            params,
            targets,
            expected,
            received: 0,
            step: 0,
            work_scale,
            exec_priority,
        }
    }

    /// The execute entry for this compute's kind.
    fn exec_entry(&self) -> EntryId {
        match self.shared.decomp.computes[self.index].kind {
            ComputeKind::SelfNb { .. } => self.entries.exec_self,
            ComputeKind::PairNb { .. } => self.entries.exec_pair,
            ComputeKind::BondedIntra { .. } => self.entries.exec_bonded,
            ComputeKind::BondedInter { .. } => self.entries.exec_bonded_inter,
        }
    }

    /// Run the real force kernels and scatter into the shared force array.
    fn execute_real(&mut self, ctx: &mut Ctx) {
        let shared = self.shared.clone();
        let spec = &shared.decomp.computes[self.index];
        let mut st = shared.state.borrow_mut();
        let st = &mut *st;
        let cell = st.system.cell;
        let step = self.step;

        match &spec.kind {
            ComputeKind::SelfNb { patch } => {
                let arrays = PatchArrays::gather(&st.system, &shared.decomp.grid.atoms[*patch]);
                let mut f = vec![mdcore::vec3::Vec3::ZERO; arrays.pos.len()];
                let res = nb_self_ranged(
                    &st.system.forcefield,
                    &st.system.exclusions,
                    arrays.group(),
                    &cell,
                    spec.outer.clone(),
                    &mut f,
                );
                for (k, &a) in arrays.ids.iter().enumerate() {
                    st.forces[a as usize] += f[k];
                }
                st.energies[step].e_lj += res.e_lj;
                st.energies[step].e_elec += res.e_elec;
                st.energies[step].pairs += res.pairs;
                ctx.add_work(costmodel::nonbonded_work(res.pairs, spec.candidates));
            }
            ComputeKind::PairNb { a, b } => {
                let ga = PatchArrays::gather(&st.system, &shared.decomp.grid.atoms[*a]);
                let gb = PatchArrays::gather(&st.system, &shared.decomp.grid.atoms[*b]);
                let mut fa = vec![mdcore::vec3::Vec3::ZERO; ga.pos.len()];
                let mut fb = vec![mdcore::vec3::Vec3::ZERO; gb.pos.len()];
                let res = nb_pair_ranged(
                    &st.system.forcefield,
                    &st.system.exclusions,
                    ga.group(),
                    gb.group(),
                    &cell,
                    spec.outer.clone(),
                    &mut fa,
                    &mut fb,
                );
                for (k, &atom) in ga.ids.iter().enumerate() {
                    st.forces[atom as usize] += fa[k];
                }
                for (k, &atom) in gb.ids.iter().enumerate() {
                    st.forces[atom as usize] += fb[k];
                }
                st.energies[step].e_lj += res.e_lj;
                st.energies[step].e_elec += res.e_elec;
                st.energies[step].pairs += res.pairs;
                ctx.add_work(costmodel::nonbonded_work(res.pairs, spec.candidates));
            }
            ComputeKind::BondedIntra { .. } | ComputeKind::BondedInter { .. } => {
                let terms = spec.terms.as_ref().expect("bonded compute without terms");
                let topo = &st.system.topology;
                let pos = &st.system.positions;
                let forces = &mut st.forces;
                let acc = &mut st.energies[step];
                for &bi in &terms.bonds {
                    let b = &topo.bonds[bi as usize];
                    let (e, fa, fb) =
                        bond_force(&cell, pos[b.a as usize], pos[b.b as usize], b.k, b.r0);
                    acc.e_bond += e;
                    forces[b.a as usize] += fa;
                    forces[b.b as usize] += fb;
                }
                for &ai in &terms.angles {
                    let t = &topo.angles[ai as usize];
                    let (e, fa, fb, fc) = angle_force(
                        &cell,
                        pos[t.a as usize],
                        pos[t.b as usize],
                        pos[t.c as usize],
                        t.k,
                        t.theta0,
                    );
                    acc.e_angle += e;
                    forces[t.a as usize] += fa;
                    forces[t.b as usize] += fb;
                    forces[t.c as usize] += fc;
                }
                for &di in &terms.dihedrals {
                    let d = &topo.dihedrals[di as usize];
                    let (e, f) = dihedral_force(
                        &cell,
                        pos[d.a as usize],
                        pos[d.b as usize],
                        pos[d.c as usize],
                        pos[d.d as usize],
                        d.k,
                        d.n,
                        d.delta,
                    );
                    acc.e_dihedral += e;
                    forces[d.a as usize] += f[0];
                    forces[d.b as usize] += f[1];
                    forces[d.c as usize] += f[2];
                    forces[d.d as usize] += f[3];
                }
                for &ii in &terms.impropers {
                    let d = &topo.impropers[ii as usize];
                    let (e, f) = improper_force(
                        &cell,
                        pos[d.a as usize],
                        pos[d.b as usize],
                        pos[d.c as usize],
                        pos[d.d as usize],
                        d.k,
                        d.psi0,
                    );
                    acc.e_improper += e;
                    forces[d.a as usize] += f[0];
                    forces[d.b as usize] += f[1];
                    forces[d.c as usize] += f[2];
                    forces[d.d as usize] += f[3];
                }
                for &ri in &terms.restraints {
                    let r = &topo.restraints[ri as usize];
                    let (e, f) = restraint_force(&cell, pos[r.atom as usize], r.target, r.k);
                    acc.e_restraint += e;
                    forces[r.atom as usize] += f;
                }
                ctx.add_work(terms.work());
            }
        }
    }
}

impl Chare for ComputeChare {
    fn receive(&mut self, entry: EntryId, _payload: Payload, ctx: &mut Ctx) {
        if entry == self.entries.ready {
            self.received += 1;
            debug_assert!(self.received <= self.expected);
            if self.received == self.expected {
                self.received = 0;
                ctx.signal(ctx.this(), self.exec_entry(), self.exec_priority);
            }
        } else if entry == self.exec_entry() {
            match self.params.force_mode {
                ForceMode::Real => self.execute_real(ctx),
                ForceMode::Counted => ctx
                    .add_work(self.shared.decomp.computes[self.index].work * self.work_scale),
            }
            self.step += 1;
            for &(target, entry, bytes) in &self.targets {
                ctx.send(target, entry, bytes, PRIO_HIGH, empty_payload());
            }
        } else {
            unreachable!("ComputeChare got unexpected entry {entry:?}");
        }
    }
}

/// A PME slab object: owns a contiguous block of the reciprocal-space mesh
/// (§1's "grid-based component"). Per PME step it collects charge-grid
/// contributions from its patches, exchanges transpose blocks with every
/// other slab (the all-to-all that limits FFT scalability), performs its
/// share of the 3-D FFT + influence multiply, and returns potential blocks
/// to its patches. Non-migratable — its placement is fixed like NAMD's
/// other grid infrastructure.
pub struct SlabChare {
    shared: Rc<Shared>,
    entries: Entries,
    params: RunParams,
    /// All other slab objects (transpose partners).
    peers: Vec<ObjId>,
    /// Patches assigned to this slab: (home patch object, potential bytes).
    patches: Vec<(ObjId, usize)>,
    /// Work units for this slab's share of the FFT pipeline per evaluation.
    fft_work: f64,
    /// Bytes per transpose message.
    transpose_bytes: usize,
    charges_received: usize,
    transposes_received: usize,
    /// PME rounds this slab has completed (tracks the step for energies).
    rounds: usize,
}

impl SlabChare {
    pub fn new(
        shared: Rc<Shared>,
        entries: Entries,
        params: RunParams,
        peers: Vec<ObjId>,
        patches: Vec<(ObjId, usize)>,
        fft_work: f64,
        transpose_bytes: usize,
    ) -> Self {
        SlabChare {
            shared,
            entries,
            params,
            peers,
            patches,
            fft_work,
            transpose_bytes,
            charges_received: 0,
            transposes_received: 0,
            rounds: 0,
        }
    }
}

impl Chare for SlabChare {
    fn receive(&mut self, entry: EntryId, _payload: Payload, ctx: &mut Ctx) {
        if entry == self.entries.slab_charge {
            self.charges_received += 1;
            debug_assert!(self.charges_received <= self.patches.len());
            if self.charges_received == self.patches.len() {
                self.charges_received = 0;
                // First FFT stage over the slab's planes, then the
                // transpose all-to-all.
                ctx.add_work(self.fft_work * 0.5);
                for &p in &self.peers {
                    ctx.send(
                        p,
                        self.entries.slab_transpose,
                        self.transpose_bytes,
                        PRIO_NORMAL,
                        empty_payload(),
                    );
                }
                // A lone slab (n_slabs == 1) has no peers: complete locally.
                if self.peers.is_empty() {
                    self.finish(ctx);
                }
            }
        } else if entry == self.entries.slab_transpose {
            self.transposes_received += 1;
            debug_assert!(self.transposes_received <= self.peers.len());
            if self.transposes_received == self.peers.len() {
                self.transposes_received = 0;
                self.finish(ctx);
            }
        } else {
            unreachable!("SlabChare got unexpected entry {entry:?}");
        }
    }
}

impl SlabChare {
    /// Remaining FFT stages + influence multiply, then return the potential
    /// blocks to this slab's patches. In Real force mode, the *first* slab
    /// to finish a PME round evaluates the actual reciprocal-space physics
    /// (by then every patch has published this step's coordinates, since
    /// all slabs' charge collections feed the transposes).
    fn finish(&mut self, ctx: &mut Ctx) {
        ctx.add_work(self.fft_work * 0.5);
        if let Some(pr) = &self.shared.pme_real {
            let mut pr = pr.borrow_mut();
            if pr.rounds_done == self.rounds {
                pr.rounds_done += 1;
                let step = self.rounds * self.params.pme_every.max(1);
                let shared = self.shared.clone();
                let mut st = shared.state.borrow_mut();
                let st = &mut *st;
                let pr = &mut *pr;
                let recip =
                    pr.solver.reciprocal(&st.system.positions, &pr.charges, &mut st.forces);
                let corr_ex = pme::ewald::exclusion_correction(
                    &st.system.cell,
                    &st.system.positions,
                    &pr.charges,
                    &st.system.exclusions,
                    &pr.ewald,
                    &mut st.forces,
                );
                let corr_self = pme::ewald::self_energy(&pr.charges, &pr.ewald);
                if step < st.energies.len() {
                    st.energies[step].e_elec += recip.reciprocal + corr_ex + corr_self;
                }
            }
        }
        self.rounds += 1;
        for &(patch, bytes) in &self.patches {
            ctx.send(patch, self.entries.patch_forces, bytes, PRIO_HIGH, empty_payload());
        }
    }
}

/// Counts patch completions; stops the engine when all patches finish.
pub struct Reducer {
    expected: usize,
    received: usize,
}

impl Reducer {
    pub fn new(expected: usize) -> Self {
        Reducer { expected, received: 0 }
    }
}

impl Chare for Reducer {
    fn receive(&mut self, _entry: EntryId, _payload: Payload, ctx: &mut Ctx) {
        self.received += 1;
        if self.received == self.expected {
            ctx.stop();
        }
    }
}
