//! The chare implementations: home patches, proxy patches, compute objects,
//! and the completion reducer (§3.1). Backend-agnostic: the same objects run
//! on the DES and on real worker threads (see `charmrt::Runtime`).
//!
//! Per-step protocol (all message-driven, no barriers):
//!
//! 1. A home patch *publishes* its coordinates: one multicast to its proxy
//!    patches (§4.2.3's costed naive/optimized multicast) and ready-signals
//!    to co-located computes.
//! 2. A proxy receives the coordinates and ready-signals the computes on its
//!    processor.
//! 3. A compute that has heard from all of its (1 or 2+) patches self-enqueues
//!    an execute message; the execution runs the force kernels (or replays
//!    counted work), then sends one force message per involved patch — the
//!    payload carries that patch's force contributions, in the patch's atom
//!    order — to the patch's local representative (home patch or proxy).
//! 4. A proxy that has collected all local force contributions combines them
//!    element-wise and sends one force message to the home patch.
//! 5. A home patch that has collected everything self-enqueues *integrate*:
//!    velocity-Verlet update from the accumulated payload forces, then
//!    publish the next step's coordinates (this is the entry method the
//!    multicast optimization halves), or report completion to the reducer
//!    after the final step.
//!
//! Thread safety: force kernels hold the shared *read* lock (positions only);
//! integration holds the *write* lock; forces travel in messages rather than
//! through a shared accumulator, so handlers never race on them. Lock order
//! is `state` → `pme_real` → `energies` (see `state`'s module docs).

use crate::config::ForceMode;
use crate::costmodel;
use crate::decomp::ComputeKind;
use crate::messages::{CkptMsg, CoordMsg, ForceMsg, PatchStateMsg};
use crate::patchgrid::PatchId;
use crate::state::{Shared, StepAcc};
use charmrt::{
    Chare, Ctx, EntryId, MulticastMode, ObjId, Payload, Runtime, WireCodec, WireError, PRIO_HIGH,
    PRIO_NORMAL,
};
use mdcore::bonded::{angle_force, bond_force, dihedral_force, improper_force, restraint_force};
use mdcore::forcefield::units;
use mdcore::nonbonded::{nb_pair_listed, nb_pair_ranged, nb_self_listed, nb_self_ranged};
use mdcore::vec3::Vec3;
use std::collections::HashMap;
use std::sync::Arc;

/// The payload of a force message in Real mode: one force per atom of the
/// destination patch, in `decomp.grid.atoms[patch]` order.
pub type ForceBlock = Vec<Vec3>;

// Force blocks travel as packed [`ForceMsg`] payloads, tagged with the
// sending object's id (unique per step). Receivers buffer the tagged blocks
// and fold them in ascending-sender order once the step's set is complete,
// so the accumulated force is a pure function of the positions and the
// decomposition — independent of message arrival order. That makes every
// backend's trajectory bitwise reproducible, which is what lets a
// checkpoint-resumed run (or a multi-process run) reproduce an
// uninterrupted DES one bit for bit. (Energies keep order-dependent
// accumulation: they are observables, not trajectory state.)

/// Entry-method ids shared by all chares, registered once per engine run.
#[derive(Debug, Clone, Copy)]
pub struct Entries {
    /// Home patch: bootstrap / begin step 0.
    pub start: EntryId,
    /// Home patch: a force contribution arrived.
    pub patch_forces: EntryId,
    /// Home patch: integrate + publish (self-enqueued).
    pub integrate: EntryId,
    /// Proxy: coordinates arrived from home.
    pub proxy_coords: EntryId,
    /// Proxy: a local force contribution arrived.
    pub proxy_forces: EntryId,
    /// Compute: one of my patches is ready.
    pub ready: EntryId,
    /// Compute: execute (self-enqueued once all patches are ready).
    pub exec_self: EntryId,
    /// Compute: execute for pair computes.
    pub exec_pair: EntryId,
    /// Compute: execute for intra-patch bonded computes.
    pub exec_bonded: EntryId,
    /// Compute: execute for inter-patch bonded computes.
    pub exec_bonded_inter: EntryId,
    /// Reducer: one patch finished all steps.
    pub done: EntryId,
    /// PME slab: a patch's charge contribution arrived.
    pub slab_charge: EntryId,
    /// PME slab: a transpose block arrived from another slab.
    pub slab_transpose: EntryId,
    /// Checkpoint chare: a patch reached the checkpoint barrier.
    pub ckpt_ready: EntryId,
    /// Home patch: the checkpoint was written, finish the step.
    pub ckpt_resume: EntryId,
}

impl Entries {
    /// Register all entry methods on any runtime backend.
    pub fn register(rt: &mut impl Runtime) -> Entries {
        Entries {
            start: rt.register_entry("PatchStart"),
            patch_forces: rt.register_entry("PatchRecvForces"),
            integrate: rt.register_entry("Integrate"),
            proxy_coords: rt.register_entry("ProxyRecvCoords"),
            proxy_forces: rt.register_entry("ProxyRecvForces"),
            ready: rt.register_entry("ComputeReady"),
            exec_self: rt.register_entry("NonbondedSelf"),
            exec_pair: rt.register_entry("NonbondedPair"),
            exec_bonded: rt.register_entry("BondedIntra"),
            exec_bonded_inter: rt.register_entry("BondedInter"),
            done: rt.register_entry("Done"),
            slab_charge: rt.register_entry("PmeSlabCharges"),
            slab_transpose: rt.register_entry("PmeSlabFft"),
            // Appended after the pre-existing entries so their ids (and any
            // fault-plan/trace references to them) stay stable.
            ckpt_ready: rt.register_entry("CkptReady"),
            ckpt_resume: rt.register_entry("CkptResume"),
        }
    }

    /// Entry ids attributable to the modeled PME pipeline.
    pub fn pme_entries(&self) -> [EntryId; 2] {
        [self.slab_charge, self.slab_transpose]
    }

    /// The entry ids that represent non-bonded work (for Figures 1-2).
    pub fn nonbonded(&self) -> [EntryId; 2] {
        [self.exec_self, self.exec_pair]
    }
}

/// Static per-run parameters shared by the patch/compute chares.
#[derive(Debug, Clone, Copy)]
pub struct RunParams {
    pub n_steps: usize,
    pub dt_fs: f64,
    pub force_mode: ForceMode,
    pub multicast: MulticastMode,
    /// PME cadence: reciprocal space evaluated on steps where
    /// `step % pme_every == 0`; 0 disables PME.
    pub pme_every: usize,
    /// Reuse each non-bonded compute's candidate list across steps (Real
    /// mode), rebuilding on displacement-based invalidation.
    pub pairlist_cache: bool,
    /// Candidate-list margin beyond the cutoff, Å (NAMD's `pairlistdist`
    /// minus the cutoff).
    pub pairlist_margin: f64,
    /// In-phase checkpoint cadence in *global* steps (0 = off): patches
    /// pause at the barrier on steps where
    /// `(step_offset + step) % checkpoint_every == 0`.
    pub checkpoint_every: usize,
    /// Global position updates completed before this phase started, so the
    /// checkpoint cadence survives phase chaining and resume.
    pub step_offset: usize,
}

/// A home patch: owns a cube of space and its atoms; integrates them.
pub struct HomePatch {
    pub patch: PatchId,
    shared: Arc<Shared>,
    entries: Entries,
    params: RunParams,
    /// Proxy patch objects to multicast coordinates to.
    proxies: Vec<ObjId>,
    /// Co-located computes to ready-signal on publish.
    local_computes: Vec<ObjId>,
    /// Force messages expected per step (co-located computes needing this
    /// patch + one combined message per proxy).
    expected: usize,
    received: usize,
    /// Per-atom force accumulator for the current step, in
    /// `decomp.grid.atoms[patch]` order (filled from `pending` at
    /// integration).
    accum: Vec<Vec3>,
    /// Tagged force blocks received this step, folded into `accum` in
    /// ascending-sender order at integration (see [`ForceMsg`]).
    pending: Vec<(u32, ForceBlock)>,
    step: usize,
    reducer: ObjId,
    /// Whether the velocity half-kick from the previous step is pending.
    started: bool,
    /// PME: the slab object this patch contributes charges to.
    slab: Option<ObjId>,
    /// Checkpointing: the checkpoint chare to report to at barriers.
    ckpt: Option<ObjId>,
}

impl HomePatch {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        patch: PatchId,
        shared: Arc<Shared>,
        entries: Entries,
        params: RunParams,
        proxies: Vec<ObjId>,
        local_computes: Vec<ObjId>,
        expected: usize,
        reducer: ObjId,
        slab: Option<ObjId>,
        ckpt: Option<ObjId>,
    ) -> Self {
        let n_atoms = shared.decomp.grid.atoms[patch].len();
        HomePatch {
            patch,
            shared,
            entries,
            params,
            proxies,
            local_computes,
            expected,
            received: 0,
            accum: vec![Vec3::ZERO; n_atoms],
            pending: Vec::new(),
            step: 0,
            reducer,
            started: false,
            slab,
            ckpt,
        }
    }

    /// Is PME evaluated on the *current* step?
    fn pme_step(&self) -> bool {
        self.slab.is_some()
            && self.params.pme_every > 0
            && self.step.is_multiple_of(self.params.pme_every)
    }

    /// Force/potential messages expected for the current step.
    fn expected_now(&self) -> usize {
        self.expected + usize::from(self.pme_step())
    }

    fn n_atoms(&self) -> usize {
        self.shared.decomp.grid.atoms[self.patch].len()
    }

    /// Pack this step's coordinates for the proxy multicast. Real payloads
    /// exist only in Real force mode (Counted mode has no live state to
    /// ship) and only when there are proxies to receive them; the packed
    /// bytes are what a remote process applies before its computes read
    /// positions.
    fn pack_coords(&self) -> Payload {
        if self.params.force_mode != ForceMode::Real || self.proxies.is_empty() {
            return Vec::new();
        }
        let st = self.shared.state.read().unwrap();
        let atoms = &self.shared.decomp.grid.atoms[self.patch];
        let positions = atoms.iter().map(|&a| st.system.positions[a as usize]).collect();
        CoordMsg { patch: self.patch as u32, positions }.pack()
    }

    /// Send this step's coordinates to proxies and co-located computes; on
    /// PME steps, also spread charges and ship them to this patch's slab.
    fn publish(&self, ctx: &mut Ctx) {
        let bytes = self.n_atoms() * costmodel::BYTES_PER_ATOM;
        ctx.multicast(
            &self.proxies,
            self.entries.proxy_coords,
            bytes,
            PRIO_HIGH,
            self.params.multicast,
            self.pack_coords(),
        );
        for &c in &self.local_computes {
            ctx.signal(c, self.entries.ready, PRIO_NORMAL);
        }
        if self.pme_step() {
            // Charge spreading (half of WORK_PME_PER_ATOM; gathering happens
            // at integration) and the charge-grid message to the slab.
            ctx.add_work(self.n_atoms() as f64 * costmodel::WORK_PME_PER_ATOM * 0.5);
            ctx.send(
                self.slab.expect("pme_step implies slab"),
                self.entries.slab_charge,
                bytes,
                PRIO_NORMAL,
                Vec::new(),
            );
        }
    }

    /// Fold the step's buffered force blocks into `accum` in ascending
    /// sender order. Sender ids are unique per step, so the fold order —
    /// and therefore every rounding decision — is deterministic no matter
    /// how the messages were scheduled.
    fn fold_pending(&mut self) {
        self.pending.sort_by_key(|&(from, _)| from);
        for (_, block) in self.pending.drain(..) {
            debug_assert_eq!(block.len(), self.accum.len());
            for (acc, f) in self.accum.iter_mut().zip(block.iter()) {
                *acc += *f;
            }
        }
    }

    /// First half of the step's velocity-Verlet update (Real mode): fold
    /// the pending force payloads, complete the previous step's second
    /// half-kick, and record kinetic energy. Leaves the step's total force
    /// in the shared force array so [`HomePatch::integrate_second_half`]
    /// re-derives the bitwise-identical acceleration — which is what lets a
    /// checkpoint barrier split the step without changing any bits.
    ///
    /// Write lock: the protocol guarantees no compute is reading while a
    /// patch integrates — every compute needing these atoms has already
    /// sent its forces.
    fn integrate_first_half(&mut self) {
        let shared = self.shared.clone();
        self.fold_pending();
        let mut guard = shared.state.write().unwrap();
        let st = &mut *guard;
        // Lock order: state → pme_real. Reciprocal-space forces are folded
        // in only on PME steps (impulse multiple-timestepping).
        let pme = if self.pme_step() {
            self.shared.pme_real.as_ref().map(|m| m.lock().unwrap())
        } else {
            None
        };
        let atoms = &self.shared.decomp.grid.atoms[self.patch];
        let dt = self.params.dt_fs;

        let mut kinetic = 0.0;
        for (slot, &a) in atoms.iter().enumerate() {
            let i = a as usize;
            let mut f = self.accum[slot];
            if let Some(pr) = &pme {
                f += pr.forces[i];
            }
            self.accum[slot] = Vec3::ZERO;
            // Keep the shared force array current for observers
            // (`Engine`-level force queries read it after a phase) and for
            // the second half's acceleration.
            st.forces[i] = f;
            let m = st.system.topology.atoms[i].mass;
            let acc = f * (units::ACCEL / m);
            // Complete the previous step's second half-kick.
            if self.started {
                st.system.velocities[i] += acc * (0.5 * dt);
            }
            let v = st.system.velocities[i];
            kinetic += 0.5 * m * v.norm2() * units::KE;
        }
        drop(pme);
        drop(guard);
        let mut en = shared.energies.lock().unwrap();
        if self.step < en.len() {
            en[self.step].kinetic += kinetic;
        }
    }

    /// Second half of the step (Real mode): first half-kick and drift into
    /// the next configuration. The acceleration is recomputed from the
    /// force saved by the first half — an exact f64 round trip, so the
    /// split step is bitwise identical to the unsplit one. The phase's
    /// final step evaluates forces but does not move, exactly as before.
    fn integrate_second_half(&mut self) {
        if self.step + 1 == self.params.n_steps {
            return;
        }
        let shared = self.shared.clone();
        let mut guard = shared.state.write().unwrap();
        let st = &mut *guard;
        let atoms = &self.shared.decomp.grid.atoms[self.patch];
        let dt = self.params.dt_fs;
        for &a in atoms.iter() {
            let i = a as usize;
            let f = st.forces[i];
            let m = st.system.topology.atoms[i].mass;
            let acc = f * (units::ACCEL / m);
            st.system.velocities[i] += acc * (0.5 * dt);
            let vnew = st.system.velocities[i];
            st.system.positions[i] = st.system.cell.wrap(st.system.positions[i] + vnew * dt);
        }
    }

    /// Does the *current* step pause at the checkpoint barrier after its
    /// first integration half? Gated on the global step so the cadence
    /// survives phase chaining; step 0 is excluded because chained phases
    /// repeat the boundary force evaluation (the previous phase's final
    /// step already checkpointed this state).
    fn checkpoint_now(&self) -> bool {
        self.ckpt.is_some()
            && self.params.checkpoint_every > 0
            && self.step > 0
            && (self.params.step_offset + self.step) % self.params.checkpoint_every == 0
    }

    /// Complete the current step after the (possible) checkpoint barrier:
    /// drift into the next configuration, advance the step counter, and
    /// publish the next coordinates or report completion to the reducer.
    fn finish_step(&mut self, ctx: &mut Ctx) {
        if self.params.force_mode == ForceMode::Real {
            self.integrate_second_half();
        }
        self.started = true;
        self.step += 1;
        if self.step < self.params.n_steps {
            self.publish(ctx);
        } else {
            ctx.signal(self.reducer, self.entries.done, PRIO_NORMAL);
        }
    }

    /// Buffer a force payload (if any) for the step's ordered fold.
    /// Signal-only messages (Counted mode, PME potential blocks) carry no
    /// forces — an empty payload means "no force data" and every packed
    /// [`ForceMsg`] is non-empty, so the two cannot collide.
    fn absorb(&mut self, payload: Payload) {
        if payload.is_empty() {
            return;
        }
        let msg = ForceMsg::unpack(&payload).expect("malformed ForceMsg payload");
        debug_assert_eq!(msg.block.len(), self.accum.len());
        self.pending.push((msg.from, msg.block));
    }

    /// Snapshot this patch's clean post-half-kick state (x_k, v_k) for the
    /// checkpoint chare. Shipping the state in the message — instead of
    /// letting the checkpoint chare read shared memory — keeps one code
    /// path for every backend, including the one where the checkpoint
    /// chare lives in a different OS process.
    fn pack_ckpt(&self) -> Payload {
        let st = self.shared.state.read().unwrap();
        let atoms = &self.shared.decomp.grid.atoms[self.patch];
        CkptMsg {
            patch: self.patch as u32,
            positions: atoms.iter().map(|&a| st.system.positions[a as usize]).collect(),
            velocities: atoms.iter().map(|&a| st.system.velocities[a as usize]).collect(),
        }
        .pack()
    }
}

impl Chare for HomePatch {
    fn receive(&mut self, entry: EntryId, payload: Payload, ctx: &mut Ctx) {
        if entry == self.entries.start {
            // Bootstrap: publish step-0 coordinates.
            self.publish(ctx);
        } else if entry == self.entries.patch_forces {
            self.absorb(payload);
            self.received += 1;
            debug_assert!(self.received <= self.expected_now());
            if self.received == self.expected_now() {
                self.received = 0;
                // Integration is its own entry method so the trace and the
                // audit see it separately from cheap force receives.
                ctx.signal(ctx.this(), self.entries.integrate, PRIO_HIGH);
            }
        } else if entry == self.entries.integrate {
            ctx.add_work(self.n_atoms() as f64 * costmodel::WORK_PER_ATOM_INTEGRATION);
            if self.pme_step() {
                // Gather reciprocal-space forces from the potential grid.
                ctx.add_work(self.n_atoms() as f64 * costmodel::WORK_PME_PER_ATOM * 0.5);
            }
            if self.params.force_mode == ForceMode::Real {
                self.integrate_first_half();
                if self.checkpoint_now() {
                    // In-phase checkpoint barrier: pause at the clean
                    // post-half-kick state (x_k, v_k) and ship it to the
                    // checkpoint chare, which resumes every patch once the
                    // snapshot is on disk.
                    let ckpt = self.ckpt.expect("checkpoint_now implies a ckpt chare");
                    ctx.send(ckpt, self.entries.ckpt_ready, 32, PRIO_HIGH, self.pack_ckpt());
                    return;
                }
            }
            self.finish_step(ctx);
        } else if entry == self.entries.ckpt_resume {
            self.finish_step(ctx);
        } else {
            unreachable!("HomePatch got unexpected entry {entry:?}");
        }
    }

    /// `proc` backend: ship this patch's end-of-phase atom state (positions,
    /// velocities, last forces) back to the parent process. Real mode only —
    /// Counted mode never touches the atom arrays.
    fn harvest_state(&self) -> Payload {
        if self.params.force_mode != ForceMode::Real {
            return Vec::new();
        }
        let st = self.shared.state.read().unwrap();
        let atoms = &self.shared.decomp.grid.atoms[self.patch];
        PatchStateMsg {
            patch: self.patch as u32,
            positions: atoms.iter().map(|&a| st.system.positions[a as usize]).collect(),
            velocities: atoms.iter().map(|&a| st.system.velocities[a as usize]).collect(),
            forces: atoms.iter().map(|&a| st.forces[a as usize]).collect(),
        }
        .pack()
    }

    /// Apply a worker process's harvested patch state to the parent's copy.
    fn merge_state(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        if bytes.is_empty() {
            return Ok(());
        }
        let msg = PatchStateMsg::unpack(bytes)?;
        if msg.patch as usize != self.patch {
            return Err(WireError(format!(
                "patch state for patch {} merged into patch {}",
                msg.patch, self.patch
            )));
        }
        let shared = self.shared.clone();
        let mut guard = shared.state.write().unwrap();
        let st = &mut *guard;
        let atoms = &self.shared.decomp.grid.atoms[self.patch];
        if msg.positions.len() != atoms.len()
            || msg.velocities.len() != atoms.len()
            || msg.forces.len() != atoms.len()
        {
            return Err(WireError(format!(
                "patch {} state carries {} atoms, expected {}",
                self.patch,
                msg.positions.len(),
                atoms.len()
            )));
        }
        for (slot, &a) in atoms.iter().enumerate() {
            let i = a as usize;
            st.system.positions[i] = msg.positions[slot];
            st.system.velocities[i] = msg.velocities[slot];
            st.forces[i] = msg.forces[slot];
        }
        Ok(())
    }
}

/// A proxy patch: stands in for a remote home patch on this processor,
/// combining the local computes' force contributions into one message.
pub struct ProxyPatch {
    pub patch: PatchId,
    shared: Arc<Shared>,
    entries: Entries,
    home: ObjId,
    /// Computes on this PE that need this patch.
    local_computes: Vec<ObjId>,
    /// Force contributions expected per step (= local_computes needing it).
    expected: usize,
    received: usize,
    /// Element-wise combination of the received force payloads.
    accum: Vec<Vec3>,
    /// Tagged force blocks received this step, folded into `accum` in
    /// ascending-sender order before forwarding (see [`ForceMsg`]).
    pending: Vec<(u32, ForceBlock)>,
    /// Bytes of a combined force message (patch atoms × per-atom bytes).
    force_bytes: usize,
    /// Unpacking cost per coordinate message, work units.
    unpack_work: f64,
}

impl ProxyPatch {
    pub fn new(
        patch: PatchId,
        shared: Arc<Shared>,
        entries: Entries,
        home: ObjId,
        local_computes: Vec<ObjId>,
        expected: usize,
        n_atoms: usize,
    ) -> Self {
        ProxyPatch {
            patch,
            shared,
            entries,
            home,
            local_computes,
            expected,
            received: 0,
            accum: vec![Vec3::ZERO; n_atoms],
            pending: Vec::new(),
            force_bytes: n_atoms * costmodel::BYTES_PER_ATOM,
            unpack_work: n_atoms as f64 * 0.3,
        }
    }
}

impl Chare for ProxyPatch {
    fn receive(&mut self, entry: EntryId, payload: Payload, ctx: &mut Ctx) {
        if entry == self.entries.proxy_coords {
            ctx.add_work(self.unpack_work);
            if ctx.distributed() && !payload.is_empty() {
                // No shared address space: apply the home patch's published
                // coordinates to this process's copy of the state before the
                // local computes read positions. On shared-memory backends
                // the home patch's integration already wrote them.
                let msg = CoordMsg::unpack(&payload).expect("malformed CoordMsg payload");
                debug_assert_eq!(msg.patch as usize, self.patch);
                let shared = self.shared.clone();
                let mut st = shared.state.write().unwrap();
                let atoms = &self.shared.decomp.grid.atoms[self.patch];
                debug_assert_eq!(msg.positions.len(), atoms.len());
                for (slot, &a) in atoms.iter().enumerate() {
                    st.system.positions[a as usize] = msg.positions[slot];
                }
            }
            for &c in &self.local_computes {
                ctx.signal(c, self.entries.ready, PRIO_NORMAL);
            }
        } else if entry == self.entries.proxy_forces {
            if !payload.is_empty() {
                let msg = ForceMsg::unpack(&payload).expect("malformed ForceMsg payload");
                debug_assert_eq!(msg.block.len(), self.accum.len());
                self.pending.push((msg.from, msg.block));
            }
            self.received += 1;
            debug_assert!(self.received <= self.expected);
            if self.received == self.expected {
                self.received = 0;
                ctx.add_work(self.unpack_work);
                let payload: Payload = if self.pending.is_empty() {
                    Vec::new()
                } else {
                    // Combine in ascending-sender order (see ForceMsg), then
                    // forward one tagged block to the home patch.
                    self.pending.sort_by_key(|&(from, _)| from);
                    for (_, block) in self.pending.drain(..) {
                        for (acc, f) in self.accum.iter_mut().zip(block.iter()) {
                            *acc += *f;
                        }
                    }
                    let n = self.accum.len();
                    ForceMsg {
                        from: ctx.this().0,
                        block: std::mem::replace(&mut self.accum, vec![Vec3::ZERO; n]),
                    }
                    .pack()
                };
                ctx.send(self.home, self.entries.patch_forces, self.force_bytes, PRIO_HIGH, payload);
            }
        } else {
            unreachable!("ProxyPatch got unexpected entry {entry:?}");
        }
    }
}

/// A compute object: non-bonded self/pair piece or bonded intra/inter.
pub struct ComputeChare {
    /// Index into `decomp.computes`.
    pub index: usize,
    shared: Arc<Shared>,
    entries: Entries,
    params: RunParams,
    /// Per required patch (aligned with `spec.patches`): the representative
    /// object on this PE to send the force contribution to (home patch if
    /// co-located, else proxy), the entry to invoke on it (`patch_forces`
    /// vs `proxy_forces`), and the byte size of that contribution.
    targets: Vec<(ObjId, EntryId, usize)>,
    /// Bonded computes: global atom id → (index into `spec.patches`, slot
    /// within that patch's atom list). Built once; bonded terms scatter
    /// through it into the per-patch force blocks.
    atom_slot: Option<HashMap<u32, (usize, usize)>>,
    expected: usize,
    received: usize,
    step: usize,
    /// Multiplier on the counted work (slow load drift, §3.2).
    work_scale: f64,
    /// Scheduler priority of this compute's execution (remote-feeding
    /// computes run first when `SimConfig::prioritize_remote` is on).
    exec_priority: charmrt::Priority,
}

impl ComputeChare {
    pub fn new(
        index: usize,
        shared: Arc<Shared>,
        entries: Entries,
        params: RunParams,
        targets: Vec<(ObjId, EntryId, usize)>,
        work_scale: f64,
        exec_priority: charmrt::Priority,
    ) -> Self {
        let spec = &shared.decomp.computes[index];
        let expected = spec.patches.len();
        debug_assert_eq!(targets.len(), expected, "one force target per patch");
        let atom_slot = match spec.kind {
            ComputeKind::BondedIntra { .. } | ComputeKind::BondedInter { .. } => {
                let mut map = HashMap::new();
                for (pi, &p) in spec.patches.iter().enumerate() {
                    for (slot, &a) in shared.decomp.grid.atoms[p].iter().enumerate() {
                        map.insert(a, (pi, slot));
                    }
                }
                Some(map)
            }
            _ => None,
        };
        ComputeChare {
            index,
            shared,
            entries,
            params,
            targets,
            atom_slot,
            expected,
            received: 0,
            step: 0,
            work_scale,
            exec_priority,
        }
    }

    /// The execute entry for this compute's kind.
    fn exec_entry(&self) -> EntryId {
        match self.shared.decomp.computes[self.index].kind {
            ComputeKind::SelfNb { .. } => self.entries.exec_self,
            ComputeKind::PairNb { .. } => self.entries.exec_pair,
            ComputeKind::BondedIntra { .. } => self.entries.exec_bonded,
            ComputeKind::BondedInter { .. } => self.entries.exec_bonded_inter,
        }
    }

    /// Run the real force kernels under the shared *read* lock. Returns one
    /// force block per patch in `spec.patches` order; energies go to the
    /// shared per-step accumulator after the lock is released.
    fn execute_real(&mut self, ctx: &mut Ctx) -> Vec<ForceBlock> {
        let shared = self.shared.clone();
        let spec = &shared.decomp.computes[self.index];
        let st = shared.state.read().unwrap();
        let cell = st.system.cell;
        let mut acc = StepAcc::default();
        let mut blocks: Vec<ForceBlock> = spec
            .patches
            .iter()
            .map(|&p| vec![Vec3::ZERO; shared.decomp.grid.atoms[p].len()])
            .collect();

        match &spec.kind {
            // Non-bonded computes run from persistent per-compute SoA buffers
            // (positions refreshed in place — no per-step gather allocation)
            // and, when the pair-list cache is on, from a cached candidate
            // list at cutoff + margin. A cache hit charges the cheaper
            // `nonbonded_work_cached` so LB sees the real cost difference
            // between hit and rebuild steps.
            ComputeKind::SelfNb { .. } => {
                let mut cache = shared.nb_cache.entry(self.index).lock().unwrap();
                cache.refresh_arrays(&st.system, &shared.decomp.grid, &spec.patches);
                let ff = &st.system.forcefield;
                let ex = &st.system.exclusions;
                let (res, work);
                if self.params.pairlist_cache {
                    let margin = self.params.pairlist_margin;
                    let rebuilt = cache.ensure_list(spec, &cell, ff.cutoff + margin, margin);
                    res = nb_self_listed(
                        ff,
                        ex,
                        cache.arrays[0].group(),
                        &cell,
                        &cache.list,
                        &mut blocks[0],
                    );
                    work = if rebuilt {
                        costmodel::nonbonded_work(res.pairs, spec.candidates)
                    } else {
                        costmodel::nonbonded_work_cached(res.pairs, cache.list.len() as u64)
                    };
                } else {
                    res = nb_self_ranged(
                        ff,
                        ex,
                        cache.arrays[0].group(),
                        &cell,
                        spec.outer.clone(),
                        &mut blocks[0],
                    );
                    work = costmodel::nonbonded_work(res.pairs, spec.candidates);
                }
                acc.e_lj += res.e_lj;
                acc.e_elec += res.e_elec;
                acc.pairs += res.pairs;
                ctx.add_work(work);
            }
            ComputeKind::PairNb { .. } => {
                let mut cache = shared.nb_cache.entry(self.index).lock().unwrap();
                cache.refresh_arrays(&st.system, &shared.decomp.grid, &spec.patches);
                let ff = &st.system.forcefield;
                let ex = &st.system.exclusions;
                let (first, rest) = blocks.split_at_mut(1);
                let (res, work);
                if self.params.pairlist_cache {
                    let margin = self.params.pairlist_margin;
                    let rebuilt = cache.ensure_list(spec, &cell, ff.cutoff + margin, margin);
                    res = nb_pair_listed(
                        ff,
                        ex,
                        cache.arrays[0].group(),
                        cache.arrays[1].group(),
                        &cell,
                        &cache.list,
                        &mut first[0],
                        &mut rest[0],
                    );
                    work = if rebuilt {
                        costmodel::nonbonded_work(res.pairs, spec.candidates)
                    } else {
                        costmodel::nonbonded_work_cached(res.pairs, cache.list.len() as u64)
                    };
                } else {
                    res = nb_pair_ranged(
                        ff,
                        ex,
                        cache.arrays[0].group(),
                        cache.arrays[1].group(),
                        &cell,
                        spec.outer.clone(),
                        &mut first[0],
                        &mut rest[0],
                    );
                    work = costmodel::nonbonded_work(res.pairs, spec.candidates);
                }
                acc.e_lj += res.e_lj;
                acc.e_elec += res.e_elec;
                acc.pairs += res.pairs;
                ctx.add_work(work);
            }
            ComputeKind::BondedIntra { .. } | ComputeKind::BondedInter { .. } => {
                let terms = spec.terms.as_ref().expect("bonded compute without terms");
                let slots = self.atom_slot.as_ref().expect("bonded compute without atom map");
                let topo = &st.system.topology;
                let pos = &st.system.positions;
                let mut add = |atom: u32, f: Vec3| {
                    let &(pi, slot) = slots
                        .get(&atom)
                        .expect("bonded term atom outside the compute's patches");
                    blocks[pi][slot] += f;
                };
                for &bi in &terms.bonds {
                    let b = &topo.bonds[bi as usize];
                    let (e, fa, fb) =
                        bond_force(&cell, pos[b.a as usize], pos[b.b as usize], b.k, b.r0);
                    acc.e_bond += e;
                    add(b.a, fa);
                    add(b.b, fb);
                }
                for &ai in &terms.angles {
                    let t = &topo.angles[ai as usize];
                    let (e, fa, fb, fc) = angle_force(
                        &cell,
                        pos[t.a as usize],
                        pos[t.b as usize],
                        pos[t.c as usize],
                        t.k,
                        t.theta0,
                    );
                    acc.e_angle += e;
                    add(t.a, fa);
                    add(t.b, fb);
                    add(t.c, fc);
                }
                for &di in &terms.dihedrals {
                    let d = &topo.dihedrals[di as usize];
                    let (e, f) = dihedral_force(
                        &cell,
                        pos[d.a as usize],
                        pos[d.b as usize],
                        pos[d.c as usize],
                        pos[d.d as usize],
                        d.k,
                        d.n,
                        d.delta,
                    );
                    acc.e_dihedral += e;
                    add(d.a, f[0]);
                    add(d.b, f[1]);
                    add(d.c, f[2]);
                    add(d.d, f[3]);
                }
                for &ii in &terms.impropers {
                    let d = &topo.impropers[ii as usize];
                    let (e, f) = improper_force(
                        &cell,
                        pos[d.a as usize],
                        pos[d.b as usize],
                        pos[d.c as usize],
                        pos[d.d as usize],
                        d.k,
                        d.psi0,
                    );
                    acc.e_improper += e;
                    add(d.a, f[0]);
                    add(d.b, f[1]);
                    add(d.c, f[2]);
                    add(d.d, f[3]);
                }
                for &ri in &terms.restraints {
                    let r = &topo.restraints[ri as usize];
                    let (e, f) = restraint_force(&cell, pos[r.atom as usize], r.target, r.k);
                    acc.e_restraint += e;
                    add(r.atom, f);
                }
                ctx.add_work(terms.work());
            }
        }
        drop(st);
        let mut en = shared.energies.lock().unwrap();
        if self.step < en.len() {
            en[self.step].merge(&acc);
        }
        blocks
    }
}

impl Chare for ComputeChare {
    fn receive(&mut self, entry: EntryId, _payload: Payload, ctx: &mut Ctx) {
        if entry == self.entries.ready {
            self.received += 1;
            debug_assert!(self.received <= self.expected);
            if self.received == self.expected {
                self.received = 0;
                ctx.signal(ctx.this(), self.exec_entry(), self.exec_priority);
            }
        } else if entry == self.exec_entry() {
            let mut blocks = match self.params.force_mode {
                ForceMode::Real => Some(self.execute_real(ctx)),
                ForceMode::Counted => {
                    ctx.add_work(
                        self.shared.decomp.computes[self.index].work * self.work_scale,
                    );
                    None
                }
            };
            self.step += 1;
            for (k, &(target, entry, bytes)) in self.targets.iter().enumerate() {
                let payload: Payload = match &mut blocks {
                    Some(b) => ForceMsg {
                        from: ctx.this().0,
                        block: std::mem::take(&mut b[k]),
                    }
                    .pack(),
                    None => Vec::new(),
                };
                ctx.send(target, entry, bytes, PRIO_HIGH, payload);
            }
        } else {
            unreachable!("ComputeChare got unexpected entry {entry:?}");
        }
    }
}

/// A PME slab object: owns a contiguous block of the reciprocal-space mesh
/// (§1's "grid-based component"). Per PME step it collects charge-grid
/// contributions from its patches, exchanges transpose blocks with every
/// other slab (the all-to-all that limits FFT scalability), performs its
/// share of the 3-D FFT + influence multiply, and returns potential blocks
/// to its patches. Non-migratable — its placement is fixed like NAMD's
/// other grid infrastructure.
pub struct SlabChare {
    shared: Arc<Shared>,
    entries: Entries,
    params: RunParams,
    /// All other slab objects (transpose partners).
    peers: Vec<ObjId>,
    /// Patches assigned to this slab: (home patch object, potential bytes).
    patches: Vec<(ObjId, usize)>,
    /// Work units for this slab's share of the FFT pipeline per evaluation.
    fft_work: f64,
    /// Bytes per transpose message.
    transpose_bytes: usize,
    charges_received: usize,
    transposes_received: usize,
    /// PME rounds this slab has completed (tracks the step for energies).
    rounds: usize,
}

impl SlabChare {
    pub fn new(
        shared: Arc<Shared>,
        entries: Entries,
        params: RunParams,
        peers: Vec<ObjId>,
        patches: Vec<(ObjId, usize)>,
        fft_work: f64,
        transpose_bytes: usize,
    ) -> Self {
        SlabChare {
            shared,
            entries,
            params,
            peers,
            patches,
            fft_work,
            transpose_bytes,
            charges_received: 0,
            transposes_received: 0,
            rounds: 0,
        }
    }
}

impl Chare for SlabChare {
    fn receive(&mut self, entry: EntryId, _payload: Payload, ctx: &mut Ctx) {
        if entry == self.entries.slab_charge {
            self.charges_received += 1;
            debug_assert!(self.charges_received <= self.patches.len());
            if self.charges_received == self.patches.len() {
                self.charges_received = 0;
                // First FFT stage over the slab's planes, then the
                // transpose all-to-all.
                ctx.add_work(self.fft_work * 0.5);
                for &p in &self.peers {
                    ctx.send(
                        p,
                        self.entries.slab_transpose,
                        self.transpose_bytes,
                        PRIO_NORMAL,
                        Vec::new(),
                    );
                }
                // A lone slab (n_slabs == 1) has no peers: complete locally.
                if self.peers.is_empty() {
                    self.finish(ctx);
                }
            }
        } else if entry == self.entries.slab_transpose {
            self.transposes_received += 1;
            debug_assert!(self.transposes_received <= self.peers.len());
            if self.transposes_received == self.peers.len() {
                self.transposes_received = 0;
                self.finish(ctx);
            }
        } else {
            unreachable!("SlabChare got unexpected entry {entry:?}");
        }
    }
}

impl SlabChare {
    /// Remaining FFT stages + influence multiply, then return the potential
    /// blocks to this slab's patches. In Real force mode, the *first* slab
    /// to finish a PME round evaluates the actual reciprocal-space physics
    /// into the PME force buffer — safe, because the transposes it waited
    /// for prove every patch has published this step's coordinates, and no
    /// patch can integrate before this slab's potential message arrives.
    fn finish(&mut self, ctx: &mut Ctx) {
        ctx.add_work(self.fft_work * 0.5);
        if let Some(pme) = &self.shared.pme_real {
            // Lock order: state → pme_real → energies.
            let st = self.shared.state.read().unwrap();
            let mut pr = pme.lock().unwrap();
            if pr.rounds_done == self.rounds {
                pr.rounds_done += 1;
                let step = self.rounds * self.params.pme_every.max(1);
                let crate::state::PmeReal { solver, ewald, charges, forces, .. } = &mut *pr;
                for f in forces.iter_mut() {
                    *f = Vec3::ZERO;
                }
                let recip = solver.reciprocal(&st.system.positions, charges, forces);
                let corr_ex = pme::ewald::exclusion_correction(
                    &st.system.cell,
                    &st.system.positions,
                    charges,
                    &st.system.exclusions,
                    ewald,
                    forces,
                );
                let corr_self = pme::ewald::self_energy(charges, ewald);
                drop(pr);
                drop(st);
                let mut en = self.shared.energies.lock().unwrap();
                if step < en.len() {
                    en[step].e_elec += recip.reciprocal + corr_ex + corr_self;
                }
            }
        }
        self.rounds += 1;
        for &(patch, bytes) in &self.patches {
            ctx.send(patch, self.entries.patch_forces, bytes, PRIO_HIGH, Vec::new());
        }
    }
}

/// Counts patch completions; stops the engine when all patches finish.
pub struct Reducer {
    expected: usize,
    received: usize,
}

impl Reducer {
    pub fn new(expected: usize) -> Self {
        Reducer { expected, received: 0 }
    }
}

impl Chare for Reducer {
    fn receive(&mut self, _entry: EntryId, _payload: Payload, ctx: &mut Ctx) {
        self.received += 1;
        if self.received == self.expected {
            ctx.stop();
        }
    }
}

/// Coordinates the in-phase checkpoint barrier. On a checkpoint step every
/// home patch pauses after its first integration half and sends `ckpt_ready`
/// carrying its (x_k, v_k) atom state; once all patches are paused this
/// chare assembles the full-system snapshot *from those payloads alone* —
/// never from shared memory, so the same code path produces byte-identical
/// checkpoints on the DES, the threads backend, and separate OS processes —
/// writes it atomically via [`ckpt::CheckpointDir`], and resumes every
/// patch. A write failure is reported and counted but does not kill the
/// run: the simulation stays correct, it just has one fewer recovery point.
pub struct CkptChare {
    shared: Arc<Shared>,
    entries: Entries,
    /// All home patch objects — the barrier membership and the resume
    /// multicast.
    patches: Vec<ObjId>,
    received: usize,
    /// Patch states received for the current barrier, scattered into the
    /// snapshot once the barrier completes.
    pending: Vec<CkptMsg>,
    /// Total atoms in the system (sizes the assembled snapshot).
    n_atoms: usize,
    /// Global step of each barrier this phase will reach, in firing order.
    steps: Vec<u64>,
    round: usize,
    dir: ckpt::CheckpointDir,
    /// Everything in the snapshot that is not live per-atom state (step and
    /// positions/velocities are overwritten per barrier).
    template: ckpt::Snapshot,
    /// Snapshot write failures so far (non-fatal).
    pub write_errors: u64,
}

impl CkptChare {
    pub fn new(
        shared: Arc<Shared>,
        entries: Entries,
        patches: Vec<ObjId>,
        steps: Vec<u64>,
        dir: ckpt::CheckpointDir,
        template: ckpt::Snapshot,
    ) -> Self {
        let n_atoms = shared.decomp.grid.atoms.iter().map(|a| a.len()).sum();
        CkptChare {
            shared,
            entries,
            patches,
            received: 0,
            pending: Vec::new(),
            n_atoms,
            steps,
            round: 0,
            dir,
            template,
            write_errors: 0,
        }
    }
}

impl Chare for CkptChare {
    fn receive(&mut self, entry: EntryId, payload: Payload, ctx: &mut Ctx) {
        if entry != self.entries.ckpt_ready {
            unreachable!("CkptChare got unexpected entry {entry:?}");
        }
        if !payload.is_empty() {
            self.pending.push(CkptMsg::unpack(&payload).expect("malformed CkptMsg payload"));
        }
        self.received += 1;
        debug_assert!(self.received <= self.patches.len());
        if self.received < self.patches.len() {
            return;
        }
        self.received = 0;
        let mut snap = self.template.clone();
        snap.step = self.steps[self.round];
        self.round += 1;
        // Assemble the snapshot purely from the patches' payloads: scatter
        // each patch's block through the grid's atom lists.
        snap.positions = vec![[0.0; 3]; self.n_atoms];
        snap.velocities = vec![[0.0; 3]; self.n_atoms];
        for msg in self.pending.drain(..) {
            let atoms = &self.shared.decomp.grid.atoms[msg.patch as usize];
            debug_assert_eq!(msg.positions.len(), atoms.len());
            for (slot, &a) in atoms.iter().enumerate() {
                let p = msg.positions[slot];
                let v = msg.velocities[slot];
                snap.positions[a as usize] = [p.x, p.y, p.z];
                snap.velocities[a as usize] = [v.x, v.y, v.z];
            }
        }
        // Serialization touches every atom once — model it like an
        // integration pass so the DES timeline charges the barrier.
        ctx.add_work(snap.positions.len() as f64 * costmodel::WORK_PER_ATOM_INTEGRATION);
        if let Err(e) = self.dir.write(&snap) {
            self.write_errors += 1;
            eprintln!("checkpoint write failed at step {}: {e}", snap.step);
        }
        for &p in &self.patches {
            ctx.signal(p, self.entries.ckpt_resume, PRIO_HIGH);
        }
    }
}
