//! Simulation configuration for the parallel engine.

use charmrt::MulticastMode;
use machine::MachineModel;

/// How compute objects obtain the work they declare to the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForceMode {
    /// Execute the real mdcore force kernels every step (positions evolve,
    /// energies are exact). Used for validation and small systems.
    Real,
    /// Count each compute's cutoff pairs once at decomposition time and
    /// replay the counts as declared work (the principle of persistence:
    /// object loads change only slowly, so a few-step timing window sees
    /// constant loads). Positions do not evolve. Used for the paper-scale
    /// benchmark tables, where recomputing 60M pair interactions per
    /// simulated step per PE-count would dominate wall time without
    /// changing any scheduling behaviour.
    Counted,
}

/// Which execution substrate runs the chare graph (`charmrt::Runtime`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Deterministic discrete-event simulation under the machine model:
    /// object loads are *modeled* (declared work + messaging overheads).
    #[default]
    Des,
    /// Real OS worker threads, one per PE: object loads are *measured*
    /// wall-clock handler times. Requires the `threads` cargo feature
    /// (on by default); `Engine::run_phase` panics otherwise.
    Threads,
}

/// Which load-balancing pipeline the engine runs (§3.2 / ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbStrategy {
    /// Keep the initial static (upstream-rule) placement.
    None,
    /// Pseudo-random placement of migratable computes.
    Random,
    /// Round-robin placement of migratable computes.
    RoundRobin,
    /// Paper's greedy, but blind to patch/proxy locations.
    GreedyNoProxy,
    /// The paper's measurement-based greedy strategy.
    Greedy,
    /// Distributed neighbour-diffusion strategy (§2.2's distributed
    /// alternative).
    Diffusion,
    /// Greedy followed by a refinement pass — the full §3.2 pipeline.
    GreedyRefine,
}

/// Modeled full-electrostatics (PME) configuration for the DES engine.
/// The physics lives in the `pme` crate; the engine models its parallel
/// cost: per-patch spread/gather work, slab-decomposed FFT objects, the
/// charge/potential messages, and the slab-transpose all-to-all.
#[derive(Debug, Clone, Copy)]
pub struct PmeSimConfig {
    /// Maximum mesh spacing, Å (the mesh per axis is the next power of two
    /// of box/spacing — matching `pme::mesh::PmeParams::for_cell`).
    pub mesh_spacing: f64,
    /// Evaluate the reciprocal sum every this many steps (multiple
    /// timestepping; 1 = every step).
    pub every: usize,
    /// Number of slab objects the mesh is decomposed into.
    pub slabs: usize,
}

impl Default for PmeSimConfig {
    fn default() -> Self {
        PmeSimConfig { mesh_spacing: 1.2, every: 4, slabs: 64 }
    }
}

/// Tunables for one parallel simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of (virtual) processors.
    pub n_pes: usize,
    /// Machine performance model (used by the DES backend only).
    pub machine: MachineModel,
    /// Execution substrate: modeled DES or real worker threads.
    pub backend: Backend,
    /// Patch side margin beyond the cutoff, Å (NAMD's "slightly larger than
    /// the cutoff radius").
    pub patch_margin: f64,
    /// Real kernels vs counted-work replay.
    pub force_mode: ForceMode,
    /// Timestep for Real mode, fs.
    pub dt_fs: f64,
    /// Reuse each non-bonded compute's candidate pair list across steps
    /// (Real mode), with displacement-based invalidation — the parallel
    /// analogue of NAMD's `pairlistdist` reuse. Bit-compatible with the
    /// uncached ranged kernels, so it defaults to on.
    pub pairlist_cache: bool,
    /// Candidate-list margin beyond the cutoff, Å (`pairlistdist − cutoff`).
    /// Larger margins survive more motion between rebuilds but walk more
    /// candidates per step.
    pub pairlist_margin: f64,
    /// Split self computes into pieces of at most this many atoms
    /// (grainsize control for within-cube work; always on in NAMD).
    pub self_split_atoms: usize,
    /// Split face-adjacent pair computes (§4.2.1's fix for the bimodal
    /// grainsize distribution). When false, Figure 1's 40+ ms tasks appear.
    pub split_face_pairs: bool,
    /// Atom budget per face-pair piece when splitting.
    pub pair_split_atoms: usize,
    /// Counted-mode grainsize target, work units per piece: splitting also
    /// ensures no self or face-pair piece exceeds this much counted work
    /// (≈11 ms on the ASCI-Red model at the 12,000 default — the "divide
    /// work into pieces ... around 5-15 ms" rule of the paper's conclusion).
    pub target_grain_work: f64,
    /// Coordinate multicast costing (§4.2.3).
    pub multicast: MulticastMode,
    /// Execute computes that feed *remote* patches at higher priority, so
    /// their force messages enter the network while local-only work still
    /// overlaps the wait — NAMD's prioritized execution of remote work
    /// (the "adaptive overlap" §2.2 credits to data-driven execution).
    pub prioritize_remote: bool,
    /// Make intra-cube bonded computes migratable (§4.2.2's optimization).
    pub migratable_bonded: bool,
    /// Load-balancing pipeline.
    pub lb: LbStrategy,
    /// Steps per measurement/benchmark phase.
    pub steps_per_phase: usize,
    /// Record full Projections-style traces.
    pub tracing: bool,
    /// Model full electrostatics (PME) on top of the cutoff computation.
    pub pme: Option<PmeSimConfig>,
    /// Per-PE speed factors (1.0 = nominal) — heterogeneous or externally
    /// loaded processors, the workstation-cluster scenario of the paper's
    /// ref \[3\]. Empty = homogeneous.
    pub pe_speeds: Vec<f64>,
    /// Slow load drift per phase (Counted mode): each compute's work
    /// performs a multiplicative random walk with this relative step,
    /// modeling "the slow large-scale movements of atoms in the
    /// simulation" (§3.2). 0 disables drift.
    pub load_drift: f64,
    /// Seeded dequeue-order perturbation, installed into each phase's
    /// runtime before injection. The default FIFO policy is bit-identical
    /// to the runtime's native ordering; shuffle/lifo/jitter exercise the
    /// paper's claim that correctness survives arbitrary message order.
    pub schedule: charmrt::SchedulePolicy,
    /// Fault plan (drop/duplicate/delay by predicate), installed fresh
    /// into each phase's runtime. Dropped messages are repaired by the
    /// engine's retry loop (timeout re-send) instead of wedging quiescence.
    pub fault_plan: Option<charmrt::FaultPlan>,
    /// Write a checkpoint every this many velocity-Verlet updates (Real
    /// mode only; 0 = off). The interval is counted on the *global* step
    /// counter (`Engine::steps_done`), so it survives phase boundaries.
    /// Checkpoints are in-phase barriers: every home patch pauses at the
    /// step, a checkpoint chare snapshots state, and the protocol resumes.
    pub checkpoint_interval: usize,
    /// Directory checkpoints are written into (atomic write-then-rename).
    /// `None` disables checkpointing even when the interval is set.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl SimConfig {
    /// A sensible default configuration for `n_pes` PEs on `machine`,
    /// with every paper optimization enabled.
    pub fn new(n_pes: usize, machine: MachineModel) -> Self {
        SimConfig {
            n_pes,
            machine,
            backend: Backend::Des,
            patch_margin: 3.5,
            force_mode: ForceMode::Counted,
            dt_fs: 1.0,
            pairlist_cache: true,
            pairlist_margin: 2.5,
            self_split_atoms: 160,
            split_face_pairs: true,
            pair_split_atoms: 112,
            target_grain_work: 12_000.0,
            multicast: MulticastMode::Optimized,
            prioritize_remote: true,
            migratable_bonded: true,
            lb: LbStrategy::GreedyRefine,
            steps_per_phase: 3,
            tracing: false,
            pme: None,
            pe_speeds: Vec::new(),
            load_drift: 0.0,
            schedule: charmrt::SchedulePolicy::default(),
            fault_plan: None,
            checkpoint_interval: 0,
            checkpoint_dir: None,
        }
    }

    /// The configuration NAMD had *before* the §4.2 optimizations: no
    /// face-pair splitting, naive multicast, non-migratable bonded work.
    pub fn unoptimized(n_pes: usize, machine: MachineModel) -> Self {
        SimConfig {
            split_face_pairs: false,
            multicast: MulticastMode::Naive,
            migratable_bonded: false,
            ..SimConfig::new(n_pes, machine)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::presets;

    #[test]
    fn default_config_enables_all_optimizations() {
        let c = SimConfig::new(64, presets::asci_red());
        assert!(c.split_face_pairs);
        assert_eq!(c.multicast, MulticastMode::Optimized);
        assert!(c.migratable_bonded);
        assert_eq!(c.lb, LbStrategy::GreedyRefine);
    }

    #[test]
    fn unoptimized_disables_them() {
        let c = SimConfig::unoptimized(64, presets::asci_red());
        assert!(!c.split_face_pairs);
        assert_eq!(c.multicast, MulticastMode::Naive);
        assert!(!c.migratable_bonded);
    }
}
