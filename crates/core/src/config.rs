//! Simulation configuration for the parallel engine.
//!
//! [`SimConfig`] remains a plain struct (struct-literal construction keeps
//! compiling), but the supported construction path is
//! [`SimConfig::builder`]: the builder validates at [`build`] time and
//! returns a typed [`ConfigError`] instead of the asserts that used to be
//! scattered through the engine.
//!
//! [`build`]: SimConfigBuilder::build

use charmrt::MulticastMode;
use machine::MachineModel;

/// How compute objects obtain the work they declare to the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForceMode {
    /// Execute the real mdcore force kernels every step (positions evolve,
    /// energies are exact). Used for validation and small systems.
    Real,
    /// Count each compute's cutoff pairs once at decomposition time and
    /// replay the counts as declared work (the principle of persistence:
    /// object loads change only slowly, so a few-step timing window sees
    /// constant loads). Positions do not evolve. Used for the paper-scale
    /// benchmark tables, where recomputing 60M pair interactions per
    /// simulated step per PE-count would dominate wall time without
    /// changing any scheduling behaviour.
    Counted,
}

/// Which execution substrate runs the chare graph (`charmrt::Runtime`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Deterministic discrete-event simulation under the machine model:
    /// object loads are *modeled* (declared work + messaging overheads).
    #[default]
    Des,
    /// Real OS worker threads, one per PE: object loads are *measured*
    /// wall-clock handler times. Requires the `threads` cargo feature
    /// (on by default); `Engine::run_phase` panics otherwise.
    Threads,
    /// Real OS *processes*, one per PE, exchanging framed wire messages
    /// over Unix domain sockets (`charmrt::ProcRuntime`). No shared
    /// address space: all cross-PE data travels as packed payload bytes,
    /// and fault-plan kills terminate real child processes. Linux/Unix
    /// only. Incompatible with modeled PME (the slab pipeline shares
    /// memory across PEs) and with non-kill fault rules.
    Proc,
}

/// Which load-balancing pipeline the engine runs (§3.2 / ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbStrategy {
    /// Keep the initial static (upstream-rule) placement.
    None,
    /// Pseudo-random placement of migratable computes.
    Random,
    /// Round-robin placement of migratable computes.
    RoundRobin,
    /// Paper's greedy, but blind to patch/proxy locations.
    GreedyNoProxy,
    /// The paper's measurement-based greedy strategy.
    Greedy,
    /// Distributed neighbour-diffusion strategy (§2.2's distributed
    /// alternative).
    Diffusion,
    /// Greedy followed by a refinement pass — the full §3.2 pipeline.
    GreedyRefine,
}

/// Modeled full-electrostatics (PME) configuration for the DES engine.
/// The physics lives in the `pme` crate; the engine models its parallel
/// cost: per-patch spread/gather work, slab-decomposed FFT objects, the
/// charge/potential messages, and the slab-transpose all-to-all.
#[derive(Debug, Clone, Copy)]
pub struct PmeSimConfig {
    /// Maximum mesh spacing, Å (the mesh per axis is the next power of two
    /// of box/spacing — matching `pme::mesh::PmeParams::for_cell`).
    pub mesh_spacing: f64,
    /// Evaluate the reciprocal sum every this many steps (multiple
    /// timestepping; 1 = every step).
    pub every: usize,
    /// Number of slab objects the mesh is decomposed into.
    pub slabs: usize,
}

impl Default for PmeSimConfig {
    fn default() -> Self {
        PmeSimConfig { mesh_spacing: 1.2, every: 4, slabs: 64 }
    }
}

/// Tunables for one parallel simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of (virtual) processors.
    pub n_pes: usize,
    /// Machine performance model (used by the DES backend only).
    pub machine: MachineModel,
    /// Execution substrate: modeled DES or real worker threads.
    pub backend: Backend,
    /// Patch side margin beyond the cutoff, Å (NAMD's "slightly larger than
    /// the cutoff radius").
    pub patch_margin: f64,
    /// Real kernels vs counted-work replay.
    pub force_mode: ForceMode,
    /// Timestep for Real mode, fs.
    pub dt_fs: f64,
    /// Reuse each non-bonded compute's candidate pair list across steps
    /// (Real mode), with displacement-based invalidation — the parallel
    /// analogue of NAMD's `pairlistdist` reuse. Bit-compatible with the
    /// uncached ranged kernels, so it defaults to on.
    pub pairlist_cache: bool,
    /// Candidate-list margin beyond the cutoff, Å (`pairlistdist − cutoff`).
    /// Larger margins survive more motion between rebuilds but walk more
    /// candidates per step.
    pub pairlist_margin: f64,
    /// Split self computes into pieces of at most this many atoms
    /// (grainsize control for within-cube work; always on in NAMD).
    pub self_split_atoms: usize,
    /// Split face-adjacent pair computes (§4.2.1's fix for the bimodal
    /// grainsize distribution). When false, Figure 1's 40+ ms tasks appear.
    pub split_face_pairs: bool,
    /// Atom budget per face-pair piece when splitting.
    pub pair_split_atoms: usize,
    /// Counted-mode grainsize target, work units per piece: splitting also
    /// ensures no self or face-pair piece exceeds this much counted work
    /// (≈11 ms on the ASCI-Red model at the 12,000 default — the "divide
    /// work into pieces ... around 5-15 ms" rule of the paper's conclusion).
    pub target_grain_work: f64,
    /// Coordinate multicast costing (§4.2.3).
    pub multicast: MulticastMode,
    /// Execute computes that feed *remote* patches at higher priority, so
    /// their force messages enter the network while local-only work still
    /// overlaps the wait — NAMD's prioritized execution of remote work
    /// (the "adaptive overlap" §2.2 credits to data-driven execution).
    pub prioritize_remote: bool,
    /// Make intra-cube bonded computes migratable (§4.2.2's optimization).
    pub migratable_bonded: bool,
    /// Load-balancing pipeline.
    pub lb: LbStrategy,
    /// Steps per measurement/benchmark phase.
    pub steps_per_phase: usize,
    /// Record full Projections-style traces.
    pub tracing: bool,
    /// Model full electrostatics (PME) on top of the cutoff computation.
    pub pme: Option<PmeSimConfig>,
    /// Per-PE speed factors (1.0 = nominal) — heterogeneous or externally
    /// loaded processors, the workstation-cluster scenario of the paper's
    /// ref \[3\]. Empty = homogeneous.
    pub pe_speeds: Vec<f64>,
    /// Slow load drift per phase (Counted mode): each compute's work
    /// performs a multiplicative random walk with this relative step,
    /// modeling "the slow large-scale movements of atoms in the
    /// simulation" (§3.2). 0 disables drift.
    pub load_drift: f64,
    /// Seeded dequeue-order perturbation, installed into each phase's
    /// runtime before injection. The default FIFO policy is bit-identical
    /// to the runtime's native ordering; shuffle/lifo/jitter exercise the
    /// paper's claim that correctness survives arbitrary message order.
    pub schedule: charmrt::SchedulePolicy,
    /// Fault plan (drop/duplicate/delay by predicate), installed fresh
    /// into each phase's runtime. Dropped messages are repaired by the
    /// engine's retry loop (timeout re-send) instead of wedging quiescence.
    pub fault_plan: Option<charmrt::FaultPlan>,
    /// Write a checkpoint every this many velocity-Verlet updates (Real
    /// mode only; 0 = off). The interval is counted on the *global* step
    /// counter (`Engine::steps_done`), so it survives phase boundaries.
    /// Checkpoints are in-phase barriers: every home patch pauses at the
    /// step, a checkpoint chare snapshots state, and the protocol resumes.
    pub checkpoint_interval: usize,
    /// Directory checkpoints are written into (atomic write-then-rename).
    /// `None` disables checkpointing even when the interval is set.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// `proc` backend: number of worker processes. 0 (the default) means
    /// one per PE; any non-zero value must equal `n_pes` (PEs *are*
    /// processes on this backend — there is no multiplexing).
    pub procs: usize,
    /// `proc` backend: directory for the per-run Unix domain sockets.
    /// `None` uses a fresh directory under the system temp dir.
    pub socket_dir: Option<std::path::PathBuf>,
}

impl SimConfig {
    /// A sensible default configuration for `n_pes` PEs on `machine`,
    /// with every paper optimization enabled.
    pub fn new(n_pes: usize, machine: MachineModel) -> Self {
        SimConfig {
            n_pes,
            machine,
            backend: Backend::Des,
            patch_margin: 3.5,
            force_mode: ForceMode::Counted,
            dt_fs: 1.0,
            pairlist_cache: true,
            pairlist_margin: 2.5,
            self_split_atoms: 160,
            split_face_pairs: true,
            pair_split_atoms: 112,
            target_grain_work: 12_000.0,
            multicast: MulticastMode::Optimized,
            prioritize_remote: true,
            migratable_bonded: true,
            lb: LbStrategy::GreedyRefine,
            steps_per_phase: 3,
            tracing: false,
            pme: None,
            pe_speeds: Vec::new(),
            load_drift: 0.0,
            schedule: charmrt::SchedulePolicy::default(),
            fault_plan: None,
            checkpoint_interval: 0,
            checkpoint_dir: None,
            procs: 0,
            socket_dir: None,
        }
    }

    /// The configuration NAMD had *before* the §4.2 optimizations: no
    /// face-pair splitting, naive multicast, non-migratable bonded work.
    pub fn unoptimized(n_pes: usize, machine: MachineModel) -> Self {
        SimConfig {
            split_face_pairs: false,
            multicast: MulticastMode::Naive,
            migratable_bonded: false,
            ..SimConfig::new(n_pes, machine)
        }
    }

    /// Start a validated configuration: `SimConfig::builder(n, m)...build()?`.
    pub fn builder(n_pes: usize, machine: MachineModel) -> SimConfigBuilder {
        SimConfigBuilder { cfg: SimConfig::new(n_pes, machine) }
    }

    /// Check every invariant the engine relies on. The builder calls this
    /// at [`SimConfigBuilder::build`]; the engine also re-checks before
    /// each phase so struct-literal (or post-hoc mutated) configurations
    /// fail with the same typed message instead of a scattered assert.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_pes == 0 {
            return Err(ConfigError::NoPes);
        }
        if !(self.dt_fs > 0.0 && self.dt_fs.is_finite()) {
            return Err(ConfigError::BadTimestep(self.dt_fs));
        }
        if !(self.patch_margin >= 0.0 && self.patch_margin.is_finite()) {
            return Err(ConfigError::BadMargin { which: "patch_margin", value: self.patch_margin });
        }
        if !(self.pairlist_margin >= 0.0 && self.pairlist_margin.is_finite()) {
            return Err(ConfigError::BadMargin {
                which: "pairlist_margin",
                value: self.pairlist_margin,
            });
        }
        if self.self_split_atoms == 0 {
            return Err(ConfigError::BadSplit { which: "self_split_atoms", value: 0 });
        }
        if self.pair_split_atoms == 0 {
            return Err(ConfigError::BadSplit { which: "pair_split_atoms", value: 0 });
        }
        if !(self.target_grain_work > 0.0 && self.target_grain_work.is_finite()) {
            return Err(ConfigError::BadGrainTarget(self.target_grain_work));
        }
        if self.steps_per_phase == 0 {
            return Err(ConfigError::NoSteps);
        }
        if !(self.load_drift >= 0.0 && self.load_drift.is_finite()) {
            return Err(ConfigError::BadLoadDrift(self.load_drift));
        }
        if !self.pe_speeds.is_empty() {
            if self.pe_speeds.len() != self.n_pes {
                return Err(ConfigError::BadPeSpeeds(format!(
                    "{} speeds for {} PEs",
                    self.pe_speeds.len(),
                    self.n_pes
                )));
            }
            if let Some(s) = self.pe_speeds.iter().find(|s| !(**s > 0.0 && s.is_finite())) {
                return Err(ConfigError::BadPeSpeeds(format!("speed {s} is not positive")));
            }
        }
        if let Some(p) = &self.pme {
            if !(p.mesh_spacing > 0.0 && p.mesh_spacing.is_finite()) {
                return Err(ConfigError::BadPme(format!("mesh_spacing {}", p.mesh_spacing)));
            }
            if p.slabs == 0 {
                return Err(ConfigError::BadPme("slabs must be at least 1".into()));
            }
        }
        if self.backend == Backend::Proc {
            if self.pme.is_some() {
                return Err(ConfigError::BadProc(
                    "modeled PME shares reciprocal-space state across PEs and cannot run \
                     with PEs in separate processes"
                        .into(),
                ));
            }
            if self.procs != 0 && self.procs != self.n_pes {
                return Err(ConfigError::BadProc(format!(
                    "procs ({}) must be 0 (one per PE) or equal n_pes ({})",
                    self.procs, self.n_pes
                )));
            }
            if let Some(plan) = &self.fault_plan {
                if plan.rules.iter().any(|r| r.action != charmrt::FaultAction::Kill) {
                    return Err(ConfigError::BadProc(
                        "only kill fault rules map to real process termination; drop/dup/\
                         delay/corrupt rules need the in-process backends"
                            .into(),
                    ));
                }
            }
        } else if self.procs != 0 {
            return Err(ConfigError::BadProc(format!(
                "procs ({}) is only meaningful with backend=proc",
                self.procs
            )));
        }
        if self.checkpoint_dir.is_some() {
            if self.checkpoint_interval == 0 {
                return Err(ConfigError::BadCheckpoint(
                    "checkpoint_dir set but checkpoint_interval is 0".into(),
                ));
            }
            if self.force_mode == ForceMode::Real && self.pme.is_some() {
                return Err(ConfigError::BadCheckpoint(
                    "in-phase checkpointing is incompatible with modeled PME \
                     (slab round state is not captured in snapshots)"
                        .into(),
                ));
            }
        }
        Ok(())
    }
}

/// Why a [`SimConfigBuilder::build`] (or the engine's own re-validation)
/// rejected a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `n_pes` was zero.
    NoPes,
    /// `steps_per_phase` was zero.
    NoSteps,
    /// `dt_fs` was not a positive finite number.
    BadTimestep(f64),
    /// A margin (`patch_margin`/`pairlist_margin`) was negative or non-finite.
    BadMargin { which: &'static str, value: f64 },
    /// A split budget (`self_split_atoms`/`pair_split_atoms`) was zero.
    BadSplit { which: &'static str, value: usize },
    /// `target_grain_work` was not a positive finite number.
    BadGrainTarget(f64),
    /// `load_drift` was negative or non-finite.
    BadLoadDrift(f64),
    /// `pe_speeds` was non-empty but mismatched `n_pes` or held a
    /// non-positive speed.
    BadPeSpeeds(String),
    /// An invalid PME configuration.
    BadPme(String),
    /// An inconsistent checkpoint configuration.
    BadCheckpoint(String),
    /// An inconsistent multi-process (`backend=proc`) configuration.
    BadProc(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoPes => write!(f, "n_pes must be at least 1"),
            ConfigError::NoSteps => write!(f, "steps_per_phase must be at least 1"),
            ConfigError::BadTimestep(dt) => {
                write!(f, "dt_fs must be positive and finite, got {dt}")
            }
            ConfigError::BadMargin { which, value } => {
                write!(f, "{which} must be non-negative and finite, got {value}")
            }
            ConfigError::BadSplit { which, value } => {
                write!(f, "{which} must be at least 1, got {value}")
            }
            ConfigError::BadGrainTarget(v) => {
                write!(f, "target_grain_work must be positive and finite, got {v}")
            }
            ConfigError::BadLoadDrift(v) => {
                write!(f, "load_drift must be non-negative and finite, got {v}")
            }
            ConfigError::BadPeSpeeds(msg) => write!(f, "pe_speeds: {msg}"),
            ConfigError::BadPme(msg) => write!(f, "pme: {msg}"),
            ConfigError::BadCheckpoint(msg) => write!(f, "checkpointing: {msg}"),
            ConfigError::BadProc(msg) => write!(f, "proc backend: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`SimConfig`] with build-time validation. Starts from
/// [`SimConfig::new`]'s defaults (every paper optimization on); each
/// setter overrides one knob; [`build`](SimConfigBuilder::build) validates
/// the whole configuration and returns a typed [`ConfigError`] on any
/// inconsistency.
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Switch to the pre-§4.2 "unoptimized" baseline (no face-pair
    /// splitting, naive multicast, non-migratable bonded work).
    pub fn unoptimized(mut self) -> Self {
        self.cfg.split_face_pairs = false;
        self.cfg.multicast = MulticastMode::Naive;
        self.cfg.migratable_bonded = false;
        self
    }

    pub fn backend(mut self, backend: Backend) -> Self {
        self.cfg.backend = backend;
        self
    }

    pub fn force_mode(mut self, mode: ForceMode) -> Self {
        self.cfg.force_mode = mode;
        self
    }

    /// Timestep for Real mode, fs.
    pub fn dt_fs(mut self, dt: f64) -> Self {
        self.cfg.dt_fs = dt;
        self
    }

    /// Patch side margin beyond the cutoff, Å.
    pub fn patch_margin(mut self, margin: f64) -> Self {
        self.cfg.patch_margin = margin;
        self
    }

    /// Enable/disable the pair-list cache and set its margin, Å.
    pub fn pairlist(mut self, cache: bool, margin: f64) -> Self {
        self.cfg.pairlist_cache = cache;
        self.cfg.pairlist_margin = margin;
        self
    }

    /// Grainsize control: self piece budget, face-pair splitting, pair
    /// piece budget.
    pub fn grainsize(mut self, self_atoms: usize, split_faces: bool, pair_atoms: usize) -> Self {
        self.cfg.self_split_atoms = self_atoms;
        self.cfg.split_face_pairs = split_faces;
        self.cfg.pair_split_atoms = pair_atoms;
        self
    }

    /// Counted-mode grainsize target (work units per piece).
    pub fn target_grain_work(mut self, work: f64) -> Self {
        self.cfg.target_grain_work = work;
        self
    }

    pub fn multicast(mut self, mode: MulticastMode) -> Self {
        self.cfg.multicast = mode;
        self
    }

    pub fn prioritize_remote(mut self, on: bool) -> Self {
        self.cfg.prioritize_remote = on;
        self
    }

    pub fn migratable_bonded(mut self, on: bool) -> Self {
        self.cfg.migratable_bonded = on;
        self
    }

    pub fn lb(mut self, strategy: LbStrategy) -> Self {
        self.cfg.lb = strategy;
        self
    }

    pub fn steps_per_phase(mut self, steps: usize) -> Self {
        self.cfg.steps_per_phase = steps;
        self
    }

    /// Record full Projections-style traces.
    pub fn tracing(mut self, on: bool) -> Self {
        self.cfg.tracing = on;
        self
    }

    pub fn pme(mut self, pme: Option<PmeSimConfig>) -> Self {
        self.cfg.pme = pme;
        self
    }

    /// Per-PE speed factors (must match `n_pes` in length when non-empty).
    pub fn pe_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.cfg.pe_speeds = speeds;
        self
    }

    /// Slow load drift per phase (Counted mode).
    pub fn load_drift(mut self, sigma: f64) -> Self {
        self.cfg.load_drift = sigma;
        self
    }

    pub fn schedule(mut self, policy: charmrt::SchedulePolicy) -> Self {
        self.cfg.schedule = policy;
        self
    }

    pub fn fault_plan(mut self, plan: Option<charmrt::FaultPlan>) -> Self {
        self.cfg.fault_plan = plan;
        self
    }

    /// Periodic in-phase checkpoints into `dir` every `interval` global
    /// steps (Real mode).
    pub fn checkpoint(mut self, dir: impl Into<std::path::PathBuf>, interval: usize) -> Self {
        self.cfg.checkpoint_dir = Some(dir.into());
        self.cfg.checkpoint_interval = interval;
        self
    }

    /// `proc` backend: worker-process count (0 = one per PE; otherwise must
    /// equal `n_pes`).
    pub fn procs(mut self, procs: usize) -> Self {
        self.cfg.procs = procs;
        self
    }

    /// `proc` backend: directory for the per-run Unix domain sockets.
    pub fn socket_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cfg.socket_dir = Some(dir.into());
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::presets;

    #[test]
    fn default_config_enables_all_optimizations() {
        let c = SimConfig::new(64, presets::asci_red());
        assert!(c.split_face_pairs);
        assert_eq!(c.multicast, MulticastMode::Optimized);
        assert!(c.migratable_bonded);
        assert_eq!(c.lb, LbStrategy::GreedyRefine);
    }

    #[test]
    fn unoptimized_disables_them() {
        let c = SimConfig::unoptimized(64, presets::asci_red());
        assert!(!c.split_face_pairs);
        assert_eq!(c.multicast, MulticastMode::Naive);
        assert!(!c.migratable_bonded);
    }

    #[test]
    fn builder_matches_struct_construction() {
        let b = SimConfig::builder(16, presets::asci_red())
            .steps_per_phase(2)
            .tracing(true)
            .build()
            .unwrap();
        let mut s = SimConfig::new(16, presets::asci_red());
        s.steps_per_phase = 2;
        s.tracing = true;
        assert_eq!(format!("{b:?}"), format!("{s:?}"));
        let u = SimConfig::builder(8, presets::asci_red()).unoptimized().build().unwrap();
        let v = SimConfig::unoptimized(8, presets::asci_red());
        assert_eq!(format!("{u:?}"), format!("{v:?}"));
    }

    #[test]
    fn builder_rejects_invalid_configurations() {
        let m = presets::asci_red();
        assert_eq!(SimConfig::builder(0, m).build().unwrap_err(), ConfigError::NoPes);
        assert_eq!(
            SimConfig::builder(4, m).dt_fs(0.0).build().unwrap_err(),
            ConfigError::BadTimestep(0.0)
        );
        assert_eq!(
            SimConfig::builder(4, m).pairlist(true, -1.0).build().unwrap_err(),
            ConfigError::BadMargin { which: "pairlist_margin", value: -1.0 }
        );
        assert_eq!(
            SimConfig::builder(4, m).steps_per_phase(0).build().unwrap_err(),
            ConfigError::NoSteps
        );
        assert!(matches!(
            SimConfig::builder(4, m).pe_speeds(vec![1.0, 1.0]).build(),
            Err(ConfigError::BadPeSpeeds(_))
        ));
        assert!(matches!(
            SimConfig::builder(4, m).checkpoint("/tmp/x", 0).build(),
            Err(ConfigError::BadCheckpoint(_))
        ));
        assert!(matches!(
            SimConfig::builder(4, m)
                .force_mode(ForceMode::Real)
                .pme(Some(PmeSimConfig::default()))
                .checkpoint("/tmp/x", 10)
                .build(),
            Err(ConfigError::BadCheckpoint(_))
        ));
        // Errors render a actionable message.
        let e = SimConfig::builder(0, m).build().unwrap_err();
        assert!(e.to_string().contains("n_pes"));
    }

    #[test]
    fn proc_backend_validations() {
        let m = presets::asci_red();
        // PME needs a shared address space.
        assert!(matches!(
            SimConfig::builder(4, m)
                .backend(Backend::Proc)
                .pme(Some(PmeSimConfig::default()))
                .build(),
            Err(ConfigError::BadProc(_))
        ));
        // procs must be 0 or n_pes, and is proc-only.
        assert!(matches!(
            SimConfig::builder(4, m).backend(Backend::Proc).procs(2).build(),
            Err(ConfigError::BadProc(_))
        ));
        assert!(matches!(
            SimConfig::builder(4, m).procs(4).build(),
            Err(ConfigError::BadProc(_))
        ));
        // Only kill rules map to real process termination.
        assert!(matches!(
            SimConfig::builder(4, m)
                .backend(Backend::Proc)
                .fault_plan(Some(charmrt::FaultPlan::parse("drop:entry=Done:limit=1").unwrap()))
                .build(),
            Err(ConfigError::BadProc(_))
        ));
        SimConfig::builder(4, m)
            .backend(Backend::Proc)
            .procs(4)
            .fault_plan(Some(charmrt::FaultPlan::parse("kill:entry=Done:dst=1").unwrap()))
            .build()
            .unwrap();
    }

    #[test]
    fn validate_accepts_every_preset_shape() {
        SimConfig::new(64, presets::asci_red()).validate().unwrap();
        SimConfig::unoptimized(64, presets::asci_red()).validate().unwrap();
        SimConfig::builder(4, presets::asci_red())
            .pe_speeds(vec![1.0, 0.5, 1.0, 2.0])
            .pme(Some(PmeSimConfig::default()))
            .load_drift(0.05)
            .build()
            .unwrap();
    }
}
