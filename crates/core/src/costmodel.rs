//! Work-unit accounting: converts what a compute object did into the
//! abstract work units the runtime's machine model prices.
//!
//! One work unit ≡ one non-bonded pair interaction inside the cutoff
//! (`mdcore::nonbonded::FLOPS_PER_PAIR` FLOPs). Bonded terms and integration
//! are expressed in pair-equivalents, calibrated against the paper's Table 1
//! single-processor breakdown for ApoA-I (non-bonded 52.44 s, bonds 3.16 s,
//! integration 1.44 s per step), which fixes the ratios between the three
//! classes of work.

/// Work units per evaluated non-bonded pair.
pub const WORK_PER_PAIR: f64 = 1.0;

/// Work units charged per candidate pair that had to be distance-tested but
/// fell outside the cutoff. NAMD amortizes the miss cost through pairlists,
/// so a miss is far cheaper than a hit; 0.05 calibrates the ApoA-I-like
/// single-processor step time to the paper's 57 s on the ASCI-Red model.
pub const WORK_PER_CANDIDATE: f64 = 0.05;

/// Work units per stored candidate walked on a pair-list cache *hit*. A hit
/// step skips the O(n²) candidate sweep entirely and only touches the pairs
/// the cached list kept, so the per-miss bookkeeping (one min-image + compare
/// against a compact list entry) is cheaper than the build-step
/// [`WORK_PER_CANDIDATE`] sweep cost.
pub const WORK_PER_LISTED_CANDIDATE: f64 = 0.02;

/// Work units per 2-body bond term.
pub const WORK_PER_BOND: f64 = 15.0;

/// Work units per 3-body angle term.
pub const WORK_PER_ANGLE: f64 = 40.0;

/// Work units per 4-body dihedral/improper term.
pub const WORK_PER_DIHEDRAL: f64 = 60.0;

/// Work units per single-atom positional restraint.
pub const WORK_PER_RESTRAINT: f64 = 6.0;

/// Work units per atom for one integration (velocity-Verlet update, force
/// accumulation bookkeeping, coordinate publication).
pub const WORK_PER_ATOM_INTEGRATION: f64 = 17.0;

/// Bytes on the wire per atom in a coordinate or force message
/// (three doubles plus an id).
pub const BYTES_PER_ATOM: usize = 28;

/// Work units per atom for PME charge spreading plus force gathering
/// (order-4 B-splines: 2 × 4³ mesh points × ~15 FLOPs each).
pub const WORK_PME_PER_ATOM: f64 = 42.0;

/// Bytes per complex mesh point in PME transpose messages.
pub const BYTES_PER_MESH_POINT: usize = 16;

/// Work units for the FFT stages of one PME evaluation over `mesh_points`
/// total grid points (forward + inverse 3-D FFT, 5·M·log₂M FLOPs each, plus
/// the influence-function multiply).
pub fn fft_work(mesh_points: usize) -> f64 {
    let m = mesh_points as f64;
    let fft_flops = 2.0 * 5.0 * m * m.log2().max(1.0);
    let influence_flops = 6.0 * m;
    (fft_flops + influence_flops) / mdcore::nonbonded::FLOPS_PER_PAIR
}

/// Work for a bonded compute holding the given term counts.
pub fn bonded_work(bonds: usize, angles: usize, dihedrals: usize, impropers: usize) -> f64 {
    bonds as f64 * WORK_PER_BOND
        + angles as f64 * WORK_PER_ANGLE
        + (dihedrals + impropers) as f64 * WORK_PER_DIHEDRAL
}

/// Work for a non-bonded compute that evaluated `pairs` interactions out of
/// `candidates` candidate pairs. This is the *rebuild* (or uncached) cost:
/// every candidate was distance-tested from scratch.
pub fn nonbonded_work(pairs: u64, candidates: u64) -> f64 {
    pairs as f64 * WORK_PER_PAIR + candidates.saturating_sub(pairs) as f64 * WORK_PER_CANDIDATE
}

/// Work for a non-bonded compute on a pair-list cache *hit*: it evaluated
/// `pairs` interactions while walking `listed` cached candidates, skipping
/// the full candidate sweep. Strictly cheaper than [`nonbonded_work`] for
/// the same step, which keeps LB measurements honest — a compute that mostly
/// hits its cache really is lighter than one that rebuilds every step.
pub fn nonbonded_work_cached(pairs: u64, listed: u64) -> f64 {
    pairs as f64 * WORK_PER_PAIR
        + listed.saturating_sub(pairs) as f64 * WORK_PER_LISTED_CANDIDATE
}

/// FLOPs corresponding to `work` work units — used for the tables' GFLOPS
/// column, rated the same conservative way the paper does (single-processor
/// op count divided by parallel time).
pub fn flops(work: f64) -> f64 {
    work * mdcore::nonbonded::FLOPS_PER_PAIR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonded_work_combines_terms() {
        let w = bonded_work(2, 1, 1, 1);
        assert_eq!(w, 2.0 * WORK_PER_BOND + WORK_PER_ANGLE + 2.0 * WORK_PER_DIHEDRAL);
    }

    #[test]
    fn nonbonded_work_charges_misses_less() {
        let hit_only = nonbonded_work(100, 100);
        let with_misses = nonbonded_work(100, 200);
        assert!(with_misses > hit_only);
        assert!(with_misses < 2.0 * hit_only);
    }

    #[test]
    fn cache_hit_work_is_below_rebuild_work() {
        // A hit walks only the stored candidates (a subset of the sweep's
        // candidates) at a lower per-miss rate; same evaluated pairs.
        let pairs = 10_000;
        let candidates = 60_000; // full O(n²) sweep on a rebuild step
        let listed = 18_000; // cached list at cutoff + margin
        let rebuild = nonbonded_work(pairs, candidates);
        let hit = nonbonded_work_cached(pairs, listed);
        assert!(hit < rebuild, "hit {hit} must be cheaper than rebuild {rebuild}");
        // Both still dominated by the real pair interactions.
        assert!(hit >= pairs as f64 * WORK_PER_PAIR);
        // Degenerate case: a list with only true pairs costs exactly the pairs.
        assert_eq!(nonbonded_work_cached(pairs, pairs), pairs as f64 * WORK_PER_PAIR);
    }

    #[test]
    fn table1_ratio_calibration() {
        // ApoA-I-like: ~61M pairs/step. Bonds should come out near
        // 3.16/52.44 of the non-bonded work; integration near 1.44/52.44.
        // Term counts from the generated system (71k bonds, ~46k angles,
        // ~2k dihedrals+impropers).
        let nb = 61.0e6;
        let bonded = bonded_work(71_278, 46_000, 2_200, 500);
        let integ = 92_224.0 * WORK_PER_ATOM_INTEGRATION;
        let bond_ratio = bonded / nb;
        let integ_ratio = integ / nb;
        assert!(
            (bond_ratio - 3.16 / 52.44).abs() < 0.03,
            "bond ratio {bond_ratio} vs paper {}",
            3.16 / 52.44
        );
        assert!(
            (integ_ratio - 1.44 / 52.44).abs() < 0.01,
            "integration ratio {integ_ratio} vs paper {}",
            1.44 / 52.44
        );
    }
}
