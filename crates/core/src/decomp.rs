//! Hybrid force/spatial decomposition: building the compute-object set.
//!
//! "For each pair of neighboring cubes, we assign a non-bonded force
//! computation object, which can be independently mapped to any processor.
//! The number of such objects is therefore 14 times (26/2 + 1
//! self-interaction) the number of cubes." Plus grainsize control (§4.2.1):
//! self computes are split by atom count, and face-adjacent pair computes —
//! the culprits behind the bimodal grainsize distribution of Figure 1 — are
//! optionally split into several pieces. Bonded work is split into
//! migratable intra-cube computes and non-migratable inter-cube computes
//! (§4.2.2).

use crate::config::SimConfig;
use crate::costmodel;
use crate::patchgrid::{PatchGrid, PatchId};
use mdcore::prelude::*;
use std::ops::Range;

/// What a compute object computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComputeKind {
    /// Non-bonded pairs within one patch (piece of the triangle).
    SelfNb { patch: PatchId },
    /// Non-bonded cross pairs between two neighbouring patches.
    PairNb { a: PatchId, b: PatchId },
    /// Bonded terms entirely inside one patch (migratable after §4.2.2).
    BondedIntra { patch: PatchId },
    /// Bonded terms spanning patches, based at `patch` (non-migratable).
    BondedInter { patch: PatchId },
}

/// Indices into the topology's term arrays owned by one bonded compute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BondedTerms {
    pub bonds: Vec<u32>,
    pub angles: Vec<u32>,
    pub dihedrals: Vec<u32>,
    pub impropers: Vec<u32>,
    pub restraints: Vec<u32>,
}

impl BondedTerms {
    /// Total number of terms.
    pub fn len(&self) -> usize {
        self.bonds.len()
            + self.angles.len()
            + self.dihedrals.len()
            + self.impropers.len()
            + self.restraints.len()
    }

    /// True when no terms are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Modeled work units for these terms.
    pub fn work(&self) -> f64 {
        costmodel::bonded_work(
            self.bonds.len(),
            self.angles.len(),
            self.dihedrals.len(),
            self.impropers.len(),
        ) + self.restraints.len() as f64 * costmodel::WORK_PER_RESTRAINT
    }
}

/// One schedulable compute object.
#[derive(Debug, Clone)]
pub struct ComputeSpec {
    pub kind: ComputeKind,
    /// Patches whose coordinate data this compute requires.
    pub patches: Vec<PatchId>,
    /// For split non-bonded computes: the outer-loop index range within the
    /// first patch's atom list. Full range when unsplit.
    pub outer: Range<usize>,
    /// Whether the load balancer may move this object.
    pub migratable: bool,
    /// Counted work units (used directly in Counted mode; Real mode declares
    /// measured work instead).
    pub work: f64,
    /// Pairs inside the cutoff (non-bonded computes).
    pub pairs: u64,
    /// Candidate pairs tested (non-bonded computes).
    pub candidates: u64,
    /// Bonded terms (bonded computes only).
    pub terms: Option<BondedTerms>,
}

/// The full decomposition of a system.
#[derive(Debug, Clone)]
pub struct Decomposition {
    pub grid: PatchGrid,
    pub computes: Vec<ComputeSpec>,
}

/// Split the triangle of `n(n-1)/2` self pairs into `pieces` outer-index
/// ranges of approximately equal pair count: boundaries at
/// `n·(1 − √(1 − k/pieces))`.
pub fn triangle_ranges(n: usize, pieces: usize) -> Vec<Range<usize>> {
    assert!(pieces > 0);
    if pieces == 1 || n == 0 {
        // One piece covering everything (not a range-expanded vec).
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..n];
    }
    let nf = n as f64;
    let mut out = Vec::with_capacity(pieces);
    let mut prev = 0usize;
    for k in 1..=pieces {
        let frac = k as f64 / pieces as f64;
        let mut hi = (nf * (1.0 - (1.0 - frac).sqrt())).round() as usize;
        if k == pieces {
            hi = n;
        }
        let hi = hi.clamp(prev, n);
        out.push(prev..hi);
        prev = hi;
    }
    out
}

/// Evenly split `0..n` into `pieces` ranges (pair computes: uniform outer
/// cost).
pub fn even_ranges(n: usize, pieces: usize) -> Vec<Range<usize>> {
    assert!(pieces > 0);
    let mut out = Vec::with_capacity(pieces);
    let mut prev = 0usize;
    for k in 1..=pieces {
        let hi = (n * k) / pieces;
        out.push(prev..hi);
        prev = hi;
    }
    out
}

/// An owned struct-of-arrays copy of a patch's atoms. Built once per compute
/// (or per cost-model probe) and *refreshed in place* on later steps —
/// ids/lj/charge never change between migrations, so only positions are
/// rewritten.
#[derive(Debug, Clone, Default)]
pub(crate) struct PatchArrays {
    pub pos: Vec<Vec3>,
    pub ids: Vec<AtomId>,
    pub lj: Vec<u16>,
    pub charge: Vec<f64>,
}

impl PatchArrays {
    pub(crate) fn gather(system: &System, atoms: &[u32]) -> Self {
        let mut pos = Vec::with_capacity(atoms.len());
        let mut ids = Vec::with_capacity(atoms.len());
        let mut lj = Vec::with_capacity(atoms.len());
        let mut charge = Vec::with_capacity(atoms.len());
        for &a in atoms {
            let i = a as usize;
            pos.push(system.positions[i]);
            ids.push(a);
            lj.push(system.topology.atoms[i].lj_type);
            charge.push(system.topology.atoms[i].charge);
        }
        PatchArrays { pos, ids, lj, charge }
    }

    /// Rewrite positions from the current system state without touching the
    /// other arrays or allocating. The atom membership must be unchanged
    /// since `gather` (guaranteed between migrations).
    pub(crate) fn refresh_positions(&mut self, system: &System, atoms: &[u32]) {
        debug_assert_eq!(self.pos.len(), atoms.len());
        for (slot, &a) in atoms.iter().enumerate() {
            self.pos[slot] = system.positions[a as usize];
        }
    }

    pub(crate) fn group(&self) -> AtomGroup<'_> {
        AtomGroup::new(&self.pos, &self.ids, &self.lj, &self.charge)
    }
}

/// Per-outer-atom (pairs, candidates) for a self compute.
fn count_self_per_atom(g: &PatchArrays, cell: &Cell, cutoff: f64) -> Vec<(u64, u64)> {
    let c2 = cutoff * cutoff;
    let n = g.pos.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut pairs = 0u64;
        for j in (i + 1)..n {
            if cell.dist2(g.pos[i], g.pos[j]) < c2 {
                pairs += 1;
            }
        }
        out.push((pairs, (n - i - 1) as u64));
    }
    out
}

/// Per-outer-atom (pairs, candidates) for a pair compute.
fn count_pair_per_atom(a: &PatchArrays, b: &PatchArrays, cell: &Cell, cutoff: f64) -> Vec<(u64, u64)> {
    let c2 = cutoff * cutoff;
    let nb = b.pos.len();
    a.pos
        .iter()
        .map(|&pa| {
            let pairs = b.pos.iter().filter(|&&pb| cell.dist2(pa, pb) < c2).count() as u64;
            (pairs, nb as u64)
        })
        .collect()
}

/// Split `0..weights.len()` into `pieces` contiguous ranges of approximately
/// equal total weight (prefix-sum cuts). Dense patches have very non-uniform
/// per-atom work (solute atoms first, water after), so equal-*atom* ranges
/// would leave grossly unequal pieces.
pub fn balanced_ranges(weights: &[f64], pieces: usize) -> Vec<Range<usize>> {
    assert!(pieces > 0);
    let n = weights.len();
    if pieces == 1 || n == 0 {
        // One piece covering everything (not a range-expanded vec).
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..n];
    }
    let total: f64 = weights.iter().sum();
    let mut out = Vec::with_capacity(pieces);
    let mut prev = 0usize;
    let mut acc = 0.0;
    let mut idx = 0usize;
    for k in 1..=pieces {
        let target = total * k as f64 / pieces as f64;
        if k == pieces {
            out.push(prev..n);
            break;
        }
        while idx < n && acc + weights[idx] <= target {
            acc += weights[idx];
            idx += 1;
        }
        let hi = idx.clamp(prev, n);
        out.push(prev..hi);
        prev = hi;
    }
    out
}

/// Build the complete decomposition for a system under a configuration.
pub fn build(system: &System, config: &SimConfig) -> Decomposition {
    let grid = PatchGrid::build(
        &system.cell,
        &system.positions,
        system.forcefield.cutoff,
        config.patch_margin,
    );
    let cell = system.cell;
    let cutoff = system.forcefield.cutoff;

    // Gather per-patch atom arrays once.
    let arrays: Vec<PatchArrays> =
        grid.atoms.iter().map(|a| PatchArrays::gather(system, a)).collect();

    // Pair counting (for Counted-mode work replay) costs O(atoms²) per patch
    // pair; Real mode measures work from the actual kernels instead, so the
    // distance pass is skipped and only analytic candidate counts are kept.
    let count = config.force_mode == crate::config::ForceMode::Counted;

    let mut computes = Vec::new();

    // Self computes, split by atom count (grainsize control for within-cube
    // pairs — "we modified the generation of compute objects to potentially
    // create several compute objects to calculate the within-cube non-bonded
    // atom pairs ... determined by the number of atoms initially assigned to
    // the cube").
    for p in 0..grid.n_patches() {
        let n = arrays[p].pos.len();
        let atom_pieces = n.div_ceil(config.self_split_atoms).max(1);
        if count {
            // Work-targeted grainsize control with work-balanced cuts:
            // dense patches (e.g. the lipid slab) get extra pieces, and
            // piece boundaries equalize counted work, not atom counts.
            let per_atom = count_self_per_atom(&arrays[p], &cell, cutoff);
            let weights: Vec<f64> = per_atom
                .iter()
                .map(|&(pr, ca)| costmodel::nonbonded_work(pr, ca))
                .collect();
            let total: f64 = weights.iter().sum();
            let pieces = atom_pieces
                .max((total / config.target_grain_work).ceil() as usize)
                .max(1);
            for outer in balanced_ranges(&weights, pieces) {
                let pairs: u64 = per_atom[outer.clone()].iter().map(|&(pr, _)| pr).sum();
                let candidates: u64 = per_atom[outer.clone()].iter().map(|&(_, ca)| ca).sum();
                computes.push(ComputeSpec {
                    kind: ComputeKind::SelfNb { patch: p },
                    patches: vec![p],
                    outer,
                    migratable: true,
                    work: costmodel::nonbonded_work(pairs, candidates),
                    pairs,
                    candidates,
                    terms: None,
                });
            }
        } else {
            for outer in triangle_ranges(n, atom_pieces) {
                let cands: u64 = outer.clone().map(|i| (n - i - 1) as u64).sum();
                computes.push(ComputeSpec {
                    kind: ComputeKind::SelfNb { patch: p },
                    patches: vec![p],
                    outer,
                    migratable: true,
                    work: costmodel::nonbonded_work(0, cands),
                    pairs: 0,
                    candidates: cands,
                    terms: None,
                });
            }
        }
    }

    // Pair computes; face-adjacent ones optionally split (§4.2.1). Face
    // pairs are split by atom count; on top of that, *any* pair compute
    // exceeding the grain target is split — with a dense lipid slab, edge
    // pairs inside the slab can carry face-pair-sized work too.
    for (a, b) in grid.neighbor_pairs() {
        let na = arrays[a].pos.len();
        let atom_pieces = if config.split_face_pairs && grid.face_adjacent(a, b) {
            na.div_ceil(config.pair_split_atoms).max(1)
        } else {
            1
        };
        if count {
            let per_atom = count_pair_per_atom(&arrays[a], &arrays[b], &cell, cutoff);
            let weights: Vec<f64> = per_atom
                .iter()
                .map(|&(pr, ca)| costmodel::nonbonded_work(pr, ca))
                .collect();
            let total: f64 = weights.iter().sum();
            let pieces = if config.split_face_pairs {
                atom_pieces
                    .max((total / config.target_grain_work).ceil() as usize)
                    .max(1)
            } else {
                atom_pieces
            };
            for outer in balanced_ranges(&weights, pieces) {
                let pairs: u64 = per_atom[outer.clone()].iter().map(|&(pr, _)| pr).sum();
                let candidates: u64 = per_atom[outer.clone()].iter().map(|&(_, ca)| ca).sum();
                computes.push(ComputeSpec {
                    kind: ComputeKind::PairNb { a, b },
                    patches: vec![a, b],
                    outer,
                    migratable: true,
                    work: costmodel::nonbonded_work(pairs, candidates),
                    pairs,
                    candidates,
                    terms: None,
                });
            }
        } else {
            for outer in even_ranges(na, atom_pieces) {
                let cands = (outer.len() * arrays[b].pos.len()) as u64;
                computes.push(ComputeSpec {
                    kind: ComputeKind::PairNb { a, b },
                    patches: vec![a, b],
                    outer,
                    migratable: true,
                    work: costmodel::nonbonded_work(0, cands),
                    pairs: 0,
                    candidates: cands,
                    terms: None,
                });
            }
        }
    }

    // Bonded terms, grouped by base patch and intra/inter (§4.2.2).
    let topo = &system.topology;
    let atom_patch: Vec<PatchId> = {
        let mut v = vec![0usize; topo.n_atoms()];
        for (p, atoms) in grid.atoms.iter().enumerate() {
            for &a in atoms {
                v[a as usize] = p;
            }
        }
        v
    };
    let n_patches = grid.n_patches();
    let mut intra: Vec<BondedTerms> = vec![BondedTerms::default(); n_patches];
    let mut inter: Vec<BondedTerms> = vec![BondedTerms::default(); n_patches];
    let mut inter_patches: Vec<std::collections::BTreeSet<PatchId>> =
        vec![Default::default(); n_patches];

    let mut place = |atoms: &[AtomId], idx: u32, pick: fn(&mut BondedTerms) -> &mut Vec<u32>| {
        let base = atom_patch[atoms[0] as usize];
        let all_same = atoms.iter().all(|&a| atom_patch[a as usize] == base);
        if all_same {
            pick(&mut intra[base]).push(idx);
        } else {
            pick(&mut inter[base]).push(idx);
            for &a in atoms {
                inter_patches[base].insert(atom_patch[a as usize]);
            }
        }
    };
    for (i, t) in topo.bonds.iter().enumerate() {
        place(&[t.a, t.b], i as u32, |b| &mut b.bonds);
    }
    for (i, t) in topo.angles.iter().enumerate() {
        place(&[t.a, t.b, t.c], i as u32, |b| &mut b.angles);
    }
    for (i, t) in topo.dihedrals.iter().enumerate() {
        place(&[t.a, t.b, t.c, t.d], i as u32, |b| &mut b.dihedrals);
    }
    for (i, t) in topo.impropers.iter().enumerate() {
        place(&[t.a, t.b, t.c, t.d], i as u32, |b| &mut b.impropers);
    }
    for (i, r) in topo.restraints.iter().enumerate() {
        // Single-atom terms are intra by construction.
        place(&[r.atom], i as u32, |b| &mut b.restraints);
    }

    for p in 0..n_patches {
        if !intra[p].is_empty() {
            let terms = std::mem::take(&mut intra[p]);
            computes.push(ComputeSpec {
                kind: ComputeKind::BondedIntra { patch: p },
                patches: vec![p],
                outer: 0..0,
                migratable: config.migratable_bonded,
                work: terms.work(),
                pairs: 0,
                candidates: 0,
                terms: Some(terms),
            });
        }
        if !inter[p].is_empty() {
            let terms = std::mem::take(&mut inter[p]);
            let patches: Vec<PatchId> = inter_patches[p].iter().copied().collect();
            computes.push(ComputeSpec {
                kind: ComputeKind::BondedInter { patch: p },
                patches,
                outer: 0..0,
                migratable: false,
                work: terms.work(),
                pairs: 0,
                candidates: 0,
                terms: Some(terms),
            });
        }
    }

    Decomposition { grid, computes }
}

impl Decomposition {
    /// Total modeled work per step (the single-processor step cost, minus
    /// integration).
    pub fn total_compute_work(&self) -> f64 {
        self.computes.iter().map(|c| c.work).sum()
    }

    /// Total integration work per step.
    pub fn total_integration_work(&self) -> f64 {
        self.grid
            .atoms
            .iter()
            .map(|a| a.len() as f64 * costmodel::WORK_PER_ATOM_INTEGRATION)
            .sum()
    }

    /// Modeled single-processor seconds per step on `machine`.
    pub fn ideal_step_time(&self, machine: &machine::MachineModel) -> f64 {
        machine.task_time(self.total_compute_work() + self.total_integration_work())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use machine::presets;

    fn tiny_system() -> System {
        molgen::SystemBuilder::new(molgen::SystemSpec {
            name: "decomp-test",
            box_lengths: Vec3::new(34.0, 34.0, 34.0),
            target_atoms: 3600,
            protein_chains: 1,
            protein_chain_len: 60,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 4,
        })
        .build()
    }

    #[test]
    fn triangle_ranges_cover_and_balance() {
        for (n, pieces) in [(100, 3), (7, 2), (50, 5), (3, 4)] {
            let ranges = triangle_ranges(n, pieces);
            assert_eq!(ranges.len(), pieces);
            // Coverage: concatenation is exactly 0..n.
            let mut prev = 0;
            for r in &ranges {
                assert_eq!(r.start, prev);
                prev = r.end;
            }
            assert_eq!(prev, n);
        }
        // Balance: pair counts per piece within 2x of each other for large n.
        let n = 1000;
        let ranges = triangle_ranges(n, 4);
        let pair_count =
            |r: &Range<usize>| -> usize { r.clone().map(|i| n - i - 1).sum::<usize>() };
        let counts: Vec<usize> = ranges.iter().map(pair_count).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 2 * min, "triangle split unbalanced: {counts:?}");
    }

    #[test]
    fn even_ranges_cover() {
        let ranges = even_ranges(10, 3);
        assert_eq!(ranges, vec![0..3, 3..6, 6..10]);
        assert_eq!(even_ranges(0, 2), vec![0..0, 0..0]);
    }

    #[test]
    fn fourteen_computes_per_patch_before_splitting() {
        let sys = tiny_system();
        // No self splitting, no face-pair splitting.
        let cfg = SimConfig::builder(4, presets::ideal())
            .grainsize(usize::MAX, false, 112)
            .build()
            .unwrap();
        let d = build(&sys, &cfg);
        let n_patches = d.grid.n_patches();
        let nb = d
            .computes
            .iter()
            .filter(|c| matches!(c.kind, ComputeKind::SelfNb { .. } | ComputeKind::PairNb { .. }))
            .count();
        // On a fully periodic grid with ≥3 patches per axis: exactly 14/patch.
        if d.grid.dims.iter().all(|&d| d >= 3) {
            assert_eq!(nb, 14 * n_patches);
        } else {
            assert!(nb >= n_patches); // degenerate small grids dedup pairs
        }
    }

    #[test]
    fn splitting_multiplies_compute_count() {
        let sys = tiny_system();
        let cfg = SimConfig::builder(4, presets::ideal())
            .grainsize(usize::MAX, false, 112)
            .build()
            .unwrap();
        let before = build(&sys, &cfg).computes.len();
        let cfg2 = SimConfig::new(4, presets::ideal()); // defaults split
        let after = build(&sys, &cfg2).computes.len();
        assert!(after > before, "{after} vs {before}");
    }

    #[test]
    fn split_pieces_conserve_pair_counts() {
        let sys = tiny_system();
        let cfg = SimConfig::builder(4, presets::ideal())
            .grainsize(usize::MAX, false, 112)
            .build()
            .unwrap();
        let unsplit = build(&sys, &cfg);
        let cfg2 = SimConfig::new(4, presets::ideal());
        let split = build(&sys, &cfg2);
        let pairs = |d: &Decomposition| -> u64 { d.computes.iter().map(|c| c.pairs).sum() };
        assert_eq!(pairs(&unsplit), pairs(&split));
    }

    #[test]
    fn splitting_reduces_max_grainsize() {
        let sys = tiny_system();
        let cfg = SimConfig::builder(4, presets::ideal())
            .grainsize(usize::MAX, false, 112)
            .build()
            .unwrap();
        let unsplit = build(&sys, &cfg);
        let cfg2 = SimConfig::new(4, presets::ideal());
        let split = build(&sys, &cfg2);
        let max_work = |d: &Decomposition| -> f64 {
            d.computes.iter().map(|c| c.work).fold(0.0, f64::max)
        };
        assert!(max_work(&split) < max_work(&unsplit));
    }

    #[test]
    fn bonded_terms_partition_exactly_once() {
        let sys = tiny_system();
        let cfg = SimConfig::new(4, presets::ideal());
        let d = build(&sys, &cfg);
        let mut bonds = 0usize;
        let mut angles = 0usize;
        let mut dihedrals = 0usize;
        let mut impropers = 0usize;
        let mut seen_bonds = std::collections::BTreeSet::new();
        for c in &d.computes {
            if let Some(t) = &c.terms {
                bonds += t.bonds.len();
                angles += t.angles.len();
                dihedrals += t.dihedrals.len();
                impropers += t.impropers.len();
                for &b in &t.bonds {
                    assert!(seen_bonds.insert(b), "bond {b} assigned twice");
                }
            }
        }
        assert_eq!(bonds, sys.topology.bonds.len());
        assert_eq!(angles, sys.topology.angles.len());
        assert_eq!(dihedrals, sys.topology.dihedrals.len());
        assert_eq!(impropers, sys.topology.impropers.len());
    }

    #[test]
    fn inter_bonded_is_nonmigratable_and_lists_patches() {
        let sys = tiny_system();
        let cfg = SimConfig::new(4, presets::ideal());
        let d = build(&sys, &cfg);
        let mut saw_inter = false;
        for c in &d.computes {
            match c.kind {
                ComputeKind::BondedInter { patch } => {
                    saw_inter = true;
                    assert!(!c.migratable);
                    assert!(c.patches.contains(&patch));
                    assert!(c.patches.len() >= 2, "inter compute spans ≥2 patches");
                }
                ComputeKind::BondedIntra { .. } => {
                    assert!(c.migratable); // default config: §4.2.2 on
                    assert_eq!(c.patches.len(), 1);
                }
                _ => {}
            }
        }
        assert!(saw_inter, "test system should have inter-patch bonds");
    }

    #[test]
    fn migratable_bonded_flag_respected() {
        let sys = tiny_system();
        let cfg = SimConfig::builder(4, presets::ideal())
            .migratable_bonded(false)
            .build()
            .unwrap();
        let d = build(&sys, &cfg);
        for c in &d.computes {
            if matches!(c.kind, ComputeKind::BondedIntra { .. }) {
                assert!(!c.migratable);
            }
        }
    }

    #[test]
    fn work_totals_are_positive_and_consistent() {
        let sys = tiny_system();
        let cfg = SimConfig::new(4, presets::ideal());
        let d = build(&sys, &cfg);
        assert!(d.total_compute_work() > 0.0);
        assert!(d.total_integration_work() > 0.0);
        let t = d.ideal_step_time(&presets::asci_red());
        assert!(t > 0.0 && t.is_finite());
    }
}
