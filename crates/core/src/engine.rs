//! The parallel simulation engine: builds the decomposition, places objects,
//! runs measurement phases on a `charmrt::Runtime` backend, and drives the
//! three-stage load-balancing pipeline of §3.2.
//!
//! A *phase* is a fresh runtime instantiation (reducer + home patches +
//! proxies + computes for the current placement) run for a fixed number of
//! timesteps. Between phases the load balancer consumes the measured object
//! loads and produces a new placement; proxies are rebuilt for the new
//! placement exactly as NAMD "moves the objects, constructs new proxies as
//! necessary, and resumes the simulation".
//!
//! The timestep protocol, proxy/multicast wiring, grainsize control, and the
//! measure → greedy → refine cycle are written once against the [`Runtime`]
//! trait: `SimConfig::backend` selects whether a phase executes on the
//! deterministic DES (modeled loads) or on real worker threads (measured
//! wall-clock loads).

use crate::chares::{CkptChare, ComputeChare, Entries, HomePatch, ProxyPatch, Reducer, RunParams};
use crate::config::{Backend, ForceMode, LbStrategy, SimConfig};
use crate::costmodel;
use crate::decomp::{self, Decomposition};
use crate::nbcache::{PairlistCache, PairlistStats};
use crate::state::{Shared, SimState, StepAcc};
use charmrt::{Des, ObjId, Pe, Runtime, SummaryStats, Trace, WireCodec, PRIO_NORMAL};
use mdcore::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A phase ended by a kill fault instead of completing: a PE died, the
/// protocol can never reach quiescence, and — unlike a dropped message —
/// redelivery cannot repair it. Recover from a checkpoint instead
/// ([`crate::recovery::run_with_recovery`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCrash {
    /// The PE the fault plan killed.
    pub pe: Pe,
    /// Makespan up to crash detection, seconds.
    pub makespan: f64,
}

impl std::fmt::Display for PhaseCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phase crashed: PE {} was killed by the fault plan after {:.6}s",
            self.pe, self.makespan
        )
    }
}

impl std::error::Error for PhaseCrash {}

/// A stable structural fingerprint of a system: FNV-1a over the topology's
/// term parameters (bit patterns), counts, and the box geometry.
/// Checkpoint compatibility checks use it to refuse restarting into a
/// different molecular system. Deliberately not `DefaultHasher`, whose
/// output is not stable across Rust releases — this hash is persisted.
pub fn topology_hash(system: &System) -> u64 {
    struct Fnv(u64);
    impl Fnv {
        fn eat(&mut self, x: u64) {
            for b in x.to_le_bytes() {
                self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        fn eat_f(&mut self, x: f64) {
            self.eat(x.to_bits());
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    let topo = &system.topology;
    h.eat(topo.atoms.len() as u64);
    for a in &topo.atoms {
        h.eat_f(a.mass);
        h.eat_f(a.charge);
        h.eat(a.lj_type as u64);
    }
    h.eat(topo.bonds.len() as u64);
    for b in &topo.bonds {
        h.eat(b.a as u64);
        h.eat(b.b as u64);
        h.eat_f(b.k);
        h.eat_f(b.r0);
    }
    h.eat(topo.angles.len() as u64);
    for t in &topo.angles {
        h.eat(t.a as u64);
        h.eat(t.b as u64);
        h.eat(t.c as u64);
        h.eat_f(t.k);
        h.eat_f(t.theta0);
    }
    h.eat(topo.dihedrals.len() as u64);
    for d in &topo.dihedrals {
        h.eat(d.a as u64);
        h.eat(d.b as u64);
        h.eat(d.c as u64);
        h.eat(d.d as u64);
        h.eat_f(d.k);
        h.eat(d.n as u64);
        h.eat_f(d.delta);
    }
    h.eat(topo.impropers.len() as u64);
    for d in &topo.impropers {
        h.eat(d.a as u64);
        h.eat(d.b as u64);
        h.eat(d.c as u64);
        h.eat(d.d as u64);
        h.eat_f(d.k);
        h.eat_f(d.psi0);
    }
    h.eat(topo.restraints.len() as u64);
    for r in &topo.restraints {
        h.eat(r.atom as u64);
        h.eat_f(r.k);
        h.eat_f(r.target.x);
        h.eat_f(r.target.y);
        h.eat_f(r.target.z);
    }
    h.eat_f(system.cell.lengths.x);
    h.eat_f(system.cell.lengths.y);
    h.eat_f(system.cell.lengths.z);
    h.0
}

/// Measurements from one phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Virtual seconds per timestep (makespan / steps).
    pub time_per_step: f64,
    /// Phase makespan, virtual seconds.
    pub total_time: f64,
    pub n_steps: usize,
    /// Summary profile for the phase.
    pub stats: SummaryStats,
    /// Full trace if tracing was enabled.
    pub trace: Option<Trace>,
    /// Measured load per compute (seconds over the phase), indexed like
    /// `decomp.computes`. Non-migratable computes report 0 here (their time
    /// is in `background`).
    pub compute_loads: Vec<f64>,
    /// Per-PE background load over the phase.
    pub background: Vec<f64>,
    /// Per-step energies (Real mode only; empty in Counted mode).
    pub energies: Vec<StepAcc>,
    /// Pair-list cache counters accumulated during this phase (zero when
    /// the cache is disabled or in Counted mode).
    #[deprecated(note = "use `PhaseResult::metrics.pairlist` (builds/hits/executions)")]
    pub pairlist: PairlistStats,
    /// Every per-phase counter in one place: pair-list cache activity,
    /// the message-conservation ledger, checkpoint barriers, and the
    /// critical path. Replaces the scattered `pairlist` field and direct
    /// `stats` ledger reads.
    pub metrics: profile::PhaseMetrics,
    /// Entry ids for interpreting `stats`/`trace`.
    pub entries: Entries,
}

/// A full benchmark run: one phase per LB stage.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    pub phases: Vec<PhaseResult>,
    /// Objects migrated at each LB stage.
    pub migrations: Vec<usize>,
}

impl BenchmarkRun {
    /// The post-load-balancing steady-state step time.
    pub fn final_time_per_step(&self) -> f64 {
        self.phases.last().expect("at least one phase").time_per_step
    }

    /// The step time before any load balancing.
    pub fn initial_time_per_step(&self) -> f64 {
        self.phases.first().expect("at least one phase").time_per_step
    }
}

/// The parallel MD engine.
pub struct Engine {
    pub config: SimConfig,
    pub shared: Arc<Shared>,
    /// Home PE of each patch (static for a run; from RCB).
    pub patch_pe: Vec<Pe>,
    /// Current PE of each compute.
    pub placement: Vec<Pe>,
    /// Per-compute load-drift multipliers (Counted mode; all 1.0 without
    /// drift).
    pub drift: Vec<f64>,
    /// Deterministic RNG state for the drift random walk.
    drift_rng: u64,
    /// Global completed position updates across all Real-mode phases (a
    /// phase of `n` timesteps completes `n - 1` updates). This is the step
    /// counter checkpoints capture and the checkpoint/migration cadences
    /// key on.
    pub steps_done: usize,
    /// Measured per-compute loads from the last phase harvest, stored into
    /// snapshots so the load balancer does not restart cold after recovery.
    last_loads: Vec<f64>,
    /// Measured per-PE background loads from the last phase harvest.
    last_background: Vec<f64>,
    /// Opaque caller payload carried in snapshots (the CLI stashes
    /// thermostat parameters here so a restart refuses a changed
    /// thermostat).
    pub ckpt_extra: Vec<u8>,
    /// Observability registry (`None` = profiling off, the default). When
    /// attached, every phase records a [`profile::PhaseProfile`] (tracing
    /// is force-enabled for captured phases) and every load-balancer
    /// decision an [`profile::LbAudit`]; with a directory attached the
    /// registry streams Perfetto-loadable trace files and JSONL reports.
    pub metrics: Option<profile::MetricsRegistry>,
}

impl Engine {
    /// Build the decomposition and the initial static placement:
    /// patches via recursive coordinate bisection (weights = atom counts),
    /// computes on the home PE of their first patch — "distributed to a
    /// processor owning at least one home patch".
    pub fn new(system: System, config: SimConfig) -> Engine {
        let decomp = decomp::build(&system, &config);
        Engine::with_decomposition(system, decomp, config)
    }

    /// Like [`Engine::new`] but reusing a prebuilt decomposition — the
    /// decomposition (and its pair counting) is independent of the PE count,
    /// so scaling sweeps build it once and share it across configurations.
    pub fn with_decomposition(
        system: System,
        decomp: Decomposition,
        config: SimConfig,
    ) -> Engine {
        assert!(decomp.grid.n_patches() > 0, "decomposition must cover the system");
        // Struct-literal configurations get the same typed diagnostics as
        // the builder, just as a panic instead of a Result.
        config.validate().unwrap_or_else(|e| panic!("invalid SimConfig: {e}"));
        let (patch_pe, placement) = Self::static_placement(&decomp, config.n_pes);
        let n = system.n_atoms();
        // Real force mode + full electrostatics: the slab chares evaluate
        // the actual PME reciprocal sum (requires an Ewald-mode force field
        // so the real-space kernels use erfc screening).
        let pme_real = match (&config.force_mode, config.pme) {
            (ForceMode::Real, Some(p)) => {
                let beta = system.forcefield.ewald_beta.expect(
                    "Real-mode PME needs ForceField::with_ewald (erfc real space)",
                );
                let params =
                    pme::mesh::PmeParams::for_cell(&system.cell, beta, p.mesh_spacing);
                Some(std::sync::Mutex::new(crate::state::PmeReal {
                    solver: pme::mesh::Pme::new(&system.cell, params),
                    ewald: pme::ewald::EwaldParams {
                        beta,
                        r_cut: system.forcefield.cutoff,
                        kmax: 0,
                    },
                    charges: system.charges(),
                    forces: vec![Vec3::ZERO; n],
                    rounds_done: 0,
                }))
            }
            _ => None,
        };
        let n_computes = decomp.computes.len();
        let shared = Arc::new(Shared {
            state: std::sync::RwLock::new(SimState { system, forces: vec![Vec3::ZERO; n] }),
            energies: std::sync::Mutex::new(Vec::new()),
            decomp,
            pme_real,
            nb_cache: PairlistCache::new(n_computes),
        });
        Engine {
            config,
            shared,
            patch_pe,
            placement,
            drift: vec![1.0; n_computes],
            drift_rng: 0x5EED_5EED,
            steps_done: 0,
            last_loads: Vec::new(),
            last_background: Vec::new(),
            ckpt_extra: Vec::new(),
            metrics: None,
        }
    }

    /// Attach (or detach) the observability registry. See
    /// [`Engine::metrics`].
    pub fn set_metrics(&mut self, metrics: Option<profile::MetricsRegistry>) {
        self.metrics = metrics;
    }

    /// Advance the slow load drift by one phase: every compute's work
    /// multiplier takes a step of a multiplicative random walk with relative
    /// standard deviation `config.load_drift`, clamped to [0.25, 4].
    pub fn advance_load_drift(&mut self) {
        let sigma = self.config.load_drift;
        if sigma <= 0.0 {
            return;
        }
        for d in &mut self.drift {
            // SplitMix64 → approximately N(0,1) via sum of uniforms.
            let mut g = 0.0;
            for _ in 0..4 {
                self.drift_rng = self.drift_rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.drift_rng;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                g += (z as f64 / u64::MAX as f64) - 0.5;
            }
            let noise = g * (12.0f64 / 4.0).sqrt(); // var(U-½)=1/12, 4 summed
            *d = (*d * (1.0 + sigma * noise)).clamp(0.25, 4.0);
        }
    }

    /// The initial static placement: patches via RCB (atom-count weights),
    /// computes on the home PE of their first patch.
    fn static_placement(decomp: &Decomposition, n_pes: usize) -> (Vec<Pe>, Vec<Pe>) {
        let centers: Vec<[f64; 3]> = (0..decomp.grid.n_patches())
            .map(|p| {
                let c = decomp.grid.center(p);
                [c.x, c.y, c.z]
            })
            .collect();
        let weights = decomp.grid.patch_weights();
        let patch_pe = lb::rcb(&centers, &weights, n_pes);
        let placement: Vec<Pe> =
            decomp.computes.iter().map(|c| patch_pe[c.patches[0]]).collect();
        (patch_pe, placement)
    }

    /// Atom migration between measurement phases: re-bin every atom into
    /// its current patch and rebuild the compute objects (NAMD performs the
    /// same migration at pairlist updates, where the patch margin has been
    /// consumed by atomic motion). Placements reset to the static rule —
    /// the next load-balancing cycle re-optimizes them, exactly as the
    /// periodic refinement of §3.2 "account\[s\] for the slow changes of the
    /// simulation".
    pub fn migrate_atoms(&mut self) {
        let shared = Arc::get_mut(&mut self.shared)
            .expect("migrate_atoms must run between phases (no live engine objects)");
        let decomp =
            decomp::build(&shared.state.get_mut().expect("state lock poisoned").system, &self.config);
        shared.decomp = decomp;
        // Patch membership changed: every cached candidate list and SoA
        // buffer is indexed by stale atom slots, so drop the whole cache.
        // Entries re-prime (gather + list build) on the next step.
        shared.nb_cache = PairlistCache::new(shared.decomp.computes.len());
        // The compute count can change with the new binning; keep the drift
        // multipliers index-aligned (new computes start at nominal load).
        self.drift.resize(shared.decomp.computes.len(), 1.0);
        let (patch_pe, placement) = Self::static_placement(&shared.decomp, self.config.n_pes);
        self.patch_pe = patch_pe;
        self.placement = placement;
    }

    /// Capture the engine's complete resumable state as a checkpoint
    /// snapshot: live positions/velocities (read under the state lock), the
    /// global step counter, the drift RNG stream, the last measured loads,
    /// and the caller's extra payload.
    pub fn snapshot(&self) -> ckpt::Snapshot {
        let st = self.shared.state.read().expect("state lock poisoned");
        ckpt::Snapshot {
            step: self.steps_done as u64,
            topo_hash: topology_hash(&st.system),
            cutoff: st.system.forcefield.cutoff,
            dt_fs: self.config.dt_fs,
            n_pes: self.config.n_pes as u64,
            box_lengths: [
                st.system.cell.lengths.x,
                st.system.cell.lengths.y,
                st.system.cell.lengths.z,
            ],
            positions: st.system.positions.iter().map(|p| [p.x, p.y, p.z]).collect(),
            velocities: st.system.velocities.iter().map(|v| [v.x, v.y, v.z]).collect(),
            drift_rng: self.drift_rng,
            drift: self.drift.clone(),
            loads: self.last_loads.clone(),
            background: self.last_background.clone(),
            extra: self.ckpt_extra.clone(),
        }
    }

    /// Restore the engine to a snapshot's state. Refuses (with a named
    /// error) a snapshot taken of a different system or run configuration.
    /// Rebuilds the decomposition and pair-list caches from the restored
    /// positions — checkpoints are taken at atom-migration boundaries, so
    /// this rebuild reproduces exactly the decomposition the uninterrupted
    /// run built at the same global step, which is what makes the resumed
    /// trajectory bit-identical. Must run between phases (no live runtime).
    pub fn restore(&mut self, snap: &ckpt::Snapshot) -> Result<(), ckpt::CkptError> {
        {
            let st = self.shared.state.read().expect("state lock poisoned");
            snap.check_compatible(
                topology_hash(&st.system),
                st.system.forcefield.cutoff,
                self.config.dt_fs,
                self.config.n_pes,
                [
                    st.system.cell.lengths.x,
                    st.system.cell.lengths.y,
                    st.system.cell.lengths.z,
                ],
            )?;
            if snap.positions.len() != st.system.n_atoms()
                || snap.velocities.len() != st.system.n_atoms()
            {
                return Err(ckpt::CkptError::ConfigMismatch(format!(
                    "atom count: snapshot has {} positions / {} velocities, system has {}",
                    snap.positions.len(),
                    snap.velocities.len(),
                    st.system.n_atoms()
                )));
            }
        }
        let shared = Arc::get_mut(&mut self.shared)
            .expect("restore must run between phases (no live engine objects)");
        {
            let st = shared.state.get_mut().expect("state lock poisoned");
            for (p, s) in st.system.positions.iter_mut().zip(&snap.positions) {
                *p = Vec3::new(s[0], s[1], s[2]);
            }
            for (v, s) in st.system.velocities.iter_mut().zip(&snap.velocities) {
                *v = Vec3::new(s[0], s[1], s[2]);
            }
            // Forces are re-evaluated by the next phase's bootstrap step.
            for f in &mut st.forces {
                *f = Vec3::ZERO;
            }
        }
        let decomp = decomp::build(
            &shared.state.get_mut().expect("state lock poisoned").system,
            &self.config,
        );
        shared.decomp = decomp;
        shared.nb_cache = PairlistCache::new(shared.decomp.computes.len());
        let (patch_pe, placement) = Self::static_placement(&shared.decomp, self.config.n_pes);
        self.patch_pe = patch_pe;
        self.placement = placement;
        self.drift_rng = snap.drift_rng;
        self.drift = snap.drift.clone();
        self.drift.resize(self.shared.decomp.computes.len(), 1.0);
        self.steps_done = snap.step as usize;
        self.last_loads = snap.loads.clone();
        self.last_background = snap.background.clone();
        self.ckpt_extra = snap.extra.clone();
        Ok(())
    }

    /// The decomposition (read-only).
    pub fn decomp(&self) -> &Decomposition {
        &self.shared.decomp
    }

    /// Run one phase of `n_steps` timesteps under the current placement, on
    /// the backend selected by [`SimConfig::backend`]. Panics if a kill
    /// fault crashes the phase — use [`Engine::try_run_phase`] to recover.
    pub fn run_phase(&mut self, n_steps: usize) -> PhaseResult {
        self.try_run_phase(n_steps)
            .unwrap_or_else(|crash| panic!("unrecovered crash: {crash}"))
    }

    /// Like [`Engine::run_phase`], but a kill fault surfaces as
    /// [`PhaseCrash`] instead of panicking. The crashed runtime is
    /// abandoned; the shared state may hold a partially integrated step —
    /// recover with [`Engine::restore`].
    pub fn try_run_phase(&mut self, n_steps: usize) -> Result<PhaseResult, PhaseCrash> {
        match self.config.backend {
            Backend::Des => {
                let mut rt = Des::new(self.config.n_pes, self.config.machine);
                self.try_run_phase_on(&mut rt, n_steps)
            }
            #[cfg(feature = "threads")]
            Backend::Threads => {
                let mut rt = charmrt::ThreadRuntime::new(self.config.n_pes);
                self.try_run_phase_on(&mut rt, n_steps)
            }
            #[cfg(not(feature = "threads"))]
            Backend::Threads => panic!(
                "Backend::Threads needs namd-core's `threads` feature, \
                 which is disabled in this build"
            ),
            Backend::Proc => {
                let mut rt = charmrt::ProcRuntime::new(self.config.n_pes);
                if let Some(dir) = &self.config.socket_dir {
                    rt.set_socket_dir(dir.clone());
                }
                self.try_run_phase_on(&mut rt, n_steps)
            }
        }
    }

    /// Run one phase on a caller-provided (fresh) runtime backend,
    /// panicking on a crash. See [`Engine::try_run_phase_on`].
    pub fn run_phase_on<R: Runtime>(&mut self, rt: &mut R, n_steps: usize) -> PhaseResult {
        self.try_run_phase_on(rt, n_steps)
            .unwrap_or_else(|crash| panic!("unrecovered crash: {crash}"))
    }

    /// Run one phase on a caller-provided (fresh) runtime backend. The
    /// whole protocol — registration at the current placement, the timestep
    /// messages, measurement harvest — is backend-agnostic; only the
    /// meaning of a second (virtual vs wall-clock) differs.
    pub fn try_run_phase_on<R: Runtime>(
        &mut self,
        rt: &mut R,
        n_steps: usize,
    ) -> Result<PhaseResult, PhaseCrash> {
        assert!(n_steps > 0);
        // Re-validate each phase: the config is a public field, so a
        // caller may have mutated it since construction.
        self.config.validate().unwrap_or_else(|e| panic!("invalid SimConfig: {e}"));
        // Profiled phases need the trace even when `cfg.tracing` is off.
        let profiling = self.metrics.as_ref().is_some_and(|m| m.wants_trace());
        let cfg = &self.config;
        let decomp = &self.shared.decomp;
        let n_patches = decomp.grid.n_patches();
        let n_computes = decomp.computes.len();

        if cfg.force_mode == ForceMode::Real {
            *self.shared.energies.lock().unwrap() = vec![StepAcc::default(); n_steps];
            if let Some(pme) = &self.shared.pme_real {
                // Fresh slab chares restart their round counters each phase.
                pme.lock().unwrap().rounds_done = 0;
            }
        }

        let entries = Entries::register(rt);
        rt.set_tracing(cfg.tracing || profiling);
        if !cfg.pe_speeds.is_empty() {
            rt.set_pe_speeds(cfg.pe_speeds.clone());
        }
        rt.set_schedule_policy(cfg.schedule);
        if let Some(plan) = &cfg.fault_plan {
            rt.set_fault_plan(plan.clone());
        }

        // In-phase checkpointing: Real mode with an interval and a target
        // directory. Refused alongside modeled PME — the slab round
        // counters are not captured by snapshots.
        let ckpt_dir = if cfg.force_mode == ForceMode::Real && cfg.checkpoint_interval > 0 {
            cfg.checkpoint_dir.clone()
        } else {
            None
        };
        assert!(
            ckpt_dir.is_none() || cfg.pme.is_none(),
            "in-phase checkpointing is incompatible with modeled PME \
             (slab round state is not captured in snapshots)"
        );
        let params = RunParams {
            n_steps,
            dt_fs: cfg.dt_fs,
            force_mode: cfg.force_mode,
            multicast: cfg.multicast,
            pme_every: cfg.pme.map_or(0, |p| p.every.max(1)),
            pairlist_cache: cfg.pairlist_cache,
            pairlist_margin: cfg.pairlist_margin,
            checkpoint_every: if ckpt_dir.is_some() { cfg.checkpoint_interval } else { 0 },
            step_offset: self.steps_done,
        };
        let pairlist_before = self.shared.nb_cache.totals();

        // ---- Deterministic object-id layout -------------------------------
        // reducer = 0; patch p = 1+p; proxy k = 1+P+k; compute j = 1+P+NP+j.
        let mut proxy_keys: std::collections::BTreeSet<(usize, Pe)> = Default::default();
        for (j, c) in decomp.computes.iter().enumerate() {
            let pe = self.placement[j];
            for &p in &c.patches {
                if self.patch_pe[p] != pe {
                    proxy_keys.insert((p, pe));
                }
            }
        }
        // Number proxies in sorted key order so ids match registration order.
        let proxy_index: BTreeMap<(usize, Pe), usize> =
            proxy_keys.into_iter().enumerate().map(|(k, key)| (key, k)).collect();
        let n_proxies = proxy_index.len();
        let reducer_id = ObjId(0);
        let patch_id = |p: usize| ObjId(1 + p as u32);
        let proxy_id = |k: usize| ObjId(1 + n_patches as u32 + k as u32);
        let compute_id = |j: usize| ObjId(1 + (n_patches + n_proxies) as u32 + j as u32);

        // Local compute lists per (patch, pe).
        let mut local: BTreeMap<(usize, Pe), Vec<ObjId>> = BTreeMap::new();
        for (j, c) in decomp.computes.iter().enumerate() {
            let pe = self.placement[j];
            for &p in &c.patches {
                local.entry((p, pe)).or_default().push(compute_id(j));
            }
        }
        // Proxies per patch (sorted by PE via BTreeMap ordering).
        let mut patch_proxies: Vec<Vec<ObjId>> = vec![Vec::new(); n_patches];
        for (&(p, _pe), &k) in &proxy_index {
            patch_proxies[p].push(proxy_id(k));
        }

        // ---- PME slab plan (ids follow the computes) -----------------------
        // Patches need their slab's ObjId at construction time, so the slab
        // layout is computed here and the objects registered after the
        // computes.
        struct SlabPlan {
            n_slabs: usize,
            fft_per_slab: f64,
            transpose_bytes: usize,
            id_base: usize,
        }
        let slab_plan = cfg.pme.map(|pme| {
            let n_slabs = pme.slabs.clamp(1, n_patches);
            let mesh_dim = |l: f64| {
                ((l / pme.mesh_spacing).ceil() as usize).next_power_of_two().max(4)
            };
            let cell = decomp.grid.cell;
            let mesh_points =
                mesh_dim(cell.lengths.x) * mesh_dim(cell.lengths.y) * mesh_dim(cell.lengths.z);
            SlabPlan {
                n_slabs,
                fft_per_slab: costmodel::fft_work(mesh_points) / n_slabs as f64,
                transpose_bytes: (mesh_points / (n_slabs * n_slabs).max(1))
                    * costmodel::BYTES_PER_MESH_POINT,
                id_base: 1 + n_patches + n_proxies + n_computes,
            }
        });
        let slab_of_patch = |p: usize| {
            slab_plan
                .as_ref()
                .map(|sp| ObjId((sp.id_base + p % sp.n_slabs) as u32))
        };
        // The checkpoint chare takes the next dense id after the slabs.
        let n_slabs = slab_plan.as_ref().map_or(0, |sp| sp.n_slabs);
        let ckpt_id = ckpt_dir
            .as_ref()
            .map(|_| ObjId((1 + n_patches + n_proxies + n_computes + n_slabs) as u32));

        // ---- Register objects in id order ---------------------------------
        let reg = rt.register(Box::new(Reducer::new(n_patches)), 0, false);
        assert_eq!(reg, reducer_id);

        for p in 0..n_patches {
            let home_pe = self.patch_pe[p];
            let locals = local.get(&(p, home_pe)).cloned().unwrap_or_default();
            let expected = locals.len() + patch_proxies[p].len();
            let obj = HomePatch::new(
                p,
                self.shared.clone(),
                entries,
                params,
                patch_proxies[p].clone(),
                locals,
                expected,
                reducer_id,
                slab_of_patch(p),
                ckpt_id,
            );
            let id = rt.register(Box::new(obj), home_pe, false);
            assert_eq!(id, patch_id(p));
        }

        for (&(p, pe), &k) in &proxy_index {
            let locals = local.get(&(p, pe)).cloned().unwrap_or_default();
            let expected = locals.len();
            debug_assert!(expected > 0, "proxy with no local computes");
            let obj = ProxyPatch::new(
                p,
                self.shared.clone(),
                entries,
                patch_id(p),
                locals,
                expected,
                decomp.grid.atoms[p].len(),
            );
            let id = rt.register(Box::new(obj), pe, false);
            assert_eq!(id, proxy_id(k));
        }

        for (j, c) in decomp.computes.iter().enumerate() {
            let pe = self.placement[j];
            let targets: Vec<(ObjId, charmrt::EntryId, usize)> = c
                .patches
                .iter()
                .map(|&p| {
                    let bytes = decomp.grid.atoms[p].len() * costmodel::BYTES_PER_ATOM;
                    if self.patch_pe[p] == pe {
                        (patch_id(p), entries.patch_forces, bytes)
                    } else {
                        let k = proxy_index[&(p, pe)];
                        (proxy_id(k), entries.proxy_forces, bytes)
                    }
                })
                .collect();
            // A compute "feeds remote patches" when any force target is a
            // proxy (its results must cross the network before some patch
            // can integrate).
            let feeds_remote =
                targets.iter().any(|&(_, e, _)| e == entries.proxy_forces)
                    || c.patches.iter().any(|&p| self.patch_pe[p] != pe);
            let exec_priority = if cfg.prioritize_remote && feeds_remote {
                charmrt::PRIO_HIGH
            } else {
                charmrt::PRIO_NORMAL
            };
            let obj = ComputeChare::new(
                j,
                self.shared.clone(),
                entries,
                params,
                targets,
                self.drift[j],
                exec_priority,
            );
            let id = rt.register(Box::new(obj), pe, c.migratable);
            assert_eq!(id, compute_id(j));
        }

        // ---- PME slab objects (full electrostatics, modeled) --------------
        if let Some(sp) = &slab_plan {
            let slab_id = |k: usize| ObjId((sp.id_base + k) as u32);
            for k in 0..sp.n_slabs {
                let peers: Vec<ObjId> =
                    (0..sp.n_slabs).filter(|&j| j != k).map(slab_id).collect();
                let patches: Vec<(ObjId, usize)> = (0..n_patches)
                    .filter(|p| p % sp.n_slabs == k)
                    .map(|p| {
                        (patch_id(p), decomp.grid.atoms[p].len() * costmodel::BYTES_PER_ATOM)
                    })
                    .collect();
                debug_assert!(!patches.is_empty());
                let obj = crate::chares::SlabChare::new(
                    self.shared.clone(),
                    entries,
                    params,
                    peers,
                    patches,
                    sp.fft_per_slab,
                    sp.transpose_bytes,
                );
                let id = rt.register(Box::new(obj), k % cfg.n_pes, false);
                assert_eq!(id, slab_id(k));
            }
        }

        // ---- Checkpoint chare (after the slabs) ---------------------------
        if let Some(dir_path) = &ckpt_dir {
            let dir = ckpt::CheckpointDir::create(dir_path)
                .unwrap_or_else(|e| panic!("checkpoint directory: {e}"));
            // Global steps at which this phase's barriers fire, in order.
            // s = 0 is excluded (chained phases repeat the boundary force
            // evaluation; the previous phase already snapshotted it).
            let steps: Vec<u64> = (1..n_steps)
                .filter(|s| (self.steps_done + s) % cfg.checkpoint_interval == 0)
                .map(|s| (self.steps_done + s) as u64)
                .collect();
            let template = self.snapshot();
            let obj = CkptChare::new(
                self.shared.clone(),
                entries,
                (0..n_patches).map(patch_id).collect(),
                steps,
                dir,
                template,
            );
            let id = rt.register(Box::new(obj), 0, false);
            assert_eq!(Some(id), ckpt_id);
        }

        // ---- Shared-state return hooks (proc backend) ---------------------
        // Per-step energies accumulate in each worker process's copy of
        // `Shared::energies`; the parent's copy (zeroed above) never sees a
        // handler, so merging every worker's block additively reproduces
        // exactly what the shared-memory backends accumulate in place.
        // No-ops on the in-process backends.
        {
            let shared = self.shared.clone();
            let harvest = Box::new(move || {
                let en = shared.energies.lock().unwrap();
                if en.is_empty() {
                    Vec::new()
                } else {
                    crate::messages::EnergiesMsg { steps: en.clone() }.pack()
                }
            });
            let shared = self.shared.clone();
            let merge =
                Box::new(move |_pe: Pe, bytes: &[u8]| -> Result<(), charmrt::WireError> {
                    if bytes.is_empty() {
                        return Ok(());
                    }
                    let msg = crate::messages::EnergiesMsg::unpack(bytes)?;
                    let mut en = shared.energies.lock().unwrap();
                    if en.len() < msg.steps.len() {
                        en.resize(msg.steps.len(), StepAcc::default());
                    }
                    for (dst, src) in en.iter_mut().zip(msg.steps.iter()) {
                        dst.merge(src);
                    }
                    Ok(())
                });
            rt.set_shared_hooks(harvest, merge);
        }

        // ---- Bootstrap and run --------------------------------------------
        for p in 0..n_patches {
            rt.inject(patch_id(p), entries.start, 0, PRIO_NORMAL, Vec::new());
        }
        // Delivery-guarantee repair loop: a run may fall short of protocol
        // completion when the fault plan loses messages (the DES drains its
        // event queue with work missing; the threads watchdog reports a
        // stall). Completion is exactly "every patch reported Done this
        // phase" — counts accumulate across repair attempts, so the target
        // is cumulative. Each retry models the senders' timeout re-sends.
        let done_target = rt.stats().entry_count[entries.done.idx()] + n_patches as u64;
        let mut total_time: f64 = 0.0;
        let mut attempts = 0u32;
        loop {
            let t = match rt.try_run() {
                Ok(t) => t,
                Err(stall) => stall.makespan,
            };
            total_time = total_time.max(t);
            if let Some(pe) = rt.crashed() {
                // A PE kill is not a delivery fault: no amount of re-sending
                // heals it. Surface the crash so a recovery driver can roll
                // back to the latest checkpoint.
                return Err(PhaseCrash {
                    pe,
                    makespan: total_time,
                });
            }
            if rt.stats().entry_count[entries.done.idx()] >= done_target {
                break;
            }
            attempts += 1;
            assert!(
                attempts < 16,
                "phase incomplete after {attempts} delivery-repair attempts \
                 (fault plan drops more than retries can heal)"
            );
            let resent = rt.redeliver_dead_letters();
            assert!(
                resent > 0,
                "phase incomplete but no dead letters to redeliver: \
                 protocol wedged without message loss"
            );
        }

        // ---- Harvest measurements -----------------------------------------
        let snapshot = rt.ldb().snapshot(rt.placement());
        let compute_loads: Vec<f64> = (0..n_computes)
            .map(|j| snapshot.objects[compute_id(j).idx()].load)
            .collect();
        let energies = if cfg.force_mode == ForceMode::Real {
            std::mem::take(&mut *self.shared.energies.lock().unwrap())
        } else {
            Vec::new()
        };

        // Remember harvest + progress for checkpoint snapshots: a snapshot
        // taken after this phase must carry the measured loads the LB would
        // have seen, and the global step counter advances by the number of
        // velocity-Verlet updates completed (n_steps evaluations chain with
        // the next phase's boundary evaluation, hence n_steps - 1 updates).
        self.last_loads = compute_loads.clone();
        self.last_background = snapshot.background.clone();
        if cfg.force_mode == ForceMode::Real {
            self.steps_done += n_steps - 1;
        }

        let stats = rt.stats().clone();
        let pairlist = self.shared.nb_cache.totals().delta_since(&pairlist_before);
        let metrics = profile::PhaseMetrics {
            pairlist: profile::PairlistCounters {
                builds: pairlist.builds,
                hits: pairlist.hits,
            },
            messages: profile::MessageCounters::from(&stats),
            // Each barrier collects one CkptReady per patch.
            checkpoints: stats.entry_count[entries.ckpt_ready.idx()] / n_patches.max(1) as u64,
            critical_path: stats.critical_path,
            wire_msgs: stats.entry_wire_msgs.iter().sum(),
            wire_bytes: stats.entry_wire_bytes.iter().sum(),
        };
        #[allow(deprecated)]
        let result = PhaseResult {
            time_per_step: total_time / n_steps as f64,
            total_time,
            n_steps,
            trace: if cfg.tracing || profiling {
                Some(rt.trace().clone())
            } else {
                None
            },
            stats,
            compute_loads,
            background: snapshot.background,
            energies,
            pairlist,
            metrics,
            entries,
        };
        if let Some(reg) = self.metrics.as_mut() {
            let backend = match self.config.backend {
                Backend::Des => "des",
                Backend::Threads => "threads",
                Backend::Proc => "proc",
            };
            if let Err(e) = reg.record_phase(
                backend,
                &result.stats,
                result.trace.as_ref(),
                total_time,
                n_steps,
                result.metrics,
            ) {
                // A full disk must not kill the simulation; the in-memory
                // profile is still intact.
                eprintln!("profile: failed to stream phase records: {e}");
            }
        }
        Ok(result)
    }

    /// Build the LB problem from a phase's measurements. Returns the problem
    /// and the mapping from problem compute index to engine compute index.
    pub fn lb_problem(&self, measured: &PhaseResult) -> (lb::LbProblem, Vec<usize>) {
        let decomp = &self.shared.decomp;
        let mut computes = Vec::new();
        let mut map = Vec::new();
        for (j, c) in decomp.computes.iter().enumerate() {
            if c.migratable {
                computes.push(lb::ComputeSpec {
                    load: measured.compute_loads[j],
                    patches: c.patches.clone(),
                });
                map.push(j);
            }
        }
        (
            lb::LbProblem {
                n_pes: self.config.n_pes,
                background: measured.background.clone(),
                patch_home: self.patch_pe.clone(),
                computes,
            },
            map,
        )
    }

    /// Apply an assignment produced for [`Engine::lb_problem`]'s problem.
    /// Returns the number of computes that moved.
    pub fn apply_assignment(&mut self, map: &[usize], assignment: &[Pe]) -> usize {
        assert_eq!(map.len(), assignment.len());
        let mut moved = 0;
        for (k, &j) in map.iter().enumerate() {
            if self.placement[j] != assignment[k] {
                self.placement[j] = assignment[k];
                moved += 1;
            }
        }
        moved
    }

    /// Record a load-balancer decision into the attached registry (no-op
    /// without one): predicted per-PE loads under the old and new
    /// placement, plus the exact migration list.
    fn audit_lb(
        &mut self,
        strategy: &str,
        problem: &lb::LbProblem,
        map: &[usize],
        current: &[Pe],
        assignment: &[Pe],
    ) {
        let Some(reg) = self.metrics.as_mut() else { return };
        let predicted = |asg: &[Pe]| {
            let mut loads = problem.background.clone();
            for (k, c) in problem.computes.iter().enumerate() {
                loads[asg[k]] += c.load;
            }
            loads
        };
        let migrations = current
            .iter()
            .zip(assignment)
            .enumerate()
            .filter(|(_, (from, to))| from != to)
            .map(|(k, (&from, &to))| profile::Migration { compute: map[k], from, to })
            .collect();
        let audit = profile::LbAudit {
            phase: reg.phases.len().saturating_sub(1),
            strategy: strategy.to_string(),
            before: predicted(current),
            after: predicted(assignment),
            migrations,
        };
        if let Err(e) = reg.record_lb(audit) {
            eprintln!("profile: failed to stream LB audit: {e}");
        }
    }

    /// Audit-log name of the configured strategy's first decision.
    fn lb_strategy_name(&self) -> &'static str {
        match self.config.lb {
            LbStrategy::None => "none",
            LbStrategy::Random => "random",
            LbStrategy::RoundRobin => "round-robin",
            LbStrategy::GreedyNoProxy => "greedy-no-proxy",
            LbStrategy::Greedy | LbStrategy::GreedyRefine => "greedy",
            LbStrategy::Diffusion => "diffusion",
        }
    }

    /// The greedy strategy's assignment for the measured loads, per the
    /// configured [`LbStrategy`]. Returns `None` for `LbStrategy::None`.
    fn strategy_assignment(
        &self,
        problem: &lb::LbProblem,
        current: &[Pe],
    ) -> Option<Vec<Pe>> {
        match self.config.lb {
            LbStrategy::None => None,
            LbStrategy::Random => Some(lb::random_assign(problem, 0xC0FFEE)),
            LbStrategy::RoundRobin => Some(lb::round_robin(problem)),
            LbStrategy::GreedyNoProxy => Some(lb::greedy_no_proxy(problem)),
            LbStrategy::Greedy => Some(lb::greedy(problem, lb::GreedyParams::default())),
            LbStrategy::Diffusion => {
                Some(lb::diffusion(problem, &current.to_vec(), lb::DiffusionParams::default()))
            }
            LbStrategy::GreedyRefine => {
                let g = lb::greedy(problem, lb::GreedyParams::default());
                let _ = current;
                Some(g)
            }
        }
    }

    /// Run the full measurement → balance → refine pipeline (§3.2):
    ///
    /// 1. a phase under the initial static placement (measurement window);
    /// 2. the configured strategy remaps migratable computes; another phase
    ///    measures the new communication-perturbed loads;
    /// 3. for [`LbStrategy::GreedyRefine`], a refinement pass fixes the
    ///    residual imbalance and a final phase measures steady state.
    pub fn run_benchmark(&mut self) -> BenchmarkRun {
        let steps = self.config.steps_per_phase;
        let mut phases = Vec::new();
        let mut migrations = Vec::new();

        let r0 = self.run_phase(steps);
        // Audit the initial static (RCB-derived) placement under the
        // measured loads, with zero migrations: imbalance budgets and
        // dashboards read the pre-LB state from the same `LbAudit` stream
        // as the strategies' decisions, for every strategy including
        // `LbStrategy::None`.
        if self.metrics.is_some() {
            let (problem, map) = self.lb_problem(&r0);
            let current: Vec<Pe> = map.iter().map(|&j| self.placement[j]).collect();
            self.audit_lb("rcb-static", &problem, &map, &current, &current);
        }
        phases.push(r0);

        if self.config.lb == LbStrategy::None {
            return BenchmarkRun { phases, migrations };
        }

        // First LB cycle on measured loads.
        let (problem, map) = self.lb_problem(phases.last().unwrap());
        let current: Vec<Pe> = map.iter().map(|&j| self.placement[j]).collect();
        if let Some(assignment) = self.strategy_assignment(&problem, &current) {
            self.audit_lb(self.lb_strategy_name(), &problem, &map, &current, &assignment);
            migrations.push(self.apply_assignment(&map, &assignment));
            phases.push(self.run_phase(steps));
        }

        // Second cycle: refinement only (GreedyRefine), on re-measured loads.
        if self.config.lb == LbStrategy::GreedyRefine {
            let (problem, map) = self.lb_problem(phases.last().unwrap());
            let current: Vec<Pe> = map.iter().map(|&j| self.placement[j]).collect();
            let (refined, _) = lb::refine(&problem, &current, lb::RefineParams::default());
            self.audit_lb("refine", &problem, &map, &current, &refined);
            migrations.push(self.apply_assignment(&map, &refined));
            phases.push(self.run_phase(steps));
        }

        BenchmarkRun { phases, migrations }
    }

    /// A long-horizon run reproducing §3.2's closing loop: the full initial
    /// pipeline (measure → greedy → re-measure → refine), then `cycles`
    /// further measurement phases under slow load drift, refining after each
    /// when `refine_periodically` is set. Returns the per-cycle step times.
    pub fn run_long(&mut self, cycles: usize, refine_periodically: bool) -> Vec<f64> {
        let initial = self.run_benchmark();
        let mut times = vec![initial.final_time_per_step()];
        for _ in 0..cycles {
            self.advance_load_drift();
            let r = self.run_phase(self.config.steps_per_phase);
            if refine_periodically {
                let (problem, map) = self.lb_problem(&r);
                let current: Vec<Pe> = map.iter().map(|&j| self.placement[j]).collect();
                let (refined, _) = lb::refine(&problem, &current, lb::RefineParams::default());
                self.audit_lb("refine", &problem, &map, &current, &refined);
                self.apply_assignment(&map, &refined);
                // The refined placement's steady-state time.
                let r2 = self.run_phase(self.config.steps_per_phase);
                times.push(r2.time_per_step);
            } else {
                times.push(r.time_per_step);
            }
        }
        times
    }

    /// Number of proxy patches the current placement requires — one per
    /// (patch, PE) pair where a compute on that PE needs a remote patch.
    /// The quantity the greedy strategy's proxy-awareness minimizes.
    pub fn proxy_count(&self) -> usize {
        let mut proxies = std::collections::BTreeSet::new();
        for (j, c) in self.shared.decomp.computes.iter().enumerate() {
            let pe = self.placement[j];
            for &p in &c.patches {
                if self.patch_pe[p] != pe {
                    proxies.insert((p, pe));
                }
            }
        }
        proxies.len()
    }

    /// Modeled GFLOPS at a given per-step time, rated the paper's way:
    /// single-processor FLOP count per step divided by parallel step time.
    pub fn gflops(&self, time_per_step: f64) -> f64 {
        let work =
            self.decomp().total_compute_work() + self.decomp().total_integration_work();
        costmodel::flops(work) / time_per_step / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use machine::presets;

    fn small_system() -> System {
        molgen::SystemBuilder::new(molgen::SystemSpec {
            name: "engine-test",
            box_lengths: Vec3::new(36.0, 36.0, 36.0),
            target_atoms: 4200,
            protein_chains: 1,
            protein_chain_len: 60,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 11,
        })
        .build()
    }

    #[test]
    fn phase_runs_and_measures() {
        let cfg = SimConfig::builder(8, presets::asci_red()).steps_per_phase(2).build().unwrap();
        let mut eng = Engine::new(small_system(), cfg);
        let r = eng.run_phase(2);
        assert!(r.time_per_step > 0.0 && r.time_per_step.is_finite());
        // Integration ran once per patch per step.
        let n_patches = eng.decomp().grid.n_patches();
        assert_eq!(
            r.stats.entry_count[r.entries.integrate.idx()],
            (n_patches * 2) as u64
        );
        // Every migratable compute accumulated some load.
        for (j, c) in eng.decomp().computes.iter().enumerate() {
            if c.migratable && c.work > 0.0 {
                assert!(r.compute_loads[j] > 0.0, "compute {j} has zero load");
            }
        }
    }

    #[test]
    fn single_pe_time_matches_ideal_plus_overhead() {
        let cfg = SimConfig::builder(1, presets::asci_red()).steps_per_phase(1).build().unwrap();
        let mut eng = Engine::new(small_system(), cfg);
        let ideal = eng.decomp().ideal_step_time(&presets::asci_red());
        let r = eng.run_phase(1);
        assert!(r.time_per_step >= ideal, "cannot beat ideal");
        // The test system is tiny (4,200 atoms at an 8 Å cutoff), so local
        // messaging overhead is a visible fraction of the step; on ApoA-I
        // scale the 1-PE overhead is ~7%.
        assert!(
            r.time_per_step < 1.35 * ideal,
            "1-PE overhead too big: {} vs ideal {ideal}",
            r.time_per_step
        );
    }

    #[test]
    fn more_pes_is_faster() {
        let sys = small_system();
        let mut times = Vec::new();
        for n_pes in [1usize, 4, 16] {
            let cfg = SimConfig::builder(n_pes, presets::asci_red()).steps_per_phase(2).build().unwrap();
            let mut eng = Engine::new(sys.clone(), cfg);
            let run = eng.run_benchmark();
            times.push(run.final_time_per_step());
        }
        assert!(times[1] < times[0], "4 PEs not faster than 1: {times:?}");
        assert!(times[2] < times[1], "16 PEs not faster than 4: {times:?}");
    }

    #[test]
    fn load_balancing_improves_step_time() {
        let cfg = SimConfig::builder(12, presets::asci_red()).steps_per_phase(2).build().unwrap();
        let mut eng = Engine::new(small_system(), cfg);
        let run = eng.run_benchmark();
        assert_eq!(run.phases.len(), 3); // initial, greedy, refine
        assert!(
            run.final_time_per_step() <= run.initial_time_per_step() * 1.02,
            "LB should not hurt: {} -> {}",
            run.initial_time_per_step(),
            run.final_time_per_step()
        );
    }

    #[test]
    fn deterministic_benchmark() {
        let run = |seed_sys: System| {
            let cfg = SimConfig::builder(6, presets::asci_red()).steps_per_phase(2).build().unwrap();
            Engine::new(seed_sys, cfg).run_benchmark().final_time_per_step()
        };
        let a = run(small_system());
        let b = run(small_system());
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn real_mode_conserves_energy() {
        let mut sys = small_system();
        sys.thermalize(100.0, 3);
        let cfg = SimConfig::builder(4, presets::ideal())
            .force_mode(ForceMode::Real)
            .dt_fs(0.5)
            .build()
            .unwrap();
        let mut eng = Engine::new(sys, cfg);
        let r = eng.run_phase(40);
        assert_eq!(r.energies.len(), 40);
        let e0 = r.energies[2].total();
        let e1 = r.energies[39].total();
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 1e-2, "parallel NVE drift {drift}: {e0} -> {e1}");
    }

    #[test]
    fn real_mode_matches_sequential_trajectory() {
        let mut sys = small_system();
        sys.thermalize(150.0, 5);
        let seq_sys = sys.clone();

        // Parallel: 3 steps of velocity Verlet on the DES.
        let cfg = SimConfig::builder(5, presets::ideal())
            .force_mode(ForceMode::Real)
            .dt_fs(1.0)
            .build()
            .unwrap();
        let mut eng = Engine::new(sys, cfg);
        let r = eng.run_phase(3);

        // Sequential reference. A 3-step parallel phase performs 3 force
        // evaluations but only 2 position updates (the final integrate does
        // not drift), so run the sequential simulator for 2 steps.
        let mut seq = seq_sys;
        let mut sim = mdcore::sim::Simulator::new(&seq, 1.0);
        let seq_energies: Vec<_> = (0..2).map(|_| sim.step(&mut seq)).collect();

        // Parallel step s evaluates the configuration after s position
        // updates, i.e. sequential step s's potential (parallel step 0 is
        // the initial configuration, which the Simulator never reports).
        for s in 1..3 {
            let par = r.energies[s].potential();
            let seq_e = seq_energies[s - 1].potential();
            let tol = 1e-6 * seq_e.abs().max(1.0);
            assert!(
                (par - seq_e).abs() < tol,
                "step {s}: parallel {par} vs sequential {seq_e}"
            );
        }

        // Positions after the phase match the sequential trajectory after
        // 2 updates; verify a sample of atoms.
        let st = eng.shared.state.read().unwrap();
        for i in (0..st.system.n_atoms()).step_by(97) {
            let d = (st.system.positions[i] - seq.positions[i]).norm();
            assert!(d < 1e-6, "atom {i} diverged by {d}");
        }
    }

    #[test]
    fn gflops_is_sane() {
        let cfg = SimConfig::builder(4, presets::asci_red()).steps_per_phase(1).build().unwrap();
        let mut eng = Engine::new(small_system(), cfg);
        let r = eng.run_phase(1);
        let g = eng.gflops(r.time_per_step);
        // 4 PEs at 48 MFLOPS each ⇒ at most ~0.19 GFLOPS.
        assert!(g > 0.0 && g < 0.2, "gflops {g}");
    }
}
