//! # namd-core — the paper's contribution
//!
//! A reproduction of NAMD's parallel structure from *Scalable Molecular
//! Dynamics for Large Biomolecular Systems* (SC 2000):
//!
//! * a **patch grid** of cubes slightly larger than the cutoff
//!   ([`patchgrid`]);
//! * **hybrid force/spatial decomposition** into ~14 migratable compute
//!   objects per patch, with grainsize-control splitting of self computes
//!   and face-adjacent pair computes ([`decomp`], §4.2.1);
//! * **home/proxy patches** and a fully message-driven timestep protocol on
//!   the `charmrt` runtime, including the costed naive/optimized coordinate
//!   multicast ([`chares`], §4.2.3);
//! * **measurement-based load balancing**: initial RCB placement, a
//!   measurement phase, the greedy strategy, and the refinement pass
//!   ([`engine`], §3.2);
//! * the **performance audit** of Table 1 ([`audit`]);
//! * a **backend-agnostic runtime layer**: every phase runs against the
//!   `charmrt::Runtime` trait, on either the deterministic DES (modeled
//!   virtual time) or real worker threads (measured wall-clock loads) —
//!   selected by `SimConfig::backend`;
//! * a sequential-looking multicore facade over the threads backend
//!   ([`parallel`], behind the default-on `threads` feature).
//!
//! ## Quick example
//!
//! ```
//! use namd_core::prelude::*;
//! use mdcore::prelude::Vec3;
//!
//! // A small synthetic system on 8 virtual processors of an ASCI-Red-like
//! // machine, with the full greedy+refine load-balancing pipeline.
//! let system = molgen::SystemBuilder::new(molgen::SystemSpec {
//!     name: "demo",
//!     box_lengths: Vec3::new(36.0, 36.0, 36.0),
//!     target_atoms: 3000,
//!     protein_chains: 1,
//!     protein_chain_len: 30,
//!     lipid_slab: None,
//!     cutoff: 8.0,
//!     seed: 1,
//! })
//! .build();
//! let config = SimConfig::new(8, machine::presets::asci_red());
//! let mut engine = Engine::new(system, config);
//! let run = engine.run_benchmark();
//! assert!(run.final_time_per_step() <= run.initial_time_per_step() * 1.05);
//! ```

// Clippy: indexed loops are kept where they mirror the mathematical
// notation of the kernels and the per-axis geometry code, and chare/builder
// constructors take positional wiring arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![allow(clippy::field_reassign_with_default)]
pub mod audit;
pub mod chares;
pub mod config;
pub mod costmodel;
pub mod decomp;
pub mod engine;
pub mod nbcache;
pub mod messages;
pub mod oracle;
#[cfg(feature = "threads")]
pub mod parallel;
pub mod patchgrid;
pub mod recovery;
#[cfg(test)]
mod scenario_tests;
pub mod state;

/// Convenient import surface: the stable entry points — [`Engine`],
/// [`ParallelSim`], [`SimConfig`] and its builder, the per-phase
/// [`PhaseMetrics`], the oracle check functions, and the observability
/// registry.
///
/// [`Engine`]: crate::engine::Engine
/// [`ParallelSim`]: crate::parallel::ParallelSim
/// [`SimConfig`]: crate::config::SimConfig
/// [`PhaseMetrics`]: profile::PhaseMetrics
pub mod prelude {
    pub use crate::audit::{audit, Audit, AuditRow};
    pub use crate::config::{
        Backend, ConfigError, ForceMode, LbStrategy, PmeSimConfig, SimConfig, SimConfigBuilder,
    };
    pub use crate::decomp::{build as build_decomposition, ComputeKind, Decomposition};
    pub use crate::engine::{topology_hash, BenchmarkRun, Engine, PhaseCrash, PhaseResult};
    pub use crate::nbcache::{PairlistCache, PairlistStats};
    pub use crate::oracle::{check_phase, check_phase_with, OracleParams, OracleReport};
    pub use crate::recovery::{
        run_with_recovery, RecoveryError, RecoveryPolicy, RecoveryReport,
    };
    #[cfg(feature = "threads")]
    pub use crate::parallel::{ParallelSim, ParallelSimError};
    pub use crate::patchgrid::{PatchGrid, PatchId};
    pub use crate::state::StepAcc;
    pub use profile::{
        ChromeTraceWriter, CriticalPathReport, GrainsizeReport, LbAudit, MemorySink,
        MetricsRegistry, PhaseMetrics, PhaseProfile, TraceSink, UtilizationReport,
    };
}
