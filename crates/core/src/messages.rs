//! Wire message types exchanged between chares.
//!
//! Every payload that crosses an entry-method boundary is packed through one
//! of these types via [`charmrt::WireCodec`], so the exact same byte layout
//! travels through the DES scheduler, the in-process threads backend, and the
//! Unix-socket frames of the `proc` backend. The codecs are built on the
//! little-endian primitives shared with the checkpoint format
//! ([`charmrt::wire::Enc`] / [`charmrt::wire::Dec`]), which keeps the
//! serialization rules in one place: what a chare packs here is bit-for-bit
//! what a checkpoint or a socket frame would carry.
//!
//! Conventions:
//! - `Vec<Vec3>` fields are packed as a `u64` count followed by three `f64`
//!   components per element, in order.
//! - Every `unpack` rejects trailing bytes, so a framing bug upstream fails
//!   loudly instead of silently truncating.
//! - An *empty* payload (zero bytes) is the "no data" signal throughout the
//!   engine; every packed message below is non-empty by construction, so the
//!   two cases cannot collide.

use charmrt::wire::{Dec, Enc};
use charmrt::{Payload, WireCodec, WireError};
use mdcore::vec3::Vec3;

use crate::state::StepAcc;

fn finish(d: &Dec, what: &str) -> Result<(), WireError> {
    if d.remaining() != 0 {
        return Err(WireError(format!("{} trailing bytes after {what}", d.remaining())));
    }
    Ok(())
}

fn put_vecs(e: &mut Enc, vs: &[Vec3]) {
    e.u64(vs.len() as u64);
    for v in vs {
        e.f64(v.x);
        e.f64(v.y);
        e.f64(v.z);
    }
}

fn take_vecs(d: &mut Dec, label: &'static str) -> Result<Vec<Vec3>, WireError> {
    let n = d.u64(label)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(Vec3::new(d.f64(label)?, d.f64(label)?, d.f64(label)?));
    }
    Ok(out)
}

/// A block of per-atom forces computed by a compute object (or combined by a
/// proxy patch) for one home patch, tagged with the sender's object id so
/// the receiver can fold contributions in a deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub struct ForceMsg {
    /// Sending object's raw id (`ObjId.0`), used for deterministic folding.
    pub from: u32,
    /// One force vector per atom of the destination patch.
    pub block: Vec<Vec3>,
}

impl WireCodec for ForceMsg {
    fn pack(&self) -> Payload {
        let mut e = Enc::with_capacity(4 + 8 + 24 * self.block.len());
        e.u32(self.from);
        put_vecs(&mut e, &self.block);
        e.into_bytes()
    }

    fn unpack(bytes: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(bytes);
        let from = d.u32("ForceMsg.from")?;
        let block = take_vecs(&mut d, "ForceMsg.block")?;
        finish(&d, "ForceMsg")?;
        Ok(ForceMsg { from, block })
    }
}

/// Atom coordinates multicast from a home patch to its proxies at the start
/// of a step. On shared-memory backends the proxies read positions directly
/// from [`crate::state::Shared`]; on the `proc` backend the receiving
/// process applies these bytes to its local copy instead.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordMsg {
    /// Owning patch's raw id (patch index, not ObjId).
    pub patch: u32,
    /// Positions of the patch's atoms, in patch-local order.
    pub positions: Vec<Vec3>,
}

impl WireCodec for CoordMsg {
    fn pack(&self) -> Payload {
        let mut e = Enc::with_capacity(4 + 8 + 24 * self.positions.len());
        e.u32(self.patch);
        put_vecs(&mut e, &self.positions);
        e.into_bytes()
    }

    fn unpack(bytes: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(bytes);
        let patch = d.u32("CoordMsg.patch")?;
        let positions = take_vecs(&mut d, "CoordMsg.positions")?;
        finish(&d, "CoordMsg")?;
        Ok(CoordMsg { patch, positions })
    }
}

/// One patch's contribution to a checkpoint: positions and velocities of its
/// atoms at the checkpoint boundary. Sent from each [`crate::chares::HomePatch`]
/// to the checkpoint chare, which assembles the full-system snapshot from
/// these messages alone — no shared-memory reads, so the same path works on
/// every backend.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptMsg {
    /// Patch index.
    pub patch: u32,
    /// Positions of the patch's atoms, in patch-local order.
    pub positions: Vec<Vec3>,
    /// Velocities of the patch's atoms, in patch-local order.
    pub velocities: Vec<Vec3>,
}

impl WireCodec for CkptMsg {
    fn pack(&self) -> Payload {
        let mut e =
            Enc::with_capacity(4 + 16 + 24 * (self.positions.len() + self.velocities.len()));
        e.u32(self.patch);
        put_vecs(&mut e, &self.positions);
        put_vecs(&mut e, &self.velocities);
        e.into_bytes()
    }

    fn unpack(bytes: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(bytes);
        let patch = d.u32("CkptMsg.patch")?;
        let positions = take_vecs(&mut d, "CkptMsg.positions")?;
        let velocities = take_vecs(&mut d, "CkptMsg.velocities")?;
        finish(&d, "CkptMsg")?;
        Ok(CkptMsg { patch, positions, velocities })
    }
}

/// End-of-phase state of one home patch, harvested from a worker process of
/// the `proc` backend and merged back into the parent's [`crate::state::Shared`]:
/// positions, velocities, and last-computed forces of the patch's atoms.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchStateMsg {
    /// Patch index.
    pub patch: u32,
    pub positions: Vec<Vec3>,
    pub velocities: Vec<Vec3>,
    pub forces: Vec<Vec3>,
}

impl WireCodec for PatchStateMsg {
    fn pack(&self) -> Payload {
        let n = self.positions.len() + self.velocities.len() + self.forces.len();
        let mut e = Enc::with_capacity(4 + 24 + 24 * n);
        e.u32(self.patch);
        put_vecs(&mut e, &self.positions);
        put_vecs(&mut e, &self.velocities);
        put_vecs(&mut e, &self.forces);
        e.into_bytes()
    }

    fn unpack(bytes: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(bytes);
        let patch = d.u32("PatchStateMsg.patch")?;
        let positions = take_vecs(&mut d, "PatchStateMsg.positions")?;
        let velocities = take_vecs(&mut d, "PatchStateMsg.velocities")?;
        let forces = take_vecs(&mut d, "PatchStateMsg.forces")?;
        finish(&d, "PatchStateMsg")?;
        Ok(PatchStateMsg { patch, positions, velocities, forces })
    }
}

/// Per-step energy accumulators harvested from a worker process via the
/// runtime's shared-state hook. The parent starts each `proc` phase with its
/// accumulators zeroed and merges every worker's block additively, which
/// reproduces exactly what the shared-memory backends accumulate in place.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergiesMsg {
    pub steps: Vec<StepAcc>,
}

impl WireCodec for EnergiesMsg {
    fn pack(&self) -> Payload {
        let mut e = Enc::with_capacity(8 + 72 * self.steps.len());
        e.u64(self.steps.len() as u64);
        for s in &self.steps {
            e.f64(s.e_lj);
            e.f64(s.e_elec);
            e.f64(s.e_bond);
            e.f64(s.e_angle);
            e.f64(s.e_dihedral);
            e.f64(s.e_improper);
            e.f64(s.e_restraint);
            e.f64(s.kinetic);
            e.u64(s.pairs);
        }
        e.into_bytes()
    }

    fn unpack(bytes: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(bytes);
        let n = d.u64("EnergiesMsg.len")? as usize;
        let mut steps = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            steps.push(StepAcc {
                e_lj: d.f64("EnergiesMsg.e_lj")?,
                e_elec: d.f64("EnergiesMsg.e_elec")?,
                e_bond: d.f64("EnergiesMsg.e_bond")?,
                e_angle: d.f64("EnergiesMsg.e_angle")?,
                e_dihedral: d.f64("EnergiesMsg.e_dihedral")?,
                e_improper: d.f64("EnergiesMsg.e_improper")?,
                e_restraint: d.f64("EnergiesMsg.e_restraint")?,
                kinetic: d.f64("EnergiesMsg.kinetic")?,
                pairs: d.u64("EnergiesMsg.pairs")?,
            });
        }
        finish(&d, "EnergiesMsg")?;
        Ok(EnergiesMsg { steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(seed: u64, n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let b = (seed as f64) * 0.25 + i as f64;
                Vec3::new(b + 0.125, -b * 3.5, b * b)
            })
            .collect()
    }

    #[test]
    fn force_msg_round_trips_bit_exactly() {
        let m = ForceMsg { from: 17, block: vecs(3, 5) };
        let bytes = m.pack();
        assert!(!bytes.is_empty());
        assert_eq!(ForceMsg::unpack(&bytes).unwrap(), m);
    }

    #[test]
    fn coord_msg_round_trips_bit_exactly() {
        let m = CoordMsg { patch: 2, positions: vecs(9, 7) };
        assert_eq!(CoordMsg::unpack(&m.pack()).unwrap(), m);
    }

    #[test]
    fn ckpt_msg_round_trips_bit_exactly() {
        let m = CkptMsg { patch: 4, positions: vecs(1, 3), velocities: vecs(2, 3) };
        assert_eq!(CkptMsg::unpack(&m.pack()).unwrap(), m);
    }

    #[test]
    fn patch_state_msg_round_trips_bit_exactly() {
        let m = PatchStateMsg {
            patch: 8,
            positions: vecs(5, 4),
            velocities: vecs(6, 4),
            forces: vecs(7, 4),
        };
        assert_eq!(PatchStateMsg::unpack(&m.pack()).unwrap(), m);
    }

    #[test]
    fn energies_msg_round_trips_bit_exactly() {
        let steps = vec![
            StepAcc {
                e_lj: 1.5,
                e_elec: -2.25,
                e_bond: 3.0,
                e_angle: 0.0,
                e_dihedral: -0.5,
                e_improper: 0.125,
                e_restraint: 9.75,
                kinetic: 4.5,
                pairs: 1234,
            },
            StepAcc::default(),
        ];
        let m = EnergiesMsg { steps };
        assert_eq!(EnergiesMsg::unpack(&m.pack()).unwrap(), m);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = ForceMsg { from: 1, block: vecs(0, 2) }.pack();
        bytes.push(0);
        assert!(ForceMsg::unpack(&bytes).is_err());
        let mut bytes = CkptMsg { patch: 0, positions: vec![], velocities: vec![] }.pack();
        bytes.push(0);
        assert!(CkptMsg::unpack(&bytes).is_err());
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let bytes = CoordMsg { patch: 1, positions: vecs(0, 2) }.pack();
        assert!(CoordMsg::unpack(&bytes[..bytes.len() - 1]).is_err());
        assert!(CoordMsg::unpack(&[]).is_err());
    }
}
