//! Per-compute pair-list caching for the parallel engine's non-bonded hot
//! path.
//!
//! The paper sizes patches "slightly larger than the cutoff radius" so that
//! neighbour structures can be *reused* across steps (NAMD's `pairlistdist`);
//! this module is the parallel-engine analogue of `mdcore::pairlist` for the
//! sequential simulator. Each `SelfNb`/`PairNb` compute object owns one
//! [`ComputeCacheEntry`] holding:
//!
//! - **Persistent SoA buffers** (one [`PatchArrays`] per patch the compute
//!   reads): gathered once, then only *positions* are rewritten in place each
//!   step — no per-step allocation, in cached *and* uncached mode.
//! - A **candidate list** at `cutoff + margin`, in the exact order the ranged
//!   kernels visit pairs, reused until displacement-based invalidation fires:
//!   any atom of the compute's patches moving more than `margin/2` from its
//!   build-time reference position may let a new pair enter the cutoff, so
//!   the list rebuilds (in place — buffers are reused).
//!
//! `Engine::migrate_atoms` changes patch membership, so it drops the whole
//! cache; lists and buffers re-prime on the next step.
//!
//! Locking: entries live in [`PairlistCache`] inside `Shared`, one mutex per
//! compute. Only the owning compute chare ever locks its entry (runtimes
//! never run the same chare concurrently with itself), so the mutexes are
//! uncontended; they exist to keep `Shared: Sync` on the threads backend.
//! Lock order: an entry is taken after `state` and released before
//! `energies` — see `state.rs`.

use crate::decomp::{ComputeKind, ComputeSpec, PatchArrays};
use crate::patchgrid::PatchGrid;
use mdcore::nonbonded::{pair_candidates_into, self_candidates_into};
use mdcore::prelude::*;
use std::sync::Mutex;

/// Pair-list cache state for one non-bonded compute object.
#[derive(Debug, Default)]
pub struct ComputeCacheEntry {
    /// Persistent SoA buffers, parallel to the compute's `spec.patches`.
    pub(crate) arrays: Vec<PatchArrays>,
    /// Cached candidate pairs at `cutoff + margin`: slot indices into
    /// `arrays[0]` (self) or `arrays[0]`/`arrays[1]` (pair), in ranged-kernel
    /// visit order.
    pub(crate) list: Vec<(u32, u32)>,
    /// Per-patch positions at list-build time, for displacement tracking.
    ref_pos: Vec<Vec<Vec3>>,
    /// `cutoff + margin` the current list was built at; 0.0 = no list yet
    /// (also forces a rebuild if the margin is reconfigured mid-run).
    built_radius: f64,
    /// `margin / 2` at build time — the displacement bound under which the
    /// list is guaranteed complete.
    half_margin: f64,
    /// List (re)builds performed by this compute.
    pub(crate) builds: u64,
    /// Steps served from a still-valid list.
    pub(crate) hits: u64,
}

impl ComputeCacheEntry {
    /// Bring the persistent SoA buffers up to date with the shared state:
    /// full gather on first use (or after a cache reset), position-only
    /// rewrite afterwards.
    pub(crate) fn refresh_arrays(&mut self, system: &System, grid: &PatchGrid, patches: &[usize]) {
        if self.arrays.len() != patches.len() {
            self.arrays =
                patches.iter().map(|&p| PatchArrays::gather(system, &grid.atoms[p])).collect();
            return;
        }
        for (arr, &p) in self.arrays.iter_mut().zip(patches) {
            arr.refresh_positions(system, &grid.atoms[p]);
        }
    }

    /// Make sure the candidate list covers every within-cutoff pair for the
    /// compute's current positions, rebuilding in place when the displacement
    /// guarantee has lapsed (or no list exists / the margin was reconfigured
    /// mid-run). `radius` is `cutoff + margin`. Returns `true` when the list
    /// was (re)built this step.
    pub(crate) fn ensure_list(
        &mut self,
        spec: &ComputeSpec,
        cell: &Cell,
        radius: f64,
        margin: f64,
    ) -> bool {
        if self.built_radius == radius && self.displacements_ok(cell) {
            self.hits += 1;
            return false;
        }
        match spec.kind {
            ComputeKind::SelfNb { .. } => self_candidates_into(
                self.arrays[0].group(),
                cell,
                spec.outer.clone(),
                radius,
                &mut self.list,
            ),
            ComputeKind::PairNb { .. } => pair_candidates_into(
                self.arrays[0].group(),
                self.arrays[1].group(),
                cell,
                spec.outer.clone(),
                radius,
                &mut self.list,
            ),
            _ => unreachable!("pair-list cache only serves non-bonded computes"),
        }
        if self.ref_pos.len() != self.arrays.len() {
            self.ref_pos = vec![Vec::new(); self.arrays.len()];
        }
        for (r, a) in self.ref_pos.iter_mut().zip(&self.arrays) {
            r.clear();
            r.extend_from_slice(&a.pos);
        }
        self.built_radius = radius;
        self.half_margin = margin / 2.0;
        self.builds += 1;
        true
    }

    /// The margin guarantee: the list stays complete while every atom of the
    /// compute's patches is within `margin/2` of its build-time position.
    fn displacements_ok(&self, cell: &Cell) -> bool {
        let limit2 = self.half_margin * self.half_margin;
        self.arrays.iter().zip(&self.ref_pos).all(|(a, r)| {
            a.pos.len() == r.len()
                && a.pos.iter().zip(r.iter()).all(|(&p, &q)| cell.dist2(p, q) <= limit2)
        })
    }
}

/// One mutex-guarded cache entry per compute object, indexed by the
/// compute's position in `Decomposition::computes`.
pub struct PairlistCache {
    entries: Vec<Mutex<ComputeCacheEntry>>,
}

impl PairlistCache {
    /// Empty cache for `n_computes` compute objects.
    pub fn new(n_computes: usize) -> Self {
        PairlistCache {
            entries: (0..n_computes).map(|_| Mutex::new(ComputeCacheEntry::default())).collect(),
        }
    }

    /// The cache entry for compute `j`.
    pub(crate) fn entry(&self, j: usize) -> &Mutex<ComputeCacheEntry> {
        &self.entries[j]
    }

    /// Cumulative builds/hits summed over all computes since the cache was
    /// created (or last reset by migration).
    pub fn totals(&self) -> PairlistStats {
        let mut s = PairlistStats::default();
        for e in &self.entries {
            let g = e.lock().unwrap();
            s.builds += g.builds;
            s.hits += g.hits;
        }
        s
    }
}

/// Aggregate pair-list cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairlistStats {
    /// Candidate-list (re)builds.
    pub builds: u64,
    /// Steps served from a still-valid cached list.
    pub hits: u64,
}

impl PairlistStats {
    /// Total cached-kernel executions (builds + hits).
    pub fn executions(&self) -> u64 {
        self.builds + self.hits
    }

    /// Fraction of executions served from a valid cached list.
    pub fn hit_rate(&self) -> f64 {
        if self.executions() == 0 {
            0.0
        } else {
            self.hits as f64 / self.executions() as f64
        }
    }

    /// Fraction of executions that had to (re)build their list.
    pub fn rebuild_rate(&self) -> f64 {
        if self.executions() == 0 {
            0.0
        } else {
            self.builds as f64 / self.executions() as f64
        }
    }

    /// Counter delta relative to an earlier snapshot.
    pub fn delta_since(&self, earlier: &PairlistStats) -> PairlistStats {
        PairlistStats {
            builds: self.builds - earlier.builds,
            hits: self.hits - earlier.hits,
        }
    }
}
