//! Invariant oracles for schedule-fuzzed and fault-injected phases.
//!
//! The paper's correctness claim (§2.2, §3) is that message-driven
//! execution tolerates *arbitrary* message order: whatever interleaving the
//! runtime picks, the physics must come out right. The oracles make that
//! claim falsifiable: after a phase runs under a perturbed schedule or a
//! fault plan, [`check_phase`] verifies invariants that any correct
//! execution satisfies, and a failing report names the schedule seed and
//! the first violating step so the exact interleaving can be replayed on
//! the DES backend.
//!
//! Checks (each skipped when its preconditions don't hold):
//!
//! * **quiescence sanity** — the phase's entry counts match the protocol:
//!   every patch reported `Done` exactly once and integrated exactly
//!   `n_steps` times. A scheduler that loses or double-runs work fails
//!   here first.
//! * **message conservation** — the [`charmrt::SummaryStats`] ledger
//!   balances: sends + injections + duplicates + redeliveries − drops =
//!   receives + discards-at-stop ([`charmrt::SummaryStats::conservation_residual`]).
//! * **Newton's third law** — per nonbonded compute (self and pair), the
//!   force kernel evaluated at the final positions produces blocks whose
//!   net force vanishes: action equals reaction within a patch pair.
//! * **energy drift** — Real mode: per-step total energies stay finite and
//!   within a drift bound of step 0; reports the first violating step.
//! * **momentum (net force)** — Real mode on an unrestrained topology:
//!   the integrated total force over all atoms vanishes.

use crate::config::{Backend, ForceMode};
use crate::decomp::{ComputeKind, PatchArrays};
use crate::engine::{Engine, PhaseResult};
use mdcore::nonbonded::{nb_pair_ranged, nb_self_ranged};
use mdcore::prelude::*;

/// Oracle tuning knobs; [`Default`] is what [`check_phase`] uses.
#[derive(Debug, Clone, Copy)]
pub struct OracleParams {
    /// Allowed relative drift of per-step total energy from step 0.
    pub energy_drift_rel: f64,
    /// Newton-check sample cap per compute kind (checks are exact kernel
    /// re-executions; capping keeps the oracle cheap on big systems).
    pub max_newton_samples: usize,
}

impl Default for OracleParams {
    fn default() -> Self {
        OracleParams { energy_drift_rel: 0.05, max_newton_samples: 32 }
    }
}

/// One failed invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which oracle fired (`"quiescence"`, `"conservation"`, `"newton"`,
    /// `"energy-drift"`, `"momentum"`).
    pub check: &'static str,
    /// First violating step, when the check is per-step.
    pub step: Option<usize>,
    pub detail: String,
}

/// The oracle verdict for one phase. A failing report names the schedule
/// seed so the interleaving can be replayed bit-exactly on the DES.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The schedule policy the phase ran under (seed included).
    pub schedule: charmrt::SchedulePolicy,
    /// Whether a fault plan was installed.
    pub faults_injected: bool,
    pub n_steps: usize,
    /// Names of the checks that actually ran.
    pub checks_run: Vec<&'static str>,
    pub violations: Vec<Violation>,
}

impl OracleReport {
    /// True when every check that ran passed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable verdict naming the seed and first violating step.
    pub fn render(&self) -> String {
        let mut s = format!(
            "oracle[{:?} seed={}{}]: {} check(s) run, {} violation(s)",
            self.schedule.kind,
            self.schedule.seed,
            if self.faults_injected { ", faults" } else { "" },
            self.checks_run.len(),
            self.violations.len(),
        );
        for v in &self.violations {
            s.push_str(&format!(
                "\n  {} FAILED{}: {}",
                v.check,
                v.step.map(|t| format!(" at step {t}")).unwrap_or_default(),
                v.detail
            ));
        }
        s
    }
}

/// Run every applicable invariant oracle against a completed phase.
/// Expects the phase to have run on a fresh runtime (as
/// [`Engine::run_phase`] does), so the phase's stats are self-contained.
pub fn check_phase(engine: &Engine, r: &PhaseResult) -> OracleReport {
    check_phase_with(engine, r, OracleParams::default())
}

/// [`check_phase`] with explicit tuning knobs.
pub fn check_phase_with(engine: &Engine, r: &PhaseResult, params: OracleParams) -> OracleReport {
    let mut report = OracleReport {
        schedule: engine.config.schedule,
        faults_injected: engine.config.fault_plan.is_some(),
        n_steps: r.n_steps,
        checks_run: Vec::new(),
        violations: Vec::new(),
    };

    check_quiescence(engine, r, &mut report);
    check_crash_free(r, &mut report);
    check_conservation(r, &mut report);
    if engine.config.backend == Backend::Des {
        check_utilization(r, &mut report);
    }
    if engine.config.force_mode == ForceMode::Real {
        check_newton(engine, params, &mut report);
        check_energy_drift(r, params, &mut report);
        check_momentum(engine, &mut report);
    }
    report
}

fn check_quiescence(engine: &Engine, r: &PhaseResult, report: &mut OracleReport) {
    report.checks_run.push("quiescence");
    let n_patches = engine.decomp().grid.n_patches() as u64;
    let done = r.stats.entry_count[r.entries.done.idx()];
    if done != n_patches {
        report.violations.push(Violation {
            check: "quiescence",
            step: None,
            detail: format!("{done} Done reports for {n_patches} patches"),
        });
    }
    let integrations = r.stats.entry_count[r.entries.integrate.idx()];
    let expected = n_patches * r.n_steps as u64;
    if integrations != expected {
        report.violations.push(Violation {
            check: "quiescence",
            step: Some((integrations / n_patches.max(1)) as usize),
            detail: format!(
                "{integrations} integrations, expected {expected} ({n_patches} patches x {} steps)",
                r.n_steps
            ),
        });
    }
}

/// A *completed* phase must not have lost a PE: crashes surface as
/// [`crate::engine::PhaseCrash`] errors, never as a phase that quietly
/// finished with a dead worker (which would mean its chares' work was
/// silently skipped).
fn check_crash_free(r: &PhaseResult, report: &mut OracleReport) {
    report.checks_run.push("crash-free");
    if r.stats.pes_killed != 0 {
        report.violations.push(Violation {
            check: "crash-free",
            step: None,
            detail: format!(
                "phase completed with {} PE(s) killed — a crashed phase must \
                 surface as PhaseCrash, not finish",
                r.stats.pes_killed
            ),
        });
    }
}

/// The DES utilization decomposition must tile the phase span on every
/// PE: work + overhead + idle == makespan, with overhead a subset of
/// busy and idle never negative. On a virtual-time backend these hold to
/// roundoff; an accounting bug (double-counted handler, overhead
/// attributed past the span, busy time beyond the makespan) breaks one
/// of them. When a trace was captured, the per-PE busy time derived from
/// trace events must also agree with the summary counters.
fn check_utilization(r: &PhaseResult, report: &mut OracleReport) {
    report.checks_run.push("utilization");
    let span = r.total_time;
    let tol = 1e-9 * span.max(1e-12) * (1.0 + r.stats.msgs_received as f64);
    for (pe, &busy) in r.stats.pe_busy.iter().enumerate() {
        let overhead = r.stats.pe_overhead.get(pe).copied().unwrap_or(0.0);
        let idle = span - busy;
        let residual = (busy - overhead) + overhead + idle - span;
        let mut fail = |detail: String| {
            report.violations.push(Violation { check: "utilization", step: None, detail });
        };
        if !(busy.is_finite() && overhead.is_finite()) {
            fail(format!("PE {pe}: non-finite busy {busy} / overhead {overhead}"));
            continue;
        }
        if overhead < -tol || overhead > busy + tol {
            fail(format!(
                "PE {pe}: overhead {overhead:.6e}s outside [0, busy {busy:.6e}s]"
            ));
        }
        if idle < -tol {
            fail(format!(
                "PE {pe}: busy {busy:.6e}s exceeds phase span {span:.6e}s"
            ));
        }
        if residual.abs() > tol {
            fail(format!(
                "PE {pe}: work+overhead+idle misses span by {residual:.3e}s"
            ));
        }
        if let Some(trace) = &r.trace {
            let traced: f64 =
                trace.events.iter().filter(|e| e.pe == pe).map(|e| e.duration()).sum();
            if (traced - busy).abs() > tol {
                fail(format!(
                    "PE {pe}: traced busy {traced:.6e}s disagrees with summary \
                     busy {busy:.6e}s"
                ));
            }
        }
    }
}

fn check_conservation(r: &PhaseResult, report: &mut OracleReport) {
    report.checks_run.push("conservation");
    let residual = r.stats.conservation_residual();
    if residual != 0 {
        report.violations.push(Violation {
            check: "conservation",
            step: None,
            detail: format!(
                "residual {residual}: sent={} injected={} dup={} redelivered={} \
                 dropped={} received={} discarded={}",
                r.stats.msgs_sent,
                r.stats.msgs_injected,
                r.stats.msgs_duplicated,
                r.stats.msgs_redelivered,
                r.stats.msgs_dropped,
                r.stats.msgs_received,
                r.stats.msgs_discarded
            ),
        });
    }
}

/// Newton's third law per nonbonded compute: re-run the exact kernel the
/// compute ran (same split range) at the final positions; the produced
/// force blocks must have zero net force — every action paired with its
/// reaction inside the block(s).
fn check_newton(engine: &Engine, params: OracleParams, report: &mut OracleReport) {
    report.checks_run.push("newton");
    let decomp = &engine.shared.decomp;
    let st = engine.shared.state.read().unwrap();
    let cell = st.system.cell;
    let (mut self_seen, mut pair_seen) = (0usize, 0usize);

    for (j, spec) in decomp.computes.iter().enumerate() {
        let (net, gross) = match &spec.kind {
            ComputeKind::SelfNb { patch } if self_seen < params.max_newton_samples => {
                self_seen += 1;
                let g = PatchArrays::gather(&st.system, &decomp.grid.atoms[*patch]);
                let mut f = vec![Vec3::ZERO; g.pos.len()];
                nb_self_ranged(
                    &st.system.forcefield,
                    &st.system.exclusions,
                    g.group(),
                    &cell,
                    spec.outer.clone(),
                    &mut f,
                );
                sum_net_gross(&[&f])
            }
            ComputeKind::PairNb { a, b } if pair_seen < params.max_newton_samples => {
                pair_seen += 1;
                let ga = PatchArrays::gather(&st.system, &decomp.grid.atoms[*a]);
                let gb = PatchArrays::gather(&st.system, &decomp.grid.atoms[*b]);
                let mut fa = vec![Vec3::ZERO; ga.pos.len()];
                let mut fb = vec![Vec3::ZERO; gb.pos.len()];
                nb_pair_ranged(
                    &st.system.forcefield,
                    &st.system.exclusions,
                    ga.group(),
                    gb.group(),
                    &cell,
                    spec.outer.clone(),
                    &mut fa,
                    &mut fb,
                );
                sum_net_gross(&[&fa, &fb])
            }
            _ => continue,
        };
        let tol = 1e-9 * (1.0 + gross);
        if !net.norm().is_finite() || net.norm() > tol {
            report.violations.push(Violation {
                check: "newton",
                step: None,
                detail: format!(
                    "compute {j} ({:?}): net force {:.3e} exceeds {tol:.3e}",
                    spec.kind,
                    net.norm()
                ),
            });
        }
    }
}

fn sum_net_gross(blocks: &[&[Vec3]]) -> (Vec3, f64) {
    let mut net = Vec3::ZERO;
    let mut gross = 0.0;
    for block in blocks {
        for f in block.iter() {
            net += *f;
            gross += f.norm();
        }
    }
    (net, gross)
}

fn check_energy_drift(r: &PhaseResult, params: OracleParams, report: &mut OracleReport) {
    if r.energies.is_empty() {
        return;
    }
    report.checks_run.push("energy-drift");
    let e0 = r.energies[0].total();
    let bound = params.energy_drift_rel * e0.abs().max(1.0);
    for (step, acc) in r.energies.iter().enumerate() {
        let e = acc.total();
        if !e.is_finite() {
            report.violations.push(Violation {
                check: "energy-drift",
                step: Some(step),
                detail: format!("non-finite total energy {e}"),
            });
            return;
        }
        if (e - e0).abs() > bound {
            report.violations.push(Violation {
                check: "energy-drift",
                step: Some(step),
                detail: format!("total energy {e:.6} drifted from {e0:.6} (bound {bound:.3e})"),
            });
            return;
        }
    }
}

/// Net integrated force over all atoms vanishes for an unrestrained,
/// cutoff-only system (restraints and mesh electrostatics both exert
/// external forces, so the check only runs without them).
fn check_momentum(engine: &Engine, report: &mut OracleReport) {
    let st = engine.shared.state.read().unwrap();
    if !st.system.topology.restraints.is_empty() || engine.config.pme.is_some() {
        return;
    }
    report.checks_run.push("momentum");
    let (net, gross) = sum_net_gross(&[&st.forces]);
    let tol = 1e-9 * (1.0 + gross);
    if !net.norm().is_finite() || net.norm() > tol {
        report.violations.push(Violation {
            check: "momentum",
            step: None,
            detail: format!("net integrated force {:.3e} exceeds {tol:.3e}", net.norm()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Backend, SimConfig};
    use machine::presets;

    fn tiny_system() -> System {
        molgen::SystemBuilder::new(molgen::SystemSpec {
            name: "oracle-test",
            box_lengths: Vec3::new(30.0, 30.0, 30.0),
            target_atoms: 2400,
            protein_chains: 1,
            protein_chain_len: 40,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 3,
        })
        .build()
    }

    fn real_cfg(n_pes: usize) -> SimConfig {
        SimConfig::builder(n_pes, presets::generic_cluster())
            .force_mode(ForceMode::Real)
            .backend(Backend::Des)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn clean_phase_passes_every_oracle() {
        let mut engine = Engine::new(tiny_system(), real_cfg(2));
        let r = engine.run_phase(2);
        let report = check_phase(&engine, &r);
        assert!(report.ok(), "{}", report.render());
        assert!(report.checks_run.contains(&"quiescence"));
        assert!(report.checks_run.contains(&"conservation"));
        assert!(report.checks_run.contains(&"newton"));
        assert!(report.checks_run.contains(&"energy-drift"));
    }

    #[test]
    fn report_names_seed_and_first_violating_step() {
        let mut engine = Engine::new(tiny_system(), real_cfg(2));
        engine.config.schedule = charmrt::SchedulePolicy::random_shuffle(42);
        let r = engine.run_phase(2);
        let mut report = check_phase(&engine, &r);
        report.violations.push(Violation {
            check: "energy-drift",
            step: Some(1),
            detail: "synthetic".into(),
        });
        let text = report.render();
        assert!(text.contains("seed=42"), "{text}");
        assert!(text.contains("at step 1"), "{text}");
        assert!(!report.ok());
    }

    #[test]
    fn doctored_stats_fail_conservation() {
        let mut engine = Engine::new(tiny_system(), real_cfg(2));
        let mut r = engine.run_phase(1);
        r.stats.msgs_received -= 1; // simulate a silently lost message
        let report = check_phase(&engine, &r);
        assert!(!report.ok());
        assert!(report.violations.iter().any(|v| v.check == "conservation"));
    }
}
