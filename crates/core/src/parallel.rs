//! Multicore MD: a thin sequential-looking facade over the engine's
//! real-threads backend.
//!
//! Historically this module carried its own fork of the timestep loop (a
//! thread-pool fold over compute objects plus data-parallel integration).
//! That duplicate is gone: [`ParallelSim`] now drives [`Engine`] with
//! `Backend::Threads`, so the message protocol, proxy wiring, grainsize
//! splitting, and measurement machinery are the single implementation in
//! [`crate::engine`] — the exact code path the load balancer measures.
//! Every self/pair/bonded compute object is a chare executed on a worker
//! thread; force contributions travel as messages and the home patches
//! integrate, just as on the DES backend but in wall-clock time.
//!
//! The facade's step/run calls map onto engine *phases*: a phase of
//! `n + 1` timesteps performs one bootstrap force evaluation (no motion —
//! the first step of a phase only completes when integration is `started`)
//! followed by `n` full velocity-Verlet updates. Chaining phases repeats
//! the boundary force evaluation, so the trajectory is step-for-step
//! identical to a sequential simulator.

use crate::config::{Backend, ForceMode, SimConfig};
use crate::decomp::Decomposition;
use crate::engine::{Engine, PhaseCrash};
use crate::state::{SimState, StepAcc};
use mdcore::prelude::*;
use std::ops::{Deref, DerefMut};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Why a [`ParallelSim`] could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum ParallelSimError {
    /// `n_threads` was zero.
    NoThreads,
    /// The timestep was not a positive finite number.
    BadTimestep(f64),
    /// The system has no atoms to decompose.
    EmptySystem,
}

impl std::fmt::Display for ParallelSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelSimError::NoThreads => write!(f, "n_threads must be at least 1"),
            ParallelSimError::BadTimestep(dt) => {
                write!(f, "timestep must be positive and finite, got {dt}")
            }
            ParallelSimError::EmptySystem => write!(f, "system has no atoms"),
        }
    }
}

impl std::error::Error for ParallelSimError {}

/// Shared read access to the simulated [`System`].
///
/// Dereferences to [`System`]; drop it before the next `step`/`run` call
/// (holding it across one would deadlock the worker threads).
pub struct SystemRef<'a>(RwLockReadGuard<'a, SimState>);

impl Deref for SystemRef<'_> {
    type Target = System;
    fn deref(&self) -> &System {
        &self.0.system
    }
}

/// Exclusive write access to the simulated [`System`] — thermostats rescale
/// velocities through this between steps.
pub struct SystemMut<'a>(RwLockWriteGuard<'a, SimState>);

impl Deref for SystemMut<'_> {
    type Target = System;
    fn deref(&self) -> &System {
        &self.0.system
    }
}

impl DerefMut for SystemMut<'_> {
    fn deref_mut(&mut self) -> &mut System {
        &mut self.0.system
    }
}

/// A multicore MD simulator: the paper's decomposition executed by the
/// engine's real-threads backend, one OS thread per PE.
pub struct ParallelSim {
    engine: Engine,
    /// Timestep, fs. May be changed between steps.
    pub dt: f64,
    /// Rebuild the patch assignment every this many steps (atom migration).
    /// Migration fires when the *global* step counter reaches a multiple,
    /// so the cadence is a property of the trajectory, not of how the run
    /// was sliced into `step`/`run` calls — and it survives checkpoint
    /// restore (the counter is part of the snapshot).
    pub migrate_every: usize,
    forces: Vec<Vec3>,
}

impl ParallelSim {
    /// Create a simulator using `n_threads` OS threads.
    pub fn new(system: System, n_threads: usize, dt: f64) -> Result<Self, ParallelSimError> {
        Self::with_backend(system, n_threads, dt, Backend::Threads)
    }

    /// Create a simulator on an explicit runtime backend: `Backend::Threads`
    /// (one OS thread per PE), `Backend::Proc` (one OS *process* per PE),
    /// or `Backend::Des` (deterministic virtual-time execution of the same
    /// protocol). All backends produce bit-identical trajectories.
    pub fn with_backend(
        system: System,
        n_pes: usize,
        dt: f64,
        backend: Backend,
    ) -> Result<Self, ParallelSimError> {
        if n_pes == 0 {
            return Err(ParallelSimError::NoThreads);
        }
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(ParallelSimError::BadTimestep(dt));
        }
        if system.n_atoms() == 0 {
            return Err(ParallelSimError::EmptySystem);
        }
        let cfg = SimConfig::builder(n_pes, machine::presets::generic_cluster())
            .force_mode(ForceMode::Real)
            .backend(backend)
            .dt_fs(dt)
            .build()
            .expect("facade arguments validated above");
        let n = system.n_atoms();
        Ok(ParallelSim {
            engine: Engine::new(system, cfg),
            dt,
            migrate_every: 20,
            forces: vec![Vec3::ZERO; n],
        })
    }

    /// Proc-backend knobs: worker-process count (0 = one per PE; any other
    /// value must equal the PE count) and the directory for the Unix socket
    /// mesh (`None` = a fresh directory under the system temp dir).
    pub fn set_proc_options(&mut self, procs: usize, socket_dir: Option<std::path::PathBuf>) {
        assert!(
            procs == 0 || procs == self.engine.config.n_pes,
            "procs must be 0 or equal the PE count ({}), got {procs}",
            self.engine.config.n_pes
        );
        self.engine.config.procs = procs;
        self.engine.config.socket_dir = socket_dir;
    }

    /// Number of compute objects (parallel tasks per force evaluation).
    pub fn n_computes(&self) -> usize {
        self.engine.decomp().computes.len()
    }

    /// Read access to the system (positions, velocities, temperature, …).
    pub fn system(&self) -> SystemRef<'_> {
        SystemRef(self.engine.shared.state.read().expect("state lock poisoned"))
    }

    /// Write access to the system, e.g. for thermostats between steps.
    pub fn system_mut(&mut self) -> SystemMut<'_> {
        SystemMut(self.engine.shared.state.write().expect("state lock poisoned"))
    }

    /// The current spatial decomposition.
    pub fn decomp(&self) -> &Decomposition {
        self.engine.decomp()
    }

    /// The underlying engine (placement, measured loads, load balancing).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Enable/disable the non-bonded pair-list cache and set its margin, Å.
    /// Takes effect from the next step; changing the margin mid-run forces
    /// the caches to rebuild (the stored build radius no longer matches).
    pub fn set_pairlist(&mut self, cache: bool, margin: f64) {
        assert!(
            margin >= 0.0 && margin.is_finite(),
            "pairlist margin must be non-negative and finite, got {margin}"
        );
        self.engine.config.pairlist_cache = cache;
        self.engine.config.pairlist_margin = margin;
    }

    /// Cumulative pair-list cache counters (builds/hits) since construction
    /// or the last atom migration (migration resets the cache).
    pub fn pairlist_stats(&self) -> crate::nbcache::PairlistStats {
        self.engine.shared.nb_cache.totals()
    }

    /// Attach an observability registry: every engine phase driven by this
    /// simulator records a profile (and streams Perfetto trace files when
    /// the registry has a directory). Pass `None` to turn profiling off.
    pub fn set_metrics(&mut self, metrics: Option<profile::MetricsRegistry>) {
        self.engine.set_metrics(metrics);
    }

    /// The attached observability registry, if any.
    pub fn metrics(&self) -> Option<&profile::MetricsRegistry> {
        self.engine.metrics.as_ref()
    }

    /// Evaluate all forces on the worker threads without moving any atom.
    /// Returns the energy accumulator for the current configuration
    /// (including the kinetic energy of the current velocities);
    /// [`ParallelSim::forces`] holds the per-atom result.
    pub fn compute_forces(&mut self) -> StepAcc {
        self.engine.config.dt_fs = self.dt;
        let phase = self.engine.run_phase(1);
        self.cache_forces();
        phase.energies[0]
    }

    /// One velocity-Verlet step; returns the step's energies.
    pub fn step(&mut self) -> StepAcc {
        self.advance(1).pop().expect("one step requested")
    }

    /// Crash-aware [`ParallelSim::step`]: surfaces a PE kill from the fault
    /// plan instead of panicking, so a recovery driver can restore.
    pub fn try_step(&mut self) -> Result<StepAcc, PhaseCrash> {
        Ok(self.try_advance(1)?.pop().expect("one step requested"))
    }

    /// Run `n` steps; returns per-step energies.
    pub fn run(&mut self, n: usize) -> Vec<StepAcc> {
        self.advance(n)
    }

    fn advance(&mut self, n: usize) -> Vec<StepAcc> {
        self.try_advance(n)
            .unwrap_or_else(|crash| panic!("unrecovered PE crash: {crash}"))
    }

    /// Advance `n` velocity-Verlet steps in engine phases, migrating atoms
    /// whenever the global step counter reaches a multiple of
    /// `migrate_every`. A phase of `c + 1` timesteps yields `c` completed
    /// updates (the first timestep is the bootstrap force evaluation); its
    /// `energies[1..=c]` are the per-step records.
    ///
    /// On `Err`, atoms completed before the crashed phase are still applied;
    /// the caller is expected to restore from a checkpoint (the crashed
    /// phase's partial state is discarded by [`ParallelSim::restore`]).
    pub fn try_advance(&mut self, n: usize) -> Result<Vec<StepAcc>, PhaseCrash> {
        let mut out = Vec::with_capacity(n);
        let mut remaining = n;
        while remaining > 0 {
            let until_migrate =
                self.migrate_every - self.engine.steps_done % self.migrate_every;
            let c = remaining.min(until_migrate);
            self.engine.config.dt_fs = self.dt;
            let phase = self.engine.try_run_phase(c + 1)?;
            out.extend_from_slice(&phase.energies[1..=c]);
            self.cache_forces();
            remaining -= c;
            if self.engine.steps_done % self.migrate_every == 0 {
                self.migrate_atoms();
            }
        }
        Ok(out)
    }

    /// Re-bin atoms into patches and rebuild the compute set — the analogue
    /// of NAMD's atom migration at pairlist updates.
    pub fn migrate_atoms(&mut self) {
        self.engine.migrate_atoms();
    }

    /// Completed velocity-Verlet updates since construction (or since the
    /// state restored by [`ParallelSim::restore`]).
    pub fn steps_done(&self) -> usize {
        self.engine.steps_done
    }

    /// Enable periodic in-phase checkpoints: a snapshot is written into
    /// `dir` every `interval` global steps. The interval must be a multiple
    /// of `migrate_every` so that every checkpoint lands on a phase-final
    /// step at an atom-migration boundary — the alignment that makes a
    /// restored run bit-identical to an uninterrupted one (the restore's
    /// decomposition rebuild reproduces exactly what the reference run
    /// builds at the same step).
    pub fn set_checkpointing(&mut self, dir: impl Into<std::path::PathBuf>, interval: usize) {
        assert!(interval > 0, "checkpoint interval must be positive");
        assert_eq!(
            interval % self.migrate_every,
            0,
            "checkpoint interval ({interval}) must be a multiple of \
             migrate_every ({}) for bit-identical restore",
            self.migrate_every
        );
        self.engine.config.checkpoint_interval = interval;
        self.engine.config.checkpoint_dir = Some(dir.into());
    }

    /// Take a snapshot of the current state (between steps).
    pub fn snapshot(&self) -> ckpt::Snapshot {
        self.engine.snapshot()
    }

    /// Opaque application payload carried inside every snapshot this
    /// simulator writes (e.g. thermostat or output-file state).
    pub fn set_ckpt_extra(&mut self, extra: Vec<u8>) {
        self.engine.ckpt_extra = extra;
    }

    /// Restore positions, velocities, the step counter, and the RNG/load
    /// state from `snap`, rebuilding the decomposition. Refuses snapshots
    /// from a different topology or configuration.
    pub fn restore(&mut self, snap: &ckpt::Snapshot) -> Result<(), ckpt::CkptError> {
        self.engine.restore(snap)?;
        self.cache_forces();
        Ok(())
    }

    /// Opaque payload restored by the last [`ParallelSim::restore`] (or set
    /// by [`ParallelSim::set_ckpt_extra`]).
    pub fn ckpt_extra(&self) -> &[u8] {
        &self.engine.ckpt_extra
    }

    /// Install a fault plan (exercised fresh each phase).
    pub fn set_fault_plan(&mut self, plan: Option<charmrt::FaultPlan>) {
        self.engine.config.fault_plan = plan;
    }

    /// Drop any PE-kill rules from the installed fault plan, keeping the
    /// message-level faults. A recovery driver calls this before resuming so
    /// the same kill does not re-fire forever.
    pub fn strip_kills(&mut self) {
        self.engine.config.fault_plan =
            self.engine.config.fault_plan.take().and_then(|p| p.without_kills());
    }

    /// Install a message dequeue-order policy (exercised fresh each phase).
    pub fn set_schedule(&mut self, policy: charmrt::SchedulePolicy) {
        self.engine.config.schedule = policy;
    }

    /// The most recently evaluated force on each atom.
    pub fn forces(&self) -> &[Vec3] {
        &self.forces
    }

    fn cache_forces(&mut self) {
        let st = self.engine.shared.state.read().expect("state lock poisoned");
        self.forces.clone_from(&st.forces);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(seed: u64) -> System {
        let mut sys = molgen::SystemBuilder::new(molgen::SystemSpec {
            name: "par-test",
            box_lengths: Vec3::new(30.0, 30.0, 30.0),
            target_atoms: 2400,
            protein_chains: 1,
            protein_chain_len: 40,
            lipid_slab: None,
            cutoff: 8.0,
            seed,
        })
        .build();
        sys.thermalize(120.0, seed);
        sys
    }

    #[test]
    fn new_rejects_bad_arguments() {
        let sys = small_system(9);
        assert_eq!(
            ParallelSim::new(sys.clone(), 0, 1.0).err(),
            Some(ParallelSimError::NoThreads)
        );
        assert_eq!(
            ParallelSim::new(sys.clone(), 2, 0.0).err(),
            Some(ParallelSimError::BadTimestep(0.0))
        );
        assert!(matches!(
            ParallelSim::new(sys, 2, f64::NAN).err(),
            Some(ParallelSimError::BadTimestep(dt)) if dt.is_nan()
        ));
    }

    #[test]
    fn parallel_forces_match_sequential() {
        let sys = small_system(1);
        let mut f_seq = vec![Vec3::ZERO; sys.n_atoms()];
        let e_seq = mdcore::sim::compute_forces(&sys, &mut f_seq);

        let mut par = ParallelSim::new(sys, 2, 1.0).unwrap();
        let acc = par.compute_forces();

        let e_par = acc.potential();
        let tol = 1e-8 * e_seq.potential().abs().max(1.0);
        assert!(
            (e_par - e_seq.potential()).abs() < tol,
            "potential: parallel {e_par} vs sequential {}",
            e_seq.potential()
        );
        for i in 0..f_seq.len() {
            let d = (par.forces()[i] - f_seq[i]).norm();
            let tol = 1e-9 * (1.0 + f_seq[i].norm());
            assert!(d < tol, "atom {i} force differs by {d} (|f| = {})", f_seq[i].norm());
        }
        assert_eq!(acc.pairs, e_seq.nonbonded.pairs);
    }

    #[test]
    fn thread_counts_agree() {
        let e1 = {
            let mut p = ParallelSim::new(small_system(2), 1, 1.0).unwrap();
            p.compute_forces().potential()
        };
        let e2 = {
            let mut p = ParallelSim::new(small_system(2), 2, 1.0).unwrap();
            p.compute_forces().potential()
        };
        assert!((e1 - e2).abs() < 1e-7 * e1.abs().max(1.0), "{e1} vs {e2}");
    }

    #[test]
    fn parallel_nve_conserves_energy() {
        let mut p = ParallelSim::new(small_system(3), 2, 0.5).unwrap();
        p.migrate_every = 10;
        let energies = p.run(40);
        let e0 = energies[2].total();
        let e1 = energies[39].total();
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 1e-2, "drift {drift}: {e0} -> {e1}");
    }

    #[test]
    fn migration_preserves_atom_count_and_energy() {
        let mut p = ParallelSim::new(small_system(4), 2, 1.0).unwrap();
        let before = p.compute_forces().potential();
        p.migrate_atoms();
        let total_atoms: usize = p.decomp().grid.atoms.iter().map(Vec::len).sum();
        assert_eq!(total_atoms, p.system().n_atoms());
        let after = p.compute_forces().potential();
        assert!(
            (before - after).abs() < 1e-7 * before.abs().max(1.0),
            "migration changed the physics: {before} vs {after}"
        );
    }
}
