//! Real-threads execution backend: the same hybrid decomposition executed
//! with actual data parallelism on host cores (rayon).
//!
//! The DES backend reproduces the paper's *scheduling* results on thousands
//! of virtual PEs; this module demonstrates genuine multicore speedup with
//! the identical compute-object decomposition: every self/pair/bonded
//! compute object becomes an independent parallel task, force contributions
//! are reduced, and integration is data-parallel over atoms. This is the
//! "multicore demo" path the reproduction brief calls for.

use crate::config::{ForceMode, SimConfig};
use crate::decomp::{self, ComputeKind, Decomposition, PatchArrays};
use crate::state::StepAcc;
use mdcore::bonded::{angle_force, bond_force, dihedral_force, improper_force, restraint_force};
use mdcore::forcefield::units;
use mdcore::nonbonded::{nb_pair_ranged, nb_self_ranged};
use mdcore::prelude::*;
use rayon::prelude::*;

/// A multicore MD simulator driven by the paper's decomposition.
pub struct ParallelSim {
    pub system: System,
    decomp: Decomposition,
    pool: rayon::ThreadPool,
    /// Timestep, fs.
    pub dt: f64,
    forces: Vec<Vec3>,
    forces_valid: bool,
    /// Rebuild the patch assignment every this many steps (atom migration).
    pub migrate_every: usize,
    steps_since_migrate: usize,
    cfg: SimConfig,
}

impl ParallelSim {
    /// Create a simulator using `n_threads` OS threads.
    pub fn new(system: System, n_threads: usize, dt: f64) -> Self {
        assert!(n_threads > 0 && dt > 0.0);
        let mut cfg = SimConfig::new(n_threads, machine::presets::generic_cluster());
        cfg.force_mode = ForceMode::Real; // skip pair counting in decomp
        let decomp = decomp::build(&system, &cfg);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n_threads)
            .build()
            .expect("failed to build thread pool");
        let n = system.n_atoms();
        ParallelSim {
            system,
            decomp,
            pool,
            dt,
            forces: vec![Vec3::ZERO; n],
            forces_valid: false,
            migrate_every: 20,
            steps_since_migrate: 0,
            cfg,
        }
    }

    /// Number of compute objects (parallel tasks per force evaluation).
    pub fn n_computes(&self) -> usize {
        self.decomp.computes.len()
    }

    /// Evaluate all forces in parallel over compute objects. Returns the
    /// potential-energy accumulator; `self.forces` holds the result.
    pub fn compute_forces(&mut self) -> StepAcc {
        let n = self.system.n_atoms();
        let system = &self.system;
        let decomp = &self.decomp;
        let (forces, acc) = self.pool.install(|| {
            decomp
                .computes
                .par_iter()
                .fold(
                    || (vec![Vec3::ZERO; n], StepAcc::default()),
                    |(mut f, mut acc), spec| {
                        execute_compute(system, decomp, spec, &mut f, &mut acc);
                        (f, acc)
                    },
                )
                .reduce(
                    || (vec![Vec3::ZERO; n], StepAcc::default()),
                    |(mut fa, mut aa), (fb, ab)| {
                        for (a, b) in fa.iter_mut().zip(fb) {
                            *a += b;
                        }
                        aa.e_lj += ab.e_lj;
                        aa.e_elec += ab.e_elec;
                        aa.e_bond += ab.e_bond;
                        aa.e_angle += ab.e_angle;
                        aa.e_dihedral += ab.e_dihedral;
                        aa.e_improper += ab.e_improper;
                        aa.e_restraint += ab.e_restraint;
                        aa.pairs += ab.pairs;
                        (fa, aa)
                    },
                )
        });
        self.forces = forces;
        self.forces_valid = true;
        acc
    }

    /// One velocity-Verlet step; returns the step's energies.
    pub fn step(&mut self) -> StepAcc {
        if !self.forces_valid {
            self.compute_forces();
        }
        let dt = self.dt;
        let n = self.system.n_atoms();

        // Half-kick + drift, parallel over atoms.
        {
            let masses: Vec<f64> = self.system.masses();
            let cell = self.system.cell;
            let forces = &self.forces;
            let positions = &mut self.system.positions;
            let velocities = &mut self.system.velocities;
            self.pool.install(|| {
                positions
                    .par_iter_mut()
                    .zip(velocities.par_iter_mut())
                    .zip(forces.par_iter().zip(masses.par_iter()))
                    .for_each(|((p, v), (f, m))| {
                        *v += *f * (units::ACCEL / m) * (0.5 * dt);
                        *p = cell.wrap(*p + *v * dt);
                    });
            });
        }

        // Periodic atom migration between patches.
        self.steps_since_migrate += 1;
        if self.steps_since_migrate >= self.migrate_every {
            self.migrate_atoms();
        }

        // New forces + second half-kick.
        let mut acc = self.compute_forces();
        {
            let masses: Vec<f64> = self.system.masses();
            let forces = &self.forces;
            let velocities = &mut self.system.velocities;
            self.pool.install(|| {
                velocities
                    .par_iter_mut()
                    .zip(forces.par_iter().zip(masses.par_iter()))
                    .for_each(|(v, (f, m))| {
                        *v += *f * (units::ACCEL / m) * (0.5 * dt);
                    });
            });
        }
        acc.kinetic = self.system.kinetic_energy();
        let _ = n;
        acc
    }

    /// Run `n` steps; returns per-step energies.
    pub fn run(&mut self, n: usize) -> Vec<StepAcc> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Re-bin atoms into patches and rebuild the compute set — the analogue
    /// of NAMD's atom migration at pairlist updates.
    pub fn migrate_atoms(&mut self) {
        self.decomp = decomp::build(&self.system, &self.cfg);
        self.steps_since_migrate = 0;
        self.forces_valid = false;
    }

    /// Current force buffer.
    pub fn forces(&self) -> &[Vec3] {
        &self.forces
    }
}

/// Execute one compute object against `system`, accumulating into `f`/`acc`.
fn execute_compute(
    system: &System,
    decomp: &Decomposition,
    spec: &crate::decomp::ComputeSpec,
    f: &mut [Vec3],
    acc: &mut StepAcc,
) {
    let cell = system.cell;
    match &spec.kind {
        ComputeKind::SelfNb { patch } => {
            let g = PatchArrays::gather(system, &decomp.grid.atoms[*patch]);
            let mut local = vec![Vec3::ZERO; g.pos.len()];
            let res = nb_self_ranged(
                &system.forcefield,
                &system.exclusions,
                g.group(),
                &cell,
                spec.outer.clone(),
                &mut local,
            );
            for (k, &a) in g.ids.iter().enumerate() {
                f[a as usize] += local[k];
            }
            acc.e_lj += res.e_lj;
            acc.e_elec += res.e_elec;
            acc.pairs += res.pairs;
        }
        ComputeKind::PairNb { a, b } => {
            let ga = PatchArrays::gather(system, &decomp.grid.atoms[*a]);
            let gb = PatchArrays::gather(system, &decomp.grid.atoms[*b]);
            let mut fa = vec![Vec3::ZERO; ga.pos.len()];
            let mut fb = vec![Vec3::ZERO; gb.pos.len()];
            let res = nb_pair_ranged(
                &system.forcefield,
                &system.exclusions,
                ga.group(),
                gb.group(),
                &cell,
                spec.outer.clone(),
                &mut fa,
                &mut fb,
            );
            for (k, &atom) in ga.ids.iter().enumerate() {
                f[atom as usize] += fa[k];
            }
            for (k, &atom) in gb.ids.iter().enumerate() {
                f[atom as usize] += fb[k];
            }
            acc.e_lj += res.e_lj;
            acc.e_elec += res.e_elec;
            acc.pairs += res.pairs;
        }
        ComputeKind::BondedIntra { .. } | ComputeKind::BondedInter { .. } => {
            let terms = spec.terms.as_ref().expect("bonded compute without terms");
            let topo = &system.topology;
            let pos = &system.positions;
            for &bi in &terms.bonds {
                let b = &topo.bonds[bi as usize];
                let (e, fa, fb) = bond_force(&cell, pos[b.a as usize], pos[b.b as usize], b.k, b.r0);
                acc.e_bond += e;
                f[b.a as usize] += fa;
                f[b.b as usize] += fb;
            }
            for &ai in &terms.angles {
                let t = &topo.angles[ai as usize];
                let (e, fa, fb, fc) = angle_force(
                    &cell,
                    pos[t.a as usize],
                    pos[t.b as usize],
                    pos[t.c as usize],
                    t.k,
                    t.theta0,
                );
                acc.e_angle += e;
                f[t.a as usize] += fa;
                f[t.b as usize] += fb;
                f[t.c as usize] += fc;
            }
            for &di in &terms.dihedrals {
                let d = &topo.dihedrals[di as usize];
                let (e, ff) = dihedral_force(
                    &cell,
                    pos[d.a as usize],
                    pos[d.b as usize],
                    pos[d.c as usize],
                    pos[d.d as usize],
                    d.k,
                    d.n,
                    d.delta,
                );
                acc.e_dihedral += e;
                f[d.a as usize] += ff[0];
                f[d.b as usize] += ff[1];
                f[d.c as usize] += ff[2];
                f[d.d as usize] += ff[3];
            }
            for &ii in &terms.impropers {
                let d = &topo.impropers[ii as usize];
                let (e, ff) = improper_force(
                    &cell,
                    pos[d.a as usize],
                    pos[d.b as usize],
                    pos[d.c as usize],
                    pos[d.d as usize],
                    d.k,
                    d.psi0,
                );
                acc.e_improper += e;
                f[d.a as usize] += ff[0];
                f[d.b as usize] += ff[1];
                f[d.c as usize] += ff[2];
                f[d.d as usize] += ff[3];
            }
            for &ri in &terms.restraints {
                let r = &topo.restraints[ri as usize];
                let (e, fr) = restraint_force(&cell, pos[r.atom as usize], r.target, r.k);
                acc.e_restraint += e;
                f[r.atom as usize] += fr;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(seed: u64) -> System {
        let mut sys = molgen::SystemBuilder::new(molgen::SystemSpec {
            name: "par-test",
            box_lengths: Vec3::new(30.0, 30.0, 30.0),
            target_atoms: 2400,
            protein_chains: 1,
            protein_chain_len: 40,
            lipid_slab: None,
            cutoff: 8.0,
            seed,
        })
        .build();
        sys.thermalize(120.0, seed);
        sys
    }

    #[test]
    fn parallel_forces_match_sequential() {
        let sys = small_system(1);
        let mut f_seq = vec![Vec3::ZERO; sys.n_atoms()];
        let e_seq = mdcore::sim::compute_forces(&sys, &mut f_seq);

        let mut par = ParallelSim::new(sys, 2, 1.0);
        let acc = par.compute_forces();

        let e_par = acc.potential();
        let tol = 1e-8 * e_seq.potential().abs().max(1.0);
        assert!(
            (e_par - e_seq.potential()).abs() < tol,
            "potential: parallel {e_par} vs sequential {}",
            e_seq.potential()
        );
        for i in 0..f_seq.len() {
            let d = (par.forces()[i] - f_seq[i]).norm();
            let tol = 1e-9 * (1.0 + f_seq[i].norm());
            assert!(d < tol, "atom {i} force differs by {d} (|f| = {})", f_seq[i].norm());
        }
        assert_eq!(acc.pairs, e_seq.nonbonded.pairs);
    }

    #[test]
    fn thread_counts_agree() {
        let e1 = {
            let mut p = ParallelSim::new(small_system(2), 1, 1.0);
            p.compute_forces().potential()
        };
        let e2 = {
            let mut p = ParallelSim::new(small_system(2), 2, 1.0);
            p.compute_forces().potential()
        };
        assert!((e1 - e2).abs() < 1e-7 * e1.abs().max(1.0), "{e1} vs {e2}");
    }

    #[test]
    fn parallel_nve_conserves_energy() {
        let mut p = ParallelSim::new(small_system(3), 2, 0.5);
        p.migrate_every = 10;
        let energies = p.run(40);
        let e0 = energies[2].total();
        let e1 = energies[39].total();
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 1e-2, "drift {drift}: {e0} -> {e1}");
    }

    #[test]
    fn migration_preserves_atom_count_and_energy() {
        let mut p = ParallelSim::new(small_system(4), 2, 1.0);
        let before = p.compute_forces().potential();
        p.migrate_atoms();
        let total_atoms: usize = p.decomp.grid.atoms.iter().map(Vec::len).sum();
        assert_eq!(total_atoms, p.system.n_atoms());
        let after = p.compute_forces().potential();
        assert!(
            (before - after).abs() < 1e-7 * before.abs().max(1.0),
            "migration changed the physics: {before} vs {after}"
        );
    }
}
