//! The spatial patch grid: cubes slightly larger than the cutoff radius.
//!
//! "The variant of spatial decomposition we propose uses cubes whose
//! dimensions are slightly larger than the cutoff radius. Thus, atoms in one
//! cube need to interact only with their neighboring cubes; there are 26
//! such neighboring cubes."

use mdcore::prelude::*;

/// Identifier of a patch (a cube of space).
pub type PatchId = usize;

/// The grid of patches laid over the simulation cell.
#[derive(Debug, Clone)]
pub struct PatchGrid {
    /// Patches along each axis.
    pub dims: [usize; 3],
    /// The simulation cell the grid covers.
    pub cell: Cell,
    /// Atom indices owned by each patch.
    pub atoms: Vec<Vec<u32>>,
}

impl PatchGrid {
    /// Build the grid with patch side ≥ `cutoff + margin` and assign every
    /// atom to its patch. Panics if the box is smaller than one patch side
    /// on any axis (at least one patch always exists).
    pub fn build(cell: &Cell, positions: &[Vec3], cutoff: f64, margin: f64) -> Self {
        assert!(cutoff > 0.0 && margin >= 0.0);
        let side = cutoff + margin;
        let mut dims = [1usize; 3];
        for a in 0..3 {
            dims[a] = ((cell.lengths.axis(a) / side).floor() as usize).max(1);
        }
        let mut grid = PatchGrid {
            dims,
            cell: *cell,
            atoms: vec![Vec::new(); dims[0] * dims[1] * dims[2]],
        };
        grid.assign(positions);
        grid
    }

    /// (Re)assign all atoms to patches from scratch — used at startup and
    /// at atom-migration points between measurement phases.
    pub fn assign(&mut self, positions: &[Vec3]) {
        for v in &mut self.atoms {
            v.clear();
        }
        for (i, &p) in positions.iter().enumerate() {
            let pid = self.patch_of(p);
            self.atoms[pid].push(i as u32);
        }
    }

    /// Total number of patches.
    pub fn n_patches(&self) -> usize {
        self.atoms.len()
    }

    /// Patch containing a position (wrapped into the cell).
    pub fn patch_of(&self, p: Vec3) -> PatchId {
        let f = self.cell.fractional(self.cell.wrap(p));
        let mut idx = [0usize; 3];
        for a in 0..3 {
            let v = (f.axis(a) * self.dims[a] as f64).floor() as isize;
            idx[a] = v.clamp(0, self.dims[a] as isize - 1) as usize;
        }
        self.index(idx)
    }

    /// Linear index from 3-D patch coordinates.
    pub fn index(&self, c: [usize; 3]) -> PatchId {
        c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])
    }

    /// 3-D coordinates of a patch.
    pub fn coords(&self, p: PatchId) -> [usize; 3] {
        [
            p % self.dims[0],
            (p / self.dims[0]) % self.dims[1],
            p / (self.dims[0] * self.dims[1]),
        ]
    }

    /// Geometric centre of a patch (for RCB placement).
    pub fn center(&self, p: PatchId) -> Vec3 {
        let c = self.coords(p);
        let mut v = Vec3::ZERO;
        for a in 0..3 {
            let side = self.cell.lengths.axis(a) / self.dims[a] as f64;
            *v.axis_mut(a) = self.cell.origin.axis(a) + (c[a] as f64 + 0.5) * side;
        }
        v
    }

    /// The (up to) 26 distinct neighbouring patches of `p`, honouring
    /// periodicity. On small grids several offsets can alias to the same
    /// neighbour; duplicates and self are removed.
    pub fn neighbors(&self, p: PatchId) -> Vec<PatchId> {
        let c = self.coords(p);
        let mut out = Vec::with_capacity(26);
        for dz in -1isize..=1 {
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if (dx, dy, dz) == (0, 0, 0) {
                        continue;
                    }
                    if let Some(n) = self.offset(c, [dx, dy, dz]) {
                        if n != p && !out.contains(&n) {
                            out.push(n);
                        }
                    }
                }
            }
        }
        out
    }

    /// Unordered neighbouring patch pairs `(a, b)` with `a < b`, each listed
    /// exactly once — one non-bonded pair compute is created per entry.
    pub fn neighbor_pairs(&self) -> Vec<(PatchId, PatchId)> {
        let mut pairs = Vec::new();
        for p in 0..self.n_patches() {
            for n in self.neighbors(p) {
                if p < n {
                    pairs.push((p, n));
                }
            }
        }
        pairs
    }

    /// Neighbour patch at `c + off`, wrapped on periodic axes; `None` when
    /// the offset walks off an open boundary.
    pub fn offset(&self, c: [usize; 3], off: [isize; 3]) -> Option<PatchId> {
        let mut idx = [0usize; 3];
        for a in 0..3 {
            let d = self.dims[a] as isize;
            let v = c[a] as isize + off[a];
            if self.cell.periodic[a] {
                idx[a] = v.rem_euclid(d) as usize;
            } else if v < 0 || v >= d {
                return None;
            } else {
                idx[a] = v as usize;
            }
        }
        Some(self.index(idx))
    }

    /// True when patches `a` and `b` share a face (their coordinate offset
    /// has exactly one non-zero component) — these pair computes carry the
    /// most work and are the splitting targets of §4.2.1.
    pub fn face_adjacent(&self, a: PatchId, b: PatchId) -> bool {
        let ca = self.coords(a);
        let cb = self.coords(b);
        let mut nonzero = 0;
        for ax in 0..3 {
            let d = ca[ax].abs_diff(cb[ax]);
            let dim = self.dims[ax];
            // Wrapped distance on periodic axes.
            let dist = if self.cell.periodic[ax] { d.min(dim - d) } else { d };
            match dist {
                0 => {}
                1 => nonzero += 1,
                _ => return false,
            }
        }
        nonzero == 1
    }

    /// Count of atoms in each patch (the RCB weights).
    pub fn patch_weights(&self) -> Vec<f64> {
        self.atoms.iter().map(|a| a.len() as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_positions(n: usize, l: f64) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Vec3::new(
                    (t * 7.93).rem_euclid(l),
                    (t * 5.21).rem_euclid(l),
                    (t * 3.57).rem_euclid(l),
                )
            })
            .collect()
    }

    #[test]
    fn apoa1_grid_shape() {
        let cell = Cell::periodic(Vec3::ZERO, Vec3::new(112.0, 112.0, 84.0));
        let grid = PatchGrid::build(&cell, &[], 12.0, 3.5);
        assert_eq!(grid.dims, [7, 7, 5]);
        assert_eq!(grid.n_patches(), 245);
    }

    #[test]
    fn every_atom_is_assigned_exactly_once() {
        let cell = Cell::cube(62.0);
        let pos = uniform_positions(500, 62.0);
        let grid = PatchGrid::build(&cell, &pos, 12.0, 3.5);
        let mut seen = vec![false; 500];
        for patch in &grid.atoms {
            for &a in patch {
                assert!(!seen[a as usize], "atom {a} in two patches");
                seen[a as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn atoms_live_in_their_patch_bounds() {
        let cell = Cell::cube(62.0);
        let pos = uniform_positions(300, 62.0);
        let grid = PatchGrid::build(&cell, &pos, 12.0, 3.5);
        let side = 62.0 / grid.dims[0] as f64;
        for p in 0..grid.n_patches() {
            let c = grid.coords(p);
            for &a in &grid.atoms[p] {
                let q = cell.wrap(pos[a as usize]);
                for ax in 0..3 {
                    let lo = c[ax] as f64 * side;
                    let hi = lo + side;
                    let v = q.axis(ax);
                    assert!(
                        v >= lo - 1e-9 && v < hi + 1e-9,
                        "atom {a} at {v} outside patch [{lo},{hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn periodic_grid_has_26_neighbors() {
        let cell = Cell::periodic(Vec3::ZERO, Vec3::new(112.0, 112.0, 84.0));
        let grid = PatchGrid::build(&cell, &[], 12.0, 3.5);
        for p in 0..grid.n_patches() {
            assert_eq!(grid.neighbors(p).len(), 26, "patch {p}");
        }
    }

    #[test]
    fn neighbor_pairs_are_13_per_patch_on_big_grids() {
        // 26 neighbours / 2 = 13 unordered pairs per patch on average.
        let cell = Cell::periodic(Vec3::ZERO, Vec3::new(112.0, 112.0, 84.0));
        let grid = PatchGrid::build(&cell, &[], 12.0, 3.5);
        let pairs = grid.neighbor_pairs();
        assert_eq!(pairs.len(), grid.n_patches() * 13);
        // And with self computes that's the paper's "14 times the number of
        // cubes" compute-object count.
        assert_eq!(pairs.len() + grid.n_patches(), grid.n_patches() * 14);
    }

    #[test]
    fn open_boundary_corner_has_7_neighbors() {
        let cell = Cell::open(Vec3::ZERO, Vec3::splat(62.0));
        let grid = PatchGrid::build(&cell, &[], 12.0, 3.5);
        // Corner patch (0,0,0): 7 neighbours in an open box.
        let corner = grid.index([0, 0, 0]);
        assert_eq!(grid.neighbors(corner).len(), 7);
    }

    #[test]
    fn small_grid_deduplicates_aliases() {
        // 2 patches per axis with periodicity: ±1 alias to the same patch.
        let cell = Cell::cube(32.0);
        let grid = PatchGrid::build(&cell, &[], 12.0, 3.5);
        assert_eq!(grid.dims, [2, 2, 2]);
        for p in 0..8 {
            let n = grid.neighbors(p);
            assert_eq!(n.len(), 7, "every other patch exactly once: {n:?}");
        }
    }

    #[test]
    fn face_adjacency() {
        let cell = Cell::periodic(Vec3::ZERO, Vec3::new(112.0, 112.0, 84.0));
        let grid = PatchGrid::build(&cell, &[], 12.0, 3.5);
        let a = grid.index([2, 2, 2]);
        assert!(grid.face_adjacent(a, grid.index([3, 2, 2])));
        assert!(grid.face_adjacent(a, grid.index([2, 1, 2])));
        assert!(!grid.face_adjacent(a, grid.index([3, 3, 2]))); // edge
        assert!(!grid.face_adjacent(a, grid.index([3, 3, 3]))); // corner
        assert!(!grid.face_adjacent(a, a));
        // Wrap-around face adjacency.
        let edge = grid.index([0, 0, 0]);
        assert!(grid.face_adjacent(edge, grid.index([6, 0, 0])));
    }

    #[test]
    fn reassign_moves_atoms() {
        let cell = Cell::cube(62.0);
        let mut pos = uniform_positions(50, 62.0);
        let mut grid = PatchGrid::build(&cell, &pos, 12.0, 3.5);
        let before = grid.patch_of(pos[0]);
        // Move atom 0 to the far corner.
        pos[0] = Vec3::new(60.0, 60.0, 60.0);
        grid.assign(&pos);
        let after = grid.patch_of(pos[0]);
        assert_ne!(before, after);
        assert!(grid.atoms[after].contains(&0));
        assert!(!grid.atoms[before].contains(&0));
    }

    #[test]
    fn centers_are_inside_cell() {
        let cell = Cell::periodic(Vec3::ZERO, Vec3::new(112.0, 112.0, 84.0));
        let grid = PatchGrid::build(&cell, &[], 12.0, 3.5);
        for p in 0..grid.n_patches() {
            assert!(cell.contains(grid.center(p)));
        }
    }
}
