//! Crash-recovery driver: run a simulation to a target step count,
//! automatically rolling back to the newest valid checkpoint whenever the
//! fault plan kills a PE mid-phase.
//!
//! The driver slices the trajectory into checkpoint-interval-sized phases
//! and migrates atoms after each one, so every in-phase checkpoint barrier
//! lands on a phase-final step at a decomposition-rebuild boundary. That
//! alignment is what makes recovery *bit-identical*: [`Engine::restore`]
//! rebuilds the decomposition from the snapshot positions, producing
//! exactly the pair-term partition (and therefore exactly the
//! floating-point summation grouping) the uninterrupted run builds at the
//! same step. A checkpoint taken mid-phase away from a rebuild point is
//! still a *valid* restart state, but resuming from it changes how force
//! terms are grouped and the trajectories diverge in the last bits.

use crate::config::ForceMode;
use crate::engine::Engine;
use charmrt::Pe;
use std::time::Duration;

/// Retry/backoff policy for [`run_with_recovery`].
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Give up after this many crash-recoveries without forward progress
    /// between them.
    pub max_recoveries: u32,
    /// Base sleep before resuming after a crash; doubles per consecutive
    /// crash (exponential backoff).
    pub backoff: Duration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_recoveries: 3, backoff: Duration::from_millis(10) }
    }
}

/// Why [`run_with_recovery`] gave up.
#[derive(Debug)]
pub enum RecoveryError {
    /// Checkpoint I/O or validation failed during recovery.
    Ckpt(ckpt::CkptError),
    /// Crashed more than [`RecoveryPolicy::max_recoveries`] times in a row.
    TooManyCrashes {
        /// Consecutive crashes observed.
        crashes: u32,
        /// The PE killed by the final crash.
        last_pe: Pe,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Ckpt(e) => write!(f, "recovery failed: {e}"),
            RecoveryError::TooManyCrashes { crashes, last_pe } => write!(
                f,
                "giving up after {crashes} consecutive crashes \
                 (last killed PE {last_pe})"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Ckpt(e) => Some(e),
            RecoveryError::TooManyCrashes { .. } => None,
        }
    }
}

impl From<ckpt::CkptError> for RecoveryError {
    fn from(e: ckpt::CkptError) -> Self {
        RecoveryError::Ckpt(e)
    }
}

/// What happened during a recovered run.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Velocity-Verlet updates completed (== the requested total on `Ok`).
    pub updates: usize,
    /// Crash-recoveries performed.
    pub recoveries: u32,
    /// The snapshot step each recovery resumed from, in order.
    pub resumed_from: Vec<u64>,
}

/// Drive `engine` until it has completed `total_updates` velocity-Verlet
/// updates, checkpointing every `config.checkpoint_interval` steps and
/// recovering from PE-kill crashes by restoring the newest valid
/// checkpoint from `config.checkpoint_dir`.
///
/// Requirements (asserted): `ForceMode::Real`, a positive
/// `checkpoint_interval`, and a `checkpoint_dir`. A step-0 snapshot is
/// written first if the engine has not advanced yet, so a crash in the
/// very first interval is recoverable too.
///
/// On success the produced trajectory is bit-identical to an uninterrupted
/// run through this same driver (same seed, schedule policy, and interval)
/// with no kills in the fault plan.
pub fn run_with_recovery(
    engine: &mut Engine,
    total_updates: usize,
    policy: &RecoveryPolicy,
) -> Result<RecoveryReport, RecoveryError> {
    assert_eq!(
        engine.config.force_mode,
        ForceMode::Real,
        "run_with_recovery requires real force kernels"
    );
    let interval = engine.config.checkpoint_interval;
    assert!(interval > 0, "run_with_recovery requires a checkpoint interval");
    let dir_path = engine
        .config
        .checkpoint_dir
        .clone()
        .expect("run_with_recovery requires a checkpoint directory");
    let dir = ckpt::CheckpointDir::create(&dir_path)?;

    let mut report = RecoveryReport::default();
    if engine.steps_done == 0 {
        // Baseline snapshot: without it, a crash before the first barrier
        // would leave nothing to roll back to.
        dir.write(&engine.snapshot())?;
    }

    let mut consecutive = 0u32;
    while engine.steps_done < total_updates {
        let updates = interval.min(total_updates - engine.steps_done);
        match engine.try_run_phase(updates + 1) {
            Ok(_) => {
                consecutive = 0;
                report.updates = engine.steps_done;
                if engine.steps_done < total_updates {
                    // Phase-final steps are decomposition-rebuild points;
                    // see the module docs for why this keeps restores
                    // bit-identical.
                    engine.migrate_atoms();
                }
            }
            Err(crash) => {
                report.recoveries += 1;
                consecutive += 1;
                if consecutive > policy.max_recoveries {
                    return Err(RecoveryError::TooManyCrashes {
                        crashes: consecutive,
                        last_pe: crash.pe,
                    });
                }
                // The kill already fired; replaying it verbatim would crash
                // the same phase forever. Keep the message-level faults.
                engine.config.fault_plan =
                    engine.config.fault_plan.take().and_then(|p| p.without_kills());
                std::thread::sleep(policy.backoff * 2u32.saturating_pow(consecutive - 1));
                let (snap, _path) = dir.latest_valid()?;
                engine.restore(&snap)?;
                report.resumed_from.push(snap.step);
            }
        }
    }
    report.updates = engine.steps_done;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Backend, SimConfig};
    use mdcore::prelude::Vec3;

    fn small_engine(dir: &std::path::Path, backend: Backend) -> Engine {
        let mut sys = molgen::SystemBuilder::new(molgen::SystemSpec {
            name: "recovery-test",
            box_lengths: Vec3::new(28.0, 28.0, 28.0),
            target_atoms: 1200,
            protein_chains: 1,
            protein_chain_len: 24,
            lipid_slab: None,
            cutoff: 8.0,
            seed: 7,
        })
        .build();
        sys.thermalize(150.0, 7);
        let cfg = SimConfig::builder(2, machine::presets::generic_cluster())
            .force_mode(ForceMode::Real)
            .backend(backend)
            .checkpoint(dir, 4)
            .build()
            .expect("valid test config");
        Engine::new(sys, cfg)
    }

    fn final_state(engine: &Engine) -> (Vec<Vec3>, Vec<Vec3>) {
        let st = engine.shared.state.read().unwrap();
        (st.system.positions.clone(), st.system.velocities.clone())
    }

    #[test]
    fn uninterrupted_run_completes_and_checkpoints() {
        let tmp = tempdir("recovery-clean");
        let mut engine = small_engine(&tmp, Backend::Des);
        let report =
            run_with_recovery(&mut engine, 8, &RecoveryPolicy::default()).unwrap();
        assert_eq!(report.updates, 8);
        assert_eq!(report.recoveries, 0);
        let dir = ckpt::CheckpointDir::create(&tmp).unwrap();
        let files = dir.list().unwrap();
        let names: Vec<String> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "ckpt_000000000000.ckpt",
                "ckpt_000000000004.ckpt",
                "ckpt_000000000008.ckpt"
            ]
        );
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn killed_run_recovers_bit_identically() {
        let tmp_a = tempdir("recovery-ref");
        let mut reference = small_engine(&tmp_a, Backend::Des);
        run_with_recovery(&mut reference, 8, &RecoveryPolicy::default()).unwrap();
        let (ref_x, ref_v) = final_state(&reference);

        let tmp_b = tempdir("recovery-killed");
        let mut killed = small_engine(&tmp_b, Backend::Des);
        killed.config.fault_plan = Some(
            charmrt::FaultPlan::parse("kill:entry=PatchRecvForces:dst=1:skip=6").unwrap(),
        );
        let report = run_with_recovery(&mut killed, 8, &RecoveryPolicy::default()).unwrap();
        assert!(report.recoveries >= 1, "the kill must have fired");
        let (x, v) = final_state(&killed);

        for i in 0..ref_x.len() {
            assert_eq!(ref_x[i].x.to_bits(), x[i].x.to_bits(), "atom {i} x");
            assert_eq!(ref_v[i].x.to_bits(), v[i].x.to_bits(), "atom {i} vx");
        }
        std::fs::remove_dir_all(&tmp_a).ok();
        std::fs::remove_dir_all(&tmp_b).ok();
    }

    #[test]
    fn persistent_crashes_give_up() {
        let tmp = tempdir("recovery-giveup");
        let mut engine = small_engine(&tmp, Backend::Des);
        // without_kills() strips the kill after the first crash, so set
        // max_recoveries = 0 to observe the give-up path directly.
        engine.config.fault_plan = Some(
            charmrt::FaultPlan::parse("kill:entry=PatchRecvForces:dst=1:skip=6").unwrap(),
        );
        let policy = RecoveryPolicy { max_recoveries: 0, ..Default::default() };
        match run_with_recovery(&mut engine, 8, &policy) {
            Err(RecoveryError::TooManyCrashes { crashes, last_pe }) => {
                assert_eq!(crashes, 1);
                assert_eq!(last_pe, 1);
            }
            other => panic!("expected TooManyCrashes, got {other:?}"),
        }
        std::fs::remove_dir_all(&tmp).ok();
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let pid = std::process::id();
        let path = std::env::temp_dir().join(format!("namd-{tag}-{pid}"));
        std::fs::remove_dir_all(&path).ok();
        path
    }
}
