//! Engine scenario tests: the modeled full-electrostatics (PME) pipeline,
//! heterogeneous processors (workstation-cluster adaptation, paper ref [3]),
//! and the distributed diffusion strategy.

use crate::config::{PmeSimConfig, SimConfig};
use crate::engine::Engine;
use machine::presets;
use mdcore::prelude::*;

fn system() -> System {
    molgen::SystemBuilder::new(molgen::SystemSpec {
        name: "pme-engine",
        box_lengths: Vec3::new(36.0, 36.0, 36.0),
        target_atoms: 4_200,
        protein_chains: 1,
        protein_chain_len: 60,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 17,
    })
    .build()
}

#[test]
fn pme_protocol_completes_and_costs_time() {
    let sys = system();
    let machine = presets::asci_red();
    let time_with = |pme: Option<PmeSimConfig>| {
        let cfg = SimConfig::builder(16, machine).pme(pme).steps_per_phase(4).build().unwrap();
        let mut e = Engine::new(sys.clone(), cfg);
        e.run_phase(4).time_per_step
    };
    let without = time_with(None);
    let every_step = time_with(Some(PmeSimConfig { every: 1, ..Default::default() }));
    let mts = time_with(Some(PmeSimConfig { every: 4, ..Default::default() }));
    assert!(every_step > without, "PME must cost time: {without} vs {every_step}");
    assert!(
        mts < every_step,
        "multiple timestepping must amortize the grid cost: {mts} vs {every_step}"
    );
    // The grid component is a small fraction of the step, as the paper says.
    assert!(
        every_step < 1.6 * without,
        "PME should be a modest fraction: {without} -> {every_step}"
    );
}

#[test]
fn pme_entries_show_up_in_the_profile() {
    let sys = system();
    let cfg = SimConfig::builder(8, presets::asci_red())
        .pme(Some(PmeSimConfig { every: 2, slabs: 8, ..Default::default() }))
        .steps_per_phase(4)
        .build()
        .unwrap();
    let mut e = Engine::new(sys, cfg);
    let r = e.run_phase(4);
    // 4 steps at every=2 → PME fired on steps 0 and 2: slabs got charges
    // from every patch twice.
    let n_patches = e.decomp().grid.n_patches();
    let charges = r.stats.entry_count[r.entries.slab_charge.idx()];
    assert_eq!(charges, 2 * n_patches as u64);
    let fft_time = r.stats.entry_time[r.entries.slab_transpose.idx()];
    assert!(fft_time > 0.0);
}

#[test]
fn pme_run_is_deterministic_and_lb_compatible() {
    let run = || {
        let cfg = SimConfig::builder(12, presets::t3e_900())
            .pme(Some(PmeSimConfig::default()))
            .steps_per_phase(4)
            .build()
            .unwrap();
        let mut e = Engine::new(system(), cfg);
        e.run_benchmark().final_time_per_step().to_bits()
    };
    assert_eq!(run(), run());
}

#[test]
fn single_slab_degenerate_case_works() {
    let cfg = SimConfig::builder(4, presets::ideal())
        .pme(Some(PmeSimConfig { slabs: 1, every: 1, ..Default::default() }))
        .steps_per_phase(2)
        .build()
        .unwrap();
    let mut e = Engine::new(system(), cfg);
    let r = e.run_phase(2);
    assert!(r.time_per_step.is_finite() && r.time_per_step > 0.0);
}

#[test]
fn lb_adapts_to_straggler_pes() {
    // Workstation-cluster scenario (paper ref [3]): a quarter of the PEs
    // run at half speed. The measurement-based balancer observes the
    // inflated object times on slow PEs and sheds work from them.
    use crate::config::LbStrategy;
    let sys = system();
    let machine = presets::asci_red();
    let n_pes = 16;
    let mut speeds = vec![1.0; n_pes];
    for s in speeds.iter_mut().take(4) {
        *s = 0.5;
    }
    let run_with = |lb: LbStrategy| {
        let cfg = SimConfig::builder(n_pes, machine)
            .pe_speeds(speeds.clone())
            .lb(lb)
            .steps_per_phase(3)
            .build()
            .unwrap();
        let mut e = Engine::new(sys.clone(), cfg);
        e.run_benchmark().final_time_per_step()
    };
    let static_t = run_with(LbStrategy::None);
    let greedy_t = run_with(LbStrategy::GreedyRefine);
    assert!(
        greedy_t < 0.9 * static_t,
        "LB should adapt to stragglers: static {static_t} vs greedy {greedy_t}"
    );
}

#[test]
fn diffusion_strategy_runs_and_helps() {
    use crate::config::LbStrategy;
    let sys = system();
    let run_with = |lb: LbStrategy| {
        let cfg = SimConfig::builder(16, presets::asci_red())
            .lb(lb)
            .steps_per_phase(3)
            .build()
            .unwrap();
        let mut e = Engine::new(sys.clone(), cfg);
        e.run_benchmark().final_time_per_step()
    };
    let none = run_with(LbStrategy::None);
    let diff = run_with(LbStrategy::Diffusion);
    let greedy = run_with(LbStrategy::GreedyRefine);
    assert!(diff < none, "diffusion should beat static: {diff} vs {none}");
    // Centralized greedy with refinement is at least as good.
    assert!(greedy <= diff * 1.05, "greedy {greedy} vs diffusion {diff}");
}

#[test]
fn atom_migration_between_phases_preserves_physics() {
    use crate::config::ForceMode;
    // Real-mode dynamics hot enough that atoms cross patch boundaries, an
    // atom migration, then more dynamics: the partition must stay exact and
    // the energy continuous across the migration.
    let mut sys = system();
    sys.thermalize(300.0, 23);
    let cfg = SimConfig::builder(6, presets::ideal())
        .force_mode(ForceMode::Real)
        .dt_fs(1.0)
        .build()
        .unwrap();
    let mut engine = Engine::new(sys, cfg);

    let r1 = engine.run_phase(10);
    let e_before = r1.energies.last().unwrap().total();

    engine.migrate_atoms();
    // Partition invariant after migration.
    let total: usize = engine.decomp().grid.atoms.iter().map(Vec::len).sum();
    assert_eq!(total, engine.shared.state.read().unwrap().system.n_atoms());

    let r2 = engine.run_phase(10);
    let e_after = r2.energies.first().unwrap().total();
    let rel = (e_after - e_before).abs() / e_before.abs().max(1.0);
    assert!(rel < 2e-2, "energy jumped across migration: {e_before} -> {e_after}");
}

#[test]
fn periodic_refinement_tracks_slow_load_drift() {
    // §3.2's last paragraph: "Periodically thereafter, the refinement
    // procedure is repeated to account for the slow changes of the
    // simulation." Under a drifting load, periodic refinement must hold the
    // step time near its post-LB level while a frozen placement degrades.
    let sys = system();
    let run_with = |refine: bool| {
        let cfg = SimConfig::builder(16, presets::asci_red())
            .steps_per_phase(2)
            .load_drift(0.25)
            .build()
            .unwrap();
        let mut e = Engine::new(sys.clone(), cfg);
        e.run_long(6, refine)
    };
    let with_refine = run_with(true);
    let frozen = run_with(false);
    // Same drift sequence (deterministic RNG), so the comparison is paired.
    let last_refined = *with_refine.last().unwrap();
    let last_frozen = *frozen.last().unwrap();
    assert!(
        last_refined < last_frozen,
        "periodic refinement should track drift: {last_refined} vs frozen {last_frozen}"
    );
    // And the refined trajectory stays within a modest band of its start.
    let start = with_refine[0];
    assert!(
        last_refined < 1.6 * start,
        "refined run degraded too much: {start} -> {last_refined}"
    );
}

#[test]
fn load_drift_is_deterministic_and_bounded() {
    let sys = system();
    let cfg = SimConfig::builder(4, presets::ideal()).load_drift(0.5).build().unwrap();
    let mut a = Engine::new(sys.clone(), cfg.clone());
    let mut b = Engine::new(sys, cfg);
    for _ in 0..20 {
        a.advance_load_drift();
        b.advance_load_drift();
    }
    assert_eq!(a.drift, b.drift);
    assert!(a.drift.iter().all(|&d| (0.25..=4.0).contains(&d)));
    // The walk actually moved.
    assert!(a.drift.iter().any(|&d| (d - 1.0).abs() > 0.05));
}

#[test]
fn remote_priority_helps_at_scale() {
    // NAMD runs computes that feed remote patches first, so force messages
    // overlap local-only work. At communication-bound PE counts the
    // prioritization should not hurt and typically helps.
    let sys = system();
    let time_with = |on: bool| {
        let cfg = SimConfig::builder(48, presets::asci_red())
            .prioritize_remote(on)
            .steps_per_phase(3)
            .build()
            .unwrap();
        let mut e = Engine::new(sys.clone(), cfg);
        e.run_benchmark().final_time_per_step()
    };
    let with = time_with(true);
    let without = time_with(false);
    assert!(
        with <= without * 1.05,
        "remote prioritization should not hurt: {with} vs {without}"
    );
}

#[test]
fn real_mode_pme_matches_sequential_full_electrostatics() {
    use crate::config::ForceMode;
    // The DES engine in Real mode with full electrostatics must compute the
    // same step-0 potential as the sequential pme::md path on the same
    // Ewald-mode system.
    let beta = 0.45;
    let mut sys = molgen::SystemBuilder::new(molgen::SystemSpec {
        name: "pme-real",
        box_lengths: Vec3::new(24.0, 24.0, 24.0),
        target_atoms: 900,
        protein_chains: 0,
        protein_chain_len: 0,
        lipid_slab: None,
        cutoff: 8.0,
        seed: 8,
    })
    .build();
    sys.forcefield = sys.forcefield.clone().with_ewald(beta);
    sys.thermalize(100.0, 8);

    // Sequential reference.
    let mut full = pme::md::FullElectrostatics::new(&sys, 1.0);
    let mut f = vec![Vec3::ZERO; sys.n_atoms()];
    let e_ref = full.compute_forces(&sys, &mut f);

    // DES engine, Real mode, PME every step, 4 slabs.
    let cfg = SimConfig::builder(4, presets::ideal())
        .force_mode(ForceMode::Real)
        .pme(Some(crate::config::PmeSimConfig { every: 1, slabs: 4, mesh_spacing: 1.0 }))
        .build()
        .unwrap();
    let mut engine = Engine::new(sys, cfg);
    let r = engine.run_phase(2);

    let got = r.energies[0].potential();
    let want = e_ref.potential();
    let tol = 2e-2 * want.abs().max(1.0);
    assert!(
        (got - want).abs() < tol,
        "step-0 potential: DES {got} vs sequential {want}"
    );
    // Dynamics with PME forces conserve energy decently over a short run.
    let e1 = r.energies[0].total();
    let e2 = r.energies[1].total();
    assert!(
        (e2 - e1).abs() < 0.05 * e1.abs().max(1.0),
        "one-step energy jump: {e1} -> {e2}"
    );
}
