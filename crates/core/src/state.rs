//! Shared simulation state for the DES backend.
//!
//! The DES is single-threaded: handlers run to completion in event order, so
//! the molecular data lives in one `RefCell` shared by all chares. The
//! message protocol (coordinates → computes → forces → integration) provides
//! exactly the ordering guarantees a distributed NAMD run has, so reads and
//! writes through this shared state are always protocol-ordered; only the
//! *transport* of the data is virtual.

use crate::decomp::Decomposition;
use mdcore::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Per-step energy accumulator (Real force mode only).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepAcc {
    pub e_lj: f64,
    pub e_elec: f64,
    pub e_bond: f64,
    pub e_angle: f64,
    pub e_dihedral: f64,
    pub e_improper: f64,
    pub e_restraint: f64,
    pub kinetic: f64,
    pub pairs: u64,
}

impl StepAcc {
    /// Total potential energy.
    pub fn potential(&self) -> f64 {
        self.e_lj
            + self.e_elec
            + self.e_bond
            + self.e_angle
            + self.e_dihedral
            + self.e_improper
            + self.e_restraint
    }

    /// Total energy.
    pub fn total(&self) -> f64 {
        self.potential() + self.kinetic
    }
}

/// Mutable simulation state shared by all chares.
#[derive(Debug)]
pub struct SimState {
    pub system: System,
    /// Force accumulator, indexed by atom id. Zeroed per-patch after each
    /// integration.
    pub forces: Vec<Vec3>,
    /// Per-step energy records (Real mode).
    pub energies: Vec<StepAcc>,
}

/// Real-physics PME solver shared by the slab chares (Real force mode with
/// full electrostatics): the actual reciprocal-space evaluation runs once
/// per PME step, triggered by the first slab to finish its transposes.
pub struct PmeReal {
    pub solver: pme::mesh::Pme,
    pub ewald: pme::ewald::EwaldParams,
    pub charges: Vec<f64>,
    /// PME rounds whose physics has been computed.
    pub rounds_done: usize,
}

/// Everything chares share: the mutable state plus the immutable
/// decomposition.
pub struct Shared {
    pub state: RefCell<SimState>,
    pub decomp: Decomposition,
    /// Present only in Real mode with full electrostatics.
    pub pme_real: Option<RefCell<PmeReal>>,
}

impl Shared {
    /// Package a system and its decomposition for a run of `n_steps`.
    pub fn new(system: System, decomp: Decomposition, n_steps: usize) -> Rc<Shared> {
        let n = system.n_atoms();
        Rc::new(Shared {
            state: RefCell::new(SimState {
                system,
                forces: vec![Vec3::ZERO; n],
                energies: vec![StepAcc::default(); n_steps],
            }),
            decomp,
            pme_real: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_acc_totals() {
        let acc = StepAcc {
            e_lj: 1.0,
            e_elec: 2.0,
            e_bond: 3.0,
            e_angle: 4.0,
            e_dihedral: 5.0,
            e_improper: 6.0,
            e_restraint: 1.5,
            kinetic: 7.0,
            pairs: 9,
        };
        assert_eq!(acc.potential(), 22.5);
        assert_eq!(acc.total(), 29.5);
    }
}
