//! Shared simulation state, safe on both execution backends.
//!
//! On the DES backend handlers run to completion in event order, so locks
//! are uncontended; on the real-threads backend many compute chares execute
//! concurrently. The message protocol (coordinates → computes → forces →
//! integration) provides the same ordering guarantees a distributed NAMD
//! run has: computes only *read* positions (shared read lock) while the
//! owning patch is waiting for their force messages, and a patch only
//! *writes* (write lock, at integration) after every force contribution
//! for the step has arrived. Forces travel **in messages** — each compute
//! sends per-patch force payloads to patch representatives — so no two
//! handlers ever write the same atom's force concurrently.
//!
//! Lock order (deadlock freedom): `state` → { `nb_cache[j]` | `pme_real` }
//! → `energies`. Every handler that takes more than one of these acquires
//! them in that order and drops them before sending messages. A non-bonded
//! compute only ever locks *its own* `nb_cache` entry (and never `pme_real`),
//! and PME slab chares never touch `nb_cache`, so the middle tier is two
//! disjoint families and the order is total in practice.

use crate::decomp::Decomposition;
use crate::nbcache::PairlistCache;
use mdcore::prelude::*;
use std::sync::{Arc, Mutex, RwLock};

/// Per-step energy accumulator (Real force mode only).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepAcc {
    pub e_lj: f64,
    pub e_elec: f64,
    pub e_bond: f64,
    pub e_angle: f64,
    pub e_dihedral: f64,
    pub e_improper: f64,
    pub e_restraint: f64,
    pub kinetic: f64,
    pub pairs: u64,
}

impl StepAcc {
    /// Total potential energy.
    pub fn potential(&self) -> f64 {
        self.e_lj
            + self.e_elec
            + self.e_bond
            + self.e_angle
            + self.e_dihedral
            + self.e_improper
            + self.e_restraint
    }

    /// Total energy.
    pub fn total(&self) -> f64 {
        self.potential() + self.kinetic
    }

    /// Accumulate another record into this one.
    pub fn merge(&mut self, other: &StepAcc) {
        self.e_lj += other.e_lj;
        self.e_elec += other.e_elec;
        self.e_bond += other.e_bond;
        self.e_angle += other.e_angle;
        self.e_dihedral += other.e_dihedral;
        self.e_improper += other.e_improper;
        self.e_restraint += other.e_restraint;
        self.kinetic += other.kinetic;
        self.pairs += other.pairs;
    }
}

/// Mutable simulation state shared by all chares. Computes take the read
/// lock (positions); home patches take the write lock at integration.
#[derive(Debug)]
pub struct SimState {
    pub system: System,
    /// The most recently evaluated total force per atom, written by each
    /// home patch at integration (accumulated from the force payloads it
    /// received for the step). Read-only observability — the integration
    /// itself consumes the payload-borne forces directly.
    pub forces: Vec<Vec3>,
}

/// Real-physics PME solver shared by the slab chares (Real force mode with
/// full electrostatics): the actual reciprocal-space evaluation runs once
/// per PME step, triggered by the first slab to finish its transposes.
pub struct PmeReal {
    pub solver: pme::mesh::Pme,
    pub ewald: pme::ewald::EwaldParams,
    pub charges: Vec<f64>,
    /// Reciprocal-space force accumulator, zeroed and refilled once per PME
    /// round. Home patches add their atoms' entries at integration on PME
    /// steps (impulse multiple-timestepping).
    pub forces: Vec<Vec3>,
    /// PME rounds whose physics has been computed.
    pub rounds_done: usize,
}

/// Everything chares share: the mutable state plus the immutable
/// decomposition. See the module docs for the locking discipline.
pub struct Shared {
    pub state: RwLock<SimState>,
    /// Per-step energy records (Real mode), accumulated by computes and
    /// patches. Always the innermost lock.
    pub energies: Mutex<Vec<StepAcc>>,
    pub decomp: Decomposition,
    /// Present only in Real mode with full electrostatics.
    pub pme_real: Option<Mutex<PmeReal>>,
    /// Per-compute pair-list cache + persistent SoA buffers for the
    /// non-bonded hot path (Real mode). Reset wholesale on atom migration.
    pub nb_cache: PairlistCache,
}

impl Shared {
    /// Package a system and its decomposition for a run of `n_steps`.
    pub fn new(system: System, decomp: Decomposition, n_steps: usize) -> Arc<Shared> {
        let n = system.n_atoms();
        let n_computes = decomp.computes.len();
        Arc::new(Shared {
            state: RwLock::new(SimState { system, forces: vec![Vec3::ZERO; n] }),
            energies: Mutex::new(vec![StepAcc::default(); n_steps]),
            decomp,
            pme_real: None,
            nb_cache: PairlistCache::new(n_computes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_acc_totals() {
        let acc = StepAcc {
            e_lj: 1.0,
            e_elec: 2.0,
            e_bond: 3.0,
            e_angle: 4.0,
            e_dihedral: 5.0,
            e_improper: 6.0,
            e_restraint: 1.5,
            kinetic: 7.0,
            pairs: 9,
        };
        assert_eq!(acc.potential(), 22.5);
        assert_eq!(acc.total(), 29.5);
    }

    #[test]
    fn step_acc_merge_adds_componentwise() {
        let mut a = StepAcc { e_lj: 1.0, kinetic: 2.0, pairs: 3, ..Default::default() };
        let b = StepAcc { e_lj: 0.5, e_bond: 4.0, pairs: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.e_lj, 1.5);
        assert_eq!(a.e_bond, 4.0);
        assert_eq!(a.kinetic, 2.0);
        assert_eq!(a.pairs, 10);
    }
}
