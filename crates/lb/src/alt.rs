//! Ablation baselines: strategies the paper's greedy+refine pipeline is
//! compared against in the benchmark harness.

use crate::{Assignment, LbProblem};

/// Round-robin by compute index — communication-oblivious, load-oblivious.
pub fn round_robin(problem: &LbProblem) -> Assignment {
    (0..problem.computes.len()).map(|i| i % problem.n_pes).collect()
}

/// Pseudo-random assignment (deterministic given `seed`), the classic
/// "throw darts" baseline.
pub fn random_assign(problem: &LbProblem, seed: u64) -> Assignment {
    // SplitMix64 — tiny, deterministic, no dependency.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..problem.computes.len())
        .map(|_| (next() % problem.n_pes as u64) as usize)
        .collect()
}

/// The greedy strategy with the proxy-related criteria disabled: still
/// biggest-first onto the least-loaded PE, but blind to where patch data
/// lives. Used to measure what proxy-awareness buys (§3.2's second and
/// third destination criteria).
pub fn greedy_no_proxy(problem: &LbProblem) -> Assignment {
    crate::greedy::greedy(
        problem,
        crate::greedy::GreedyParams { proxy_aware: false, ..Default::default() },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{imbalance_ratio, proxy_count};
    use crate::testutil::synthetic;

    #[test]
    fn round_robin_uses_all_pes() {
        let p = synthetic(4, 16);
        let a = round_robin(&p);
        for pe in 0..4 {
            assert!(a.contains(&pe));
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let p = synthetic(8, 40);
        assert_eq!(random_assign(&p, 1), random_assign(&p, 1));
        assert_ne!(random_assign(&p, 1), random_assign(&p, 2));
        assert!(random_assign(&p, 1).iter().all(|&pe| pe < 8));
    }

    #[test]
    fn greedy_no_proxy_balances_but_costs_proxies() {
        let p = synthetic(8, 64);
        let np = greedy_no_proxy(&p);
        // Load balance should still be decent...
        assert!(imbalance_ratio(&p, &np) < 1.3);
        // ...but the proxy-aware version needs no more proxies.
        let aware = crate::greedy::greedy(&p, Default::default());
        assert!(proxy_count(&p, &aware) <= proxy_count(&p, &np));
    }

    #[test]
    fn random_is_usually_worse_than_greedy() {
        let p = synthetic(8, 64);
        let g = crate::greedy::greedy(&p, Default::default());
        let r = random_assign(&p, 7);
        assert!(imbalance_ratio(&p, &g) <= imbalance_ratio(&p, &r));
    }
}
