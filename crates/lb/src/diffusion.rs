//! A distributed (neighbourhood-diffusion) load-balancing strategy.
//!
//! §2.2: "A distributed strategy does not collect all information in one
//! place; instead it may choose to communicate with neighboring processors,
//! to exchange information and then to exchange objects." This module
//! simulates that protocol faithfully: PEs sit on a ring, and in each
//! synchronous round every processor only looks at its immediate
//! neighbours' loads and offloads objects to the lighter one. No global
//! view is ever constructed — which is exactly why it converges more slowly
//! than the centralized greedy strategy (the trade-off the paper points at
//! when it notes centralized strategies are affordable because "the load
//! balance does not change significantly for a long period of time").

use crate::metrics::pe_loads;
use crate::{Assignment, LbProblem};

/// Tunables for [`diffusion`].
#[derive(Debug, Clone, Copy)]
pub struct DiffusionParams {
    /// Synchronous neighbour-exchange rounds.
    pub rounds: usize,
    /// Fraction of the load difference a PE tries to ship per round.
    pub transfer_fraction: f64,
}

impl Default for DiffusionParams {
    fn default() -> Self {
        DiffusionParams { rounds: 32, transfer_fraction: 0.5 }
    }
}

/// Run the diffusion strategy from `current`. Only migratable-compute
/// assignments change (the problem's computes are all assumed migratable,
/// as the engine filters them already).
pub fn diffusion(
    problem: &LbProblem,
    current: &Assignment,
    params: DiffusionParams,
) -> Assignment {
    problem.validate().expect("invalid LB problem");
    assert_eq!(current.len(), problem.computes.len());
    let n = problem.n_pes;
    if n <= 1 {
        return current.clone();
    }
    let mut assignment = current.clone();
    let mut loads = pe_loads(problem, &assignment);
    // Per-PE object lists, kept sorted by load ascending so we can ship the
    // smallest objects first (minimizes overshoot).
    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (c, &pe) in assignment.iter().enumerate() {
        owned[pe].push(c);
    }

    for round in 0..params.rounds {
        // Alternate exchange direction each round so load can travel both
        // ways around the ring.
        let dir = if round % 2 == 0 { 1 } else { n - 1 };
        let mut moved_any = false;
        for pe in 0..n {
            let neighbor = (pe + dir) % n;
            if neighbor == pe {
                continue;
            }
            let diff = loads[pe] - loads[neighbor];
            if diff <= 0.0 {
                continue;
            }
            let mut budget = diff * params.transfer_fraction;
            // Ship smallest-first while they fit in the budget.
            owned[pe].sort_by(|&a, &b| {
                problem.computes[a]
                    .load
                    .partial_cmp(&problem.computes[b].load)
                    .unwrap()
                    .then(a.cmp(&b))
            });
            let mut kept = Vec::with_capacity(owned[pe].len());
            let mut shipped = Vec::new();
            for &c in &owned[pe] {
                let l = problem.computes[c].load;
                if l <= budget {
                    budget -= l;
                    shipped.push(c);
                } else {
                    kept.push(c);
                }
            }
            if !shipped.is_empty() {
                moved_any = true;
                for &c in &shipped {
                    assignment[c] = neighbor;
                    loads[pe] -= problem.computes[c].load;
                    loads[neighbor] += problem.computes[c].load;
                }
                owned[pe] = kept;
                owned[neighbor].extend(shipped);
            }
        }
        if !moved_any {
            break;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::imbalance_ratio;
    use crate::testutil::synthetic;

    #[test]
    fn diffusion_reduces_a_hot_spot() {
        let p = synthetic(8, 48);
        let all_zero = vec![0usize; p.computes.len()];
        let before = imbalance_ratio(&p, &all_zero);
        let after_a = diffusion(&p, &all_zero, DiffusionParams::default());
        let after = imbalance_ratio(&p, &after_a);
        assert!(after < 0.5 * before, "diffusion didn't spread the load: {before} -> {after}");
    }

    #[test]
    fn diffusion_never_worsens() {
        let p = synthetic(6, 36);
        let rr: Vec<usize> = (0..p.computes.len()).map(|i| i % p.n_pes).collect();
        let before = imbalance_ratio(&p, &rr);
        let a = diffusion(&p, &rr, DiffusionParams::default());
        let after = imbalance_ratio(&p, &a);
        assert!(after <= before + 1e-9, "{before} -> {after}");
    }

    #[test]
    fn converges_slower_than_centralized_greedy() {
        // The motivating trade-off: with few rounds, diffusion lags greedy.
        let p = synthetic(16, 64);
        let all_zero = vec![0usize; p.computes.len()];
        let few_rounds =
            diffusion(&p, &all_zero, DiffusionParams { rounds: 2, transfer_fraction: 0.5 });
        let greedy = crate::greedy::greedy(&p, Default::default());
        assert!(
            imbalance_ratio(&p, &greedy) < imbalance_ratio(&p, &few_rounds),
            "greedy {} vs 2-round diffusion {}",
            imbalance_ratio(&p, &greedy),
            imbalance_ratio(&p, &few_rounds)
        );
    }

    #[test]
    fn hotspot_imbalance_improves_monotonically_across_rounds() {
        // The zoo's density-hotspot scenario reduced to LB essentials: a
        // quarter of the patches carry 6x the load, block-placed so the
        // low PEs start hot. Each diffusion round only ships load from a
        // heavier PE to a lighter neighbour (bounded by half the
        // difference), so the max per-PE load — and with constant total,
        // the max/avg ratio — must never increase as rounds accumulate.
        let p = crate::testutil::hotspot(8, 64, 6.0);
        let start: Vec<usize> =
            p.computes.iter().map(|c| p.patch_home[c.patches[0]]).collect();
        let mut last = imbalance_ratio(&p, &start);
        assert!(last > 2.0, "hot-spot start should be badly imbalanced: {last}");
        let mut improved = false;
        for rounds in [1, 2, 4, 8, 16, 32] {
            let a = diffusion(&p, &start, DiffusionParams { rounds, transfer_fraction: 0.5 });
            let r = imbalance_ratio(&p, &a);
            assert!(
                r <= last + 1e-9,
                "imbalance regressed at {rounds} rounds: {last} -> {r}"
            );
            if r < last - 1e-9 {
                improved = true;
            }
            last = r;
        }
        assert!(improved, "32 rounds of diffusion never improved the hot-spot");
        assert!(last < 1.5, "hot-spot still imbalanced after 32 rounds: {last}");
    }

    #[test]
    fn single_pe_is_identity() {
        let p = synthetic(1, 8);
        let current = vec![0usize; p.computes.len()];
        assert_eq!(diffusion(&p, &current, DiffusionParams::default()), current);
    }

    #[test]
    fn deterministic() {
        let p = synthetic(8, 40);
        let start: Vec<usize> = (0..p.computes.len()).map(|i| (i * 3) % 8).collect();
        let a = diffusion(&p, &start, DiffusionParams::default());
        let b = diffusion(&p, &start, DiffusionParams::default());
        assert_eq!(a, b);
    }
}
