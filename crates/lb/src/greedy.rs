//! The paper's centralized greedy strategy (§3.2).
//!
//! > * Select the biggest (longest-executing) compute object.
//! > * Select a destination processor for the compute object such that:
//! >   - Adding this compute object will not overload the processor much
//! >     (an overload threshold permits some overload).
//! >   - The compute object will utilize as many home patches as possible.
//! >   - The assignment will create as few new proxy patches as possible.
//! >   - Among multiple processors selected by the above criteria, select
//! >     the least loaded processor as the destination processor.
//! > * Assign the compute object to the selected processor: add its load,
//! >   record the creation of new proxies so that future compute objects may
//! >   also use the proxy. Repeat until all compute objects are assigned.

use crate::{Assignment, LbProblem};
use std::collections::BTreeSet;

/// Tunables for [`greedy`].
#[derive(Debug, Clone, Copy)]
pub struct GreedyParams {
    /// A PE is an acceptable destination while
    /// `load + compute ≤ overload_factor × avg_load`.
    pub overload_factor: f64,
    /// Whether the proxy-related criteria (home-patch utilization, new-proxy
    /// minimization) participate. Disabled by the `greedy_no_proxy` ablation.
    pub proxy_aware: bool,
}

impl Default for GreedyParams {
    fn default() -> Self {
        GreedyParams { overload_factor: 1.10, proxy_aware: true }
    }
}

/// Book-keeping shared by [`greedy`] and [`crate::refine`]: which PEs hold
/// which patches (home or proxy).
#[derive(Debug, Clone)]
pub(crate) struct ProxyTable {
    /// (patch, pe) pairs where the patch's data is available.
    avail: BTreeSet<(usize, usize)>,
}

impl ProxyTable {
    /// Start from home placements plus the proxies implied by an existing
    /// assignment (empty assignment = homes only).
    pub(crate) fn new(problem: &LbProblem, assignment: &[usize]) -> Self {
        let mut avail = BTreeSet::new();
        for (patch, &pe) in problem.patch_home.iter().enumerate() {
            avail.insert((patch, pe));
        }
        for (c, &pe) in problem.computes.iter().zip(assignment.iter()) {
            for &p in &c.patches {
                avail.insert((p, pe));
            }
        }
        ProxyTable { avail }
    }

    /// Number of `compute`'s patches *not* yet available on `pe`.
    pub(crate) fn new_proxies(&self, patches: &[usize], pe: usize) -> usize {
        patches.iter().filter(|&&p| !self.avail.contains(&(p, pe))).count()
    }

    /// Record that `pe` now holds (proxies of) all `patches`.
    pub(crate) fn add(&mut self, patches: &[usize], pe: usize) {
        for &p in patches {
            self.avail.insert((p, pe));
        }
    }
}

/// Pick the best destination for a compute per the paper's criteria.
/// `loads` are current per-PE totals. Returns the chosen PE.
pub(crate) fn pick_destination(
    problem: &LbProblem,
    loads: &[f64],
    proxies: &ProxyTable,
    patches: &[usize],
    load: f64,
    limit: f64,
    proxy_aware: bool,
    allowed: impl Fn(usize) -> bool,
) -> Option<usize> {
    // Candidate ranking key: fewer new proxies is better, more home patches
    // is better, lower load is better. The paper lists home-patch
    // utilization before proxy minimization; for computes (≤2 patches) the
    // two orderings only differ when trading a home patch against an
    // existing proxy, and NAMD's implementation treats "uses home patch" as
    // the stronger preference — we follow the paper's listed order.
    let mut best: Option<(usize, (i64, i64, f64))> = None;
    let mut best_overloaded: Option<(usize, f64)> = None;
    for pe in 0..problem.n_pes {
        if !allowed(pe) {
            continue;
        }
        // Track the least-loaded PE as a fallback if everyone is overloaded.
        if best_overloaded.is_none_or(|(_, l)| loads[pe] < l) {
            best_overloaded = Some((pe, loads[pe]));
        }
        if loads[pe] + load > limit {
            continue;
        }
        let homes = patches.iter().filter(|&&p| problem.patch_home[p] == pe).count() as i64;
        let new_prox = proxies.new_proxies(patches, pe) as i64;
        let key = if proxy_aware {
            (-homes, new_prox, loads[pe])
        } else {
            (0, 0, loads[pe])
        };
        if best
            .as_ref()
            .is_none_or(|(_, bk)| key.partial_cmp(bk).unwrap() == std::cmp::Ordering::Less)
        {
            best = Some((pe, key));
        }
    }
    best.map(|(pe, _)| pe).or(best_overloaded.map(|(pe, _)| pe))
}

/// Run the paper's greedy strategy from scratch. Returns the assignment.
///
/// ```
/// use lb::{greedy, ComputeSpec, GreedyParams, LbProblem};
///
/// let problem = LbProblem {
///     n_pes: 2,
///     background: vec![0.0, 0.0],
///     patch_home: vec![0, 1],
///     computes: vec![
///         ComputeSpec { load: 3.0, patches: vec![0] },
///         ComputeSpec { load: 1.0, patches: vec![1] },
///         ComputeSpec { load: 2.0, patches: vec![0, 1] },
///     ],
/// };
/// let assignment = greedy(&problem, GreedyParams::default());
/// assert_eq!(assignment.len(), 3);
/// assert!(lb::imbalance_ratio(&problem, &assignment) < 1.5);
/// ```
pub fn greedy(problem: &LbProblem, params: GreedyParams) -> Assignment {
    problem.validate().expect("invalid LB problem");
    let avg = problem.avg_load();
    let limit = params.overload_factor * avg;

    let mut order: Vec<usize> = (0..problem.computes.len()).collect();
    // Biggest first; ties by index for determinism.
    order.sort_by(|&a, &b| {
        problem.computes[b]
            .load
            .partial_cmp(&problem.computes[a].load)
            .unwrap()
            .then(a.cmp(&b))
    });

    let mut loads = problem.background.clone();
    loads.resize(problem.n_pes, 0.0);
    let mut proxies = ProxyTable::new(problem, &[]);
    let mut assignment = vec![usize::MAX; problem.computes.len()];

    for ci in order {
        let c = &problem.computes[ci];
        let pe = pick_destination(
            problem,
            &loads,
            &proxies,
            &c.patches,
            c.load,
            limit,
            params.proxy_aware,
            |_| true,
        )
        .expect("at least one PE exists");
        assignment[ci] = pe;
        loads[pe] += c.load;
        proxies.add(&c.patches, pe);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{imbalance_ratio, proxy_count};
    use crate::testutil::synthetic;

    #[test]
    fn greedy_balances_synthetic_load() {
        let p = synthetic(8, 40);
        let a = greedy(&p, GreedyParams::default());
        let r = imbalance_ratio(&p, &a);
        assert!(r < 1.25, "imbalance ratio {r}");
        // Every compute got a PE.
        assert!(a.iter().all(|&pe| pe < p.n_pes));
    }

    #[test]
    fn greedy_beats_round_robin_on_skewed_load() {
        let mut p = synthetic(6, 30);
        // Skew: make a handful of computes dominant.
        for i in 0..5 {
            p.computes[i * 7].load = 10.0;
        }
        let rr: Vec<usize> = (0..p.computes.len()).map(|i| i % p.n_pes).collect();
        let g = greedy(&p, GreedyParams::default());
        assert!(
            imbalance_ratio(&p, &g) < imbalance_ratio(&p, &rr),
            "greedy {} vs rr {}",
            imbalance_ratio(&p, &g),
            imbalance_ratio(&p, &rr)
        );
    }

    #[test]
    fn proxy_awareness_reduces_proxies() {
        let p = synthetic(8, 64);
        let aware = greedy(&p, GreedyParams::default());
        let unaware = greedy(&p, GreedyParams { proxy_aware: false, ..Default::default() });
        let (pa, pu) = (proxy_count(&p, &aware), proxy_count(&p, &unaware));
        assert!(pa <= pu, "proxy-aware {pa} vs unaware {pu}");
    }

    #[test]
    fn biggest_object_placed_first_lands_on_least_loaded() {
        // One huge compute and two PEs with asymmetric background: the huge
        // compute must go to the lighter PE.
        let p = LbProblem {
            n_pes: 2,
            background: vec![5.0, 0.0],
            patch_home: vec![0, 1],
            computes: vec![
                crate::ComputeSpec { load: 8.0, patches: vec![0] },
                crate::ComputeSpec { load: 0.1, patches: vec![1] },
            ],
        };
        let a = greedy(&p, GreedyParams::default());
        assert_eq!(a[0], 1);
    }

    #[test]
    fn overloaded_everywhere_falls_back_to_least_loaded() {
        // Single PE twice over the threshold: still must assign everything.
        let p = LbProblem {
            n_pes: 1,
            background: vec![0.0],
            patch_home: vec![0],
            computes: vec![
                crate::ComputeSpec { load: 100.0, patches: vec![0] },
                crate::ComputeSpec { load: 100.0, patches: vec![0] },
            ],
        };
        let a = greedy(&p, GreedyParams::default());
        assert_eq!(a, vec![0, 0]);
    }

    #[test]
    fn deterministic() {
        let p = synthetic(16, 100);
        assert_eq!(greedy(&p, GreedyParams::default()), greedy(&p, GreedyParams::default()));
    }

    #[test]
    fn proxy_table_tracks_availability() {
        let p = synthetic(4, 8);
        let mut t = ProxyTable::new(&p, &[]);
        // Patch 0 homed on PE 0.
        assert_eq!(t.new_proxies(&[0], 0), 0);
        assert_eq!(t.new_proxies(&[0], 1), 1);
        t.add(&[0], 1);
        assert_eq!(t.new_proxies(&[0], 1), 0);
    }
}
