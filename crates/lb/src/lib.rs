//! # lb — load-balancing strategies
//!
//! Implements the measurement-based load-balancing strategies of §3.2:
//!
//! * [`rcb()`] — recursive coordinate bisection for the *initial* (static)
//!   distribution of patches, degenerating to round-robin when there are
//!   more processors than patches;
//! * [`greedy()`] — the paper's centralized strategy: take the
//!   longest-executing compute object first, choose a destination that is
//!   not overloaded much, uses as many home patches as possible, creates as
//!   few new proxies as possible, and is least loaded among the candidates;
//! * [`refine()`] — the follow-up refinement pass: only computes on overloaded
//!   processors move, only to underloaded processors, with a tighter
//!   overload threshold;
//! * [`alt`] — ablation baselines (random, round-robin, proxy-unaware
//!   greedy) used by the benchmark harness to quantify what each ingredient
//!   of the paper's strategy buys.
//!
//! The crate is deliberately free of runtime dependencies: strategies
//! consume a plain [`LbProblem`] (measured loads + patch homes) and produce
//! an assignment, so they are unit-testable in isolation — mirroring the
//! paper's point that "strategies themselves are independent of the
//! framework and can be plugged in and out easily".

// Clippy: indexed loops are kept where they mirror the mathematical
// notation of the kernels and the per-axis geometry code, and chare/builder
// constructors take positional wiring arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![allow(clippy::field_reassign_with_default)]
pub mod alt;
pub mod diffusion;
pub mod greedy;
pub mod metrics;
pub mod rcb;
pub mod refine;

pub use alt::{greedy_no_proxy, random_assign, round_robin};
pub use diffusion::{diffusion, DiffusionParams};
pub use greedy::{greedy, GreedyParams};
pub use metrics::{comm_cost, imbalance_ratio, pe_loads, proxy_count};
pub use rcb::rcb;
pub use refine::{refine, RefineParams};

/// One migratable compute object, as measured by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeSpec {
    /// Measured load (seconds of CPU per step window).
    pub load: f64,
    /// The patches whose data this compute needs (1 for self computes,
    /// 2 for pair computes).
    pub patches: Vec<usize>,
}

/// The input to a strategy: everything the paper's algorithm consults.
#[derive(Debug, Clone, Default)]
pub struct LbProblem {
    /// Number of processors.
    pub n_pes: usize,
    /// Non-migratable background load per PE (patch integration,
    /// inter-patch bond computes, ...).
    pub background: Vec<f64>,
    /// Home PE of every patch.
    pub patch_home: Vec<usize>,
    /// The migratable compute objects.
    pub computes: Vec<ComputeSpec>,
}

impl LbProblem {
    /// Average total load per PE — the balance target.
    pub fn avg_load(&self) -> f64 {
        let total: f64 = self.background.iter().sum::<f64>()
            + self.computes.iter().map(|c| c.load).sum::<f64>();
        total / self.n_pes.max(1) as f64
    }

    /// Sanity-check internal consistency (patch ids in range, PEs valid).
    pub fn validate(&self) -> Result<(), String> {
        if self.background.len() != self.n_pes {
            return Err(format!(
                "background has {} entries for {} PEs",
                self.background.len(),
                self.n_pes
            ));
        }
        for (i, &pe) in self.patch_home.iter().enumerate() {
            if pe >= self.n_pes {
                return Err(format!("patch {i} homed on invalid PE {pe}"));
            }
        }
        for (i, c) in self.computes.iter().enumerate() {
            if !(c.load.is_finite() && c.load >= 0.0) {
                return Err(format!("compute {i} has invalid load {}", c.load));
            }
            for &p in &c.patches {
                if p >= self.patch_home.len() {
                    return Err(format!("compute {i} references invalid patch {p}"));
                }
            }
        }
        Ok(())
    }
}

/// A strategy's output: `assignment[i]` is the PE of compute `i`.
pub type Assignment = Vec<usize>;

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A deterministic synthetic problem: `n_patches` patches round-robined
    /// over PEs, one self compute per patch plus pair computes between
    /// consecutive patches, with loads drawn from a simple pattern.
    pub fn synthetic(n_pes: usize, n_patches: usize) -> LbProblem {
        let patch_home: Vec<usize> = (0..n_patches).map(|p| p % n_pes).collect();
        let mut computes = Vec::new();
        for p in 0..n_patches {
            computes.push(ComputeSpec {
                load: 1.0 + (p % 7) as f64 * 0.35,
                patches: vec![p],
            });
            if p + 1 < n_patches {
                computes.push(ComputeSpec {
                    load: 0.5 + (p % 5) as f64 * 0.45,
                    patches: vec![p, p + 1],
                });
            }
        }
        LbProblem {
            n_pes,
            background: (0..n_pes).map(|pe| 0.1 * (pe % 3) as f64).collect(),
            patch_home,
            computes,
        }
    }

    /// A density hot-spot problem: patches on a line, with the first
    /// `n_patches / 4` ("the hot cluster") carrying `skew`× the compute
    /// load of the rest — the zoo's density-hotspot scenario reduced to
    /// its LB essentials. Patch homes follow a naive block placement, so
    /// the hot cluster starts concentrated on the low PEs.
    pub fn hotspot(n_pes: usize, n_patches: usize, skew: f64) -> LbProblem {
        assert!(skew >= 1.0);
        let per = n_patches.div_ceil(n_pes);
        let patch_home: Vec<usize> = (0..n_patches).map(|p| (p / per).min(n_pes - 1)).collect();
        let hot = n_patches / 4;
        let mut computes = Vec::new();
        for p in 0..n_patches {
            let w = if p < hot { skew } else { 1.0 };
            computes.push(ComputeSpec { load: w * (1.0 + (p % 3) as f64 * 0.2), patches: vec![p] });
            if p + 1 < n_patches {
                let wp = if p + 1 < hot { skew } else { 1.0 };
                computes.push(ComputeSpec {
                    load: 0.5 * (w + wp) * 0.8,
                    patches: vec![p, p + 1],
                });
            }
        }
        LbProblem { n_pes, background: vec![0.0; n_pes], patch_home, computes }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::synthetic;

    #[test]
    fn synthetic_problem_is_valid() {
        let p = synthetic(8, 24);
        assert!(p.validate().is_ok());
        assert!(p.avg_load() > 0.0);
    }

    #[test]
    fn validation_catches_bad_patch_home() {
        let mut p = synthetic(4, 8);
        p.patch_home[0] = 99;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_compute() {
        let mut p = synthetic(4, 8);
        p.computes[0].patches.push(1000);
        assert!(p.validate().is_err());
        let mut p2 = synthetic(4, 8);
        p2.computes[0].load = f64::NAN;
        assert!(p2.validate().is_err());
    }
}
