//! Quality metrics for assignments: load imbalance, proxy counts, and
//! communication cost — the three quantities the paper's strategy trades off.

use crate::{Assignment, LbProblem};
use std::collections::BTreeSet;

/// Total load per PE under an assignment (background + assigned computes).
pub fn pe_loads(problem: &LbProblem, assignment: &Assignment) -> Vec<f64> {
    assert_eq!(assignment.len(), problem.computes.len());
    let mut loads = problem.background.clone();
    loads.resize(problem.n_pes, 0.0);
    for (c, &pe) in problem.computes.iter().zip(assignment.iter()) {
        assert!(pe < problem.n_pes, "assignment references invalid PE {pe}");
        loads[pe] += c.load;
    }
    loads
}

/// Max/avg load ratio; 1.0 is perfect balance.
pub fn imbalance_ratio(problem: &LbProblem, assignment: &Assignment) -> f64 {
    let loads = pe_loads(problem, assignment);
    let avg = loads.iter().sum::<f64>() / problem.n_pes.max(1) as f64;
    if avg <= 0.0 {
        1.0
    } else {
        loads.iter().copied().fold(0.0, f64::max) / avg
    }
}

/// Number of proxy patches an assignment requires: for every patch needed by
/// a compute on a PE other than the patch's home, one proxy per (patch, PE).
pub fn proxy_count(problem: &LbProblem, assignment: &Assignment) -> usize {
    let mut proxies: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (c, &pe) in problem.computes.iter().zip(assignment.iter()) {
        for &p in &c.patches {
            if problem.patch_home[p] != pe {
                proxies.insert((p, pe));
            }
        }
    }
    proxies.len()
}

/// A simple communication-cost proxy: every proxy patch costs one coordinate
/// message and one force message per step.
pub fn comm_cost(problem: &LbProblem, assignment: &Assignment) -> usize {
    2 * proxy_count(problem, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputeSpec;

    fn tiny() -> LbProblem {
        LbProblem {
            n_pes: 2,
            background: vec![0.5, 0.0],
            patch_home: vec![0, 1],
            computes: vec![
                ComputeSpec { load: 1.0, patches: vec![0] },
                ComputeSpec { load: 2.0, patches: vec![0, 1] },
            ],
        }
    }

    #[test]
    fn loads_sum_background_and_computes() {
        let p = tiny();
        let loads = pe_loads(&p, &vec![0, 1]);
        assert_eq!(loads, vec![1.5, 2.0]);
    }

    #[test]
    fn imbalance_of_perfect_split() {
        let p = tiny();
        // Total = 3.5, avg 1.75; assignment [0,1]: max 2.0 → ratio 8/7.
        let r = imbalance_ratio(&p, &vec![0, 1]);
        assert!((r - 2.0 / 1.75).abs() < 1e-12);
    }

    #[test]
    fn proxies_counted_per_patch_pe_pair() {
        let p = tiny();
        // Self compute for patch 0 on PE 0: no proxy. Pair compute on PE 1:
        // needs patch 0 remotely → one proxy.
        assert_eq!(proxy_count(&p, &vec![0, 1]), 1);
        // Pair compute moved to PE 0: needs patch 1 remotely.
        assert_eq!(proxy_count(&p, &vec![0, 0]), 1);
        // Both on PE 1: patch 0 needed twice on PE 1, still a single proxy.
        assert_eq!(proxy_count(&p, &vec![1, 1]), 1);
        assert_eq!(comm_cost(&p, &vec![1, 1]), 2);
    }

    #[test]
    #[should_panic(expected = "invalid PE")]
    fn rejects_out_of_range_assignment() {
        let p = tiny();
        pe_loads(&p, &vec![0, 9]);
    }
}
