//! Recursive coordinate bisection for the initial static placement.
//!
//! "When a simulation begins, patches are distributed according to a
//! recursive coordinate bisection scheme, so that each processor receives a
//! number of neighboring patches. When there are more processors than
//! patches, this method reduces to a simple round-robin distribution."

/// Partition weighted 3-D points into `n_parts` spatially-compact parts.
/// Returns `part[i]` for each point. Parts are contiguous ranges of the
/// recursion, so neighbouring points tend to share a part.
pub fn rcb(points: &[[f64; 3]], weights: &[f64], n_parts: usize) -> Vec<usize> {
    assert_eq!(points.len(), weights.len());
    assert!(n_parts > 0);
    let mut part = vec![0usize; points.len()];
    if points.len() <= n_parts {
        // Round-robin degenerate case (more parts than points).
        for (i, p) in part.iter_mut().enumerate() {
            *p = i % n_parts;
        }
        return part;
    }
    let mut idx: Vec<usize> = (0..points.len()).collect();
    split(points, weights, &mut idx, 0, n_parts, &mut part);
    part
}

/// Recursively split `idx` (a scratch permutation of point indices) into
/// parts `[first_part, first_part + n_parts)`.
fn split(
    points: &[[f64; 3]],
    weights: &[f64],
    idx: &mut [usize],
    first_part: usize,
    n_parts: usize,
    out: &mut [usize],
) {
    if n_parts == 1 {
        for &i in idx.iter() {
            out[i] = first_part;
        }
        return;
    }
    // Longest axis of the bounding box of these points.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in idx.iter() {
        for a in 0..3 {
            lo[a] = lo[a].min(points[i][a]);
            hi[a] = hi[a].max(points[i][a]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap();

    idx.sort_by(|&a, &b| {
        points[a][axis]
            .partial_cmp(&points[b][axis])
            .unwrap()
            .then(a.cmp(&b))
    });

    // Split part counts in half; split weight proportionally.
    let left_parts = n_parts / 2;
    let right_parts = n_parts - left_parts;
    let total_w: f64 = idx.iter().map(|&i| weights[i]).sum();
    let target = total_w * left_parts as f64 / n_parts as f64;

    let mut acc = 0.0;
    let mut cut = 0;
    for (k, &i) in idx.iter().enumerate() {
        // Keep at least one point per side when possible.
        if acc >= target && k > 0 {
            break;
        }
        acc += weights[i];
        cut = k + 1;
    }
    // Guarantee both sides can host their part counts.
    cut = cut.clamp(left_parts.min(idx.len() - 1), idx.len() - right_parts.min(idx.len() - 1));
    let (l, r) = idx.split_at_mut(cut);
    split(points, weights, l, first_part, left_parts, out);
    split(points, weights, r, first_part + left_parts, right_parts, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(nx: usize, ny: usize, nz: usize) -> Vec<[f64; 3]> {
        let mut v = Vec::new();
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    v.push([x as f64, y as f64, z as f64]);
                }
            }
        }
        v
    }

    #[test]
    fn all_parts_are_used_and_balanced() {
        let pts = grid(7, 7, 5); // the ApoA-I patch grid
        let w = vec![1.0; pts.len()];
        for n_parts in [2, 3, 8, 16, 32] {
            let part = rcb(&pts, &w, n_parts);
            let mut counts = vec![0usize; n_parts];
            for &p in &part {
                counts[p] += 1;
            }
            assert!(counts.iter().all(|&c| c > 0), "{n_parts} parts: {counts:?}");
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(
                max <= 2 * min + 2,
                "{n_parts} parts badly balanced: {counts:?}"
            );
        }
    }

    #[test]
    fn weighted_split_respects_weights() {
        // Two heavy points on the left, many light on the right: with two
        // parts, the heavy side should get fewer points.
        let mut pts = vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
        let mut w = vec![50.0, 50.0];
        for i in 0..20 {
            pts.push([10.0 + i as f64, 0.0, 0.0]);
            w.push(1.0);
        }
        let part = rcb(&pts, &w, 2);
        assert_eq!(part[0], part[1], "heavy points together");
        let heavy_part = part[0];
        let heavy_count = part.iter().filter(|&&p| p == heavy_part).count();
        assert!(heavy_count <= 4, "heavy side has {heavy_count} points");
    }

    #[test]
    fn more_parts_than_points_round_robins() {
        let pts = grid(2, 2, 1); // 4 points
        let w = vec![1.0; 4];
        let part = rcb(&pts, &w, 10);
        assert_eq!(part, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parts_are_spatially_compact() {
        // With a 8x1x1 line and 4 parts, each part should be a contiguous
        // pair of adjacent points.
        let pts = grid(8, 1, 1);
        let w = vec![1.0; 8];
        let part = rcb(&pts, &w, 4);
        for i in 0..7 {
            // Adjacent points are in the same or neighbouring parts.
            let d = part[i].abs_diff(part[i + 1]);
            assert!(d <= 1, "parts not contiguous: {part:?}");
        }
    }

    /// Max/avg part-weight ratio of a partition.
    fn part_imbalance(part: &[usize], w: &[f64], n_parts: usize) -> f64 {
        let mut loads = vec![0.0f64; n_parts];
        for (i, &p) in part.iter().enumerate() {
            loads[p] += w[i];
        }
        let total: f64 = loads.iter().sum();
        loads.iter().cloned().fold(0.0, f64::max) * n_parts as f64 / total
    }

    /// A density hot-spot patch field: a 4x4x4 grid where one corner
    /// 2x2x2 octant carries `skew`x the weight of the rest.
    fn hotspot_field(skew: f64) -> (Vec<[f64; 3]>, Vec<f64>) {
        let pts = grid(4, 4, 4);
        let w = pts
            .iter()
            .map(|p| if p[0] < 2.0 && p[1] < 2.0 && p[2] < 2.0 { skew } else { 1.0 })
            .collect();
        (pts, w)
    }

    #[test]
    fn hotspot_imbalance_improves_monotonically_across_bisection_rounds() {
        // Each bisection round doubles the part count by splitting every
        // part at its weighted median; round k+1 refines round k's
        // partition, so the heaviest part's load must strictly shrink as
        // rounds deepen — the recursive "repair" keeps cutting the heavy
        // octant down. (The max/avg *ratio* is not monotone: 2 parts split
        // this field perfectly, and granularity then costs a few percent.)
        let (pts, w) = hotspot_field(8.0);
        let max_part_load = |n_parts: usize| -> f64 {
            let part = rcb(&pts, &w, n_parts);
            let mut loads = vec![0.0f64; n_parts];
            for (i, &p) in part.iter().enumerate() {
                loads[p] += w[i];
            }
            loads.iter().cloned().fold(0.0, f64::max)
        };
        let mut last = f64::INFINITY;
        for rounds in 1..=3usize {
            let n_parts = 1 << rounds; // 2, 4, 8
            let m = max_part_load(n_parts);
            assert!(
                m < last,
                "rcb hot-spot max part load did not improve at {n_parts} parts: {last} -> {m}"
            );
            last = m;
        }
        // And the final 8-part split beats the naive block split by a wide
        // margin. (Perfect balance is impossible here: parts are spatially
        // compact, so a part that touches the hot octant carries at least
        // one indivisible 8-weight point; the naive split concentrates
        // four of them — ratio 2.4 — where rcb gets it under 1.8.)
        let final_ratio = part_imbalance(&rcb(&pts, &w, 8), &w, 8);
        assert!(final_ratio < 1.8, "rcb left the hot octant concentrated: {final_ratio}");
    }

    #[test]
    fn hotspot_weighted_rcb_beats_naive_block_split() {
        let (pts, w) = hotspot_field(8.0);
        for n_parts in [2usize, 4, 8] {
            let rcb_imb = part_imbalance(&rcb(&pts, &w, n_parts), &w, n_parts);
            // Naive block split: contiguous index ranges, weight-blind.
            let per = pts.len().div_ceil(n_parts);
            let naive: Vec<usize> = (0..pts.len()).map(|i| (i / per).min(n_parts - 1)).collect();
            let naive_imb = part_imbalance(&naive, &w, n_parts);
            assert!(
                rcb_imb < naive_imb,
                "{n_parts} parts: weighted rcb {rcb_imb} not better than naive {naive_imb}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let pts = grid(5, 4, 3);
        let w: Vec<f64> = (0..pts.len()).map(|i| 1.0 + (i % 3) as f64).collect();
        assert_eq!(rcb(&pts, &w, 7), rcb(&pts, &w, 7));
    }

    #[test]
    fn single_part() {
        let pts = grid(3, 3, 3);
        let w = vec![1.0; 27];
        assert!(rcb(&pts, &w, 1).iter().all(|&p| p == 0));
    }
}
