//! The refinement pass (§3.2).
//!
//! > Immediately after assigning the compute objects ... a refinement
//! > algorithm further reduces the load imbalance, by tolerating the
//! > creation of additional proxy patches. The refinement algorithm is
//! > almost identical to the initial procedure, except that the overload
//! > threshold is smaller, only compute objects from overloaded processors
//! > are considered for migration, and only underloaded processors are
//! > considered as destinations.

use crate::greedy::{pick_destination, ProxyTable};
use crate::metrics::pe_loads;
use crate::{Assignment, LbProblem};

/// Tunables for [`refine`].
#[derive(Debug, Clone, Copy)]
pub struct RefineParams {
    /// A PE counts as overloaded above `overload_factor × avg` (tighter than
    /// the greedy pass's threshold).
    pub overload_factor: f64,
    /// Safety bound on migration rounds.
    pub max_moves: usize,
}

impl Default for RefineParams {
    fn default() -> Self {
        RefineParams { overload_factor: 1.03, max_moves: 10_000 }
    }
}

/// Refine an existing assignment in place-style (returns the new one).
/// Also returns the number of objects migrated — the paper observes that a
/// second LB cycle performs "only a few additional object migrations".
pub fn refine(
    problem: &LbProblem,
    current: &Assignment,
    params: RefineParams,
) -> (Assignment, usize) {
    problem.validate().expect("invalid LB problem");
    assert_eq!(current.len(), problem.computes.len());
    let avg = problem.avg_load();
    let limit = params.overload_factor * avg;

    let mut assignment = current.clone();
    let mut loads = pe_loads(problem, &assignment);
    let mut proxies = ProxyTable::new(problem, &assignment);
    let mut moves = 0usize;

    // Process overloaded PEs, heaviest first, until nothing changes.
    loop {
        if moves >= params.max_moves {
            break;
        }
        // Most-overloaded PE.
        let src = match (0..problem.n_pes)
            .filter(|&pe| loads[pe] > limit)
            .max_by(|&a, &b| loads[a].partial_cmp(&loads[b]).unwrap())
        {
            Some(pe) => pe,
            None => break,
        };
        // Biggest compute currently on src (consider biggest first, like the
        // initial pass).
        let mut cands: Vec<usize> = (0..assignment.len()).filter(|&i| assignment[i] == src).collect();
        cands.sort_by(|&a, &b| {
            problem.computes[b]
                .load
                .partial_cmp(&problem.computes[a].load)
                .unwrap()
                .then(a.cmp(&b))
        });
        let mut moved = false;
        for ci in cands {
            let c = &problem.computes[ci];
            // Only underloaded destinations, and the move must help: the
            // destination stays under the limit.
            let dest = pick_destination(
                problem,
                &loads,
                &proxies,
                &c.patches,
                c.load,
                limit,
                true,
                |pe| pe != src && loads[pe] < avg,
            );
            if let Some(pe) = dest {
                // pick_destination may fall back to an overloaded PE; verify.
                if loads[pe] + c.load <= limit {
                    assignment[ci] = pe;
                    loads[src] -= c.load;
                    loads[pe] += c.load;
                    proxies.add(&c.patches, pe);
                    moves += 1;
                    moved = true;
                    break;
                }
            }
        }
        if !moved {
            break; // the overloaded PE cannot shed anything that fits
        }
    }
    (assignment, moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy, GreedyParams};
    use crate::metrics::imbalance_ratio;
    use crate::testutil::synthetic;

    #[test]
    fn refine_never_worsens_imbalance() {
        let p = synthetic(8, 48);
        let rr: Vec<usize> = (0..p.computes.len()).map(|i| i % p.n_pes).collect();
        let before = imbalance_ratio(&p, &rr);
        let (after_a, _) = refine(&p, &rr, RefineParams::default());
        let after = imbalance_ratio(&p, &after_a);
        assert!(after <= before + 1e-12, "refine worsened: {before} -> {after}");
    }

    #[test]
    fn refine_fixes_a_hot_spot() {
        let p = synthetic(4, 24);
        // Everything on PE 0.
        let all_zero = vec![0usize; p.computes.len()];
        let before = imbalance_ratio(&p, &all_zero);
        let (a, moves) = refine(&p, &all_zero, RefineParams::default());
        let after = imbalance_ratio(&p, &a);
        assert!(moves > 0);
        assert!(after < before * 0.5, "hot spot not fixed: {before} -> {after}");
    }

    #[test]
    fn refine_after_greedy_makes_few_moves() {
        let p = synthetic(8, 64);
        let g = greedy(&p, GreedyParams::default());
        let (_, moves) = refine(&p, &g, RefineParams::default());
        // The paper: a refinement pass after the greedy pass migrates only a
        // few objects.
        assert!(
            moves <= p.computes.len() / 4,
            "refine moved {moves} of {} computes",
            p.computes.len()
        );
    }

    #[test]
    fn balanced_input_is_a_fixed_point() {
        let p = synthetic(4, 32);
        let g = greedy(&p, GreedyParams::default());
        let (r1, _) = refine(&p, &g, RefineParams::default());
        let (r2, moves2) = refine(&p, &r1, RefineParams::default());
        assert_eq!(r1, r2);
        assert_eq!(moves2, 0);
    }

    #[test]
    fn respects_max_moves() {
        let p = synthetic(4, 40);
        let all_zero = vec![0usize; p.computes.len()];
        let (_, moves) = refine(&p, &all_zero, RefineParams { max_moves: 3, ..Default::default() });
        assert!(moves <= 3);
    }
}
