//! # machine — parallel machine performance models
//!
//! The paper's results span three platforms: Sandia's ASCI-Red (333 MHz
//! Pentium II Xeon, up to 2048 PEs used), the PSC Cray T3E-900, and the NCSA
//! SGI Origin 2000 (250 MHz). None of those machines exist anymore, so the
//! discrete-event backend of `charmrt` consumes a [`MachineModel`]: a small
//! set of parameters describing per-processor compute speed and the cost of
//! messaging, in the classic LogP/α-β spirit:
//!
//! * a task of `w` abstract *work units* executes in `w * seconds_per_work`
//!   seconds on one PE;
//! * sending a message costs the sender `send_overhead_s + bytes * send_per_byte_s`
//!   of CPU time, spends `latency_s + bytes * wire_per_byte_s` on the wire,
//!   and costs the receiver `recv_overhead_s` of CPU time before the handler
//!   runs.
//!
//! Presets are calibrated so that the single-processor time per step of the
//! ApoA-I benchmark matches the paper (57.1 s on ASCI-Red, 24.4 s on the
//! Origin 2000), with communication constants representative of each
//! machine's published MPI latency/bandwidth class. The *shape* of the
//! speedup curves (where communication overhead bites) is what these models
//! preserve; see DESIGN.md §2.

// Clippy: indexed loops are kept where they mirror the mathematical
// notation of the kernels and the per-axis geometry code, and chare/builder
// constructors take positional wiring arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![allow(clippy::field_reassign_with_default)]
/// Cost parameters for one parallel platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Human-readable name used in benchmark output.
    pub name: &'static str,
    /// Seconds per abstract work unit (one work unit ≈ one non-bonded pair
    /// interaction's worth of arithmetic).
    pub seconds_per_work: f64,
    /// Sender CPU overhead per message, seconds.
    pub send_overhead_s: f64,
    /// Receiver CPU overhead per message, seconds.
    pub recv_overhead_s: f64,
    /// Wire latency per message, seconds.
    pub latency_s: f64,
    /// Sender CPU cost per byte (packing / copying), seconds.
    pub send_per_byte_s: f64,
    /// Wire transfer time per byte, seconds.
    pub wire_per_byte_s: f64,
    /// Fixed per-message allocation+packing cost charged when a multicast is
    /// *not* using the optimized single-pack path (§4.2.3), seconds.
    pub pack_overhead_s: f64,
}

impl MachineModel {
    /// CPU time for a task of `work` abstract work units.
    #[inline]
    pub fn task_time(&self, work: f64) -> f64 {
        work * self.seconds_per_work
    }

    /// Sender-side CPU time for one message of `bytes` bytes.
    #[inline]
    pub fn send_time(&self, bytes: usize) -> f64 {
        self.send_overhead_s + bytes as f64 * self.send_per_byte_s
    }

    /// Wire time (latency + transfer) for one message.
    #[inline]
    pub fn wire_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 * self.wire_per_byte_s
    }

    /// Receiver-side CPU time for one message.
    #[inline]
    pub fn recv_time(&self) -> f64 {
        self.recv_overhead_s
    }

    /// Scale compute speed by `f` (>1 = faster CPU). Returns a new model.
    pub fn with_cpu_scale(mut self, f: f64) -> Self {
        assert!(f > 0.0);
        self.seconds_per_work /= f;
        self
    }
}

/// Per-pair work-unit calibration: `mdcore::nonbonded::FLOPS_PER_PAIR` FLOPs
/// per pair, so `seconds_per_work = FLOPS_PER_PAIR / flops_per_second_effective`.
/// The effective MD FLOP rates below come straight from the paper's tables
/// (e.g. Table 2: 57.1 s/step at 0.0480 GFLOPS ⇒ ASCI-Red sustains 48
/// MFLOPS of MD arithmetic per PE; Table 6: Origin 2000 sustains 112).
pub mod presets {
    use super::MachineModel;

    /// Sandia ASCI-Red: 333 MHz Pentium II Xeon, cut-through mesh network.
    /// Sustained MD rate ≈ 48 MFLOPS/PE (Table 2). MPI-class overheads of the
    /// era: ~12 µs per message software overhead, ~20 µs latency,
    /// ~330 MB/s links.
    pub fn asci_red() -> MachineModel {
        MachineModel {
            name: "ASCI-Red",
            seconds_per_work: 45.0 / 48.0e6,
            send_overhead_s: 12.0e-6,
            recv_overhead_s: 12.0e-6,
            latency_s: 20.0e-6,
            // User-level packing on a 333 MHz Xeon moved well under 100 MB/s
            // once allocation is included; this is what makes the naive
            // multicast double the integration entry (§4.2.3).
            send_per_byte_s: 12.0e-9,
            wire_per_byte_s: 3.0e-9,
            pack_overhead_s: 40.0e-6,
        }
    }

    /// PSC Cray T3E-900: 450 MHz Alpha EV5, very low-latency torus (E-registers).
    /// Per-PE MD rate ≈ 64 MFLOPS (Table 5: 10.7 s/step on 4 PEs ⇒ ~0.256/4
    /// GFLOPS per PE), with markedly better communication than ASCI-Red —
    /// which is exactly why the paper sees better scalability there.
    pub fn t3e_900() -> MachineModel {
        MachineModel {
            name: "T3E-900",
            seconds_per_work: 45.0 / 64.0e6,
            send_overhead_s: 3.0e-6,
            recv_overhead_s: 3.0e-6,
            latency_s: 4.0e-6,
            send_per_byte_s: 2.5e-9,
            wire_per_byte_s: 2.9e-9,
            pack_overhead_s: 8.0e-6,
        }
    }

    /// NCSA SGI Origin 2000: 250 MHz R10000, ccNUMA shared memory.
    /// Fastest per-PE MD rate in the paper (≈ 112 MFLOPS, Table 6), moderate
    /// messaging costs through shared memory.
    pub fn origin2000() -> MachineModel {
        MachineModel {
            name: "Origin-2000",
            seconds_per_work: 45.0 / 112.0e6,
            send_overhead_s: 6.0e-6,
            recv_overhead_s: 6.0e-6,
            latency_s: 8.0e-6,
            send_per_byte_s: 5.0e-9,
            wire_per_byte_s: 2.5e-9,
            pack_overhead_s: 15.0e-6,
        }
    }

    /// A generic commodity cluster (for examples and ablations, not a paper
    /// table): modern-ish CPU, Ethernet-class latency.
    pub fn generic_cluster() -> MachineModel {
        MachineModel {
            name: "generic-cluster",
            seconds_per_work: 45.0 / 1.0e9,
            send_overhead_s: 5.0e-6,
            recv_overhead_s: 5.0e-6,
            latency_s: 15.0e-6,
            send_per_byte_s: 0.3e-9,
            wire_per_byte_s: 1.0e-9,
            pack_overhead_s: 5.0e-6,
        }
    }

    /// An idealized zero-communication-cost machine — useful in tests to
    /// check that the DES reduces to pure load-balance arithmetic.
    pub fn ideal() -> MachineModel {
        MachineModel {
            name: "ideal",
            seconds_per_work: 1.0e-6,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
            latency_s: 0.0,
            send_per_byte_s: 0.0,
            wire_per_byte_s: 0.0,
            pack_overhead_s: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::presets::*;

    #[test]
    fn task_time_scales_linearly() {
        let m = asci_red();
        assert!((m.task_time(2.0) - 2.0 * m.task_time(1.0)).abs() < 1e-18);
        assert_eq!(m.task_time(0.0), 0.0);
    }

    #[test]
    fn presets_have_expected_speed_ordering() {
        // Per-work compute: Origin fastest, then T3E, then ASCI-Red.
        assert!(origin2000().seconds_per_work < t3e_900().seconds_per_work);
        assert!(t3e_900().seconds_per_work < asci_red().seconds_per_work);
        // Communication: T3E clearly the best of the three.
        assert!(t3e_900().latency_s < origin2000().latency_s);
        assert!(origin2000().latency_s < asci_red().latency_s);
    }

    #[test]
    fn message_costs_include_per_byte_terms() {
        let m = asci_red();
        assert!(m.send_time(10_000) > m.send_time(0));
        assert!(m.wire_time(10_000) > m.wire_time(0));
        assert!((m.wire_time(0) - m.latency_s).abs() < 1e-18);
    }

    #[test]
    fn cpu_scale() {
        let m = asci_red().with_cpu_scale(2.0);
        assert!((m.task_time(1.0) - asci_red().task_time(1.0) / 2.0).abs() < 1e-18);
    }

    #[test]
    fn ideal_machine_has_free_messaging() {
        let m = ideal();
        assert_eq!(m.send_time(1_000_000), 0.0);
        assert_eq!(m.wire_time(1_000_000), 0.0);
        assert_eq!(m.recv_time(), 0.0);
    }

    #[test]
    fn apoa1_calibration_sanity() {
        // ApoA-I: ~57 s/step at ~0.048 GFLOPS on 1 ASCI-Red PE means about
        // 2.74 GFLOP/step ⇒ ~61 M pair interactions at 45 flops/pair. A task
        // of that much work should take ~57 s under the preset.
        let m = asci_red();
        let pairs = 2.74e9 / 45.0;
        let t = m.task_time(pairs);
        assert!((t - 57.1).abs() < 1.5, "calibrated 1-PE step time {t}");
    }
}
