//! Bonded (covalent) force kernels: 2-body bonds, 3-body angles, 4-body
//! dihedrals and impropers.
//!
//! Each kernel takes atom positions, applies minimum-image convention through
//! the simulation [`Cell`] (bonds may straddle the periodic boundary once
//! coordinates are wrapped), and returns the term energy together with the
//! force on each participating atom. Callers scatter the forces — this lets
//! the parallel engine's bonded compute objects use the same kernels on
//! gathered proxy data.

use crate::pbc::Cell;
use crate::topology::Topology;
use crate::vec3::Vec3;

/// Energy breakdown of the bonded terms, kcal/mol.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BondedEnergy {
    pub bond: f64,
    pub angle: f64,
    pub dihedral: f64,
    pub improper: f64,
    pub restraint: f64,
}

impl BondedEnergy {
    /// Sum of all bonded contributions.
    pub fn total(&self) -> f64 {
        self.bond + self.angle + self.dihedral + self.improper + self.restraint
    }

    /// Accumulate another breakdown.
    pub fn add(&mut self, o: BondedEnergy) {
        self.bond += o.bond;
        self.angle += o.angle;
        self.dihedral += o.dihedral;
        self.improper += o.improper;
        self.restraint += o.restraint;
    }
}

/// Harmonic bond `E = k (r - r0)²`. Returns `(E, f_a, f_b)`.
#[inline]
pub fn bond_force(cell: &Cell, pa: Vec3, pb: Vec3, k: f64, r0: f64) -> (f64, Vec3, Vec3) {
    let d = cell.min_image(pa, pb);
    let r = d.norm();
    if r < 1e-10 {
        // Coincident atoms: force direction undefined; report energy only.
        return (k * r0 * r0, Vec3::ZERO, Vec3::ZERO);
    }
    let dr = r - r0;
    let e = k * dr * dr;
    // F_a = -dE/dr · r̂ = -2 k dr · d/r
    let fa = d * (-2.0 * k * dr / r);
    (e, fa, -fa)
}

/// Harmonic angle `E = k (θ - θ0)²` with central atom `b`.
/// Returns `(E, f_a, f_b, f_c)`.
#[inline]
pub fn angle_force(
    cell: &Cell,
    pa: Vec3,
    pb: Vec3,
    pc: Vec3,
    k: f64,
    theta0: f64,
) -> (f64, Vec3, Vec3, Vec3) {
    let rij = cell.min_image(pa, pb);
    let rkj = cell.min_image(pc, pb);
    let lij = rij.norm();
    let lkj = rkj.norm();
    if lij < 1e-10 || lkj < 1e-10 {
        return (0.0, Vec3::ZERO, Vec3::ZERO, Vec3::ZERO);
    }
    let c = (rij.dot(rkj) / (lij * lkj)).clamp(-1.0, 1.0);
    let theta = c.acos();
    let dtheta = theta - theta0;
    let e = k * dtheta * dtheta;
    let de_dtheta = 2.0 * k * dtheta;

    let s = (1.0 - c * c).max(1e-12).sqrt();
    // ∇_a cosθ = rkj/(lij·lkj) − cosθ·rij/lij² ; F_a = (dE/dθ / sinθ)·∇_a c
    let coeff = de_dtheta / s;
    let fa = (rkj / (lij * lkj) - rij * (c / (lij * lij))) * coeff;
    let fc = (rij / (lij * lkj) - rkj * (c / (lkj * lkj))) * coeff;
    let fb = -(fa + fc);
    (e, fa, fb, fc)
}

/// Signed dihedral angle φ for the atom sequence a-b-c-d and the gradient
/// pieces needed for forces. Returns `(phi, grad_a, grad_b, grad_c, grad_d)`
/// where `grad_i = ∂φ/∂r_i`.
#[inline]
fn dihedral_angle_grad(
    cell: &Cell,
    pa: Vec3,
    pb: Vec3,
    pc: Vec3,
    pd: Vec3,
) -> Option<(f64, Vec3, Vec3, Vec3, Vec3)> {
    let b1 = cell.min_image(pb, pa);
    let b2 = cell.min_image(pc, pb);
    let b3 = cell.min_image(pd, pc);
    let n1 = b1.cross(b2);
    let n2 = b2.cross(b3);
    let n1sq = n1.norm2();
    let n2sq = n2.norm2();
    let lb2 = b2.norm();
    if n1sq < 1e-14 || n2sq < 1e-14 || lb2 < 1e-10 {
        return None; // collinear — dihedral undefined
    }
    let phi = (n1.cross(n2).dot(b2) / lb2).atan2(n1.dot(n2));

    let ga = n1 * (-lb2 / n1sq);
    let gd = n2 * (lb2 / n2sq);
    let t = b1.dot(b2) / (lb2 * lb2);
    let s = b3.dot(b2) / (lb2 * lb2);
    let gb = ga * (-(1.0 + t)) + gd * s;
    let gc = ga * t - gd * (1.0 + s);
    Some((phi, ga, gb, gc, gd))
}

/// Periodic dihedral `E = k (1 + cos(n φ − δ))`. Returns `(E, [f; 4])`.
#[inline]
pub fn dihedral_force(
    cell: &Cell,
    pa: Vec3,
    pb: Vec3,
    pc: Vec3,
    pd: Vec3,
    k: f64,
    n: u8,
    delta: f64,
) -> (f64, [Vec3; 4]) {
    match dihedral_angle_grad(cell, pa, pb, pc, pd) {
        None => (0.0, [Vec3::ZERO; 4]),
        Some((phi, ga, gb, gc, gd)) => {
            let nf = n as f64;
            let e = k * (1.0 + (nf * phi - delta).cos());
            let de_dphi = -k * nf * (nf * phi - delta).sin();
            (
                e,
                [ga * -de_dphi, gb * -de_dphi, gc * -de_dphi, gd * -de_dphi],
            )
        }
    }
}

/// Harmonic improper `E = k (ψ − ψ0)²` where ψ is the dihedral angle of the
/// a-b-c-d sequence; the difference is wrapped into (−π, π]. Returns
/// `(E, [f; 4])`.
#[inline]
pub fn improper_force(
    cell: &Cell,
    pa: Vec3,
    pb: Vec3,
    pc: Vec3,
    pd: Vec3,
    k: f64,
    psi0: f64,
) -> (f64, [Vec3; 4]) {
    match dihedral_angle_grad(cell, pa, pb, pc, pd) {
        None => (0.0, [Vec3::ZERO; 4]),
        Some((psi, ga, gb, gc, gd)) => {
            let mut dpsi = psi - psi0;
            while dpsi > std::f64::consts::PI {
                dpsi -= 2.0 * std::f64::consts::PI;
            }
            while dpsi <= -std::f64::consts::PI {
                dpsi += 2.0 * std::f64::consts::PI;
            }
            let e = k * dpsi * dpsi;
            let de = 2.0 * k * dpsi;
            (e, [ga * -de, gb * -de, gc * -de, gd * -de])
        }
    }
}

/// Harmonic positional restraint `E = k·|r − r₀|²` (minimum-image).
/// Returns `(E, f)`.
#[inline]
pub fn restraint_force(cell: &Cell, p: Vec3, target: Vec3, k: f64) -> (f64, Vec3) {
    let d = cell.min_image(p, target);
    let e = k * d.norm2();
    (e, d * (-2.0 * k))
}

/// Evaluate every bonded term of a topology, accumulating forces into
/// `forces` (indexed by atom id). The sequential reference path; the parallel
/// engine splits the same terms across bonded compute objects.
pub fn compute_bonded(
    topo: &Topology,
    cell: &Cell,
    pos: &[Vec3],
    forces: &mut [Vec3],
) -> BondedEnergy {
    assert_eq!(pos.len(), topo.n_atoms());
    assert_eq!(forces.len(), topo.n_atoms());
    let mut e = BondedEnergy::default();
    for b in &topo.bonds {
        let (eb, fa, fb) = bond_force(cell, pos[b.a as usize], pos[b.b as usize], b.k, b.r0);
        e.bond += eb;
        forces[b.a as usize] += fa;
        forces[b.b as usize] += fb;
    }
    for t in &topo.angles {
        let (ea, fa, fb, fc) = angle_force(
            cell,
            pos[t.a as usize],
            pos[t.b as usize],
            pos[t.c as usize],
            t.k,
            t.theta0,
        );
        e.angle += ea;
        forces[t.a as usize] += fa;
        forces[t.b as usize] += fb;
        forces[t.c as usize] += fc;
    }
    for d in &topo.dihedrals {
        let (ed, f) = dihedral_force(
            cell,
            pos[d.a as usize],
            pos[d.b as usize],
            pos[d.c as usize],
            pos[d.d as usize],
            d.k,
            d.n,
            d.delta,
        );
        e.dihedral += ed;
        forces[d.a as usize] += f[0];
        forces[d.b as usize] += f[1];
        forces[d.c as usize] += f[2];
        forces[d.d as usize] += f[3];
    }
    for d in &topo.impropers {
        let (ei, f) = improper_force(
            cell,
            pos[d.a as usize],
            pos[d.b as usize],
            pos[d.c as usize],
            pos[d.d as usize],
            d.k,
            d.psi0,
        );
        e.improper += ei;
        forces[d.a as usize] += f[0];
        forces[d.b as usize] += f[1];
        forces[d.c as usize] += f[2];
        forces[d.d as usize] += f[3];
    }
    for r in &topo.restraints {
        let (er, f) = restraint_force(cell, pos[r.atom as usize], r.target, r.k);
        e.restraint += er;
        forces[r.atom as usize] += f;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI: f64 = std::f64::consts::PI;

    fn open_cell() -> Cell {
        Cell::open(Vec3::splat(-100.0), Vec3::splat(200.0))
    }

    #[test]
    fn bond_at_equilibrium_has_no_force() {
        let cell = open_cell();
        let (e, fa, fb) = bond_force(&cell, Vec3::ZERO, Vec3::new(1.5, 0.0, 0.0), 300.0, 1.5);
        assert!(e.abs() < 1e-12);
        assert!(fa.norm() < 1e-12);
        assert!(fb.norm() < 1e-12);
    }

    #[test]
    fn stretched_bond_pulls_atoms_together() {
        let cell = open_cell();
        let (e, fa, fb) = bond_force(&cell, Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 300.0, 1.5);
        assert!((e - 300.0 * 0.25).abs() < 1e-12);
        assert!(fa.x > 0.0, "atom a pulled toward b");
        assert!((fa + fb).norm() < 1e-12);
    }

    #[test]
    fn bond_across_periodic_boundary() {
        let cell = Cell::cube(10.0);
        // 1.4 Å apart through the boundary (0.3 → -1.1 via the image of 8.9).
        let (e, fa, _) = bond_force(
            &cell,
            Vec3::new(0.3, 0.0, 0.0),
            Vec3::new(8.9, 0.0, 0.0),
            100.0,
            1.5,
        );
        assert!((e - 100.0 * 0.01).abs() < 1e-9, "energy {e}");
        // Bond is compressed: atoms pushed apart; a at 0.3 pushed away from
        // the image of b at -0.1, i.e. +x.
        assert!(fa.x > 0.0);
    }

    #[test]
    fn angle_at_equilibrium_no_force() {
        let cell = open_cell();
        let theta0 = 104.52_f64.to_radians();
        let pa = Vec3::new(theta0.cos(), theta0.sin(), 0.0);
        let (e, fa, fb, fc) = angle_force(
            &cell,
            pa,
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            55.0,
            theta0,
        );
        assert!(e.abs() < 1e-12);
        assert!(fa.norm() < 1e-9);
        assert!(fb.norm() < 1e-9);
        assert!(fc.norm() < 1e-9);
    }

    #[test]
    fn angle_forces_sum_to_zero_and_match_fd() {
        let cell = open_cell();
        let pa = Vec3::new(0.2, 1.1, -0.3);
        let pb = Vec3::new(0.0, 0.0, 0.1);
        let pc = Vec3::new(1.3, -0.2, 0.4);
        let (_, fa, fb, fc) = angle_force(&cell, pa, pb, pc, 40.0, 1.8);
        assert!((fa + fb + fc).norm() < 1e-10, "net force must vanish");

        // Finite-difference check on atom a, x-component.
        let h = 1e-6;
        let e = |p: Vec3| angle_force(&cell, p, pb, pc, 40.0, 1.8).0;
        let fd = -(e(pa + Vec3::new(h, 0.0, 0.0)) - e(pa - Vec3::new(h, 0.0, 0.0))) / (2.0 * h);
        assert!((fd - fa.x).abs() < 1e-5, "fd {fd} vs analytic {}", fa.x);
    }

    #[test]
    fn dihedral_angle_known_geometries() {
        let cell = open_cell();
        // Trans (φ = π): a and d on opposite sides.
        let pa = Vec3::new(-1.0, 1.0, 0.0);
        let pb = Vec3::new(-1.0, 0.0, 0.0);
        let pc = Vec3::new(1.0, 0.0, 0.0);
        let pd = Vec3::new(1.0, -1.0, 0.0);
        let (phi, ..) = dihedral_angle_grad(&cell, pa, pb, pc, pd).unwrap();
        assert!((phi.abs() - PI).abs() < 1e-9, "trans: {phi}");

        // Cis (φ = 0): a and d on the same side.
        let pd_cis = Vec3::new(1.0, 1.0, 0.0);
        let (phi0, ..) = dihedral_angle_grad(&cell, pa, pb, pc, pd_cis).unwrap();
        assert!(phi0.abs() < 1e-9, "cis: {phi0}");

        // +90°.
        let pd_90 = Vec3::new(1.0, 0.0, 1.0);
        let (phi90, ..) = dihedral_angle_grad(&cell, pa, pb, pc, pd_90).unwrap();
        assert!((phi90.abs() - PI / 2.0).abs() < 1e-9, "90°: {phi90}");
    }

    #[test]
    fn dihedral_forces_match_finite_difference() {
        let cell = open_cell();
        let pts = [
            Vec3::new(-1.1, 0.9, 0.2),
            Vec3::new(-0.9, 0.0, -0.1),
            Vec3::new(0.8, 0.1, 0.0),
            Vec3::new(1.2, -0.7, 0.9),
        ];
        let (k, n, delta) = (2.5, 3u8, 0.6);
        let (_, forces) = dihedral_force(&cell, pts[0], pts[1], pts[2], pts[3], k, n, delta);
        // Net force and net torque must vanish.
        let net: Vec3 = forces.iter().copied().sum();
        assert!(net.norm() < 1e-10, "net dihedral force {net:?}");

        let h = 1e-6;
        for atom in 0..4 {
            for axis in 0..3 {
                let mut plus = pts;
                *plus[atom].axis_mut(axis) += h;
                let mut minus = pts;
                *minus[atom].axis_mut(axis) -= h;
                let ep = dihedral_force(&cell, plus[0], plus[1], plus[2], plus[3], k, n, delta).0;
                let em =
                    dihedral_force(&cell, minus[0], minus[1], minus[2], minus[3], k, n, delta).0;
                let fd = -(ep - em) / (2.0 * h);
                let analytic = forces[atom].axis(axis);
                assert!(
                    (fd - analytic).abs() < 1e-4,
                    "atom {atom} axis {axis}: fd {fd} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn improper_forces_match_finite_difference() {
        let cell = open_cell();
        let pts = [
            Vec3::new(0.0, 0.0, 0.3),
            Vec3::new(1.2, 0.1, 0.0),
            Vec3::new(-0.5, 1.0, 0.0),
            Vec3::new(-0.6, -1.1, 0.1),
        ];
        let (k, psi0) = (20.0, 0.1);
        let (_, forces) = improper_force(&cell, pts[0], pts[1], pts[2], pts[3], k, psi0);
        let net: Vec3 = forces.iter().copied().sum();
        assert!(net.norm() < 1e-10);

        let h = 1e-6;
        for atom in 0..4 {
            let mut plus = pts;
            plus[atom].x += h;
            let mut minus = pts;
            minus[atom].x -= h;
            let ep = improper_force(&cell, plus[0], plus[1], plus[2], plus[3], k, psi0).0;
            let em = improper_force(&cell, minus[0], minus[1], minus[2], minus[3], k, psi0).0;
            let fd = -(ep - em) / (2.0 * h);
            assert!(
                (fd - forces[atom].x).abs() < 1e-4,
                "atom {atom}: fd {fd} vs analytic {}",
                forces[atom].x
            );
        }
    }

    #[test]
    fn restraint_pulls_back_and_matches_fd() {
        let cell = Cell::cube(20.0);
        let target = Vec3::new(5.0, 5.0, 5.0);
        let p = Vec3::new(6.0, 5.5, 4.0);
        let (e, f) = restraint_force(&cell, p, target, 3.0);
        assert!((e - 3.0 * 2.25).abs() < 1e-12);
        // Force points from p back toward the target.
        assert!(f.dot(target - p) > 0.0);
        // Finite differences.
        let h = 1e-6;
        for axis in 0..3 {
            let mut pp = p;
            *pp.axis_mut(axis) += h;
            let mut pm = p;
            *pm.axis_mut(axis) -= h;
            let fd = -(restraint_force(&cell, pp, target, 3.0).0
                - restraint_force(&cell, pm, target, 3.0).0)
                / (2.0 * h);
            assert!((fd - f.axis(axis)).abs() < 1e-5);
        }
        // At the anchor: no energy, no force.
        let (e0, f0) = restraint_force(&cell, target, target, 3.0);
        assert_eq!(e0, 0.0);
        assert_eq!(f0, Vec3::ZERO);
    }

    #[test]
    fn restraint_uses_minimum_image() {
        let cell = Cell::cube(10.0);
        // p and target 1 Å apart through the boundary.
        let (e, f) = restraint_force(&cell, Vec3::new(9.7, 0.0, 0.0), Vec3::new(0.7, 0.0, 0.0), 2.0);
        assert!((e - 2.0).abs() < 1e-9, "energy {e}");
        assert!(f.x > 0.0, "pulled forward through the boundary: {f:?}");
    }

    #[test]
    fn collinear_dihedral_is_graceful() {
        let cell = open_cell();
        let (e, f) = dihedral_force(
            &cell,
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
            1.0,
            2,
            0.0,
        );
        assert_eq!(e, 0.0);
        assert_eq!(f, [Vec3::ZERO; 4]);
    }

    #[test]
    fn compute_bonded_accumulates_all_terms() {
        use crate::topology::{Atom, push_water};
        let cell = Cell::cube(20.0);
        let mut topo = Topology::default();
        push_water(&mut topo, 0, 1);
        topo.atoms.push(Atom { mass: 12.0, charge: 0.0, lj_type: 2 });
        // Slightly perturbed water + a free atom.
        let pos = vec![
            Vec3::new(5.0, 5.0, 5.0),
            Vec3::new(5.99, 5.0, 5.0),
            Vec3::new(4.8, 5.9, 5.0),
            Vec3::new(1.0, 1.0, 1.0),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        let e = compute_bonded(&topo, &cell, &pos, &mut f);
        assert!(e.bond > 0.0);
        assert!(e.angle >= 0.0);
        assert_eq!(e.dihedral, 0.0);
        // Free atom untouched.
        assert_eq!(f[3], Vec3::ZERO);
        // Momentum conservation over the bonded terms.
        let net: Vec3 = f.iter().copied().sum();
        assert!(net.norm() < 1e-10);
    }
}
