//! Cell lists: O(N) spatial binning for neighbour search.
//!
//! The sequential reference simulator uses cell lists to avoid the O(N²)
//! pair loop. The parallel engine's *patch grid* (cubes slightly larger than
//! the cutoff) is the distributed analogue of the same idea; this module is
//! also reused to count per-patch interaction pairs for the cost model.

use crate::pbc::Cell;
use crate::vec3::Vec3;

/// A grid of bins laid over the simulation cell. Bin side lengths are at
/// least `min_side` along each axis (for neighbour search, `min_side` is the
/// cutoff radius so that all pairs within the cutoff live in neighbouring
/// bins).
#[derive(Debug, Clone)]
pub struct CellList {
    /// Number of bins along each axis.
    pub dims: [usize; 3],
    /// Atom indices grouped by bin (bin index = x + dims.x*(y + dims.y*z)).
    bins: Vec<Vec<u32>>,
    cell: Cell,
}

impl CellList {
    /// Number of bins along each axis for a cell and minimum side length.
    /// Always at least 1 per axis.
    pub fn grid_dims(cell: &Cell, min_side: f64) -> [usize; 3] {
        assert!(min_side > 0.0);
        let mut dims = [1usize; 3];
        for ax in 0..3 {
            dims[ax] = ((cell.lengths.axis(ax) / min_side).floor() as usize).max(1);
        }
        dims
    }

    /// Build a cell list binning `pos` into bins of side ≥ `min_side`.
    pub fn build(cell: &Cell, pos: &[Vec3], min_side: f64) -> Self {
        let dims = Self::grid_dims(cell, min_side);
        let n_bins = dims[0] * dims[1] * dims[2];
        let mut bins = vec![Vec::new(); n_bins];
        for (i, &p) in pos.iter().enumerate() {
            let b = Self::bin_of_with(cell, dims, p);
            bins[b].push(i as u32);
        }
        CellList { dims, bins, cell: *cell }
    }

    /// Bin index of a position (positions outside the cell are wrapped on
    /// periodic axes and clamped on open axes).
    pub fn bin_of(&self, p: Vec3) -> usize {
        Self::bin_of_with(&self.cell, self.dims, p)
    }

    fn bin_of_with(cell: &Cell, dims: [usize; 3], p: Vec3) -> usize {
        let q = cell.wrap(p);
        let f = cell.fractional(q);
        let mut idx = [0usize; 3];
        for ax in 0..3 {
            let v = (f.axis(ax) * dims[ax] as f64).floor() as isize;
            idx[ax] = v.clamp(0, dims[ax] as isize - 1) as usize;
        }
        idx[0] + dims[0] * (idx[1] + dims[1] * idx[2])
    }

    /// Total number of bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Atoms in a bin.
    pub fn bin(&self, b: usize) -> &[u32] {
        &self.bins[b]
    }

    /// 3-D coordinates of a linear bin index.
    pub fn bin_coords(&self, b: usize) -> [usize; 3] {
        let x = b % self.dims[0];
        let y = (b / self.dims[0]) % self.dims[1];
        let z = b / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Linear index from 3-D coordinates, wrapping on periodic axes.
    /// Returns `None` when a coordinate falls outside an open axis.
    pub fn bin_index(&self, c: [isize; 3]) -> Option<usize> {
        let mut idx = [0usize; 3];
        for ax in 0..3 {
            let d = self.dims[ax] as isize;
            let v = c[ax];
            if self.cell.periodic[ax] {
                idx[ax] = v.rem_euclid(d) as usize;
            } else if v < 0 || v >= d {
                return None;
            } else {
                idx[ax] = v as usize;
            }
        }
        Some(idx[0] + self.dims[0] * (idx[1] + self.dims[1] * idx[2]))
    }

    /// Visit every unordered pair of atoms that could lie within the bin
    /// side length of each other: pairs inside one bin and pairs across
    /// neighbouring bins (half-shell enumeration, so each unordered bin pair
    /// is visited once). The callback receives atom indices `(i, j)` with no
    /// duplicates; the caller still applies the exact distance test.
    pub fn for_each_candidate_pair(&self, mut f: impl FnMut(u32, u32)) {
        // Half-shell: 13 of the 26 neighbour offsets + self.
        const HALF: [[isize; 3]; 13] = [
            [1, 0, 0],
            [0, 1, 0],
            [0, 0, 1],
            [1, 1, 0],
            [1, -1, 0],
            [1, 0, 1],
            [1, 0, -1],
            [0, 1, 1],
            [0, 1, -1],
            [1, 1, 1],
            [1, 1, -1],
            [1, -1, 1],
            [1, -1, -1],
        ];
        let small = self.dims.iter().any(|&d| d < 3);
        if small {
            // With fewer than 3 bins along a periodic axis, distinct offsets
            // can alias to the same neighbour bin and the half-shell trick
            // would double-count; fall back to collecting unique bin pairs.
            self.for_each_candidate_pair_smallgrid(f);
            return;
        }
        for b in 0..self.bins.len() {
            let atoms = &self.bins[b];
            // Within-bin pairs.
            for i in 0..atoms.len() {
                for j in (i + 1)..atoms.len() {
                    f(atoms[i], atoms[j]);
                }
            }
            let c = self.bin_coords(b);
            for off in HALF {
                let nc = [
                    c[0] as isize + off[0],
                    c[1] as isize + off[1],
                    c[2] as isize + off[2],
                ];
                if let Some(nb) = self.bin_index(nc) {
                    for &i in atoms {
                        for &j in &self.bins[nb] {
                            f(i, j);
                        }
                    }
                }
            }
        }
    }

    fn for_each_candidate_pair_smallgrid(&self, mut f: impl FnMut(u32, u32)) {
        use std::collections::BTreeSet;
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for b in 0..self.bins.len() {
            let atoms = &self.bins[b];
            for i in 0..atoms.len() {
                for j in (i + 1)..atoms.len() {
                    f(atoms[i], atoms[j]);
                }
            }
            let c = self.bin_coords(b);
            for dz in -1isize..=1 {
                for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        if (dx, dy, dz) == (0, 0, 0) {
                            continue;
                        }
                        let nc = [c[0] as isize + dx, c[1] as isize + dy, c[2] as isize + dz];
                        if let Some(nb) = self.bin_index(nc) {
                            if nb == b {
                                continue;
                            }
                            let key = (b.min(nb), b.max(nb));
                            if !seen.insert(key) {
                                continue;
                            }
                            let (lo, hi) = (key.0, key.1);
                            for &i in &self.bins[lo] {
                                for &j in &self.bins[hi] {
                                    f(i, j);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Collect all unordered pairs within `cutoff` (exact distances), using
    /// the candidate enumeration plus the distance filter.
    pub fn neighbor_pairs(&self, pos: &[Vec3], cutoff: f64) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        self.neighbor_pairs_into(pos, cutoff, &mut out);
        out
    }

    /// Like [`CellList::neighbor_pairs`], but writing into a caller-owned
    /// buffer: `out` is cleared and refilled, so a pair list that rebuilds
    /// every few steps reuses its allocation instead of churning the heap.
    pub fn neighbor_pairs_into(&self, pos: &[Vec3], cutoff: f64, out: &mut Vec<(u32, u32)>) {
        out.clear();
        let c2 = cutoff * cutoff;
        self.for_each_candidate_pair(|i, j| {
            if self.cell.dist2(pos[i as usize], pos[j as usize]) < c2 {
                out.push((i.min(j), i.max(j)));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn brute_pairs(cell: &Cell, pos: &[Vec3], cutoff: f64) -> BTreeSet<(u32, u32)> {
        let c2 = cutoff * cutoff;
        let mut s = BTreeSet::new();
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                if cell.dist2(pos[i], pos[j]) < c2 {
                    s.insert((i as u32, j as u32));
                }
            }
        }
        s
    }

    fn scatter(n: usize, l: f64) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Vec3::new(
                    (t * 7.919).rem_euclid(l),
                    (t * 5.237 + 3.0).rem_euclid(l),
                    (t * 3.571 + 7.0).rem_euclid(l),
                )
            })
            .collect()
    }

    #[test]
    fn grid_dims_floor() {
        let cell = Cell::cube(85.5);
        assert_eq!(CellList::grid_dims(&cell, 12.0), [7, 7, 7]);
        let cell2 = Cell::periodic(Vec3::ZERO, Vec3::new(108.86, 108.86, 77.76));
        // ApoA-I-like box with 12 Å patches → 9×9×6... with slack the paper
        // uses 7×7×5; dims here are pure cutoff division.
        assert_eq!(CellList::grid_dims(&cell2, 12.0), [9, 9, 6]);
    }

    #[test]
    fn matches_brute_force_periodic() {
        let cell = Cell::cube(40.0);
        let pos = scatter(150, 40.0);
        let cl = CellList::build(&cell, &pos, 9.0);
        let fast: BTreeSet<_> = cl.neighbor_pairs(&pos, 9.0).into_iter().collect();
        let brute = brute_pairs(&cell, &pos, 9.0);
        assert_eq!(fast, brute);
    }

    #[test]
    fn matches_brute_force_small_grid() {
        // Only 2 bins per axis — exercises the aliasing-safe fallback.
        let cell = Cell::cube(20.0);
        let pos = scatter(80, 20.0);
        let cl = CellList::build(&cell, &pos, 9.5);
        assert!(cl.dims.iter().all(|&d| d == 2));
        let fast: BTreeSet<_> = cl.neighbor_pairs(&pos, 9.5).into_iter().collect();
        let brute = brute_pairs(&cell, &pos, 9.5);
        assert_eq!(fast, brute);
    }

    #[test]
    fn matches_brute_force_open_cell() {
        let cell = Cell::open(Vec3::ZERO, Vec3::splat(50.0));
        let pos = scatter(120, 50.0);
        let cl = CellList::build(&cell, &pos, 10.0);
        let fast: BTreeSet<_> = cl.neighbor_pairs(&pos, 10.0).into_iter().collect();
        let brute = brute_pairs(&cell, &pos, 10.0);
        assert_eq!(fast, brute);
    }

    #[test]
    fn no_duplicate_candidates() {
        let cell = Cell::cube(36.0);
        let pos = scatter(60, 36.0);
        let cl = CellList::build(&cell, &pos, 12.0);
        let mut seen = BTreeSet::new();
        cl.for_each_candidate_pair(|i, j| {
            let key = (i.min(j), i.max(j));
            assert!(seen.insert(key), "duplicate candidate pair {key:?}");
        });
    }

    #[test]
    fn all_atoms_are_binned() {
        let cell = Cell::cube(30.0);
        let pos = scatter(100, 30.0);
        let cl = CellList::build(&cell, &pos, 10.0);
        let total: usize = (0..cl.n_bins()).map(|b| cl.bin(b).len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn bin_roundtrip() {
        let cell = Cell::cube(30.0);
        let cl = CellList::build(&cell, &[], 10.0);
        for b in 0..cl.n_bins() {
            let c = cl.bin_coords(b);
            let back = cl.bin_index([c[0] as isize, c[1] as isize, c[2] as isize]).unwrap();
            assert_eq!(back, b);
        }
    }

    #[test]
    fn out_of_cell_positions_are_wrapped_into_bins() {
        let cell = Cell::cube(30.0);
        let pos = vec![Vec3::new(-1.0, 31.0, 95.0)];
        let cl = CellList::build(&cell, &pos, 10.0);
        let total: usize = (0..cl.n_bins()).map(|b| cl.bin(b).len()).sum();
        assert_eq!(total, 1);
    }
}
