//! Holonomic distance constraints: SHAKE (positions) and RATTLE
//! (velocities).
//!
//! Production NAMD runs constrain the fast bond vibrations involving
//! hydrogen (`rigidBonds`), which is what allows the 2 fs timesteps behind
//! every nanosecond-scale study the paper's introduction motivates — the
//! unconstrained 1 fs limit comes from exactly those vibrations. This
//! module implements the classic iterative SHAKE/RATTLE pair and a
//! velocity-Verlet integrator that applies them.

use crate::forcefield::units;
use crate::pbc::Cell;
use crate::sim::{compute_forces, StepEnergy};
use crate::system::System;
use crate::topology::Topology;
use crate::vec3::Vec3;

/// One pairwise distance constraint `|r_a − r_b| = r0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceConstraint {
    pub a: u32,
    pub b: u32,
    pub r0: f64,
}

/// A set of distance constraints with SHAKE/RATTLE solvers.
#[derive(Debug, Clone)]
pub struct Constraints {
    pub list: Vec<DistanceConstraint>,
    /// Convergence tolerance on relative bond-length error.
    pub tol: f64,
    /// Iteration cap per solve.
    pub max_iter: usize,
}

impl Constraints {
    /// Constraints for every bond in the topology (full rigid-bond mode).
    pub fn all_bonds(topo: &Topology) -> Self {
        let list = topo
            .bonds
            .iter()
            .map(|b| DistanceConstraint { a: b.a, b: b.b, r0: b.r0 })
            .collect();
        Constraints { list, tol: 1e-8, max_iter: 500 }
    }

    /// Constraints for bonds involving a hydrogen (mass < 1.5 amu) — NAMD's
    /// `rigidBonds water`/`all` analogue, the minimal set that unlocks
    /// longer timesteps.
    pub fn h_bonds(topo: &Topology) -> Self {
        let is_h = |i: u32| topo.atoms[i as usize].mass < 1.5;
        let list = topo
            .bonds
            .iter()
            .filter(|b| is_h(b.a) || is_h(b.b))
            .map(|b| DistanceConstraint { a: b.a, b: b.b, r0: b.r0 })
            .collect();
        Constraints { list, tol: 1e-8, max_iter: 500 }
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when no constraints are present.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// SHAKE: iteratively project `pos` onto the constraint manifold,
    /// distributing corrections by inverse mass. `pos_ref` holds the
    /// pre-drift positions defining each constraint's direction (standard
    /// SHAKE linearization). Returns the iterations used, or `None` if the
    /// solve failed to converge.
    pub fn shake(
        &self,
        cell: &Cell,
        pos: &mut [Vec3],
        pos_ref: &[Vec3],
        inv_mass: &[f64],
    ) -> Option<usize> {
        for iter in 0..self.max_iter {
            let mut worst: f64 = 0.0;
            for c in &self.list {
                let (i, j) = (c.a as usize, c.b as usize);
                let d = cell.min_image(pos[i], pos[j]);
                let r2 = d.norm2();
                let diff = r2 - c.r0 * c.r0;
                worst = worst.max((diff / (c.r0 * c.r0)).abs());
                if diff.abs() < self.tol * c.r0 * c.r0 {
                    continue;
                }
                // Constraint direction from the reference geometry.
                let d_ref = cell.min_image(pos_ref[i], pos_ref[j]);
                let denom = 2.0 * d.dot(d_ref) * (inv_mass[i] + inv_mass[j]);
                if denom.abs() < 1e-12 {
                    continue; // degenerate; let another iteration fix it
                }
                let g = diff / denom;
                pos[i] -= d_ref * (g * inv_mass[i]);
                pos[j] += d_ref * (g * inv_mass[j]);
            }
            if worst < self.tol {
                return Some(iter + 1);
            }
        }
        None
    }

    /// RATTLE: remove the velocity components along each constraint so
    /// `d/dt |r_a − r_b|² = 0`. Returns iterations used, or `None`.
    pub fn rattle(
        &self,
        cell: &Cell,
        pos: &[Vec3],
        vel: &mut [Vec3],
        inv_mass: &[f64],
    ) -> Option<usize> {
        for iter in 0..self.max_iter {
            let mut worst: f64 = 0.0;
            for c in &self.list {
                let (i, j) = (c.a as usize, c.b as usize);
                let d = cell.min_image(pos[i], pos[j]);
                let vrel = vel[i] - vel[j];
                let dot = d.dot(vrel);
                worst = worst.max(dot.abs() / (c.r0 * c.r0));
                let denom = d.norm2() * (inv_mass[i] + inv_mass[j]);
                if denom.abs() < 1e-12 {
                    continue;
                }
                let k = dot / denom;
                vel[i] -= d * (k * inv_mass[i]);
                vel[j] += d * (k * inv_mass[j]);
            }
            // Velocity tolerance scaled like a relative rate.
            if worst < self.tol.max(1e-10) * 1e2 {
                return Some(iter + 1);
            }
        }
        None
    }

    /// Maximum relative constraint violation of a configuration.
    pub fn max_violation(&self, cell: &Cell, pos: &[Vec3]) -> f64 {
        self.list
            .iter()
            .map(|c| {
                let d = cell.dist2(pos[c.a as usize], pos[c.b as usize]).sqrt();
                ((d - c.r0) / c.r0).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// Velocity Verlet with SHAKE/RATTLE — the constrained analogue of
/// [`crate::sim::Simulator`].
pub struct ConstrainedSimulator {
    pub dt: f64,
    pub constraints: Constraints,
    forces: Vec<Vec3>,
    inv_mass: Vec<f64>,
    primed: bool,
    /// Iterations used by the most recent SHAKE solve (diagnostics).
    pub last_shake_iters: usize,
}

impl ConstrainedSimulator {
    /// Create a constrained integrator.
    pub fn new(system: &System, dt: f64, constraints: Constraints) -> Self {
        let inv_mass =
            system.topology.atoms.iter().map(|a| 1.0 / a.mass).collect();
        ConstrainedSimulator {
            dt,
            constraints,
            forces: vec![Vec3::ZERO; system.n_atoms()],
            inv_mass,
            primed: false,
            last_shake_iters: 0,
        }
    }

    /// One constrained velocity-Verlet step.
    pub fn step(&mut self, system: &mut System) -> StepEnergy {
        if !self.primed {
            compute_forces(system, &mut self.forces);
            // Start exactly on the constraint manifold.
            let reference = system.positions.clone();
            self.constraints
                .shake(&system.cell, &mut system.positions, &reference, &self.inv_mass)
                .expect("initial SHAKE failed");
            self.constraints
                .rattle(&system.cell, &system.positions.clone(), &mut system.velocities, &self.inv_mass)
                .expect("initial RATTLE failed");
            self.primed = true;
        }
        let dt = self.dt;
        let n = system.n_atoms();

        // Half-kick + drift.
        let pos_ref = system.positions.clone();
        for i in 0..n {
            let a = self.forces[i] * (units::ACCEL * self.inv_mass[i]);
            system.velocities[i] += a * (0.5 * dt);
            system.positions[i] += system.velocities[i] * dt;
        }
        // SHAKE the new positions; fold the correction back into velocities.
        self.last_shake_iters = self
            .constraints
            .shake(&system.cell, &mut system.positions, &pos_ref, &self.inv_mass)
            .expect("SHAKE did not converge — timestep too large?");
        for i in 0..n {
            system.velocities[i] =
                system.cell.min_image(system.positions[i], pos_ref[i]) / dt;
        }
        for i in 0..n {
            system.positions[i] = system.cell.wrap(system.positions[i]);
        }

        // New forces + half-kick + RATTLE.
        let mut e = compute_forces(system, &mut self.forces);
        for i in 0..n {
            let a = self.forces[i] * (units::ACCEL * self.inv_mass[i]);
            system.velocities[i] += a * (0.5 * dt);
        }
        self.constraints
            .rattle(&system.cell, &system.positions, &mut system.velocities, &self.inv_mass)
            .expect("RATTLE did not converge");
        e.kinetic = system.kinetic_energy();
        e
    }

    /// Run `n` steps.
    pub fn run(&mut self, system: &mut System, n: usize) -> Vec<StepEnergy> {
        (0..n).map(|_| self.step(system)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::ForceField;
    use crate::topology::{push_water, Topology};

    fn water_system(n_side: usize) -> System {
        let mut topo = Topology::default();
        let mut pos = Vec::new();
        let spacing = 3.3;
        for i in 0..n_side * n_side * n_side {
            let x = (i % n_side) as f64 * spacing + 0.8;
            let y = ((i / n_side) % n_side) as f64 * spacing + 0.8;
            let z = (i / (n_side * n_side)) as f64 * spacing + 0.8;
            push_water(&mut topo, 0, 1);
            pos.push(Vec3::new(x, y, z));
            pos.push(Vec3::new(x + 0.9572, y, z));
            pos.push(Vec3::new(x - 0.2399, y + 0.9266, z));
        }
        let l = n_side as f64 * spacing;
        System::new(topo, ForceField::biomolecular((l / 2.2).min(8.0)), Cell::cube(l), pos)
    }

    #[test]
    fn shake_restores_bond_lengths() {
        let mut sys = water_system(2);
        let cons = Constraints::all_bonds(&sys.topology);
        let reference = sys.positions.clone();
        // Perturb everything.
        for (i, p) in sys.positions.iter_mut().enumerate() {
            *p += Vec3::new(
                ((i * 7) % 5) as f64 * 0.03,
                ((i * 3) % 4) as f64 * 0.04,
                ((i * 11) % 3) as f64 * 0.05,
            );
        }
        assert!(cons.max_violation(&sys.cell, &sys.positions) > 1e-3);
        let inv_mass: Vec<f64> = sys.topology.atoms.iter().map(|a| 1.0 / a.mass).collect();
        let iters = cons
            .shake(&sys.cell, &mut sys.positions, &reference, &inv_mass)
            .expect("converged");
        assert!(iters < 200);
        assert!(cons.max_violation(&sys.cell, &sys.positions) < 1e-6);
    }

    #[test]
    fn shake_conserves_momentum() {
        let mut sys = water_system(2);
        let cons = Constraints::all_bonds(&sys.topology);
        let reference = sys.positions.clone();
        for (i, p) in sys.positions.iter_mut().enumerate() {
            p.x += (i % 3) as f64 * 0.05;
        }
        let masses: Vec<f64> = sys.topology.atoms.iter().map(|a| a.mass).collect();
        let inv_mass: Vec<f64> = masses.iter().map(|m| 1.0 / m).collect();
        let com_before: Vec3 = sys
            .positions
            .iter()
            .zip(&masses)
            .map(|(&p, &m)| p * m)
            .sum();
        cons.shake(&sys.cell, &mut sys.positions, &reference, &inv_mass).unwrap();
        let com_after: Vec3 = sys
            .positions
            .iter()
            .zip(&masses)
            .map(|(&p, &m)| p * m)
            .sum();
        // Pairwise equal-and-opposite corrections preserve the centre of mass.
        assert!((com_before - com_after).norm() < 1e-9);
    }

    #[test]
    fn rattle_zeroes_bond_rates() {
        let mut sys = water_system(2);
        sys.thermalize(300.0, 3);
        let cons = Constraints::all_bonds(&sys.topology);
        let inv_mass: Vec<f64> = sys.topology.atoms.iter().map(|a| 1.0 / a.mass).collect();
        cons.rattle(&sys.cell, &sys.positions, &mut sys.velocities, &inv_mass).unwrap();
        for c in &cons.list {
            let d = sys
                .cell
                .min_image(sys.positions[c.a as usize], sys.positions[c.b as usize]);
            let vrel = sys.velocities[c.a as usize] - sys.velocities[c.b as usize];
            assert!(
                d.dot(vrel).abs() < 1e-6,
                "bond rate not removed: {}",
                d.dot(vrel)
            );
        }
    }

    #[test]
    fn constrained_dynamics_hold_bonds_at_2fs() {
        // The payoff: a 2 fs timestep, twice the unconstrained stability
        // limit, with bonds held rigid throughout.
        let mut sys = water_system(3);
        sys.thermalize(300.0, 1);
        let cons = Constraints::all_bonds(&sys.topology);
        let mut sim = ConstrainedSimulator::new(&sys, 2.0, cons);
        sim.run(&mut sys, 50);
        let cons = Constraints::all_bonds(&sys.topology);
        assert!(
            cons.max_violation(&sys.cell, &sys.positions) < 1e-6,
            "bonds drifted: {}",
            cons.max_violation(&sys.cell, &sys.positions)
        );
    }

    #[test]
    fn constrained_dynamics_conserve_energy() {
        let mut sys = water_system(3);
        sys.thermalize(150.0, 9);
        let cons = Constraints::all_bonds(&sys.topology);
        let mut sim = ConstrainedSimulator::new(&sys, 1.0, cons);
        let energies = sim.run(&mut sys, 60);
        let e0 = energies[2].total();
        let e1 = energies.last().unwrap().total();
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 1.5e-2, "constrained NVE drift {drift}: {e0} -> {e1}");
    }

    #[test]
    fn h_bonds_selects_hydrogen_bonds_only() {
        let mut topo = Topology::default();
        push_water(&mut topo, 0, 1); // two O-H bonds
        topo.atoms.push(crate::topology::Atom { mass: 12.0, charge: 0.0, lj_type: 2 });
        topo.atoms.push(crate::topology::Atom { mass: 12.0, charge: 0.0, lj_type: 2 });
        topo.bonds.push(crate::topology::Bond { a: 3, b: 4, k: 300.0, r0: 1.5 }); // C-C
        let cons = Constraints::h_bonds(&topo);
        assert_eq!(cons.len(), 2, "only the two O-H bonds");
        assert_eq!(Constraints::all_bonds(&topo).len(), 3);
    }
}
