//! Error function / complementary error function, implemented from scratch.
//!
//! * `|x| < 3`: Maclaurin series of erf — converges quickly and is accurate
//!   to ~1e-13 in this range;
//! * `x ≥ 3`: continued-fraction expansion of erfc (evaluated with the
//!   modified Lentz algorithm), accurate to full double precision where the
//!   function itself is ~2e-5 and smaller.
//!
//! Ewald summation needs both the function values and the exact derivative
//! identity `erf'(x) = 2/√π·e^{-x²}` (used by the force kernels).

/// 2/√π.
pub const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;

/// The error function.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else if x < 3.0 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// The complementary error function.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else if x < 3.0 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series: erf(x) = 2/√π Σ (-1)^n x^{2n+1} / (n! (2n+1)).
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^{2n+1}/n! at n = 0
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < 1e-17 * sum.abs().max(1e-300) {
            break;
        }
    }
    TWO_OVER_SQRT_PI * sum
}

/// Continued fraction: erfc(x) = e^{-x²}/√π · 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...)))),
/// i.e. a_n = n/2, evaluated with modified Lentz.
fn erfc_cf(x: f64) -> f64 {
    if x > 26.0 {
        return 0.0; // e^{-x²} underflows f64
    }
    const TINY: f64 = 1e-300;
    let mut f = x.max(TINY);
    let mut c = f;
    let mut d = 0.0;
    for n in 1..300 {
        let a = n as f64 / 2.0;
        // b = x for the continued fraction K(a_n / b) with b constant.
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / (std::f64::consts::PI.sqrt() * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // Reference values to 9 decimals.
        let cases = [
            (0.0, 0.0),
            (0.1, 0.112_462_916),
            (0.5, 0.520_499_878),
            (1.0, 0.842_700_793),
            (1.5, 0.966_105_146),
            (2.0, 0.995_322_265),
            (3.0, 0.999_977_910),
        ];
        for (x, want) in cases {
            let got = erf(x);
            assert!((got - want).abs() < 1e-9, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erfc_tail_values() {
        // erfc(3) = 2.209e-5, erfc(4) = 1.5417e-8, erfc(5) = 1.5375e-12.
        assert!((erfc(3.0) / 2.209_049_7e-5 - 1.0).abs() < 1e-6, "{}", erfc(3.0));
        assert!((erfc(4.0) / 1.541_726e-8 - 1.0).abs() < 1e-5, "{}", erfc(4.0));
        assert!((erfc(5.0) / 1.537_46e-12 - 1.0).abs() < 1e-4, "{}", erfc(5.0));
    }

    #[test]
    fn branch_boundary_is_continuous() {
        let below = erf(2.999_999_9);
        let above = erf(3.000_000_1);
        assert!((below - above).abs() < 1e-9);
    }

    #[test]
    fn odd_symmetry() {
        for x in [0.3, 1.1, 2.7, 4.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-14);
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-14);
        }
    }

    #[test]
    fn erfc_complements() {
        for x in [-1.0, 0.0, 0.5, 2.0, 3.5, 5.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x = {x}");
        }
    }

    #[test]
    fn saturates() {
        assert!((erf(10.0) - 1.0).abs() < 1e-15);
        assert_eq!(erfc(30.0), 0.0);
    }

    #[test]
    fn derivative_matches_gaussian() {
        // erf'(x) = 2/√π e^{-x²}; check with central differences.
        for x in [0.2, 0.8, 1.6, 2.8, 3.2] {
            let h = 1e-6;
            let fd = (erf(x + h) - erf(x - h)) / (2.0 * h);
            let exact = TWO_OVER_SQRT_PI * (-x * x).exp();
            assert!((fd - exact).abs() < 1e-8, "x={x}: {fd} vs {exact}");
        }
    }
}
