//! Force-field parameters and cutoff smoothing functions.
//!
//! Non-bonded interactions are 12-6 Lennard-Jones plus Coulomb. Like NAMD's
//! cutoff simulations (the paper's benchmarks all use a 12 Å cutoff), the LJ
//! term is smoothed to zero with the CHARMM *switching* function between
//! `switch_dist` and `cutoff`, and the electrostatic term is damped with the
//! *shifting* function `(1 - r²/rc²)²`, so both energy and force go to zero
//! continuously at the cutoff — a requirement for energy conservation.

/// Units and physical constants (AKMA-style unit system).
///
/// * length — Å
/// * energy — kcal/mol
/// * mass — amu
/// * time — fs
/// * charge — elementary charges
pub mod units {
    /// Converts (kcal/mol/Å) / amu to Å/fs² (acceleration).
    pub const ACCEL: f64 = 4.184e-4;
    /// Converts amu·(Å/fs)² to kcal/mol (kinetic energy), = 1/ACCEL.
    pub const KE: f64 = 1.0 / ACCEL;
    /// Boltzmann constant, kcal/(mol·K).
    pub const K_B: f64 = 0.001_987_204_1;
    /// Coulomb constant e²/(4πε₀) in kcal·Å/mol.
    pub const COULOMB: f64 = 332.063_71;
    /// Scaling applied to 1-4 electrostatic interactions (CHARMM default 1.0,
    /// AMBER-style 1/1.2; we adopt the common 1.0 for electrostatics and
    /// scale LJ instead — see [`super::ForceField::scale14`]).
    pub const DEFAULT_SCALE14: f64 = 0.5;
}

/// Per-type Lennard-Jones parameters (CHARMM convention: `rmin2` is half the
/// distance at the potential minimum; ε is the well depth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjType {
    /// Well depth ε, kcal/mol (positive).
    pub epsilon: f64,
    /// R_min/2, Å.
    pub rmin_half: f64,
}

/// Pre-combined LJ pair coefficients: `E = a/r¹² - b/r⁶`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LjPair {
    pub a: f64,
    pub b: f64,
}

impl LjPair {
    /// Combine two LJ types with Lorentz-Berthelot (CHARMM arithmetic-mean
    /// rmin, geometric-mean ε) rules.
    pub fn combine(i: LjType, j: LjType) -> LjPair {
        let eps = (i.epsilon * j.epsilon).sqrt();
        let rmin = i.rmin_half + j.rmin_half;
        let r6 = rmin.powi(6);
        LjPair { a: eps * r6 * r6, b: 2.0 * eps * r6 }
    }
}

/// Complete non-bonded parameter set with a precomputed type-pair table.
#[derive(Debug, Clone)]
pub struct ForceField {
    /// LJ type definitions.
    pub types: Vec<LjType>,
    /// Dense `n_types × n_types` combined table, row-major.
    table: Vec<LjPair>,
    /// Cutoff radius r_c, Å.
    pub cutoff: f64,
    /// Switching inner radius r_s (LJ smoothing starts here), Å.
    pub switch_dist: f64,
    /// Scale factor applied to 1-4 non-bonded interactions.
    pub scale14: f64,
    /// When set, the electrostatic term uses the Ewald real-space form
    /// `erfc(β r)/r` (full electrostatics, to be completed by a
    /// reciprocal-space solver such as `pme`) instead of the shifted cutoff
    /// Coulomb. With Ewald, 1-4 electrostatics stays at full strength
    /// (CHARMM convention); `scale14` then applies to LJ only.
    pub ewald_beta: Option<f64>,
}

impl ForceField {
    /// Build a force field from LJ types with the given cutoff and switching
    /// distance. Panics if `switch_dist >= cutoff` or either is non-positive.
    pub fn new(types: Vec<LjType>, cutoff: f64, switch_dist: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        assert!(
            switch_dist > 0.0 && switch_dist < cutoff,
            "switch_dist must lie in (0, cutoff); got {switch_dist} vs cutoff {cutoff}"
        );
        let n = types.len();
        let mut table = vec![LjPair::default(); n * n];
        for i in 0..n {
            for j in 0..n {
                table[i * n + j] = LjPair::combine(types[i], types[j]);
            }
        }
        ForceField {
            types,
            table,
            cutoff,
            switch_dist,
            scale14: units::DEFAULT_SCALE14,
            ewald_beta: None,
        }
    }

    /// Standard benchmark parameterization: a small set of types covering
    /// water O/H and generic protein/lipid heavy atoms, 12 Å cutoff, 10 Å
    /// switch — matching the paper's simulation parameters.
    pub fn biomolecular(cutoff: f64) -> Self {
        let types = vec![
            // 0: water oxygen (TIP3P)
            LjType { epsilon: 0.1521, rmin_half: 1.7682 },
            // 1: water hydrogen
            LjType { epsilon: 0.046, rmin_half: 0.2245 },
            // 2: protein backbone carbon-like
            LjType { epsilon: 0.11, rmin_half: 2.0 },
            // 3: protein polar atom (N/O-like)
            LjType { epsilon: 0.17, rmin_half: 1.77 },
            // 4: lipid tail carbon-like
            LjType { epsilon: 0.078, rmin_half: 2.05 },
        ];
        ForceField::new(types, cutoff, cutoff - 2.0)
    }

    /// Combined LJ coefficients for a pair of LJ types.
    #[inline]
    pub fn lj(&self, ti: u16, tj: u16) -> LjPair {
        self.table[ti as usize * self.types.len() + tj as usize]
    }

    /// Squared cutoff, handy in kernels.
    #[inline]
    pub fn cutoff2(&self) -> f64 {
        self.cutoff * self.cutoff
    }

    /// CHARMM switching function value and its derivative factor at squared
    /// distance `r2`. Returns `(s, ds_dr_over_r)` where the smoothed energy
    /// is `E·s` and the extra force term uses `E·ds_dr_over_r`.
    ///
    /// For `r ≤ r_s`: s = 1, ds = 0. For `r ≥ r_c`: s = 0.
    #[inline]
    pub fn switching(&self, r2: f64) -> (f64, f64) {
        let rc2 = self.cutoff * self.cutoff;
        let rs2 = self.switch_dist * self.switch_dist;
        if r2 <= rs2 {
            (1.0, 0.0)
        } else if r2 >= rc2 {
            (0.0, 0.0)
        } else {
            let denom = (rc2 - rs2).powi(3);
            let u = rc2 - r2;
            let s = u * u * (rc2 + 2.0 * r2 - 3.0 * rs2) / denom;
            // ds/d(r²) = [ -2u(rc² + 2r² - 3 rs²) + 2 u² ] / denom
            //          = 2u[ u - (rc² + 2r² - 3 rs²) ] / denom
            //          = 2u[ 3 rs² - 3 r² ] / denom = -6u (r² - rs²)/denom
            let ds_dr2 = -6.0 * u * (r2 - rs2) / denom;
            (s, ds_dr2)
        }
    }

    /// Enable Ewald real-space electrostatics with screening parameter β.
    pub fn with_ewald(mut self, beta: f64) -> Self {
        assert!(beta > 0.0);
        self.ewald_beta = Some(beta);
        self
    }

    /// Electrostatic shifting function `(1 - r²/rc²)²` and its derivative
    /// with respect to `r²`.
    #[inline]
    pub fn shifting(&self, r2: f64) -> (f64, f64) {
        let rc2 = self.cutoff * self.cutoff;
        if r2 >= rc2 {
            return (0.0, 0.0);
        }
        let u = 1.0 - r2 / rc2;
        (u * u, -2.0 * u / rc2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lj_combine_minimum_location() {
        // For identical types, minimum of a/r^12 - b/r^6 sits at rmin = 2*rmin_half
        // with depth -ε.
        let t = LjType { epsilon: 0.2, rmin_half: 1.5 };
        let p = LjPair::combine(t, t);
        let rmin: f64 = 3.0;
        let e_min = p.a / rmin.powi(12) - p.b / rmin.powi(6);
        assert!((e_min - (-0.2)).abs() < 1e-12, "depth {e_min}");
        // Derivative at minimum ~ 0.
        let h = 1e-6;
        let e1 = p.a / (rmin + h).powi(12) - p.b / (rmin + h).powi(6);
        let e0 = p.a / (rmin - h).powi(12) - p.b / (rmin - h).powi(6);
        assert!(((e1 - e0) / (2.0 * h)).abs() < 1e-6);
    }

    #[test]
    fn combining_is_symmetric() {
        let a = LjType { epsilon: 0.1, rmin_half: 1.2 };
        let b = LjType { epsilon: 0.3, rmin_half: 2.1 };
        assert_eq!(LjPair::combine(a, b), LjPair::combine(b, a));
        let ff = ForceField::new(vec![a, b], 12.0, 10.0);
        assert_eq!(ff.lj(0, 1), ff.lj(1, 0));
    }

    #[test]
    fn switching_boundary_values() {
        let ff = ForceField::biomolecular(12.0);
        let (s_in, d_in) = ff.switching(9.0 * 9.0);
        assert_eq!((s_in, d_in), (1.0, 0.0));
        let (s_out, d_out) = ff.switching(12.5 * 12.5);
        assert_eq!((s_out, d_out), (0.0, 0.0));
        // Continuity at the edges.
        let (s_a, _) = ff.switching(10.0f64.powi(2) + 1e-9);
        assert!((s_a - 1.0).abs() < 1e-6);
        let (s_b, _) = ff.switching(12.0f64.powi(2) - 1e-9);
        assert!(s_b.abs() < 1e-6);
    }

    #[test]
    fn switching_is_monotone_decreasing() {
        let ff = ForceField::biomolecular(12.0);
        let mut prev = 1.0;
        let mut r = 10.0;
        while r < 12.0 {
            let (s, _) = ff.switching(r * r);
            assert!(s <= prev + 1e-12, "switching not monotone at r={r}");
            assert!((0.0..=1.0).contains(&s));
            prev = s;
            r += 0.01;
        }
    }

    #[test]
    fn switching_derivative_matches_finite_difference() {
        let ff = ForceField::biomolecular(12.0);
        for r in [10.2, 10.9, 11.5, 11.9] {
            let r2 = r * r;
            let h = 1e-6;
            let (s_p, _) = ff.switching(r2 + h);
            let (s_m, _) = ff.switching(r2 - h);
            let fd = (s_p - s_m) / (2.0 * h);
            let (_, d) = ff.switching(r2);
            assert!((fd - d).abs() < 1e-5, "r={r}: fd {fd} vs analytic {d}");
        }
    }

    #[test]
    fn shifting_derivative_matches_finite_difference() {
        let ff = ForceField::biomolecular(12.0);
        for r in [2.0, 5.0, 9.0, 11.5] {
            let r2: f64 = r * r;
            let h = 1e-6;
            let (s_p, _) = ff.shifting(r2 + h);
            let (s_m, _) = ff.shifting(r2 - h);
            let fd = (s_p - s_m) / (2.0 * h);
            let (_, d) = ff.shifting(r2);
            assert!((fd - d).abs() < 1e-5, "r={r}: fd {fd} vs analytic {d}");
        }
    }

    #[test]
    fn shifting_zero_at_cutoff() {
        let ff = ForceField::biomolecular(12.0);
        let (s, _) = ff.shifting(144.0);
        assert_eq!(s, 0.0);
        let (s0, _) = ff.shifting(0.0);
        assert!((s0 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "switch_dist")]
    fn rejects_bad_switch_dist() {
        ForceField::new(vec![LjType { epsilon: 0.1, rmin_half: 1.0 }], 10.0, 10.0);
    }

    #[test]
    fn kinetic_units_roundtrip() {
        // accel * ke == 1 by construction.
        assert!((units::ACCEL * units::KE - 1.0).abs() < 1e-15);
    }
}
