//! # mdcore — sequential molecular dynamics substrate
//!
//! The real physics underneath the NAMD SC2000 reproduction: topology,
//! CHARMM-style force field with switched LJ / shifted Coulomb cutoffs,
//! bonded 2-/3-/4-body kernels, cell-list neighbour search, and a
//! velocity-Verlet NVE integrator.
//!
//! The parallel engine (`namd-core`) reuses these kernels inside its compute
//! objects, so "parallel forces == sequential forces" is a testable
//! invariant rather than an article of faith.
//!
//! ## Quick example
//!
//! ```
//! use mdcore::prelude::*;
//!
//! // Three waters in a periodic box.
//! let mut topo = Topology::default();
//! let mut pos = Vec::new();
//! for i in 0..3 {
//!     push_water(&mut topo, 0, 1);
//!     let base = Vec3::new(2.0 + 3.0 * i as f64, 2.0, 2.0);
//!     pos.push(base);
//!     pos.push(base + Vec3::new(0.9572, 0.0, 0.0));
//!     pos.push(base + Vec3::new(-0.2399, 0.9266, 0.0));
//! }
//! let mut system = System::new(
//!     topo,
//!     ForceField::biomolecular(5.0),
//!     Cell::cube(12.0),
//!     pos,
//! );
//! system.thermalize(300.0, 42);
//! let mut sim = Simulator::new(&system, 1.0);
//! let e = sim.step(&mut system);
//! assert!(e.total().is_finite());
//! ```

// Clippy: indexed loops are kept where they mirror the mathematical
// notation of the kernels and the per-axis geometry code, and chare/builder
// constructors take positional wiring arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#![allow(clippy::field_reassign_with_default)]
pub mod bonded;
pub mod erf;
pub mod celllist;
pub mod constraints;
pub mod forcefield;
pub mod minimize;
pub mod nonbonded;
pub mod observables;
pub mod pairlist;
pub mod pbc;
pub mod sim;
pub mod smd;
pub mod system;
pub mod thermostat;
pub mod topology;
pub mod trajectory;
pub mod vec3;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::bonded::{compute_bonded, BondedEnergy};
    pub use crate::celllist::CellList;
    pub use crate::constraints::{ConstrainedSimulator, Constraints, DistanceConstraint};
    pub use crate::forcefield::{units, ForceField, LjType};
    pub use crate::nonbonded::{
        count_pairs, count_self_pairs, nb_pair, nb_pair_listed, nb_self, nb_self_listed,
        pair_candidates_into, self_candidates_into, AtomGroup, NbResult, FLOPS_PER_PAIR,
    };
    pub use crate::minimize::{minimize, MinimizeResult};
    pub use crate::observables::instantaneous_pressure;
    pub use crate::pairlist::PairList;
    pub use crate::smd::{SmdSimulator, SmdSpring};
    pub use crate::pbc::Cell;
    pub use crate::thermostat::{Berendsen, Langevin};
    pub use crate::trajectory::{
        diffusion_coefficient, mean_squared_displacement, radial_distribution,
        velocity_autocorrelation, XyzWriter,
    };
    pub use crate::sim::{compute_forces, Simulator, StepEnergy};
    pub use crate::system::System;
    pub use crate::topology::{
        push_water, Angle, Atom, AtomId, Bond, Dihedral, ExclusionKind, Exclusions, Improper,
        Restraint, Topology,
    };
    pub use crate::vec3::Vec3;
}
