//! Energy minimization: steepest descent with adaptive step size.
//!
//! Generated or experimental structures start with strained contacts;
//! production MD always minimizes before dynamics (NAMD's `minimize`
//! command). This is the standard robust scheme: step along the force,
//! grow the step on success, shrink and retry on an energy increase.

use crate::sim::compute_forces;
use crate::system::System;
use crate::vec3::Vec3;

/// Result of a minimization run.
#[derive(Debug, Clone, Copy)]
pub struct MinimizeResult {
    /// Potential energy before, kcal/mol.
    pub e_initial: f64,
    /// Potential energy after, kcal/mol.
    pub e_final: f64,
    /// Largest force component after, kcal/mol/Å.
    pub max_force: f64,
    /// Force evaluations performed.
    pub evaluations: usize,
}

/// Steepest-descent minimization for at most `max_steps` accepted moves or
/// until the maximum per-atom force drops below `f_tol` (kcal/mol/Å).
pub fn minimize(system: &mut System, max_steps: usize, f_tol: f64) -> MinimizeResult {
    let n = system.n_atoms();
    let mut forces = vec![Vec3::ZERO; n];
    let mut e = compute_forces(system, &mut forces).potential();
    let e_initial = e;
    let mut evaluations = 1;
    // Initial displacement cap, Å.
    let mut step = 0.01;
    let mut best_positions = system.positions.clone();

    for _ in 0..max_steps {
        let fmax = forces.iter().map(|f| f.norm()).fold(0.0, f64::max);
        if fmax < f_tol {
            break;
        }
        // Move along the force, capping the largest displacement at `step`.
        let scale = step / fmax;
        for (p, f) in system.positions.iter_mut().zip(&forces) {
            *p = system.cell.wrap(*p + *f * scale);
        }
        let e_new = compute_forces(system, &mut forces).potential();
        evaluations += 1;
        if e_new < e {
            e = e_new;
            best_positions.clone_from(&system.positions);
            step = (step * 1.2).min(0.5);
        } else {
            // Reject: restore and shrink the step.
            system.positions.clone_from(&best_positions);
            compute_forces(system, &mut forces);
            evaluations += 1;
            step *= 0.5;
            if step < 1e-7 {
                break;
            }
        }
    }
    let max_force = forces.iter().map(|f| f.norm()).fold(0.0, f64::max);
    MinimizeResult { e_initial, e_final: e, max_force, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::ForceField;
    use crate::pbc::Cell;
    use crate::sim::Simulator;
    use crate::topology::{push_water, Topology};

    fn strained_water_box() -> System {
        let mut topo = Topology::default();
        let mut pos = Vec::new();
        // Deliberately compressed lattice and distorted geometries.
        for i in 0..27 {
            let x = (i % 3) as f64 * 2.9 + 0.4;
            let y = ((i / 3) % 3) as f64 * 2.9 + 0.4;
            let z = (i / 9) as f64 * 2.9 + 0.4;
            push_water(&mut topo, 0, 1);
            pos.push(Vec3::new(x, y, z));
            pos.push(Vec3::new(x + 1.15, y, z)); // stretched O-H
            pos.push(Vec3::new(x - 0.1, y + 0.8, z)); // squeezed O-H
        }
        System::new(topo, ForceField::biomolecular(4.2), Cell::cube(8.7), pos)
    }

    #[test]
    fn minimization_lowers_energy_and_forces() {
        let mut sys = strained_water_box();
        let r = minimize(&mut sys, 300, 1.0);
        assert!(r.e_final < r.e_initial, "{} -> {}", r.e_initial, r.e_final);
        assert!(
            r.e_final < 0.5 * r.e_initial.abs().max(1.0) + r.e_initial,
            "insufficient relaxation: {} -> {}",
            r.e_initial,
            r.e_final
        );
        assert!(r.max_force < 60.0, "max force after minimization {}", r.max_force);
    }

    #[test]
    fn minimized_system_runs_stable_nve_at_1fs() {
        let mut sys = strained_water_box();
        minimize(&mut sys, 300, 1.0);
        sys.thermalize(150.0, 4);
        let mut sim = Simulator::new(&sys, 1.0);
        let energies = sim.run(&mut sys, 60);
        let e0 = energies[2].total();
        let e1 = energies.last().unwrap().total();
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 1e-2, "post-minimization drift {drift}");
    }

    #[test]
    fn converged_system_stops_early() {
        let mut sys = strained_water_box();
        minimize(&mut sys, 500, 1.0);
        // A second call with a loose tolerance should converge immediately.
        let r = minimize(&mut sys, 500, 100.0);
        assert!(r.evaluations <= 2, "used {} evaluations", r.evaluations);
        assert!((r.e_final - r.e_initial).abs() < 1e-9);
    }

    #[test]
    fn never_raises_the_energy() {
        let mut sys = strained_water_box();
        let e0 = {
            let mut f = vec![Vec3::ZERO; sys.n_atoms()];
            compute_forces(&sys, &mut f).potential()
        };
        for _ in 0..5 {
            let r = minimize(&mut sys, 40, 0.0);
            assert!(r.e_final <= e0 + 1e-9);
        }
    }
}
