//! Non-bonded (Lennard-Jones + electrostatic) pairwise force kernels.
//!
//! These kernels are the computational heart of the simulation — the paper
//! reports that non-bonded work makes up eighty percent or more of the total
//! computation. They are written to be callable both by the sequential
//! reference simulator and by the parallel engine's *compute objects*:
//! a *self* kernel for all pairs within one group of atoms, and a *pair*
//! kernel for all cross pairs between two groups (two neighbouring patches).
//!
//! Exclusion checking happens inside the kernel, exactly as the paper
//! describes ("these pairs must be detected as a part of the normal pairwise
//! force computation"), via sorted per-atom exclusion lists.

use crate::erf::{erfc, TWO_OVER_SQRT_PI};
use crate::forcefield::{units, ForceField};
use crate::pbc::Cell;
use crate::topology::{AtomId, ExclusionKind, Exclusions};
use crate::vec3::Vec3;

/// Approximate floating-point operations per evaluated atom pair inside the
/// cutoff. Used to produce GFLOPS ratings the same way the paper does
/// (hardware-counter op count per step / time per step); counted from the
/// kernel arithmetic below (distance 8, LJ 10, Coulomb+shift 12, switching 9,
/// force accumulation ~6).
pub const FLOPS_PER_PAIR: f64 = 45.0;

/// A borrowed, struct-of-arrays view of one group of atoms, as a patch hands
/// it to a compute object. Construct via [`AtomGroup::new`], which validates
/// that the parallel arrays agree in length — in every build profile, so a
/// release build can't silently index mismatched slices.
#[derive(Debug, Clone, Copy)]
pub struct AtomGroup<'a> {
    /// Positions, Å.
    pos: &'a [Vec3],
    /// Global atom ids (for exclusion lookup).
    ids: &'a [AtomId],
    /// LJ type per atom.
    lj: &'a [u16],
    /// Charge per atom, e.
    charge: &'a [f64],
}

impl<'a> AtomGroup<'a> {
    /// Package parallel per-atom arrays into a group. Panics if the slices
    /// disagree in length.
    pub fn new(pos: &'a [Vec3], ids: &'a [AtomId], lj: &'a [u16], charge: &'a [f64]) -> Self {
        assert_eq!(pos.len(), ids.len(), "AtomGroup: ids length mismatch");
        assert_eq!(pos.len(), lj.len(), "AtomGroup: lj length mismatch");
        assert_eq!(pos.len(), charge.len(), "AtomGroup: charge length mismatch");
        AtomGroup { pos, ids, lj, charge }
    }

    /// Number of atoms in the group.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when the group has no atoms.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Positions, Å.
    pub fn positions(&self) -> &'a [Vec3] {
        self.pos
    }

    /// Global atom ids.
    pub fn atom_ids(&self) -> &'a [AtomId] {
        self.ids
    }

    /// LJ type per atom.
    pub fn lj_types(&self) -> &'a [u16] {
        self.lj
    }

    /// Charge per atom, e.
    pub fn charges(&self) -> &'a [f64] {
        self.charge
    }
}

/// Result of a non-bonded kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NbResult {
    /// Lennard-Jones energy, kcal/mol.
    pub e_lj: f64,
    /// Electrostatic energy, kcal/mol.
    pub e_elec: f64,
    /// Number of pairs evaluated inside the cutoff (excluded pairs are
    /// detected but not counted — they do no force arithmetic).
    pub pairs: u64,
}

impl NbResult {
    /// Total non-bonded energy.
    pub fn energy(&self) -> f64 {
        self.e_lj + self.e_elec
    }

    /// Accumulate another result.
    pub fn add(&mut self, o: NbResult) {
        self.e_lj += o.e_lj;
        self.e_elec += o.e_elec;
        self.pairs += o.pairs;
    }
}

/// Evaluate one atom pair at squared distance `r2` (already known to be
/// inside the cutoff). Returns `(e_lj, e_elec, f_over_r)` where the force on
/// atom *i* is `f_over_r * (r_i - r_j)`.
#[inline]
fn eval_pair(ff: &ForceField, lj_a: f64, lj_b: f64, qq: f64, r2: f64, scale: f64) -> (f64, f64, f64) {
    let inv_r2 = 1.0 / r2;
    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
    let inv_r12 = inv_r6 * inv_r6;

    // Raw LJ energy and its derivative w.r.t. r².
    let e_lj_raw = lj_a * inv_r12 - lj_b * inv_r6;
    let de_lj_dr2 = (-6.0 * lj_a * inv_r12 + 3.0 * lj_b * inv_r6) * inv_r2;

    // Switching applied to LJ.
    let (sw, dsw_dr2) = ff.switching(r2);
    let e_lj = scale * sw * e_lj_raw;
    let de_lj = scale * (dsw_dr2 * e_lj_raw + sw * de_lj_dr2);

    let inv_r = inv_r2.sqrt();
    let (e_elec, de_elec) = match ff.ewald_beta {
        None => {
            // Coulomb with shifting (cutoff simulation).
            let e_c_raw = units::COULOMB * qq * inv_r;
            let de_c_dr2 = -0.5 * e_c_raw * inv_r2;
            let (sh, dsh_dr2) = ff.shifting(r2);
            (scale * sh * e_c_raw, scale * (dsh_dr2 * e_c_raw + sh * de_c_dr2))
        }
        Some(beta) => {
            // Ewald real-space: E = C·qq·erfc(βr)/r; 1-4 pairs keep full
            // electrostatics under Ewald (the scale applies to LJ above).
            let r = r2.sqrt();
            let c = units::COULOMB * qq;
            let e = c * erfc(beta * r) * inv_r;
            // dE/d(r²) = −½ [ erfc(βr)/r² + 2β/√π·e^{−β²r²}/r ] · C·qq / r ·r ...
            // derived: dE/dr = −C·qq·[erfc(βr)/r² + 2β/√π·e^{−β²r²}/r];
            // dE/d(r²) = dE/dr / (2r).
            let de_dr = -c * (erfc(beta * r) * inv_r2
                + beta * TWO_OVER_SQRT_PI * (-beta * beta * r2).exp() * inv_r);
            (e, de_dr / (2.0 * r))
        }
    };

    // F_i = -dE/dr · r̂ = -2 dE/d(r²) · (r_i - r_j).
    let f_over_r = -2.0 * (de_lj + de_elec);
    (e_lj, e_elec, f_over_r)
}

/// All-pairs non-bonded interactions *within* one atom group (the work of a
/// "self" compute object). `forces` must be the same length as the group and
/// is accumulated into. Pairs are ranged `lo..hi` over the outer index so
/// that a self compute can be *split* into several objects for grainsize
/// control (§4.2.1 of the paper): the union of `(0..k), (k..n)` ranges covers
/// exactly the full triangle.
pub fn nb_self_ranged(
    ff: &ForceField,
    ex: &Exclusions,
    g: AtomGroup,
    cell: &Cell,
    outer: std::ops::Range<usize>,
    forces: &mut [Vec3],
) -> NbResult {
    assert_eq!(forces.len(), g.len(), "forces buffer must match group size");
    let cutoff2 = ff.cutoff2();
    let mut res = NbResult::default();
    for i in outer {
        let pi = g.pos[i];
        let idi = g.ids[i];
        let qi = g.charge[i];
        let ti = g.lj[i];
        let mut fi = Vec3::ZERO;
        for j in (i + 1)..g.len() {
            let d = cell.min_image(pi, g.pos[j]);
            let r2 = d.norm2();
            if r2 >= cutoff2 {
                continue;
            }
            let scale = match ex.kind(idi, g.ids[j]) {
                ExclusionKind::Full => continue,
                ExclusionKind::Scaled14 => ff.scale14,
                ExclusionKind::None => 1.0,
            };
            let lj = ff.lj(ti, g.lj[j]);
            let (e_lj, e_el, fr) = eval_pair(ff, lj.a, lj.b, qi * g.charge[j], r2, scale);
            res.e_lj += e_lj;
            res.e_elec += e_el;
            res.pairs += 1;
            let f = d * fr;
            fi += f;
            forces[j] -= f;
        }
        forces[i] += fi;
    }
    res
}

/// Convenience wrapper: full self interaction (outer range = all atoms).
pub fn nb_self(
    ff: &ForceField,
    ex: &Exclusions,
    g: AtomGroup,
    cell: &Cell,
    forces: &mut [Vec3],
) -> NbResult {
    let n = g.len();
    nb_self_ranged(ff, ex, g, cell, 0..n, forces)
}

/// All cross-pair interactions between two disjoint atom groups (the work of
/// a "pair" compute object between two neighbouring patches). `fa`/`fb`
/// accumulate forces on groups `a`/`b` respectively. The outer loop over `a`
/// is ranged for grainsize splitting of face pairs.
pub fn nb_pair_ranged(
    ff: &ForceField,
    ex: &Exclusions,
    a: AtomGroup,
    b: AtomGroup,
    cell: &Cell,
    outer: std::ops::Range<usize>,
    fa: &mut [Vec3],
    fb: &mut [Vec3],
) -> NbResult {
    assert_eq!(fa.len(), a.len(), "fa buffer must match group a");
    assert_eq!(fb.len(), b.len(), "fb buffer must match group b");
    let cutoff2 = ff.cutoff2();
    let mut res = NbResult::default();
    for i in outer {
        let pi = a.pos[i];
        let idi = a.ids[i];
        let qi = a.charge[i];
        let ti = a.lj[i];
        let mut fi = Vec3::ZERO;
        for j in 0..b.len() {
            let d = cell.min_image(pi, b.pos[j]);
            let r2 = d.norm2();
            if r2 >= cutoff2 {
                continue;
            }
            let scale = match ex.kind(idi, b.ids[j]) {
                ExclusionKind::Full => continue,
                ExclusionKind::Scaled14 => ff.scale14,
                ExclusionKind::None => 1.0,
            };
            let lj = ff.lj(ti, b.lj[j]);
            let (e_lj, e_el, fr) = eval_pair(ff, lj.a, lj.b, qi * b.charge[j], r2, scale);
            res.e_lj += e_lj;
            res.e_elec += e_el;
            res.pairs += 1;
            let f = d * fr;
            fi += f;
            fb[j] -= f;
        }
        fa[i] += fi;
    }
    res
}

/// Convenience wrapper: full pair interaction.
pub fn nb_pair(
    ff: &ForceField,
    ex: &Exclusions,
    a: AtomGroup,
    b: AtomGroup,
    cell: &Cell,
    fa: &mut [Vec3],
    fb: &mut [Vec3],
) -> NbResult {
    let n = a.len();
    nb_pair_ranged(ff, ex, a, b, cell, 0..n, fa, fb)
}

/// Build the candidate list for a *self* compute: every unique pair inside
/// `radius` (normally `cutoff + margin`), as `(i, j)` slot indices with
/// `i < j`, outer index restricted to `outer` for grainsize-split computes.
/// Pairs are emitted in the exact order [`nb_self_ranged`] visits them, so
/// [`nb_self_listed`] over a fresh list reproduces the ranged kernel's
/// floating-point summation order bit for bit. `out` is cleared and reused —
/// no allocation once its capacity has grown to the working-set size.
pub fn self_candidates_into(
    g: AtomGroup,
    cell: &Cell,
    outer: std::ops::Range<usize>,
    radius: f64,
    out: &mut Vec<(u32, u32)>,
) {
    out.clear();
    let r2max = radius * radius;
    for i in outer {
        let pi = g.pos[i];
        for j in (i + 1)..g.len() {
            if cell.dist2(pi, g.pos[j]) < r2max {
                out.push((i as u32, j as u32));
            }
        }
    }
}

/// Build the candidate list for a *pair* compute: every cross pair between
/// groups `a` and `b` inside `radius`, as `(i in a, j in b)` slot indices,
/// in [`nb_pair_ranged`] visit order. See [`self_candidates_into`].
pub fn pair_candidates_into(
    a: AtomGroup,
    b: AtomGroup,
    cell: &Cell,
    outer: std::ops::Range<usize>,
    radius: f64,
    out: &mut Vec<(u32, u32)>,
) {
    out.clear();
    let r2max = radius * radius;
    for i in outer {
        let pi = a.pos[i];
        for j in 0..b.len() {
            if cell.dist2(pi, b.pos[j]) < r2max {
                out.push((i as u32, j as u32));
            }
        }
    }
}

/// Self-interaction kernel over a cached candidate list (slot-index pairs
/// from [`self_candidates_into`], grouped by ascending outer index). Each
/// pair still gets the exact `r² < cutoff²` test, so as long as the list
/// *covers* every within-cutoff pair — the margin guarantee — the result is
/// identical to [`nb_self_ranged`]: same pairs, same order, same per-atom
/// `fi` accumulator flush.
pub fn nb_self_listed(
    ff: &ForceField,
    ex: &Exclusions,
    g: AtomGroup,
    cell: &Cell,
    list: &[(u32, u32)],
    forces: &mut [Vec3],
) -> NbResult {
    assert_eq!(forces.len(), g.len(), "forces buffer must match group size");
    let cutoff2 = ff.cutoff2();
    let mut res = NbResult::default();
    let mut k = 0;
    while k < list.len() {
        let i = list[k].0 as usize;
        let pi = g.pos[i];
        let idi = g.ids[i];
        let qi = g.charge[i];
        let ti = g.lj[i];
        let mut fi = Vec3::ZERO;
        while k < list.len() && list[k].0 as usize == i {
            let j = list[k].1 as usize;
            k += 1;
            let d = cell.min_image(pi, g.pos[j]);
            let r2 = d.norm2();
            if r2 >= cutoff2 {
                continue;
            }
            let scale = match ex.kind(idi, g.ids[j]) {
                ExclusionKind::Full => continue,
                ExclusionKind::Scaled14 => ff.scale14,
                ExclusionKind::None => 1.0,
            };
            let lj = ff.lj(ti, g.lj[j]);
            let (e_lj, e_el, fr) = eval_pair(ff, lj.a, lj.b, qi * g.charge[j], r2, scale);
            res.e_lj += e_lj;
            res.e_elec += e_el;
            res.pairs += 1;
            let f = d * fr;
            fi += f;
            forces[j] -= f;
        }
        forces[i] += fi;
    }
    res
}

/// Cross-pair kernel over a cached candidate list (slot-index pairs from
/// [`pair_candidates_into`]). Identical to [`nb_pair_ranged`] whenever the
/// list covers every within-cutoff cross pair; see [`nb_self_listed`].
#[allow(clippy::too_many_arguments)]
pub fn nb_pair_listed(
    ff: &ForceField,
    ex: &Exclusions,
    a: AtomGroup,
    b: AtomGroup,
    cell: &Cell,
    list: &[(u32, u32)],
    fa: &mut [Vec3],
    fb: &mut [Vec3],
) -> NbResult {
    assert_eq!(fa.len(), a.len(), "fa buffer must match group a");
    assert_eq!(fb.len(), b.len(), "fb buffer must match group b");
    let cutoff2 = ff.cutoff2();
    let mut res = NbResult::default();
    let mut k = 0;
    while k < list.len() {
        let i = list[k].0 as usize;
        let pi = a.pos[i];
        let idi = a.ids[i];
        let qi = a.charge[i];
        let ti = a.lj[i];
        let mut fi = Vec3::ZERO;
        while k < list.len() && list[k].0 as usize == i {
            let j = list[k].1 as usize;
            k += 1;
            let d = cell.min_image(pi, b.pos[j]);
            let r2 = d.norm2();
            if r2 >= cutoff2 {
                continue;
            }
            let scale = match ex.kind(idi, b.ids[j]) {
                ExclusionKind::Full => continue,
                ExclusionKind::Scaled14 => ff.scale14,
                ExclusionKind::None => 1.0,
            };
            let lj = ff.lj(ti, b.lj[j]);
            let (e_lj, e_el, fr) = eval_pair(ff, lj.a, lj.b, qi * b.charge[j], r2, scale);
            res.e_lj += e_lj;
            res.e_elec += e_el;
            res.pairs += 1;
            let f = d * fr;
            fi += f;
            fb[j] -= f;
        }
        fa[i] += fi;
    }
    res
}

/// Evaluate non-bonded interactions over an explicit pair list (as produced
/// by [`crate::celllist::CellList::neighbor_pairs`]). Atom arrays are indexed
/// by global atom id. Used by the sequential reference simulator.
pub fn nb_pairlist(
    ff: &ForceField,
    ex: &Exclusions,
    pos: &[Vec3],
    lj: &[u16],
    charge: &[f64],
    pairs: &[(u32, u32)],
    cell: &Cell,
    forces: &mut [Vec3],
) -> NbResult {
    let cutoff2 = ff.cutoff2();
    let mut res = NbResult::default();
    for &(i, j) in pairs {
        let (i, j) = (i as usize, j as usize);
        let d = cell.min_image(pos[i], pos[j]);
        let r2 = d.norm2();
        if r2 >= cutoff2 {
            continue;
        }
        let scale = match ex.kind(i as AtomId, j as AtomId) {
            ExclusionKind::Full => continue,
            ExclusionKind::Scaled14 => ff.scale14,
            ExclusionKind::None => 1.0,
        };
        let ljp = ff.lj(lj[i], lj[j]);
        let (e_lj, e_el, fr) = eval_pair(ff, ljp.a, ljp.b, charge[i] * charge[j], r2, scale);
        res.e_lj += e_lj;
        res.e_elec += e_el;
        res.pairs += 1;
        let f = d * fr;
        forces[i] += f;
        forces[j] -= f;
    }
    res
}

/// Count cross pairs inside the cutoff between two groups without computing
/// forces — used by the parallel engine's cost model to size compute objects.
pub fn count_pairs(a: AtomGroup, b: AtomGroup, cell: &Cell, cutoff: f64) -> u64 {
    let cutoff2 = cutoff * cutoff;
    let mut n = 0;
    for i in 0..a.len() {
        for j in 0..b.len() {
            if cell.dist2(a.pos[i], b.pos[j]) < cutoff2 {
                n += 1;
            }
        }
    }
    n
}

/// Count unique pairs inside the cutoff within one group.
pub fn count_self_pairs(g: AtomGroup, cell: &Cell, cutoff: f64) -> u64 {
    let cutoff2 = cutoff * cutoff;
    let mut n = 0;
    for i in 0..g.len() {
        for j in (i + 1)..g.len() {
            if cell.dist2(g.pos[i], g.pos[j]) < cutoff2 {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Atom, Bond, Topology};

    fn two_atom_setup(r: f64) -> (ForceField, Exclusions, Vec<Vec3>, Vec<AtomId>, Vec<u16>, Vec<f64>) {
        let ff = ForceField::biomolecular(12.0);
        let ex = Exclusions::none(2);
        let pos = vec![Vec3::ZERO, Vec3::new(r, 0.0, 0.0)];
        (ff, ex, pos, vec![0, 1], vec![0, 0], vec![-0.5, 0.5])
    }

    fn group<'a>(
        pos: &'a [Vec3],
        ids: &'a [AtomId],
        lj: &'a [u16],
        q: &'a [f64],
    ) -> AtomGroup<'a> {
        AtomGroup::new(pos, ids, lj, q)
    }

    /// Deterministic scatter of `n` atoms with mixed charges in a box of the
    /// given side, plus ids/lj/charge arrays.
    fn scatter(n: usize, side: f64) -> (Vec<Vec3>, Vec<AtomId>, Vec<u16>, Vec<f64>) {
        let pos: Vec<Vec3> = (0..n)
            .map(|i| {
                let x = (i as f64 * 7.13 + 0.31) % side;
                let y = (i as f64 * 3.77 + 1.07) % side;
                let z = (i as f64 * 5.41 + 2.03) % side;
                Vec3::new(x, y, z)
            })
            .collect();
        let ids: Vec<AtomId> = (0..n as u32).collect();
        let lj = vec![0u16; n];
        let q: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.3 } else { -0.3 }).collect();
        (pos, ids, lj, q)
    }

    #[test]
    fn newtons_third_law_self() {
        let (ff, ex, pos, ids, lj, q) = two_atom_setup(3.1);
        let cell = Cell::cube(50.0);
        let mut f = vec![Vec3::ZERO; 2];
        let r = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
        assert_eq!(r.pairs, 1);
        assert!((f[0] + f[1]).norm() < 1e-12, "forces must cancel: {f:?}");
        assert!(f[0].norm() > 0.0);
    }

    #[test]
    fn force_is_minus_gradient() {
        // Finite-difference check across representative separations,
        // including inside the switching region.
        let cell = Cell::cube(100.0);
        for r in [2.8, 3.5, 5.0, 9.0, 10.5, 11.5] {
            let (ff, ex, _, ids, lj, q) = two_atom_setup(r);
            let energy = |x: f64| {
                let pos = vec![Vec3::ZERO, Vec3::new(x, 0.0, 0.0)];
                let mut f = vec![Vec3::ZERO; 2];
                nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f).energy()
            };
            let h = 1e-6;
            let fd = -(energy(r + h) - energy(r - h)) / (2.0 * h); // force on atom1 along +x
            let pos = vec![Vec3::ZERO, Vec3::new(r, 0.0, 0.0)];
            let mut f = vec![Vec3::ZERO; 2];
            nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
            let analytic = f[1].x;
            let tol = 1e-5 * (1.0 + fd.abs());
            assert!(
                (fd - analytic).abs() < tol,
                "r={r}: finite-diff {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn energy_and_force_vanish_at_cutoff() {
        let (ff, ex, _, ids, lj, q) = two_atom_setup(0.0);
        let cell = Cell::cube(100.0);
        let pos = vec![Vec3::ZERO, Vec3::new(11.999999, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let r = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
        assert!(r.energy().abs() < 1e-6, "energy at cutoff: {}", r.energy());
        assert!(f[1].norm() < 1e-4, "force at cutoff: {:?}", f[1]);

        let pos2 = vec![Vec3::ZERO, Vec3::new(12.000001, 0.0, 0.0)];
        let mut f2 = vec![Vec3::ZERO; 2];
        let r2 = nb_self(&ff, &ex, group(&pos2, &ids, &lj, &q), &cell, &mut f2);
        assert_eq!(r2.pairs, 0);
        assert_eq!(r2.energy(), 0.0);
    }

    #[test]
    fn excluded_pair_contributes_nothing() {
        let mut topo = Topology::default();
        topo.atoms = vec![
            Atom { mass: 12.0, charge: -0.5, lj_type: 0 },
            Atom { mass: 12.0, charge: 0.5, lj_type: 0 },
        ];
        topo.bonds.push(Bond { a: 0, b: 1, k: 300.0, r0: 1.5 });
        let ex = Exclusions::from_topology(&topo);
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(50.0);
        let pos = vec![Vec3::ZERO, Vec3::new(1.5, 0.0, 0.0)];
        let ids = vec![0, 1];
        let lj = vec![0, 0];
        let q = vec![-0.5, 0.5];
        let mut f = vec![Vec3::ZERO; 2];
        let r = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
        assert_eq!(r.pairs, 0);
        assert_eq!(r.energy(), 0.0);
        assert_eq!(f[0], Vec3::ZERO);
    }

    #[test]
    fn scaled14_is_scaled() {
        // Chain 0-1-2-3: pair (0,3) is 1-4.
        let mut topo = Topology::default();
        topo.atoms = vec![Atom { mass: 12.0, charge: 0.3, lj_type: 0 }; 4];
        for i in 0..3u32 {
            topo.bonds.push(Bond { a: i, b: i + 1, k: 300.0, r0: 1.5 });
        }
        let ex = Exclusions::from_topology(&topo);
        let mut ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(100.0);
        // Place only atoms 0 and 3 near each other; 1,2 far away on open axis.
        let pos = vec![
            Vec3::ZERO,
            Vec3::new(30.0, 0.0, 0.0),
            Vec3::new(30.0, 30.0, 0.0),
            Vec3::new(4.0, 0.0, 0.0),
        ];
        let ids: Vec<AtomId> = (0..4).collect();
        let lj = vec![0u16; 4];
        let q = vec![0.3; 4];
        let mut f = vec![Vec3::ZERO; 4];
        let scaled = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
        assert_eq!(scaled.pairs, 1);

        // With scale14 = 1.0 the energy should be 1/scale14 times larger.
        ff.scale14 = 1.0;
        let mut f1 = vec![Vec3::ZERO; 4];
        let unscaled = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f1);
        assert!(
            (scaled.energy() - 0.5 * unscaled.energy()).abs() < 1e-12,
            "scaled {} vs unscaled {}",
            scaled.energy(),
            unscaled.energy()
        );
    }

    #[test]
    fn pair_kernel_matches_self_kernel_decomposition() {
        // Self interaction of a combined group == self(A) + self(B) + pair(A,B).
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(40.0);
        let n = 20;
        // Deterministic pseudo-random positions.
        let pos: Vec<Vec3> = (0..n)
            .map(|i| {
                let x = (i as f64 * 7.13) % 20.0;
                let y = (i as f64 * 3.77 + 1.0) % 20.0;
                let z = (i as f64 * 5.41 + 2.0) % 20.0;
                Vec3::new(x, y, z)
            })
            .collect();
        let ids: Vec<AtomId> = (0..n as u32).collect();
        let lj = vec![0u16; n];
        let q: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.3 } else { -0.3 }).collect();
        let ex = Exclusions::none(n);

        let mut f_all = vec![Vec3::ZERO; n];
        let all = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f_all);

        let k = 8;
        let (pa, pb) = pos.split_at(k);
        let (ia, ib) = ids.split_at(k);
        let (la, lbt) = lj.split_at(k);
        let (qa, qb) = q.split_at(k);
        let ga = group(pa, ia, la, qa);
        let gb = group(pb, ib, lbt, qb);
        let mut fa = vec![Vec3::ZERO; k];
        let mut fb = vec![Vec3::ZERO; n - k];
        let mut total = NbResult::default();
        total.add(nb_self(&ff, &ex, ga, &cell, &mut fa));
        total.add(nb_self(&ff, &ex, gb, &cell, &mut fb));
        total.add(nb_pair(&ff, &ex, ga, gb, &cell, &mut fa, &mut fb));

        assert_eq!(total.pairs, all.pairs);
        assert!((total.energy() - all.energy()).abs() < 1e-9);
        for i in 0..k {
            assert!((fa[i] - f_all[i]).norm() < 1e-9);
        }
        for j in 0..n - k {
            assert!((fb[j] - f_all[k + j]).norm() < 1e-9);
        }
    }

    #[test]
    fn ranged_self_partitions_cover_triangle() {
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(30.0);
        let n = 15;
        let pos: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new((i as f64 * 2.3) % 15.0, (i as f64 * 1.7) % 15.0, 0.0))
            .collect();
        let ids: Vec<AtomId> = (0..n as u32).collect();
        let lj = vec![0u16; n];
        let q = vec![0.1; n];
        let ex = Exclusions::none(n);
        let g = group(&pos, &ids, &lj, &q);

        let mut f_full = vec![Vec3::ZERO; n];
        let full = nb_self(&ff, &ex, g, &cell, &mut f_full);

        let mut f_split = vec![Vec3::ZERO; n];
        let mut acc = NbResult::default();
        for range in [0..5, 5..11, 11..n] {
            acc.add(nb_self_ranged(&ff, &ex, g, &cell, range, &mut f_split));
        }
        assert_eq!(acc.pairs, full.pairs);
        assert!((acc.energy() - full.energy()).abs() < 1e-10);
        for i in 0..n {
            assert!((f_split[i] - f_full[i]).norm() < 1e-10);
        }
    }

    #[test]
    fn pair_counting_matches_kernel() {
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(30.0);
        let n = 12;
        let pos: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new((i as f64 * 4.1) % 25.0, (i as f64 * 2.9) % 25.0, 1.0))
            .collect();
        let ids: Vec<AtomId> = (0..n as u32).collect();
        let lj = vec![0u16; n];
        let q = vec![0.0; n];
        let ex = Exclusions::none(n);
        let g = group(&pos, &ids, &lj, &q);
        let mut f = vec![Vec3::ZERO; n];
        let r = nb_self(&ff, &ex, g, &cell, &mut f);
        assert_eq!(r.pairs, count_self_pairs(g, &cell, ff.cutoff));
    }

    #[test]
    fn minimum_image_interaction_across_boundary() {
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(20.0);
        // Atoms at opposite faces, 4 Å apart through the boundary — past the
        // LJ minimum (~3.5 Å for type 0), so opposite charges attract.
        let pos = vec![Vec3::new(0.5, 0.0, 0.0), Vec3::new(16.5, 0.0, 0.0)];
        let ids = vec![0, 1];
        let lj = vec![0u16, 0];
        let q = vec![0.2, -0.2];
        let ex = Exclusions::none(2);
        let mut f = vec![Vec3::ZERO; 2];
        let r = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
        assert_eq!(r.pairs, 1);
        // Opposite charges 2 Å apart attract: force on atom0 points toward
        // the boundary (negative x).
        assert!(f[0].x < 0.0, "expected attraction across boundary, f0={:?}", f[0]);
    }

    #[test]
    fn listed_self_kernel_is_bit_identical_to_ranged_on_fresh_list() {
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(26.0);
        let n = 40;
        let (pos, ids, lj, q) = scatter(n, 26.0);
        let ex = Exclusions::none(n);
        let g = group(&pos, &ids, &lj, &q);

        for margin in [0.0, 2.0] {
            let mut list = Vec::new();
            self_candidates_into(g, &cell, 0..n, ff.cutoff + margin, &mut list);
            let mut f_ranged = vec![Vec3::ZERO; n];
            let r_ranged = nb_self_ranged(&ff, &ex, g, &cell, 0..n, &mut f_ranged);
            let mut f_listed = vec![Vec3::ZERO; n];
            let r_listed = nb_self_listed(&ff, &ex, g, &cell, &list, &mut f_listed);
            // Same pairs in the same order: bit-identical, not just close.
            assert_eq!(r_listed.pairs, r_ranged.pairs);
            assert_eq!(r_listed.e_lj.to_bits(), r_ranged.e_lj.to_bits(), "margin {margin}");
            assert_eq!(r_listed.e_elec.to_bits(), r_ranged.e_elec.to_bits());
            for i in 0..n {
                assert_eq!(f_listed[i], f_ranged[i], "atom {i}, margin {margin}");
            }
        }
    }

    #[test]
    fn listed_pair_kernel_is_bit_identical_to_ranged_on_fresh_list() {
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(26.0);
        let n = 36;
        let (pos, ids, lj, q) = scatter(n, 26.0);
        let ex = Exclusions::none(n);
        let k = 15;
        let ga = group(&pos[..k], &ids[..k], &lj[..k], &q[..k]);
        let gb = group(&pos[k..], &ids[k..], &lj[k..], &q[k..]);

        let mut list = Vec::new();
        pair_candidates_into(ga, gb, &cell, 0..k, ff.cutoff + 2.0, &mut list);
        let mut fa_r = vec![Vec3::ZERO; k];
        let mut fb_r = vec![Vec3::ZERO; n - k];
        let r_ranged = nb_pair_ranged(&ff, &ex, ga, gb, &cell, 0..k, &mut fa_r, &mut fb_r);
        let mut fa_l = vec![Vec3::ZERO; k];
        let mut fb_l = vec![Vec3::ZERO; n - k];
        let r_listed = nb_pair_listed(&ff, &ex, ga, gb, &cell, &list, &mut fa_l, &mut fb_l);
        assert_eq!(r_listed.pairs, r_ranged.pairs);
        assert_eq!(r_listed.e_lj.to_bits(), r_ranged.e_lj.to_bits());
        assert_eq!(r_listed.e_elec.to_bits(), r_ranged.e_elec.to_bits());
        for i in 0..k {
            assert_eq!(fa_l[i], fa_r[i], "group a atom {i}");
        }
        for j in 0..n - k {
            assert_eq!(fb_l[j], fb_r[j], "group b atom {j}");
        }
    }

    #[test]
    fn listed_kernel_stays_exact_while_displacements_fit_in_margin() {
        // Build a list at cutoff + margin, then move every atom by less than
        // margin/2 — the stale list must still cover every within-cutoff pair,
        // so the listed kernel keeps matching a fresh ranged evaluation.
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(26.0);
        let n = 40;
        let margin = 2.0;
        let (mut pos, ids, lj, q) = scatter(n, 26.0);
        let ex = Exclusions::none(n);
        let mut list = Vec::new();
        self_candidates_into(group(&pos, &ids, &lj, &q), &cell, 0..n, ff.cutoff + margin, &mut list);

        for (i, p) in pos.iter_mut().enumerate() {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            // |Δ| = √(0.36+0.16+0.09) ≈ 0.78 Å < margin/2 = 1.0 Å.
            *p += Vec3::new(0.6 * s, -0.4 * s, 0.3 * s);
        }
        let g = group(&pos, &ids, &lj, &q);
        let mut f_ranged = vec![Vec3::ZERO; n];
        let r_ranged = nb_self_ranged(&ff, &ex, g, &cell, 0..n, &mut f_ranged);
        let mut f_listed = vec![Vec3::ZERO; n];
        let r_listed = nb_self_listed(&ff, &ex, g, &cell, &list, &mut f_listed);
        assert_eq!(r_listed.pairs, r_ranged.pairs);
        assert!((r_listed.energy() - r_ranged.energy()).abs() < 1e-12);
        for i in 0..n {
            assert!((f_listed[i] - f_ranged[i]).norm() < 1e-12, "atom {i}");
        }
    }

    #[test]
    fn candidate_builders_respect_outer_ranges() {
        // Split outer ranges must tile the same candidate set as one full
        // range, in the same global order when concatenated.
        let cell = Cell::cube(26.0);
        let n = 30;
        let (pos, ids, lj, q) = scatter(n, 26.0);
        let g = group(&pos, &ids, &lj, &q);
        let mut full = Vec::new();
        self_candidates_into(g, &cell, 0..n, 14.0, &mut full);
        let mut tiled = Vec::new();
        let mut part = Vec::new();
        for range in [0..9, 9..21, 21..n] {
            self_candidates_into(g, &cell, range, 14.0, &mut part);
            tiled.extend_from_slice(&part);
        }
        assert_eq!(tiled, full);
    }
}
