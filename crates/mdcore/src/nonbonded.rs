//! Non-bonded (Lennard-Jones + electrostatic) pairwise force kernels.
//!
//! These kernels are the computational heart of the simulation — the paper
//! reports that non-bonded work makes up eighty percent or more of the total
//! computation. They are written to be callable both by the sequential
//! reference simulator and by the parallel engine's *compute objects*:
//! a *self* kernel for all pairs within one group of atoms, and a *pair*
//! kernel for all cross pairs between two groups (two neighbouring patches).
//!
//! Exclusion checking happens inside the kernel, exactly as the paper
//! describes ("these pairs must be detected as a part of the normal pairwise
//! force computation"), via sorted per-atom exclusion lists.

use crate::erf::{erfc, TWO_OVER_SQRT_PI};
use crate::forcefield::{units, ForceField};
use crate::pbc::Cell;
use crate::topology::{AtomId, ExclusionKind, Exclusions};
use crate::vec3::Vec3;

/// Approximate floating-point operations per evaluated atom pair inside the
/// cutoff. Used to produce GFLOPS ratings the same way the paper does
/// (hardware-counter op count per step / time per step); counted from the
/// kernel arithmetic below (distance 8, LJ 10, Coulomb+shift 12, switching 9,
/// force accumulation ~6).
pub const FLOPS_PER_PAIR: f64 = 45.0;

/// A borrowed, struct-of-arrays view of one group of atoms, as a patch hands
/// it to a compute object.
#[derive(Debug, Clone, Copy)]
pub struct AtomGroup<'a> {
    /// Positions, Å.
    pub pos: &'a [Vec3],
    /// Global atom ids (for exclusion lookup).
    pub ids: &'a [AtomId],
    /// LJ type per atom.
    pub lj: &'a [u16],
    /// Charge per atom, e.
    pub charge: &'a [f64],
}

impl<'a> AtomGroup<'a> {
    /// Number of atoms in the group. Panics in debug builds if the parallel
    /// arrays disagree.
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.pos.len(), self.ids.len());
        debug_assert_eq!(self.pos.len(), self.lj.len());
        debug_assert_eq!(self.pos.len(), self.charge.len());
        self.pos.len()
    }

    /// True when the group has no atoms.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

/// Result of a non-bonded kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NbResult {
    /// Lennard-Jones energy, kcal/mol.
    pub e_lj: f64,
    /// Electrostatic energy, kcal/mol.
    pub e_elec: f64,
    /// Number of pairs evaluated inside the cutoff (excluded pairs are
    /// detected but not counted — they do no force arithmetic).
    pub pairs: u64,
}

impl NbResult {
    /// Total non-bonded energy.
    pub fn energy(&self) -> f64 {
        self.e_lj + self.e_elec
    }

    /// Accumulate another result.
    pub fn add(&mut self, o: NbResult) {
        self.e_lj += o.e_lj;
        self.e_elec += o.e_elec;
        self.pairs += o.pairs;
    }
}

/// Evaluate one atom pair at squared distance `r2` (already known to be
/// inside the cutoff). Returns `(e_lj, e_elec, f_over_r)` where the force on
/// atom *i* is `f_over_r * (r_i - r_j)`.
#[inline]
fn eval_pair(ff: &ForceField, lj_a: f64, lj_b: f64, qq: f64, r2: f64, scale: f64) -> (f64, f64, f64) {
    let inv_r2 = 1.0 / r2;
    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
    let inv_r12 = inv_r6 * inv_r6;

    // Raw LJ energy and its derivative w.r.t. r².
    let e_lj_raw = lj_a * inv_r12 - lj_b * inv_r6;
    let de_lj_dr2 = (-6.0 * lj_a * inv_r12 + 3.0 * lj_b * inv_r6) * inv_r2;

    // Switching applied to LJ.
    let (sw, dsw_dr2) = ff.switching(r2);
    let e_lj = scale * sw * e_lj_raw;
    let de_lj = scale * (dsw_dr2 * e_lj_raw + sw * de_lj_dr2);

    let inv_r = inv_r2.sqrt();
    let (e_elec, de_elec) = match ff.ewald_beta {
        None => {
            // Coulomb with shifting (cutoff simulation).
            let e_c_raw = units::COULOMB * qq * inv_r;
            let de_c_dr2 = -0.5 * e_c_raw * inv_r2;
            let (sh, dsh_dr2) = ff.shifting(r2);
            (scale * sh * e_c_raw, scale * (dsh_dr2 * e_c_raw + sh * de_c_dr2))
        }
        Some(beta) => {
            // Ewald real-space: E = C·qq·erfc(βr)/r; 1-4 pairs keep full
            // electrostatics under Ewald (the scale applies to LJ above).
            let r = r2.sqrt();
            let c = units::COULOMB * qq;
            let e = c * erfc(beta * r) * inv_r;
            // dE/d(r²) = −½ [ erfc(βr)/r² + 2β/√π·e^{−β²r²}/r ] · C·qq / r ·r ...
            // derived: dE/dr = −C·qq·[erfc(βr)/r² + 2β/√π·e^{−β²r²}/r];
            // dE/d(r²) = dE/dr / (2r).
            let de_dr = -c * (erfc(beta * r) * inv_r2
                + beta * TWO_OVER_SQRT_PI * (-beta * beta * r2).exp() * inv_r);
            (e, de_dr / (2.0 * r))
        }
    };

    // F_i = -dE/dr · r̂ = -2 dE/d(r²) · (r_i - r_j).
    let f_over_r = -2.0 * (de_lj + de_elec);
    (e_lj, e_elec, f_over_r)
}

/// All-pairs non-bonded interactions *within* one atom group (the work of a
/// "self" compute object). `forces` must be the same length as the group and
/// is accumulated into. Pairs are ranged `lo..hi` over the outer index so
/// that a self compute can be *split* into several objects for grainsize
/// control (§4.2.1 of the paper): the union of `(0..k), (k..n)` ranges covers
/// exactly the full triangle.
pub fn nb_self_ranged(
    ff: &ForceField,
    ex: &Exclusions,
    g: AtomGroup,
    cell: &Cell,
    outer: std::ops::Range<usize>,
    forces: &mut [Vec3],
) -> NbResult {
    assert_eq!(forces.len(), g.len(), "forces buffer must match group size");
    let cutoff2 = ff.cutoff2();
    let mut res = NbResult::default();
    for i in outer {
        let pi = g.pos[i];
        let idi = g.ids[i];
        let qi = g.charge[i];
        let ti = g.lj[i];
        let mut fi = Vec3::ZERO;
        for j in (i + 1)..g.len() {
            let d = cell.min_image(pi, g.pos[j]);
            let r2 = d.norm2();
            if r2 >= cutoff2 {
                continue;
            }
            let scale = match ex.kind(idi, g.ids[j]) {
                ExclusionKind::Full => continue,
                ExclusionKind::Scaled14 => ff.scale14,
                ExclusionKind::None => 1.0,
            };
            let lj = ff.lj(ti, g.lj[j]);
            let (e_lj, e_el, fr) = eval_pair(ff, lj.a, lj.b, qi * g.charge[j], r2, scale);
            res.e_lj += e_lj;
            res.e_elec += e_el;
            res.pairs += 1;
            let f = d * fr;
            fi += f;
            forces[j] -= f;
        }
        forces[i] += fi;
    }
    res
}

/// Convenience wrapper: full self interaction (outer range = all atoms).
pub fn nb_self(
    ff: &ForceField,
    ex: &Exclusions,
    g: AtomGroup,
    cell: &Cell,
    forces: &mut [Vec3],
) -> NbResult {
    let n = g.len();
    nb_self_ranged(ff, ex, g, cell, 0..n, forces)
}

/// All cross-pair interactions between two disjoint atom groups (the work of
/// a "pair" compute object between two neighbouring patches). `fa`/`fb`
/// accumulate forces on groups `a`/`b` respectively. The outer loop over `a`
/// is ranged for grainsize splitting of face pairs.
pub fn nb_pair_ranged(
    ff: &ForceField,
    ex: &Exclusions,
    a: AtomGroup,
    b: AtomGroup,
    cell: &Cell,
    outer: std::ops::Range<usize>,
    fa: &mut [Vec3],
    fb: &mut [Vec3],
) -> NbResult {
    assert_eq!(fa.len(), a.len(), "fa buffer must match group a");
    assert_eq!(fb.len(), b.len(), "fb buffer must match group b");
    let cutoff2 = ff.cutoff2();
    let mut res = NbResult::default();
    for i in outer {
        let pi = a.pos[i];
        let idi = a.ids[i];
        let qi = a.charge[i];
        let ti = a.lj[i];
        let mut fi = Vec3::ZERO;
        for j in 0..b.len() {
            let d = cell.min_image(pi, b.pos[j]);
            let r2 = d.norm2();
            if r2 >= cutoff2 {
                continue;
            }
            let scale = match ex.kind(idi, b.ids[j]) {
                ExclusionKind::Full => continue,
                ExclusionKind::Scaled14 => ff.scale14,
                ExclusionKind::None => 1.0,
            };
            let lj = ff.lj(ti, b.lj[j]);
            let (e_lj, e_el, fr) = eval_pair(ff, lj.a, lj.b, qi * b.charge[j], r2, scale);
            res.e_lj += e_lj;
            res.e_elec += e_el;
            res.pairs += 1;
            let f = d * fr;
            fi += f;
            fb[j] -= f;
        }
        fa[i] += fi;
    }
    res
}

/// Convenience wrapper: full pair interaction.
pub fn nb_pair(
    ff: &ForceField,
    ex: &Exclusions,
    a: AtomGroup,
    b: AtomGroup,
    cell: &Cell,
    fa: &mut [Vec3],
    fb: &mut [Vec3],
) -> NbResult {
    let n = a.len();
    nb_pair_ranged(ff, ex, a, b, cell, 0..n, fa, fb)
}

/// Evaluate non-bonded interactions over an explicit pair list (as produced
/// by [`crate::celllist::CellList::neighbor_pairs`]). Atom arrays are indexed
/// by global atom id. Used by the sequential reference simulator.
pub fn nb_pairlist(
    ff: &ForceField,
    ex: &Exclusions,
    pos: &[Vec3],
    lj: &[u16],
    charge: &[f64],
    pairs: &[(u32, u32)],
    cell: &Cell,
    forces: &mut [Vec3],
) -> NbResult {
    let cutoff2 = ff.cutoff2();
    let mut res = NbResult::default();
    for &(i, j) in pairs {
        let (i, j) = (i as usize, j as usize);
        let d = cell.min_image(pos[i], pos[j]);
        let r2 = d.norm2();
        if r2 >= cutoff2 {
            continue;
        }
        let scale = match ex.kind(i as AtomId, j as AtomId) {
            ExclusionKind::Full => continue,
            ExclusionKind::Scaled14 => ff.scale14,
            ExclusionKind::None => 1.0,
        };
        let ljp = ff.lj(lj[i], lj[j]);
        let (e_lj, e_el, fr) = eval_pair(ff, ljp.a, ljp.b, charge[i] * charge[j], r2, scale);
        res.e_lj += e_lj;
        res.e_elec += e_el;
        res.pairs += 1;
        let f = d * fr;
        forces[i] += f;
        forces[j] -= f;
    }
    res
}

/// Count cross pairs inside the cutoff between two groups without computing
/// forces — used by the parallel engine's cost model to size compute objects.
pub fn count_pairs(a: AtomGroup, b: AtomGroup, cell: &Cell, cutoff: f64) -> u64 {
    let cutoff2 = cutoff * cutoff;
    let mut n = 0;
    for i in 0..a.len() {
        for j in 0..b.len() {
            if cell.dist2(a.pos[i], b.pos[j]) < cutoff2 {
                n += 1;
            }
        }
    }
    n
}

/// Count unique pairs inside the cutoff within one group.
pub fn count_self_pairs(g: AtomGroup, cell: &Cell, cutoff: f64) -> u64 {
    let cutoff2 = cutoff * cutoff;
    let mut n = 0;
    for i in 0..g.len() {
        for j in (i + 1)..g.len() {
            if cell.dist2(g.pos[i], g.pos[j]) < cutoff2 {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Atom, Bond, Topology};

    fn two_atom_setup(r: f64) -> (ForceField, Exclusions, Vec<Vec3>, Vec<AtomId>, Vec<u16>, Vec<f64>) {
        let ff = ForceField::biomolecular(12.0);
        let ex = Exclusions::none(2);
        let pos = vec![Vec3::ZERO, Vec3::new(r, 0.0, 0.0)];
        (ff, ex, pos, vec![0, 1], vec![0, 0], vec![-0.5, 0.5])
    }

    fn group<'a>(
        pos: &'a [Vec3],
        ids: &'a [AtomId],
        lj: &'a [u16],
        q: &'a [f64],
    ) -> AtomGroup<'a> {
        AtomGroup { pos, ids, lj, charge: q }
    }

    #[test]
    fn newtons_third_law_self() {
        let (ff, ex, pos, ids, lj, q) = two_atom_setup(3.1);
        let cell = Cell::cube(50.0);
        let mut f = vec![Vec3::ZERO; 2];
        let r = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
        assert_eq!(r.pairs, 1);
        assert!((f[0] + f[1]).norm() < 1e-12, "forces must cancel: {f:?}");
        assert!(f[0].norm() > 0.0);
    }

    #[test]
    fn force_is_minus_gradient() {
        // Finite-difference check across representative separations,
        // including inside the switching region.
        let cell = Cell::cube(100.0);
        for r in [2.8, 3.5, 5.0, 9.0, 10.5, 11.5] {
            let (ff, ex, _, ids, lj, q) = two_atom_setup(r);
            let energy = |x: f64| {
                let pos = vec![Vec3::ZERO, Vec3::new(x, 0.0, 0.0)];
                let mut f = vec![Vec3::ZERO; 2];
                nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f).energy()
            };
            let h = 1e-6;
            let fd = -(energy(r + h) - energy(r - h)) / (2.0 * h); // force on atom1 along +x
            let pos = vec![Vec3::ZERO, Vec3::new(r, 0.0, 0.0)];
            let mut f = vec![Vec3::ZERO; 2];
            nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
            let analytic = f[1].x;
            let tol = 1e-5 * (1.0 + fd.abs());
            assert!(
                (fd - analytic).abs() < tol,
                "r={r}: finite-diff {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn energy_and_force_vanish_at_cutoff() {
        let (ff, ex, _, ids, lj, q) = two_atom_setup(0.0);
        let cell = Cell::cube(100.0);
        let pos = vec![Vec3::ZERO, Vec3::new(11.999999, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let r = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
        assert!(r.energy().abs() < 1e-6, "energy at cutoff: {}", r.energy());
        assert!(f[1].norm() < 1e-4, "force at cutoff: {:?}", f[1]);

        let pos2 = vec![Vec3::ZERO, Vec3::new(12.000001, 0.0, 0.0)];
        let mut f2 = vec![Vec3::ZERO; 2];
        let r2 = nb_self(&ff, &ex, group(&pos2, &ids, &lj, &q), &cell, &mut f2);
        assert_eq!(r2.pairs, 0);
        assert_eq!(r2.energy(), 0.0);
    }

    #[test]
    fn excluded_pair_contributes_nothing() {
        let mut topo = Topology::default();
        topo.atoms = vec![
            Atom { mass: 12.0, charge: -0.5, lj_type: 0 },
            Atom { mass: 12.0, charge: 0.5, lj_type: 0 },
        ];
        topo.bonds.push(Bond { a: 0, b: 1, k: 300.0, r0: 1.5 });
        let ex = Exclusions::from_topology(&topo);
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(50.0);
        let pos = vec![Vec3::ZERO, Vec3::new(1.5, 0.0, 0.0)];
        let ids = vec![0, 1];
        let lj = vec![0, 0];
        let q = vec![-0.5, 0.5];
        let mut f = vec![Vec3::ZERO; 2];
        let r = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
        assert_eq!(r.pairs, 0);
        assert_eq!(r.energy(), 0.0);
        assert_eq!(f[0], Vec3::ZERO);
    }

    #[test]
    fn scaled14_is_scaled() {
        // Chain 0-1-2-3: pair (0,3) is 1-4.
        let mut topo = Topology::default();
        topo.atoms = vec![Atom { mass: 12.0, charge: 0.3, lj_type: 0 }; 4];
        for i in 0..3u32 {
            topo.bonds.push(Bond { a: i, b: i + 1, k: 300.0, r0: 1.5 });
        }
        let ex = Exclusions::from_topology(&topo);
        let mut ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(100.0);
        // Place only atoms 0 and 3 near each other; 1,2 far away on open axis.
        let pos = vec![
            Vec3::ZERO,
            Vec3::new(30.0, 0.0, 0.0),
            Vec3::new(30.0, 30.0, 0.0),
            Vec3::new(4.0, 0.0, 0.0),
        ];
        let ids: Vec<AtomId> = (0..4).collect();
        let lj = vec![0u16; 4];
        let q = vec![0.3; 4];
        let mut f = vec![Vec3::ZERO; 4];
        let scaled = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
        assert_eq!(scaled.pairs, 1);

        // With scale14 = 1.0 the energy should be 1/scale14 times larger.
        ff.scale14 = 1.0;
        let mut f1 = vec![Vec3::ZERO; 4];
        let unscaled = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f1);
        assert!(
            (scaled.energy() - 0.5 * unscaled.energy()).abs() < 1e-12,
            "scaled {} vs unscaled {}",
            scaled.energy(),
            unscaled.energy()
        );
    }

    #[test]
    fn pair_kernel_matches_self_kernel_decomposition() {
        // Self interaction of a combined group == self(A) + self(B) + pair(A,B).
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(40.0);
        let n = 20;
        // Deterministic pseudo-random positions.
        let pos: Vec<Vec3> = (0..n)
            .map(|i| {
                let x = (i as f64 * 7.13) % 20.0;
                let y = (i as f64 * 3.77 + 1.0) % 20.0;
                let z = (i as f64 * 5.41 + 2.0) % 20.0;
                Vec3::new(x, y, z)
            })
            .collect();
        let ids: Vec<AtomId> = (0..n as u32).collect();
        let lj = vec![0u16; n];
        let q: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.3 } else { -0.3 }).collect();
        let ex = Exclusions::none(n);

        let mut f_all = vec![Vec3::ZERO; n];
        let all = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f_all);

        let k = 8;
        let (pa, pb) = pos.split_at(k);
        let (ia, ib) = ids.split_at(k);
        let (la, lbt) = lj.split_at(k);
        let (qa, qb) = q.split_at(k);
        let ga = group(pa, ia, la, qa);
        let gb = group(pb, ib, lbt, qb);
        let mut fa = vec![Vec3::ZERO; k];
        let mut fb = vec![Vec3::ZERO; n - k];
        let mut total = NbResult::default();
        total.add(nb_self(&ff, &ex, ga, &cell, &mut fa));
        total.add(nb_self(&ff, &ex, gb, &cell, &mut fb));
        total.add(nb_pair(&ff, &ex, ga, gb, &cell, &mut fa, &mut fb));

        assert_eq!(total.pairs, all.pairs);
        assert!((total.energy() - all.energy()).abs() < 1e-9);
        for i in 0..k {
            assert!((fa[i] - f_all[i]).norm() < 1e-9);
        }
        for j in 0..n - k {
            assert!((fb[j] - f_all[k + j]).norm() < 1e-9);
        }
    }

    #[test]
    fn ranged_self_partitions_cover_triangle() {
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(30.0);
        let n = 15;
        let pos: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new((i as f64 * 2.3) % 15.0, (i as f64 * 1.7) % 15.0, 0.0))
            .collect();
        let ids: Vec<AtomId> = (0..n as u32).collect();
        let lj = vec![0u16; n];
        let q = vec![0.1; n];
        let ex = Exclusions::none(n);
        let g = group(&pos, &ids, &lj, &q);

        let mut f_full = vec![Vec3::ZERO; n];
        let full = nb_self(&ff, &ex, g, &cell, &mut f_full);

        let mut f_split = vec![Vec3::ZERO; n];
        let mut acc = NbResult::default();
        for range in [0..5, 5..11, 11..n] {
            acc.add(nb_self_ranged(&ff, &ex, g, &cell, range, &mut f_split));
        }
        assert_eq!(acc.pairs, full.pairs);
        assert!((acc.energy() - full.energy()).abs() < 1e-10);
        for i in 0..n {
            assert!((f_split[i] - f_full[i]).norm() < 1e-10);
        }
    }

    #[test]
    fn pair_counting_matches_kernel() {
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(30.0);
        let n = 12;
        let pos: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new((i as f64 * 4.1) % 25.0, (i as f64 * 2.9) % 25.0, 1.0))
            .collect();
        let ids: Vec<AtomId> = (0..n as u32).collect();
        let lj = vec![0u16; n];
        let q = vec![0.0; n];
        let ex = Exclusions::none(n);
        let g = group(&pos, &ids, &lj, &q);
        let mut f = vec![Vec3::ZERO; n];
        let r = nb_self(&ff, &ex, g, &cell, &mut f);
        assert_eq!(r.pairs, count_self_pairs(g, &cell, ff.cutoff));
    }

    #[test]
    fn minimum_image_interaction_across_boundary() {
        let ff = ForceField::biomolecular(12.0);
        let cell = Cell::cube(20.0);
        // Atoms at opposite faces, 4 Å apart through the boundary — past the
        // LJ minimum (~3.5 Å for type 0), so opposite charges attract.
        let pos = vec![Vec3::new(0.5, 0.0, 0.0), Vec3::new(16.5, 0.0, 0.0)];
        let ids = vec![0, 1];
        let lj = vec![0u16, 0];
        let q = vec![0.2, -0.2];
        let ex = Exclusions::none(2);
        let mut f = vec![Vec3::ZERO; 2];
        let r = nb_self(&ff, &ex, group(&pos, &ids, &lj, &q), &cell, &mut f);
        assert_eq!(r.pairs, 1);
        // Opposite charges 2 Å apart attract: force on atom0 points toward
        // the boundary (negative x).
        assert!(f[0].x < 0.0, "expected attraction across boundary, f0={:?}", f[0]);
    }
}
