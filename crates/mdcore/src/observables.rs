//! Thermodynamic observables beyond energy and temperature.
//!
//! The instantaneous pressure is computed from the exact thermodynamic
//! definition `P = N·k_B·T/V − ∂U/∂V` with the volume derivative taken
//! numerically by affinely rescaling the box and all coordinates — slower
//! than an analytic pairwise virial (two extra force evaluations) but
//! correct for *every* term in the potential, including switching
//! functions, exclusions, and restraints.

use crate::forcefield::units;
use crate::pbc::Cell;
use crate::sim::compute_forces;
use crate::system::System;
use crate::vec3::Vec3;

/// Potential energy of `system` with box and coordinates scaled by `s`
/// (volume scaled by `s³`).
fn scaled_potential(system: &System, s: f64) -> f64 {
    let mut scaled = system.clone();
    scaled.cell = Cell {
        origin: system.cell.origin * s,
        lengths: system.cell.lengths * s,
        periodic: system.cell.periodic,
    };
    for p in &mut scaled.positions {
        *p *= s;
    }
    // Restraint anchors scale with the box too (they are box-fixed points).
    for r in &mut scaled.topology.restraints {
        r.target *= s;
    }
    let mut f = vec![Vec3::ZERO; scaled.n_atoms()];
    compute_forces(&scaled, &mut f).potential()
}

/// Instantaneous pressure, in kcal/(mol·Å³). Multiply by
/// [`PRESSURE_ATM_PER_KCAL_MOL_A3`] for atmospheres.
pub fn instantaneous_pressure(system: &System) -> f64 {
    let v = system.cell.volume();
    let n = system.n_atoms() as f64;
    let kinetic_term = n * units::K_B * system.temperature() / v;
    // Central difference in volume via the linear scale factor:
    // dU/dV = dU/ds · ds/dV with V = V₀ s³ ⇒ dV/ds|₁ = 3V₀.
    let h = 1e-4;
    let up = scaled_potential(system, 1.0 + h);
    let um = scaled_potential(system, 1.0 - h);
    let du_ds = (up - um) / (2.0 * h);
    let du_dv = du_ds / (3.0 * v);
    kinetic_term - du_dv
}

/// Conversion: 1 kcal/(mol·Å³) ≈ 68 568.4 atm.
pub const PRESSURE_ATM_PER_KCAL_MOL_A3: f64 = 68_568.4;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::{ForceField, LjType};
    use crate::topology::{Atom, Topology};

    /// Non-interacting particles: the ideal-gas law must hold exactly.
    #[test]
    fn ideal_gas_pressure() {
        let n = 64;
        let mut topo = Topology::default();
        // ε = 0 ⇒ no LJ; zero charge ⇒ no electrostatics.
        topo.atoms = vec![Atom { mass: 10.0, charge: 0.0, lj_type: 0 }; n];
        let ff = ForceField::new(vec![LjType { epsilon: 0.0, rmin_half: 1.0 }], 6.0, 5.0);
        let l = 20.0;
        let pos: Vec<Vec3> = (0..n)
            .map(|i| {
                let t = i as f64;
                Vec3::new(
                    (t * 7.3).rem_euclid(l),
                    (t * 3.1).rem_euclid(l),
                    (t * 5.7).rem_euclid(l),
                )
            })
            .collect();
        let mut sys = System::new(topo, ff, Cell::cube(l), pos);
        sys.thermalize(300.0, 5);
        let p = instantaneous_pressure(&sys);
        let expect = n as f64 * units::K_B * sys.temperature() / sys.cell.volume();
        assert!(
            (p - expect).abs() < 1e-9 * expect.abs().max(1.0),
            "ideal gas: {p} vs {expect}"
        );
    }

    /// An over-compressed LJ lattice pushes outward: strongly positive
    /// pressure. An expanded one pulls inward: negative virial contribution.
    #[test]
    fn lj_pressure_signs() {
        let build = |spacing: f64| {
            let n_side = 4;
            let mut topo = Topology::default();
            topo.atoms =
                vec![Atom { mass: 40.0, charge: 0.0, lj_type: 0 }; n_side * n_side * n_side];
            // Rmin = 3.4 Å LJ particles.
            let ff = ForceField::new(
                vec![LjType { epsilon: 0.25, rmin_half: 1.7 }],
                spacing * 1.9,
                spacing * 1.7,
            );
            let mut pos = Vec::new();
            for x in 0..n_side {
                for y in 0..n_side {
                    for z in 0..n_side {
                        pos.push(Vec3::new(
                            x as f64 * spacing,
                            y as f64 * spacing,
                            z as f64 * spacing,
                        ));
                    }
                }
            }
            System::new(topo, ff, Cell::cube(n_side as f64 * spacing), pos)
        };
        // Compressed below Rmin: positive pressure.
        let compressed = build(3.0);
        let p_hot = instantaneous_pressure(&compressed);
        assert!(p_hot > 0.0, "compressed lattice pressure {p_hot}");
        // Stretched beyond Rmin (attractive branch): the virial term pulls
        // the pressure negative at T = 0.
        let stretched = build(3.8);
        let p_cold = instantaneous_pressure(&stretched);
        assert!(p_cold < 0.0, "stretched lattice pressure {p_cold}");
    }

    #[test]
    fn pressure_unit_conversion_is_sane() {
        // Liquid-water-like kinetic term at 300 K: N kT/V for 0.0334 mol/Å³
        // molecules ≈ 1360 atm — the right order of magnitude for the
        // kinetic part alone.
        let kinetic = 0.1 * units::K_B * 300.0; // atoms/Å³ × kT
        let atm = kinetic * PRESSURE_ATM_PER_KCAL_MOL_A3;
        assert!((2000.0..6000.0).contains(&atm), "kinetic pressure {atm} atm");
    }
}
