//! Verlet pair lists with a reuse margin.
//!
//! NAMD's patches are "slightly larger than the cutoff radius" for exactly
//! this reason: building neighbour structures with a margin (`pairlistdist`
//! in NAMD's configuration language) lets them be *reused* for many steps,
//! until some atom has moved half the margin. This module provides the
//! sequential analogue: a pair list built at `cutoff + margin` that stays
//! valid while `max_i |r_i − r_i^{build}| < margin/2`, with the exact
//! distance check still applied per pair at evaluation time.

use crate::celllist::CellList;
use crate::pbc::Cell;
use crate::vec3::Vec3;

/// A reusable Verlet pair list.
#[derive(Debug, Clone)]
pub struct PairList {
    /// Unordered candidate pairs within `cutoff + margin` at build time.
    pairs: Vec<(u32, u32)>,
    /// Positions at build time (for displacement tracking).
    ref_positions: Vec<Vec3>,
    /// The interaction cutoff, Å.
    pub cutoff: f64,
    /// The safety margin, Å.
    pub margin: f64,
    /// Number of rebuilds performed (diagnostics).
    pub rebuilds: usize,
}

impl PairList {
    /// Build a fresh pair list.
    pub fn build(cell: &Cell, positions: &[Vec3], cutoff: f64, margin: f64) -> Self {
        assert!(cutoff > 0.0 && margin >= 0.0);
        let cl = CellList::build(cell, positions, cutoff + margin);
        let pairs = cl.neighbor_pairs(positions, cutoff + margin);
        PairList {
            pairs,
            ref_positions: positions.to_vec(),
            cutoff,
            margin,
            rebuilds: 1,
        }
    }

    /// The candidate pairs (within `cutoff + margin` at build time).
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// True while the list is guaranteed complete: no atom has moved more
    /// than half the margin since the build, so no pair can have entered
    /// the cutoff without being a candidate.
    pub fn is_valid(&self, cell: &Cell, positions: &[Vec3]) -> bool {
        let limit2 = (self.margin / 2.0) * (self.margin / 2.0);
        positions
            .iter()
            .zip(&self.ref_positions)
            .all(|(&p, &r)| cell.dist2(p, r) <= limit2)
    }

    /// Rebuild if stale; returns whether a rebuild happened. Rebuilds reuse
    /// the existing `pairs` and `ref_positions` buffers — after the first few
    /// steps have grown their capacity to the working-set size, a rebuild
    /// performs no pair-list allocation at all.
    pub fn refresh(&mut self, cell: &Cell, positions: &[Vec3]) -> bool {
        if self.is_valid(cell, positions) {
            return false;
        }
        let cl = CellList::build(cell, positions, self.cutoff + self.margin);
        cl.neighbor_pairs_into(positions, self.cutoff + self.margin, &mut self.pairs);
        self.ref_positions.clear();
        self.ref_positions.extend_from_slice(positions);
        self.rebuilds += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn scatter(n: usize, l: f64) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Vec3::new(
                    (t * 7.93).rem_euclid(l),
                    (t * 5.21 + 2.0).rem_euclid(l),
                    (t * 3.57 + 4.0).rem_euclid(l),
                )
            })
            .collect()
    }

    fn exact_pairs(cell: &Cell, pos: &[Vec3], cutoff: f64) -> BTreeSet<(u32, u32)> {
        let mut out = BTreeSet::new();
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                if cell.dist2(pos[i], pos[j]) < cutoff * cutoff {
                    out.insert((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn candidates_cover_all_cutoff_pairs() {
        let cell = Cell::cube(30.0);
        let pos = scatter(120, 30.0);
        let pl = PairList::build(&cell, &pos, 8.0, 2.0);
        let candidates: BTreeSet<_> = pl.pairs().iter().copied().collect();
        for p in exact_pairs(&cell, &pos, 8.0) {
            assert!(candidates.contains(&p), "missing pair {p:?}");
        }
    }

    #[test]
    fn stays_valid_under_small_motion_and_complete() {
        let cell = Cell::cube(30.0);
        let mut pos = scatter(100, 30.0);
        let pl = PairList::build(&cell, &pos, 8.0, 2.0);
        // Move every atom by 0.9 Å (< margin/2 = 1.0).
        for (i, p) in pos.iter_mut().enumerate() {
            let dir = Vec3::new(
                ((i * 37) % 7) as f64 - 3.0,
                ((i * 17) % 5) as f64 - 2.0,
                ((i * 11) % 3) as f64 - 1.0,
            );
            let dir = dir.normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0));
            *p = cell.wrap(*p + dir * 0.9);
        }
        assert!(pl.is_valid(&cell, &pos));
        // Even after the motion, the stale candidate list still contains
        // every true cutoff pair — the margin guarantee.
        let candidates: BTreeSet<_> = pl.pairs().iter().copied().collect();
        for p in exact_pairs(&cell, &pos, 8.0) {
            assert!(candidates.contains(&p), "margin guarantee violated for {p:?}");
        }
    }

    #[test]
    fn invalidates_after_large_motion() {
        let cell = Cell::cube(30.0);
        let mut pos = scatter(50, 30.0);
        let mut pl = PairList::build(&cell, &pos, 8.0, 2.0);
        pos[7] = cell.wrap(pos[7] + Vec3::new(1.5, 0.0, 0.0)); // > margin/2
        assert!(!pl.is_valid(&cell, &pos));
        assert!(pl.refresh(&cell, &pos));
        assert_eq!(pl.rebuilds, 2);
        assert!(pl.is_valid(&cell, &pos));
    }

    #[test]
    fn rebuilds_reuse_buffers_and_match_fresh_build() {
        let cell = Cell::cube(30.0);
        let mut pos = scatter(100, 30.0);
        let mut pl = PairList::build(&cell, &pos, 8.0, 2.0);
        let cap_before = pl.pairs.capacity();
        // Shift everything well past margin/2 so refresh must rebuild.
        for p in pos.iter_mut() {
            *p = cell.wrap(*p + Vec3::new(1.7, -1.2, 0.8));
        }
        assert!(pl.refresh(&cell, &pos));
        // A rigid shift preserves all distances, so the pair count is the
        // same and the grown buffer must have been reused, not reallocated.
        assert_eq!(pl.pairs.capacity(), cap_before);
        let fresh = PairList::build(&cell, &pos, 8.0, 2.0);
        let a: BTreeSet<_> = pl.pairs().iter().copied().collect();
        let b: BTreeSet<_> = fresh.pairs().iter().copied().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn refresh_is_a_noop_when_valid() {
        let cell = Cell::cube(25.0);
        let pos = scatter(40, 25.0);
        let mut pl = PairList::build(&cell, &pos, 7.0, 1.5);
        assert!(!pl.refresh(&cell, &pos));
        assert_eq!(pl.rebuilds, 1);
    }

    #[test]
    fn zero_margin_is_exact_but_always_fragile() {
        let cell = Cell::cube(25.0);
        let mut pos = scatter(40, 25.0);
        let pl = PairList::build(&cell, &pos, 7.0, 0.0);
        let exact = exact_pairs(&cell, &pos, 7.0);
        let candidates: BTreeSet<_> = pl.pairs().iter().copied().collect();
        assert_eq!(candidates, exact);
        // Any motion at all invalidates a zero-margin list.
        pos[0] += Vec3::new(0.01, 0.0, 0.0);
        assert!(!pl.is_valid(&cell, &pos));
    }

    #[test]
    fn pairlist_dynamics_match_fresh_lists() {
        // Run short dynamics evaluating forces from a reused pair list and
        // compare against per-step fresh cell lists.
        use crate::forcefield::ForceField;
        use crate::nonbonded::nb_pairlist;
        use crate::topology::{push_water, Exclusions, Topology};

        let mut topo = Topology::default();
        let mut positions = Vec::new();
        for i in 0..27 {
            let x = (i % 3) as f64 * 3.3 + 0.9;
            let y = ((i / 3) % 3) as f64 * 3.3 + 0.9;
            let z = (i / 9) as f64 * 3.3 + 0.9;
            push_water(&mut topo, 0, 1);
            positions.push(Vec3::new(x, y, z));
            positions.push(Vec3::new(x + 0.9572, y, z));
            positions.push(Vec3::new(x - 0.24, y + 0.93, z));
        }
        let cell = Cell::cube(9.9);
        let ff = ForceField::biomolecular(4.5);
        let ex = Exclusions::from_topology(&topo);
        let lj: Vec<u16> = topo.atoms.iter().map(|a| a.lj_type).collect();
        let q: Vec<f64> = topo.atoms.iter().map(|a| a.charge).collect();

        let pl = PairList::build(&cell, &positions, 4.5, 1.0);
        let mut f_list = vec![Vec3::ZERO; positions.len()];
        let e_list =
            nb_pairlist(&ff, &ex, &positions, &lj, &q, pl.pairs(), &cell, &mut f_list);

        let fresh = CellList::build(&cell, &positions, 4.5).neighbor_pairs(&positions, 4.5);
        let mut f_fresh = vec![Vec3::ZERO; positions.len()];
        let e_fresh =
            nb_pairlist(&ff, &ex, &positions, &lj, &q, &fresh, &cell, &mut f_fresh);

        assert_eq!(e_list.pairs, e_fresh.pairs);
        assert!((e_list.energy() - e_fresh.energy()).abs() < 1e-10);
        for i in 0..positions.len() {
            assert!((f_list[i] - f_fresh[i]).norm() < 1e-10);
        }
    }
}
