//! Orthorhombic periodic boundary conditions.
//!
//! Biomolecular benchmark systems (ApoA-I, BC1, bR) are simulated in
//! rectangular solvent boxes; NAMD's patch grid is laid over exactly such a
//! cell. We support orthorhombic cells only — sufficient for every system the
//! paper evaluates — plus a non-periodic mode used by isolated test systems.

use crate::vec3::Vec3;

/// An orthorhombic simulation cell with origin at `origin` and edge lengths
/// `lengths`; optionally periodic per-axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Lower corner of the cell (Å).
    pub origin: Vec3,
    /// Edge lengths along x, y, z (Å).
    pub lengths: Vec3,
    /// Whether each axis wraps periodically.
    pub periodic: [bool; 3],
}

impl Cell {
    /// A fully periodic cell with the given origin and edge lengths.
    pub fn periodic(origin: Vec3, lengths: Vec3) -> Self {
        assert!(
            lengths.x > 0.0 && lengths.y > 0.0 && lengths.z > 0.0,
            "cell edge lengths must be positive, got {lengths:?}"
        );
        Cell { origin, lengths, periodic: [true; 3] }
    }

    /// A fully periodic cube of edge `l` with origin at zero.
    pub fn cube(l: f64) -> Self {
        Cell::periodic(Vec3::ZERO, Vec3::splat(l))
    }

    /// A non-periodic (open boundary) cell. `origin`/`lengths` still define
    /// the bounding region used for spatial decomposition.
    pub fn open(origin: Vec3, lengths: Vec3) -> Self {
        assert!(
            lengths.x > 0.0 && lengths.y > 0.0 && lengths.z > 0.0,
            "cell edge lengths must be positive, got {lengths:?}"
        );
        Cell { origin, lengths, periodic: [false; 3] }
    }

    /// Volume of the cell in Å³.
    pub fn volume(&self) -> f64 {
        self.lengths.x * self.lengths.y * self.lengths.z
    }

    /// Minimum-image displacement `a - b`.
    ///
    /// For periodic axes the component is folded into `[-L/2, L/2)`; for open
    /// axes it is the plain difference.
    #[inline]
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let mut d = a - b;
        for ax in 0..3 {
            if self.periodic[ax] {
                let l = self.lengths.axis(ax);
                let c = d.axis_mut(ax);
                *c -= l * (*c / l).round();
            }
        }
        d
    }

    /// Squared minimum-image distance between `a` and `b`.
    #[inline]
    pub fn dist2(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm2()
    }

    /// Wrap a position into the primary cell `[origin, origin + lengths)`
    /// along periodic axes; open axes are left untouched.
    #[inline]
    pub fn wrap(&self, p: Vec3) -> Vec3 {
        let mut q = p;
        for ax in 0..3 {
            if self.periodic[ax] {
                let l = self.lengths.axis(ax);
                let o = self.origin.axis(ax);
                let c = q.axis_mut(ax);
                *c = o + (*c - o).rem_euclid(l);
            }
        }
        q
    }

    /// True when `p` lies inside the primary cell (half-open on the upper
    /// faces, matching `wrap`).
    pub fn contains(&self, p: Vec3) -> bool {
        (0..3).all(|ax| {
            let c = p.axis(ax);
            let o = self.origin.axis(ax);
            c >= o && c < o + self.lengths.axis(ax)
        })
    }

    /// Fractional coordinates of `p` relative to the cell (0..1 inside).
    #[inline]
    pub fn fractional(&self, p: Vec3) -> Vec3 {
        let d = p - self.origin;
        Vec3::new(d.x / self.lengths.x, d.y / self.lengths.y, d.z / self.lengths.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_cube() {
        assert_eq!(Cell::cube(10.0).volume(), 1000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_lengths() {
        Cell::periodic(Vec3::ZERO, Vec3::new(10.0, 0.0, 10.0));
    }

    #[test]
    fn min_image_within_half_box() {
        let cell = Cell::cube(10.0);
        let a = Vec3::new(9.5, 0.0, 0.0);
        let b = Vec3::new(0.5, 0.0, 0.0);
        let d = cell.min_image(a, b);
        assert!((d.x - (-1.0)).abs() < 1e-12, "expected -1, got {}", d.x);
        assert!((cell.dist2(a, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_image_identity_for_close_points() {
        let cell = Cell::cube(20.0);
        let a = Vec3::new(3.0, 4.0, 5.0);
        let b = Vec3::new(2.0, 4.5, 5.5);
        assert_eq!(cell.min_image(a, b), a - b);
    }

    #[test]
    fn open_cell_never_wraps() {
        let cell = Cell::open(Vec3::ZERO, Vec3::splat(10.0));
        let a = Vec3::new(9.5, 0.0, 0.0);
        let b = Vec3::new(0.5, 0.0, 0.0);
        assert_eq!(cell.min_image(a, b), Vec3::new(9.0, 0.0, 0.0));
        assert_eq!(cell.wrap(Vec3::new(15.0, -3.0, 2.0)), Vec3::new(15.0, -3.0, 2.0));
    }

    #[test]
    fn wrap_into_primary_cell() {
        let cell = Cell::periodic(Vec3::new(-5.0, -5.0, -5.0), Vec3::splat(10.0));
        let p = cell.wrap(Vec3::new(6.0, -7.0, 123.0));
        assert!(cell.contains(p), "wrapped point {p:?} not inside cell");
        // x: 6 -> -4; y: -7 -> 3; z: 123 -> 3.
        assert!((p.x - (-4.0)).abs() < 1e-9);
        assert!((p.y - 3.0).abs() < 1e-9);
        assert!((p.z - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wrap_preserves_min_image_distances() {
        let cell = Cell::cube(12.0);
        let a = Vec3::new(100.2, -55.1, 7.3);
        let b = Vec3::new(98.9, -54.0, 8.0);
        let before = cell.dist2(a, b);
        let after = cell.dist2(cell.wrap(a), cell.wrap(b));
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn fractional_coordinates() {
        let cell = Cell::periodic(Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.0, 4.0, 8.0));
        let f = cell.fractional(Vec3::new(2.0, 3.0, 5.0));
        assert!((f.x - 0.5).abs() < 1e-12);
        assert!((f.y - 0.5).abs() < 1e-12);
        assert!((f.z - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contains_half_open() {
        let cell = Cell::cube(10.0);
        assert!(cell.contains(Vec3::ZERO));
        assert!(!cell.contains(Vec3::new(10.0, 0.0, 0.0)));
        assert!(cell.contains(Vec3::new(9.999999, 0.0, 0.0)));
    }
}
