//! Sequential reference simulator: velocity-Verlet NVE dynamics with
//! cell-list non-bonded evaluation.
//!
//! This is the single-processor baseline the paper measures speedups against
//! ("the actual speed of the program ... is comparable or better than other
//! production-quality programs"). The parallel engine in `namd-core` must
//! produce identical forces — an invariant checked by integration tests.

use crate::bonded::{compute_bonded, BondedEnergy};
use crate::celllist::CellList;
use crate::forcefield::units;
use crate::nonbonded::{nb_pairlist, NbResult};
use crate::pairlist::PairList;
use crate::system::System;
use crate::vec3::Vec3;

/// Energy report for one step.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepEnergy {
    pub bonded: BondedEnergy,
    pub nonbonded: NbResult,
    pub kinetic: f64,
}

impl StepEnergy {
    /// Total potential energy, kcal/mol.
    pub fn potential(&self) -> f64 {
        self.bonded.total() + self.nonbonded.energy()
    }

    /// Total (conserved) energy, kcal/mol.
    pub fn total(&self) -> f64 {
        self.potential() + self.kinetic
    }
}

/// Compute all forces for the current positions. Returns the energies and
/// fills `forces` (overwritten, not accumulated).
pub fn compute_forces(system: &System, forces: &mut [Vec3]) -> StepEnergy {
    let n = system.n_atoms();
    assert_eq!(forces.len(), n);
    forces.fill(Vec3::ZERO);

    let lj = system.lj_types();
    let q = system.charges();

    let cl = CellList::build(&system.cell, &system.positions, system.forcefield.cutoff);
    let pairs = cl.neighbor_pairs(&system.positions, system.forcefield.cutoff);
    let nonbonded = nb_pairlist(
        &system.forcefield,
        &system.exclusions,
        &system.positions,
        &lj,
        &q,
        &pairs,
        &system.cell,
        forces,
    );
    let bonded = compute_bonded(&system.topology, &system.cell, &system.positions, forces);
    StepEnergy { bonded, nonbonded, kinetic: 0.0 }
}

/// A velocity-Verlet integrator with persistent force buffers.
pub struct Simulator {
    /// Timestep, fs.
    pub dt: f64,
    forces: Vec<Vec3>,
    /// Set when forces correspond to current positions.
    forces_valid: bool,
    /// Energies from the most recent force evaluation.
    pub last_energy: StepEnergy,
    /// Reusable Verlet pair list (see [`Simulator::with_pairlist`]).
    pairlist: Option<PairList>,
}

impl Simulator {
    /// Create a simulator with timestep `dt` femtoseconds.
    pub fn new(system: &System, dt: f64) -> Self {
        assert!(dt > 0.0, "timestep must be positive");
        Simulator {
            dt,
            forces: vec![Vec3::ZERO; system.n_atoms()],
            forces_valid: false,
            last_energy: StepEnergy::default(),
            pairlist: None,
        }
    }

    /// Create a simulator that reuses a Verlet pair list with the given
    /// margin (Å) instead of rebuilding the neighbour structure every step —
    /// the sequential analogue of NAMD's `pairlistdist`. Results are
    /// identical to [`Simulator::new`]; only the rebuild frequency changes.
    pub fn with_pairlist(system: &System, dt: f64, margin: f64) -> Self {
        assert!(margin > 0.0, "margin must be positive");
        let mut sim = Simulator::new(system, dt);
        sim.pairlist = Some(PairList::build(
            &system.cell,
            &system.positions,
            system.forcefield.cutoff,
            margin,
        ));
        sim
    }

    /// Pair-list rebuilds so far (diagnostics; 0 without a pair list).
    pub fn pairlist_rebuilds(&self) -> usize {
        self.pairlist.as_ref().map_or(0, |pl| pl.rebuilds)
    }

    /// Force evaluation, using the cached pair list when present.
    fn eval_forces(&mut self, system: &System) -> StepEnergy {
        match &mut self.pairlist {
            None => compute_forces(system, &mut self.forces),
            Some(pl) => {
                pl.refresh(&system.cell, &system.positions);
                self.forces.fill(Vec3::ZERO);
                let lj = system.lj_types();
                let q = system.charges();
                let nonbonded = nb_pairlist(
                    &system.forcefield,
                    &system.exclusions,
                    &system.positions,
                    &lj,
                    &q,
                    pl.pairs(),
                    &system.cell,
                    &mut self.forces,
                );
                let bonded = compute_bonded(
                    &system.topology,
                    &system.cell,
                    &system.positions,
                    &mut self.forces,
                );
                StepEnergy { bonded, nonbonded, kinetic: 0.0 }
            }
        }
    }

    /// Current force buffer (valid after the first step or `prime`).
    pub fn forces(&self) -> &[Vec3] {
        &self.forces
    }

    /// Evaluate forces for the system's current positions.
    pub fn prime(&mut self, system: &System) {
        self.last_energy = self.eval_forces(system);
        self.forces_valid = true;
    }

    /// Advance one velocity-Verlet step. Returns the step's energies
    /// (potential from the new positions, kinetic from the new velocities).
    pub fn step(&mut self, system: &mut System) -> StepEnergy {
        if !self.forces_valid {
            self.prime(system);
        }
        let dt = self.dt;
        let n = system.n_atoms();

        // Half-kick + drift.
        for i in 0..n {
            let m = system.topology.atoms[i].mass;
            let a = self.forces[i] * (units::ACCEL / m);
            system.velocities[i] += a * (0.5 * dt);
            system.positions[i] += system.velocities[i] * dt;
            system.positions[i] = system.cell.wrap(system.positions[i]);
        }

        // New forces, second half-kick.
        let mut e = self.eval_forces(system);
        for i in 0..n {
            let m = system.topology.atoms[i].mass;
            let a = self.forces[i] * (units::ACCEL / m);
            system.velocities[i] += a * (0.5 * dt);
        }
        e.kinetic = system.kinetic_energy();
        self.last_energy = e;
        self.forces_valid = true;
        e
    }

    /// Run `n` steps, returning the energy after each.
    pub fn run(&mut self, system: &mut System, n: usize) -> Vec<StepEnergy> {
        (0..n).map(|_| self.step(system)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::ForceField;
    use crate::pbc::Cell;
    use crate::topology::{push_water, Topology};

    /// A small periodic water box at moderate density.
    fn water_system(n_side: usize, spacing: f64) -> System {
        let mut topo = Topology::default();
        let mut pos = Vec::new();
        for ix in 0..n_side {
            for iy in 0..n_side {
                for iz in 0..n_side {
                    let base = Vec3::new(
                        ix as f64 * spacing + 0.5,
                        iy as f64 * spacing + 0.5,
                        iz as f64 * spacing + 0.5,
                    );
                    push_water(&mut topo, 0, 1);
                    pos.push(base);
                    pos.push(base + Vec3::new(0.9572, 0.0, 0.0));
                    pos.push(base + Vec3::new(-0.2399, 0.9266, 0.0));
                }
            }
        }
        let l = n_side as f64 * spacing;
        let ff = ForceField::biomolecular((l / 2.0 - 0.1).min(8.0));
        System::new(topo, ff, Cell::cube(l), pos)
    }

    #[test]
    fn forces_are_finite_and_momentum_free() {
        let s = water_system(3, 3.2);
        let mut f = vec![Vec3::ZERO; s.n_atoms()];
        compute_forces(&s, &mut f);
        let net: Vec3 = f.iter().copied().sum();
        assert!(net.norm() < 1e-8, "net force {net:?}");
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn energy_conservation_nve() {
        let mut s = water_system(3, 3.2);
        s.thermalize(100.0, 11);
        let mut sim = Simulator::new(&s, 0.5);
        // Short equilibration to let the integrator settle.
        sim.run(&mut s, 5);
        let e0 = sim.last_energy.total();
        let energies = sim.run(&mut s, 100);
        let e_end = energies.last().unwrap().total();
        let scale = e0.abs().max(1.0);
        let drift = (e_end - e0).abs() / scale;
        assert!(drift < 5e-3, "energy drift {drift}: {e0} -> {e_end}");
        // Also check the max excursion, not just the endpoints.
        for (i, e) in energies.iter().enumerate() {
            let d = (e.total() - e0).abs() / scale;
            assert!(d < 1e-2, "step {i}: excursion {d}");
        }
    }

    #[test]
    fn momentum_conserved_during_dynamics() {
        let mut s = water_system(3, 3.2);
        s.thermalize(200.0, 5);
        let mut sim = Simulator::new(&s, 0.5);
        sim.run(&mut s, 50);
        assert!(s.net_momentum().norm() < 1e-8);
    }

    #[test]
    fn positions_stay_wrapped() {
        let mut s = water_system(2, 3.4);
        s.thermalize(400.0, 9);
        let mut sim = Simulator::new(&s, 1.0);
        sim.run(&mut s, 30);
        for &p in &s.positions {
            assert!(s.cell.contains(p), "position escaped cell: {p:?}");
        }
    }

    #[test]
    fn cold_start_is_stable() {
        // Zero velocities, relaxed lattice: nothing should blow up.
        let mut s = water_system(2, 4.0);
        let mut sim = Simulator::new(&s, 1.0);
        let energies = sim.run(&mut s, 20);
        assert!(energies.iter().all(|e| e.total().is_finite()));
    }

    #[test]
    fn pairlist_simulator_matches_plain_simulator() {
        let mut a = water_system(3, 3.2);
        a.thermalize(200.0, 13);
        let mut b = a.clone();
        let mut sim_a = Simulator::new(&a, 0.5);
        let mut sim_b = Simulator::with_pairlist(&b, 0.5, 1.5);
        for step in 0..40 {
            let ea = sim_a.step(&mut a);
            let eb = sim_b.step(&mut b);
            assert!(
                (ea.total() - eb.total()).abs() < 1e-9 * ea.total().abs().max(1.0),
                "step {step}: {} vs {}",
                ea.total(),
                eb.total()
            );
        }
        for i in 0..a.n_atoms() {
            assert!((a.positions[i] - b.positions[i]).norm() < 1e-9, "atom {i}");
        }
        // The list was reused: far fewer rebuilds than steps.
        assert!(
            sim_b.pairlist_rebuilds() < 20,
            "{} rebuilds over 40 steps",
            sim_b.pairlist_rebuilds()
        );
    }

    #[test]
    fn step_energy_totals_add_up() {
        let mut s = water_system(2, 3.4);
        s.thermalize(150.0, 2);
        let mut sim = Simulator::new(&s, 0.5);
        let e = sim.step(&mut s);
        assert!(
            (e.total() - (e.bonded.total() + e.nonbonded.energy() + e.kinetic)).abs() < 1e-12
        );
        assert!(e.kinetic > 0.0);
    }
}
