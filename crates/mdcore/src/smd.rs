//! Steered molecular dynamics (SMD): constant-velocity pulling through a
//! moving harmonic restraint, with work accumulation.
//!
//! SMD is one of NAMD's signature applications from exactly this era
//! (mechanical unfolding of proteins): a virtual spring attached to an atom
//! is dragged along a direction at constant speed, and the accumulated
//! pulling work is recorded (the quantity fed into Jarzynski-style
//! analyses).

use crate::bonded::restraint_force;
use crate::forcefield::units;
use crate::sim::{compute_forces, StepEnergy};
use crate::system::System;
use crate::vec3::Vec3;

/// A constant-velocity pulling spring.
#[derive(Debug, Clone, Copy)]
pub struct SmdSpring {
    /// The pulled atom.
    pub atom: u32,
    /// Spring constant, kcal/mol/Å².
    pub k: f64,
    /// Pulling velocity, Å/fs.
    pub velocity: Vec3,
    /// Current anchor position, Å.
    pub anchor: Vec3,
}

/// Velocity-Verlet dynamics with one or more SMD springs.
pub struct SmdSimulator {
    pub dt: f64,
    pub springs: Vec<SmdSpring>,
    forces: Vec<Vec3>,
    primed: bool,
    /// Accumulated pulling work per spring, kcal/mol.
    pub work: Vec<f64>,
}

impl SmdSimulator {
    /// Create an SMD driver; each spring's anchor starts at its current
    /// `anchor` value.
    pub fn new(system: &System, dt: f64, springs: Vec<SmdSpring>) -> Self {
        assert!(dt > 0.0);
        for s in &springs {
            assert!((s.atom as usize) < system.n_atoms());
            assert!(s.k > 0.0);
        }
        let n_springs = springs.len();
        SmdSimulator {
            dt,
            springs,
            forces: vec![Vec3::ZERO; system.n_atoms()],
            primed: false,
            work: vec![0.0; n_springs],
        }
    }

    /// Total forces = force field + springs at their current anchors.
    fn eval(&mut self, system: &System) -> StepEnergy {
        let e = compute_forces(system, &mut self.forces);
        for s in &self.springs {
            let (_, f) = restraint_force(
                &system.cell,
                system.positions[s.atom as usize],
                s.anchor,
                s.k,
            );
            self.forces[s.atom as usize] += f;
        }
        e
    }

    /// One step: velocity Verlet with the springs, then advance the anchors
    /// and accumulate `W += F_spring · (v_pull · dt)` (the external work done
    /// by the moving constraint).
    pub fn step(&mut self, system: &mut System) -> StepEnergy {
        if !self.primed {
            self.eval(system);
            self.primed = true;
        }
        let dt = self.dt;
        let n = system.n_atoms();
        for i in 0..n {
            let m = system.topology.atoms[i].mass;
            system.velocities[i] += self.forces[i] * (units::ACCEL / m) * (0.5 * dt);
            system.positions[i] =
                system.cell.wrap(system.positions[i] + system.velocities[i] * dt);
        }
        let mut e = self.eval(system);
        for i in 0..n {
            let m = system.topology.atoms[i].mass;
            system.velocities[i] += self.forces[i] * (units::ACCEL / m) * (0.5 * dt);
        }
        e.kinetic = system.kinetic_energy();

        // Work done by each spring as its anchor moves.
        for (w, s) in self.work.iter_mut().zip(&mut self.springs) {
            let (_, f_on_atom) = restraint_force(
                &system.cell,
                system.positions[s.atom as usize],
                s.anchor,
                s.k,
            );
            // The spring pulls the atom with f_on_atom and therefore pulls
            // the anchor back with −f_on_atom; the operator holding the
            // anchor exerts +f_on_atom on it, so dragging the anchor by
            // Δanchor supplies work f_on_atom·Δanchor (positive when pulling
            // against resistance).
            let danchor = s.velocity * self.dt;
            *w += f_on_atom.dot(danchor);
            s.anchor += danchor;
        }
        e
    }

    /// Run `n` steps; returns per-step energies.
    pub fn run(&mut self, system: &mut System, n: usize) -> Vec<StepEnergy> {
        (0..n).map(|_| self.step(system)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::{ForceField, LjType};
    use crate::pbc::Cell;
    use crate::topology::{Atom, Topology};

    /// A single particle in an otherwise empty box.
    fn lone_particle() -> System {
        let mut topo = Topology::default();
        topo.atoms = vec![Atom { mass: 20.0, charge: 0.0, lj_type: 0 }];
        let ff = ForceField::new(vec![LjType { epsilon: 0.0, rmin_half: 1.0 }], 6.0, 5.0);
        System::new(topo, ff, Cell::cube(40.0), vec![Vec3::new(20.0, 20.0, 20.0)])
    }

    #[test]
    fn spring_drags_the_atom() {
        let mut sys = lone_particle();
        let start = sys.positions[0];
        let spring = SmdSpring {
            atom: 0,
            k: 5.0,
            velocity: Vec3::new(0.005, 0.0, 0.0), // 5 Å/ps
            anchor: start,
        };
        let mut smd = SmdSimulator::new(&sys, 1.0, vec![spring]);
        smd.run(&mut sys, 2000);
        let moved = sys.cell.min_image(sys.positions[0], start).x;
        let anchor_moved = 0.005 * 2000.0;
        assert!(
            moved > 0.6 * anchor_moved,
            "atom lagged the anchor: {moved} vs {anchor_moved}"
        );
        // The atom trails the anchor, never leads it.
        let lag = smd.springs[0].anchor.x - sys.positions[0].x;
        assert!(lag > -0.5, "atom ahead of anchor by {}", -lag);
    }

    #[test]
    fn pulling_a_free_particle_costs_little_steady_state_work() {
        // A free particle reaches the anchor velocity; in steady state the
        // only work is the small drag of the trailing spring. Work must be
        // finite and small compared with pulling against a real restraint.
        let mut sys = lone_particle();
        let spring = SmdSpring {
            atom: 0,
            k: 5.0,
            velocity: Vec3::new(0.002, 0.0, 0.0),
            anchor: sys.positions[0],
        };
        let mut smd = SmdSimulator::new(&sys, 1.0, vec![spring]);
        smd.run(&mut sys, 1000);
        assert!(smd.work[0].is_finite());
        assert!(smd.work[0].abs() < 10.0, "free-particle work {}", smd.work[0]);
    }

    #[test]
    fn pulling_against_a_restraint_does_positive_work() {
        // Pin the atom with a positional restraint, then drag it away: the
        // operator must do work ≈ the harmonic energy stored in both springs.
        let mut sys = lone_particle();
        let pin = sys.positions[0];
        sys.topology.restraints.push(crate::topology::Restraint {
            atom: 0,
            k: 5.0,
            target: pin,
        });
        let spring = SmdSpring {
            atom: 0,
            k: 5.0,
            velocity: Vec3::new(0.001, 0.0, 0.0),
            anchor: pin,
        };
        let mut smd = SmdSimulator::new(&sys, 1.0, vec![spring]);
        smd.run(&mut sys, 4000); // anchor moves 4 Å
        assert!(
            smd.work[0] > 5.0,
            "work pulling against a pin should be substantial: {}",
            smd.work[0]
        );
        // The pinned atom sits between the pin and the anchor.
        let x = sys.positions[0].x;
        assert!(x > pin.x && x < smd.springs[0].anchor.x, "x = {x}");
    }

    #[test]
    fn zero_velocity_spring_is_a_plain_restraint() {
        let mut sys = lone_particle();
        sys.velocities[0] = Vec3::new(0.01, 0.0, 0.0);
        let anchor = sys.positions[0];
        let spring = SmdSpring { atom: 0, k: 2.0, velocity: Vec3::ZERO, anchor };
        let mut smd = SmdSimulator::new(&sys, 1.0, vec![spring]);
        let energies = smd.run(&mut sys, 500);
        // Oscillates around the anchor; no net work done by a static anchor.
        assert!(smd.work[0].abs() < 1e-9);
        // Energy conserved (harmonic oscillator + VV).
        let e0 = energies[1].total() + 2.0 * sys.cell.dist2(sys.positions[0], anchor);
        assert!(e0.is_finite());
        let d = sys.cell.min_image(sys.positions[0], anchor).norm();
        assert!(d < 2.0, "escaped the static spring: {d}");
    }
}
