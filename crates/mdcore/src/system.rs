//! The complete dynamic state of a molecular system: topology + force field
//! + simulation cell + positions/velocities.

use crate::forcefield::{units, ForceField};
use crate::pbc::Cell;
use crate::topology::{Exclusions, Topology};
use crate::vec3::Vec3;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A molecular system ready to simulate.
#[derive(Debug, Clone)]
pub struct System {
    pub topology: Topology,
    pub exclusions: Exclusions,
    pub forcefield: ForceField,
    pub cell: Cell,
    /// Positions, Å (kept wrapped into the primary cell by the integrator).
    pub positions: Vec<Vec3>,
    /// Velocities, Å/fs.
    pub velocities: Vec<Vec3>,
}

impl System {
    /// Assemble a system; validates the topology and sizes.
    pub fn new(
        topology: Topology,
        forcefield: ForceField,
        cell: Cell,
        positions: Vec<Vec3>,
    ) -> Self {
        topology.validate().expect("invalid topology");
        assert_eq!(
            positions.len(),
            topology.n_atoms(),
            "positions length must equal atom count"
        );
        let exclusions = Exclusions::from_topology(&topology);
        let n = topology.n_atoms();
        System {
            topology,
            exclusions,
            forcefield,
            cell,
            positions,
            velocities: vec![Vec3::ZERO; n],
        }
    }

    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.topology.n_atoms()
    }

    /// Per-atom LJ type array (borrowed view for kernels).
    pub fn lj_types(&self) -> Vec<u16> {
        self.topology.atoms.iter().map(|a| a.lj_type).collect()
    }

    /// Per-atom charge array.
    pub fn charges(&self) -> Vec<f64> {
        self.topology.atoms.iter().map(|a| a.charge).collect()
    }

    /// Per-atom mass array.
    pub fn masses(&self) -> Vec<f64> {
        self.topology.atoms.iter().map(|a| a.mass).collect()
    }

    /// Draw velocities from a Maxwell-Boltzmann distribution at temperature
    /// `t_kelvin`, then remove net momentum. Deterministic for a given seed.
    pub fn thermalize(&mut self, t_kelvin: f64, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = self.n_atoms();
        for i in 0..n {
            let m = self.topology.atoms[i].mass;
            // σ² = kB T / m in kcal/mol units, converted to (Å/fs)².
            let sigma = (units::K_B * t_kelvin / m * units::ACCEL).sqrt();
            self.velocities[i] = Vec3::new(
                gaussian(&mut rng) * sigma,
                gaussian(&mut rng) * sigma,
                gaussian(&mut rng) * sigma,
            );
        }
        self.remove_net_momentum();
    }

    /// Subtract the centre-of-mass velocity so the system doesn't drift.
    pub fn remove_net_momentum(&mut self) {
        let mut p = Vec3::ZERO;
        let mut m_tot = 0.0;
        for (v, a) in self.velocities.iter().zip(&self.topology.atoms) {
            p += *v * a.mass;
            m_tot += a.mass;
        }
        let v_com = p / m_tot;
        for v in &mut self.velocities {
            *v -= v_com;
        }
    }

    /// Kinetic energy, kcal/mol.
    pub fn kinetic_energy(&self) -> f64 {
        self.velocities
            .iter()
            .zip(&self.topology.atoms)
            .map(|(v, a)| 0.5 * a.mass * v.norm2() * units::KE)
            .sum()
    }

    /// Instantaneous temperature, K.
    pub fn temperature(&self) -> f64 {
        let dof = (3 * self.n_atoms()) as f64 - 3.0;
        2.0 * self.kinetic_energy() / (dof * units::K_B)
    }

    /// Total momentum (amu·Å/fs) — should stay ~0 during NVE dynamics.
    pub fn net_momentum(&self) -> Vec3 {
        self.velocities
            .iter()
            .zip(&self.topology.atoms)
            .map(|(v, a)| *v * a.mass)
            .sum()
    }
}

/// Standard normal variate via Box-Muller (avoids needing rand_distr).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > 1e-300 {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{push_water, Topology};

    fn water_box() -> System {
        let mut topo = Topology::default();
        let mut pos = Vec::new();
        for i in 0..27 {
            let x = (i % 3) as f64 * 3.1 + 1.0;
            let y = ((i / 3) % 3) as f64 * 3.1 + 1.0;
            let z = (i / 9) as f64 * 3.1 + 1.0;
            push_water(&mut topo, 0, 1);
            pos.push(Vec3::new(x, y, z));
            pos.push(Vec3::new(x + 0.9572, y, z));
            pos.push(Vec3::new(x - 0.24, y + 0.93, z));
        }
        System::new(topo, ForceField::biomolecular(4.5), Cell::cube(9.3), pos)
    }

    #[test]
    fn thermalize_hits_target_temperature() {
        let mut s = water_box();
        s.thermalize(300.0, 42);
        let t = s.temperature();
        // 81 atoms — loose statistical check.
        assert!((t - 300.0).abs() < 90.0, "temperature {t}");
    }

    #[test]
    fn thermalize_is_deterministic() {
        let mut a = water_box();
        let mut b = water_box();
        a.thermalize(300.0, 7);
        b.thermalize(300.0, 7);
        assert_eq!(a.velocities, b.velocities);
        let mut c = water_box();
        c.thermalize(300.0, 8);
        assert_ne!(a.velocities, c.velocities);
    }

    #[test]
    fn no_net_momentum_after_thermalize() {
        let mut s = water_box();
        s.thermalize(310.0, 1);
        assert!(s.net_momentum().norm() < 1e-9);
    }

    #[test]
    fn kinetic_energy_matches_temperature_definition() {
        let mut s = water_box();
        s.thermalize(250.0, 3);
        let dof = (3 * s.n_atoms()) as f64 - 3.0;
        let t = 2.0 * s.kinetic_energy() / (dof * units::K_B);
        assert!((t - s.temperature()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positions length")]
    fn mismatched_positions_rejected() {
        let mut topo = Topology::default();
        push_water(&mut topo, 0, 1);
        System::new(
            topo,
            ForceField::biomolecular(12.0),
            Cell::cube(20.0),
            vec![Vec3::ZERO],
        );
    }
}
