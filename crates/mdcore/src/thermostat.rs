//! Thermostats: temperature control for equilibration and NVT sampling.
//!
//! Production biomolecular simulations (the paper's benchmarks derive from
//! real published studies) equilibrate with temperature control before NVE
//! data collection. Two standard schemes:
//!
//! * [`Berendsen`] — weak-coupling velocity rescaling toward a target
//!   temperature; fast and robust for equilibration (not canonical).
//! * [`Langevin`] — stochastic dynamics via the BAOAB splitting; samples
//!   the canonical (NVT) ensemble and is what NAMD uses by default.

use crate::forcefield::units;
use crate::sim::{compute_forces, StepEnergy};
use crate::system::System;
use crate::vec3::Vec3;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Berendsen weak-coupling thermostat: velocities are rescaled each step by
/// `λ = √(1 + dt/τ·(T₀/T − 1))`.
#[derive(Debug, Clone, Copy)]
pub struct Berendsen {
    /// Target temperature, K.
    pub target_k: f64,
    /// Coupling time constant τ, fs (larger = gentler).
    pub tau_fs: f64,
}

impl Berendsen {
    /// Apply one rescaling for timestep `dt_fs`.
    pub fn apply(&self, system: &mut System, dt_fs: f64) {
        let t = system.temperature();
        if t <= 0.0 {
            return;
        }
        let lambda2 = 1.0 + dt_fs / self.tau_fs * (self.target_k / t - 1.0);
        let lambda = lambda2.clamp(0.64, 1.56).sqrt(); // clamp like CHARMM
        for v in &mut system.velocities {
            *v *= lambda;
        }
    }
}

/// Langevin (BAOAB) integrator: velocity-Verlet kicks and drifts with an
/// Ornstein-Uhlenbeck velocity refresh in the middle.
pub struct Langevin {
    /// Target temperature, K.
    pub target_k: f64,
    /// Friction coefficient γ, fs⁻¹ (NAMD-typical: 0.001-0.01).
    pub gamma: f64,
    /// Timestep, fs.
    pub dt: f64,
    rng: ChaCha8Rng,
    forces: Vec<Vec3>,
    primed: bool,
}

impl Langevin {
    /// Create a Langevin integrator with a deterministic RNG seed.
    pub fn new(system: &System, target_k: f64, gamma: f64, dt: f64, seed: u64) -> Self {
        assert!(target_k > 0.0 && gamma > 0.0 && dt > 0.0);
        Langevin {
            target_k,
            gamma,
            dt,
            rng: ChaCha8Rng::seed_from_u64(seed),
            forces: vec![Vec3::ZERO; system.n_atoms()],
            primed: false,
        }
    }

    fn gaussian(&mut self) -> f64 {
        loop {
            let u1: f64 = self.rng.gen();
            let u2: f64 = self.rng.gen();
            if u1 > 1e-300 {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// One BAOAB step: B (half kick), A (half drift), O (OU refresh),
    /// A (half drift), B (half kick with new forces).
    pub fn step(&mut self, system: &mut System) -> StepEnergy {
        if !self.primed {
            compute_forces(system, &mut self.forces);
            self.primed = true;
        }
        let dt = self.dt;
        let n = system.n_atoms();
        let c1 = (-self.gamma * dt).exp();
        // OU noise amplitude per unit mass: √(kT/m·(1−c1²)) in velocity
        // units; kT/m converts via ACCEL like thermalize().
        let kt = units::K_B * self.target_k;

        // B + A.
        for i in 0..n {
            let m = system.topology.atoms[i].mass;
            system.velocities[i] += self.forces[i] * (units::ACCEL / m) * (0.5 * dt);
            system.positions[i] =
                system.cell.wrap(system.positions[i] + system.velocities[i] * (0.5 * dt));
        }
        // O.
        for i in 0..n {
            let m = system.topology.atoms[i].mass;
            let sigma = (kt / m * units::ACCEL * (1.0 - c1 * c1)).sqrt();
            let noise = Vec3::new(self.gaussian(), self.gaussian(), self.gaussian()) * sigma;
            system.velocities[i] = system.velocities[i] * c1 + noise;
        }
        // A.
        for i in 0..n {
            system.positions[i] =
                system.cell.wrap(system.positions[i] + system.velocities[i] * (0.5 * dt));
        }
        // New forces + B.
        let mut e = compute_forces(system, &mut self.forces);
        for i in 0..n {
            let m = system.topology.atoms[i].mass;
            system.velocities[i] += self.forces[i] * (units::ACCEL / m) * (0.5 * dt);
        }
        e.kinetic = system.kinetic_energy();
        e
    }

    /// Run `n` steps, returning per-step energies.
    pub fn run(&mut self, system: &mut System, n: usize) -> Vec<StepEnergy> {
        (0..n).map(|_| self.step(system)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::ForceField;
    use crate::pbc::Cell;
    use crate::topology::{push_water, Topology};

    fn water_system() -> System {
        let mut topo = Topology::default();
        let mut pos = Vec::new();
        for i in 0..64 {
            let x = (i % 4) as f64 * 3.2 + 0.8;
            let y = ((i / 4) % 4) as f64 * 3.2 + 0.8;
            let z = (i / 16) as f64 * 3.2 + 0.8;
            push_water(&mut topo, 0, 1);
            pos.push(Vec3::new(x, y, z));
            pos.push(Vec3::new(x + 0.9572, y, z));
            pos.push(Vec3::new(x - 0.24, y + 0.93, z));
        }
        System::new(topo, ForceField::biomolecular(6.0), Cell::cube(12.8), pos)
    }

    #[test]
    fn berendsen_pulls_temperature_toward_target() {
        let mut sys = water_system();
        sys.thermalize(150.0, 1);
        let thermo = Berendsen { target_k: 300.0, tau_fs: 20.0 };
        let mut sim = crate::sim::Simulator::new(&sys, 0.5);
        for _ in 0..200 {
            sim.step(&mut sys);
            thermo.apply(&mut sys, 0.5);
        }
        let t = sys.temperature();
        assert!((t - 300.0).abs() < 80.0, "temperature {t} not near 300 K");
    }

    #[test]
    fn berendsen_cools_too() {
        let mut sys = water_system();
        sys.thermalize(600.0, 2);
        let thermo = Berendsen { target_k: 200.0, tau_fs: 10.0 };
        let mut sim = crate::sim::Simulator::new(&sys, 0.5);
        for _ in 0..200 {
            sim.step(&mut sys);
            thermo.apply(&mut sys, 0.5);
        }
        let t = sys.temperature();
        assert!(t < 400.0, "failed to cool: {t}");
    }

    #[test]
    fn langevin_thermalizes_from_cold_start() {
        let mut sys = water_system();
        // Zero initial velocities: the thermostat must inject heat.
        let mut lang = Langevin::new(&sys, 300.0, 0.01, 1.0, 7);
        lang.run(&mut sys, 300);
        // Average over a window to beat fluctuation noise.
        let mut t_acc = 0.0;
        for _ in 0..100 {
            lang.step(&mut sys);
            t_acc += sys.temperature();
        }
        let t_avg = t_acc / 100.0;
        assert!(
            (t_avg - 300.0).abs() < 75.0,
            "Langevin average temperature {t_avg} not near 300 K"
        );
    }

    #[test]
    fn langevin_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sys = water_system();
            let mut lang = Langevin::new(&sys, 250.0, 0.005, 1.0, seed);
            lang.run(&mut sys, 20);
            sys.positions[10]
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn langevin_zero_friction_limit_is_stable() {
        // γ→small behaves like NVE over short runs (energy roughly constant).
        let mut sys = water_system();
        sys.thermalize(200.0, 5);
        let mut lang = Langevin::new(&sys, 200.0, 1e-6, 0.5, 9);
        let energies = lang.run(&mut sys, 50);
        let e0 = energies[1].total();
        let e1 = energies.last().unwrap().total();
        assert!(
            (e1 - e0).abs() / e0.abs().max(1.0) < 2e-2,
            "small-γ limit drifted: {e0} -> {e1}"
        );
    }
}
